"""Bottom-up summary propagation and finding generation (REP101-103).

Three fixpoints run over the SCC condensation of the call graph, callees
first:

``ret_kinds``
    taint kinds (clock/env/rng) a function's return value may carry,
    independent of its arguments.  Call-site argument taint does not
    need a summary: the extractor already unions argument atoms into
    every call's result atoms (pass-through over-approximation), so a
    laundering identity wrapper is tainted at the call site itself.

``param_sinks``
    formal parameters whose value reaches a durable sink — directly, or
    by being forwarded into a sink-reaching parameter of a callee.
    Public functions of serialization-named modules (the REP007 scope)
    sink *all* their parameters: handing tainted data to a serializer
    is a violation even when the writer itself lives outside the
    analyzed tree.

``raise_sets``
    builtin exceptions a call to the function may surface, minus those
    swallowed by ``except`` clauses around each call edge.  REP103
    fires where a *public* middleware/broker/campaign function would
    leak a builtin raised in somebody else's body — the same-function
    case is REP005's, intraprocedural and already banned.

``effects`` is the purity lattice for reporting: ``clock``/``env``/
``rng``/``io`` flags, transitively closed; a function with none is
deterministic.
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.extract import (
    FunctionSummary,
    MODULE_BODY,
    ModuleExtract,
    handler_covers,
)
from repro.lint.flow.ruledefs import (
    KIND_TO_CODE,
    PUBLIC_API_FRAGMENTS,
    SINK_MODULE_FRAGMENTS,
)

__all__ = ["FlowAnalysis", "propagate", "flow_findings"]

EFFECT_IO = "io"


@dataclasses.dataclass
class FlowAnalysis:
    """The propagated whole-program facts, keyed by function qualname."""

    extracts: List[ModuleExtract]
    graph: CallGraph
    ret_kinds: Dict[str, Set[str]]
    param_sinks: Dict[str, Dict[str, Tuple[str, ...]]]
    raise_sets: Dict[str, Dict[str, Tuple[str, int]]]
    effects: Dict[str, Set[str]]

    def summary_of(self, qualname: str) -> Optional[FunctionSummary]:
        for extract in self.extracts:
            found = extract.functions.get(qualname)
            if found is not None:
                return found
        return None

    def purity(self, qualname: str) -> str:
        """One deterministic word per function, for reports and goldens."""
        effects = self.effects.get(qualname, set())
        if not effects:
            return "deterministic"
        return "+".join(sorted(effects))


def propagate(
    extracts: Sequence[ModuleExtract], graph: CallGraph
) -> FlowAnalysis:
    functions: Dict[str, FunctionSummary] = {}
    modules: Dict[str, str] = {}
    for extract in extracts:
        for qualname, summary in extract.functions.items():
            functions[qualname] = summary
            modules[qualname] = extract.relpath

    ret_kinds: Dict[str, Set[str]] = {q: set() for q in functions}
    param_sinks: Dict[str, Dict[str, Set[str]]] = {
        q: _seed_param_sinks(functions[q], modules[q]) for q in functions
    }
    raise_sets: Dict[str, Dict[str, Tuple[str, int]]] = {
        q: {
            exc: (q, line)
            for exc, line in functions[q].raises.items()
        }
        for q in functions
    }
    effects: Dict[str, Set[str]] = {
        q: _direct_effects(functions[q]) for q in functions
    }

    for component in graph.order:
        changed = True
        while changed:
            changed = False
            for qualname in component:
                summary = functions[qualname]
                changed |= _update_ret_kinds(summary, ret_kinds)
                changed |= _update_param_sinks(
                    summary, functions, param_sinks, ret_kinds
                )
                changed |= _update_raises(summary, functions, raise_sets)
                changed |= _update_effects(summary, functions, effects)

    return FlowAnalysis(
        extracts=list(extracts),
        graph=graph,
        ret_kinds=ret_kinds,
        param_sinks={
            q: {p: tuple(sorted(s)) for p, s in sinks.items() if s}
            for q, sinks in param_sinks.items()
        },
        raise_sets=raise_sets,
        effects=effects,
    )


def _seed_param_sinks(
    summary: FunctionSummary, relpath: str
) -> Dict[str, Set[str]]:
    seeded: Dict[str, Set[str]] = {p: set() for p in summary.params}
    stem = pathlib.PurePosixPath(relpath).stem
    if summary.is_public and any(
        fragment in stem for fragment in SINK_MODULE_FRAGMENTS
    ):
        # Serialization-module contract: every public parameter is
        # presumed to end up in an artifact.
        for param in summary.params:
            if param not in ("self", "cls"):
                seeded[param].add(f"serialization module '{stem}'")
    return seeded


def _atom_kinds(
    atoms: Sequence[str], ret_kinds: Dict[str, Set[str]]
) -> Set[str]:
    """Taint kinds of an atom set, with parameters treated as clean."""
    kinds: Set[str] = set()
    for atom in atoms:
        label, _, payload = atom.partition(":")
        if label == "source":
            kinds.add(payload)
        elif label == "call":
            kinds |= ret_kinds.get(payload, set())
    return kinds


def _atom_params(atoms: Sequence[str]) -> Set[str]:
    return {
        atom.partition(":")[2]
        for atom in atoms
        if atom.startswith("param:")
    }


def _update_ret_kinds(
    summary: FunctionSummary, ret_kinds: Dict[str, Set[str]]
) -> bool:
    new = _atom_kinds(summary.ret_atoms, ret_kinds)
    current = ret_kinds[summary.qualname]
    if new - current:
        current |= new
        return True
    return False


def _slot_params(
    callee: FunctionSummary,
    npos: int,
    kwnames: Sequence[str],
) -> Tuple[List[Optional[str]], Dict[str, str]]:
    """Map call-site argument slots onto the callee's formals."""
    params = list(callee.params)
    if callee.is_method and params and params[0] in ("self", "cls"):
        params = params[1:]
    positional: List[Optional[str]] = [
        params[i] if i < len(params) else None for i in range(npos)
    ]
    keywords = {name: name for name in kwnames if name in params}
    return positional, keywords


def _update_param_sinks(
    summary: FunctionSummary,
    functions: Dict[str, FunctionSummary],
    param_sinks: Dict[str, Dict[str, Set[str]]],
    ret_kinds: Dict[str, Set[str]],
) -> bool:
    mine = param_sinks[summary.qualname]
    changed = False
    for sink, _line, atoms in summary.sink_flows:
        for param in _atom_params(atoms):
            if param in mine and sink not in mine[param]:
                mine[param].add(sink)
                changed = True
    for callee_name, _line, pos_atoms, kw_atoms in summary.arg_flows:
        callee = functions.get(callee_name)
        if callee is None:
            continue
        theirs = param_sinks.get(callee_name, {})
        positional, keywords = _slot_params(
            callee, len(pos_atoms), list(kw_atoms)
        )
        slots = [
            (target, pos_atoms[i])
            for i, target in enumerate(positional)
            if target is not None
        ] + [
            (target, kw_atoms[name])
            for name, target in keywords.items()
        ]
        for target, atoms in slots:
            reached = theirs.get(target, set())
            if not reached:
                continue
            for param in _atom_params(atoms):
                if param in mine and reached - mine[param]:
                    mine[param] |= reached
                    changed = True
    return changed


def _update_raises(
    summary: FunctionSummary,
    functions: Dict[str, FunctionSummary],
    raise_sets: Dict[str, Dict[str, Tuple[str, int]]],
) -> bool:
    mine = raise_sets[summary.qualname]
    changed = False
    for callee_name, line, caught in summary.calls:
        if callee_name not in functions:
            continue
        for exc, (origin, _line) in raise_sets[callee_name].items():
            if handler_covers(caught, exc):
                continue
            if exc not in mine:
                mine[exc] = (origin, line)
                changed = True
    return changed


def _update_effects(
    summary: FunctionSummary,
    functions: Dict[str, FunctionSummary],
    effects: Dict[str, Set[str]],
) -> bool:
    mine = effects[summary.qualname]
    before = len(mine)
    for callee_name, _line, _caught in summary.calls:
        if callee_name in functions:
            mine |= effects[callee_name]
    return len(mine) != before


def _direct_effects(summary: FunctionSummary) -> Set[str]:
    direct = set(summary.direct_sources)
    if summary.io_calls:
        direct.add(EFFECT_IO)
    return direct


# ---------------------------------------------------------------------------
# Finding generation
# ---------------------------------------------------------------------------


def flow_findings(
    analysis: FlowAnalysis, sources: Dict[str, Sequence[str]]
) -> List[Finding]:
    """REP101/REP102/REP103 findings from a propagated analysis.

    ``sources`` maps each extract's relpath to its source lines (for
    snippets — baseline identity needs the violating line's text).
    """
    findings: List[Finding] = []
    seen: Set[Tuple[str, str, int, str]] = set()

    def emit(code: str, relpath: str, line: int, message: str) -> None:
        key = (code, relpath, line, message)
        if key in seen:
            return
        seen.add(key)
        lines = sources.get(relpath, ())
        snippet = (
            lines[line - 1].strip() if 0 < line <= len(lines) else ""
        )
        findings.append(
            Finding(
                code=code,
                message=message,
                path=relpath,
                line=line,
                col=1,
                snippet=snippet,
            )
        )

    functions: Dict[str, FunctionSummary] = {}
    for extract in analysis.extracts:
        functions.update(extract.functions)

    for extract in analysis.extracts:
        for qualname, summary in extract.functions.items():
            _taint_findings(
                analysis, extract, summary, functions, emit
            )
            _escape_findings(analysis, extract, summary, emit)

    findings.sort(key=Finding.sort_key)
    return findings


def _taint_findings(
    analysis: FlowAnalysis,
    extract: ModuleExtract,
    summary: FunctionSummary,
    functions: Dict[str, FunctionSummary],
    emit,
) -> None:
    for sink, line, atoms in summary.sink_flows:
        for kind in sorted(_atom_kinds(atoms, analysis.ret_kinds)):
            emit(
                KIND_TO_CODE[kind],
                extract.relpath,
                line,
                f"{kind}-tainted value reaches durable sink {sink}",
            )
    for callee_name, line, pos_atoms, kw_atoms in summary.arg_flows:
        callee = functions.get(callee_name)
        if callee is None:
            continue
        theirs = analysis.param_sinks.get(callee_name, {})
        if not theirs:
            continue
        positional, keywords = _slot_params(
            callee, len(pos_atoms), list(kw_atoms)
        )
        slots = [
            (target, pos_atoms[i])
            for i, target in enumerate(positional)
            if target is not None
        ] + [(target, kw_atoms[name]) for name, target in keywords.items()]
        for target, atoms in slots:
            reached = theirs.get(target, ())
            if not reached:
                continue
            for kind in sorted(_atom_kinds(atoms, analysis.ret_kinds)):
                emit(
                    KIND_TO_CODE[kind],
                    extract.relpath,
                    line,
                    (
                        f"{kind}-tainted argument '{target}' to "
                        f"{callee_name} reaches {reached[0]}"
                    ),
                )


def _escape_findings(
    analysis: FlowAnalysis,
    extract: ModuleExtract,
    summary: FunctionSummary,
    emit,
) -> None:
    if not summary.is_public or summary.qualname.endswith(MODULE_BODY):
        return
    posix = "/" + extract.relpath.lstrip("/")
    if not any(fragment in posix for fragment in PUBLIC_API_FRAGMENTS):
        return
    local = summary.qualname
    if extract.module and local.startswith(extract.module + "."):
        local = local[len(extract.module) + 1 :]
    for exc, (origin, line) in sorted(
        analysis.raise_sets.get(summary.qualname, {}).items()
    ):
        if origin == summary.qualname:
            continue  # same-function raise is REP005's (intraprocedural)
        emit(
            "REP103",
            extract.relpath,
            line,
            (
                f"public API '{local}' can leak builtin {exc} "
                f"raised in {origin}"
            ),
        )
