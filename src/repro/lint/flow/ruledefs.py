"""The flow rule family REP101-REP104: identity, sources, and sinks.

These rules are whole-program: they need the call graph and per-function
summaries, so they do not fit the node-dispatch :class:`repro.lint.registry.Rule`
interface.  They share the same stable-code contract — reporters,
baselines, and ``--select`` key on the codes — and surface through the
same :class:`~repro.lint.findings.Finding` type.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Tuple

__all__ = [
    "FlowRule",
    "FLOW_RULES",
    "FLOW_CODES",
    "CLOCK_SOURCES",
    "ENV_SOURCES",
    "RNG_SEEDED_CONSTRUCTORS",
    "RNG_GLOBAL_SOURCES",
    "DURABLE_SINKS",
    "SINK_MODULE_FRAGMENTS",
    "SOURCE_ALLOWLIST",
    "TAINT_CLOCK",
    "TAINT_ENV",
    "TAINT_RNG",
    "PUBLIC_API_FRAGMENTS",
]


@dataclasses.dataclass(frozen=True)
class FlowRule:
    """Identity card of one whole-program rule (for tables and docs)."""

    code: str
    name: str
    summary: str
    rationale: str


FLOW_RULES: Tuple[FlowRule, ...] = (
    FlowRule(
        code="REP101",
        name="clock-taint-to-sink",
        summary=(
            "no wall-clock or environment read may reach a serialized "
            "artifact, even through call chains"
        ),
        rationale=(
            "REP001 matches clock reads by surface name, so an aliased "
            "import or a helper function launders one into a journal or "
            "report unseen; taint tracking follows the value across "
            "call edges to the durable writers."
        ),
    ),
    FlowRule(
        code="REP102",
        name="rng-taint-to-sink",
        summary=(
            "no unseeded-RNG draw may reach a serialized artifact, even "
            "through call chains"
        ),
        rationale=(
            "An unseeded draw hidden behind an alias or helper couples "
            "serialized results to interpreter start-up state; the "
            "taint pass follows it interprocedurally to the writers."
        ),
    ),
    FlowRule(
        code="REP103",
        name="cross-module-error-escape",
        summary=(
            "public middleware/broker/campaign APIs must not leak "
            "builtin exceptions raised in their callees"
        ),
        rationale=(
            "REP005 bans the raise site itself; a public entry point "
            "calling a helper that raises ValueError still crashes "
            "embedders outside the ReproError contract.  The raise-set "
            "summary propagates uncaught builtins up the call graph."
        ),
    ),
    FlowRule(
        code="REP104",
        name="dimensional-consistency",
        summary=(
            "prediction-model arithmetic must combine seconds, bytes, "
            "bytes/s, counts, and ratios coherently"
        ),
        rationale=(
            "T_exec = T_disk + T_network + T_compute only means "
            "anything if every term is seconds; adding seconds to "
            "bytes, multiplying two durations, or returning a ratio "
            "from a *_time function is a silent modeling bug no unit "
            "test of one formula catches."
        ),
    ),
)

FLOW_CODES: FrozenSet[str] = frozenset(rule.code for rule in FLOW_RULES)

# ---------------------------------------------------------------------------
# Taint kinds
# ---------------------------------------------------------------------------

TAINT_CLOCK = "clock"
TAINT_ENV = "env"
TAINT_RNG = "rng"

#: Taint kind → the rule code that reports it at a sink.
KIND_TO_CODE: Dict[str, str] = {
    TAINT_CLOCK: "REP101",
    TAINT_ENV: "REP101",
    TAINT_RNG: "REP102",
}

# ---------------------------------------------------------------------------
# Sources (canonical qualified names, post symbol resolution)
# ---------------------------------------------------------------------------

CLOCK_SOURCES: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Environment reads: ``os.getenv(...)`` calls and any load of
#: ``os.environ`` (subscript, ``.get``, iteration).
ENV_SOURCES: FrozenSet[str] = frozenset({"os.getenv", "os.environ"})

#: RNG constructors that are sources only when called with no arguments.
RNG_SEEDED_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
    }
)

#: Always-source RNG reads: process-global state or OS entropy.
RNG_GLOBAL_SOURCES: FrozenSet[str] = frozenset(
    {f"random.{fn}" for fn in (
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "shuffle", "triangular", "uniform", "vonmisesvariate",
        "weibullvariate",
    )}
    | {f"numpy.random.{fn}" for fn in (
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "choice", "shuffle", "permutation", "normal", "uniform", "poisson",
        "exponential", "binomial",
    )}
    | {
        "random.SystemRandom",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
        "secrets.randbelow",
        "secrets.choice",
    }
)

# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------

#: The durable writers: a tainted argument here is a tainted artifact.
DURABLE_SINKS: FrozenSet[str] = frozenset(
    {
        "repro.core.durable.atomic_write_json",
        "repro.core.durable.atomic_write_text",
        "repro.core.durable.canonical_json",
        "repro.core.durable.content_digest",
    }
)

#: Project functions defined in modules whose path matches one of these
#: fragments are sinks too (the REP007 serialization scope).
SINK_MODULE_FRAGMENTS: Tuple[str, ...] = (
    "serialize",
    "report",
    "reporter",
    "journal",
    "store",
    "results_io",
)

#: Sanctioned wall-clock/host-state readers (mirrors the REP001
#: allowlist): reads *originating* in these modules carry no taint —
#: their operator-facing wall durations are reviewed and simulated
#: results never depend on them.
SOURCE_ALLOWLIST: Tuple[str, ...] = (
    "campaign/watchdog.py",
    "campaign/runner.py",
    "campaign/parallel.py",
    "workloads/suite.py",
    "service/clock.py",
)

#: Modules whose public (non-underscore) functions and methods form the
#: embedder-facing API checked by REP103.
PUBLIC_API_FRAGMENTS: Tuple[str, ...] = (
    "/middleware/",
    "/broker/",
    "/campaign/",
)
