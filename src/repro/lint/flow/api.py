"""The flow layer's entry point: files in, REP101-REP104 findings out.

``analyze_paths`` is to the flow layer what ``lint_paths`` is to the
intraprocedural engine.  It expands paths the same way, anchors finding
paths on the same ``root``, and returns plain :class:`Finding` objects,
so the CLI can concatenate both result lists and hand them to the same
baseline partition and reporters.

Per file: hash the source, hit the summary cache or parse + extract,
then build the call graph over *all* summaries and run propagation.
Files that do not parse are skipped here — the intraprocedural engine
already reports them as REP000, and a broken module contributes no
summaries rather than aborting the whole-program pass.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.engine import iter_python_files, relative_finding_path
from repro.lint.findings import Finding
from repro.lint.flow.cache import SummaryCache, source_digest
from repro.lint.flow.callgraph import CallGraph, build_callgraph
from repro.lint.flow.extract import ModuleExtract, extract_module
from repro.lint.flow.propagate import FlowAnalysis, flow_findings, propagate
from repro.lint.flow.units import applies_to_units, check_units

__all__ = ["FlowResult", "analyze_paths"]

DEFAULT_CACHE_NAME = ".repro-flow-cache.json"


@dataclasses.dataclass
class FlowResult:
    """Findings plus the analysis artifacts tests and tooling inspect."""

    findings: List[Finding]
    analysis: FlowAnalysis
    files_analyzed: int
    cache_hits: int
    cache_misses: int

    @property
    def callgraph(self) -> CallGraph:
        return self.analysis.graph


def analyze_paths(
    paths: Sequence[str | pathlib.Path],
    *,
    root: Optional[str | pathlib.Path] = None,
    cache_path: Optional[str | pathlib.Path] = None,
) -> FlowResult:
    """Run the whole-program analysis over files and directories."""
    rootpath = (
        pathlib.Path(root) if root is not None else pathlib.Path.cwd()
    )
    cache = SummaryCache.load(
        pathlib.Path(cache_path) if cache_path is not None else None
    )

    extracts: List[ModuleExtract] = []
    sources: Dict[str, Sequence[str]] = {}
    unit_modules: List[Tuple[str, ast.Module]] = []
    for path in iter_python_files([pathlib.Path(p) for p in paths]):
        relpath = relative_finding_path(path, rootpath)
        source = path.read_text(encoding="utf-8")
        sources[relpath] = source.splitlines()
        digest = source_digest(source)
        cached = cache.get(relpath, digest)
        tree: Optional[ast.Module] = None
        if cached is not None:
            extracts.append(cached)
        else:
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError:
                continue  # REP000 is the engine's report, not ours
            extract = extract_module(tree, relpath)
            extracts.append(extract)
            cache.put(relpath, digest, extract)
        if applies_to_units(relpath):
            if tree is None:
                try:
                    tree = ast.parse(source, filename=str(path))
                except SyntaxError:
                    continue
            unit_modules.append((relpath, tree))

    graph = build_callgraph(extracts)
    analysis = propagate(extracts, graph)
    findings = flow_findings(analysis, sources)
    findings.extend(check_units(unit_modules, sources))
    findings.sort(key=Finding.sort_key)

    cache.save()
    return FlowResult(
        findings=findings,
        analysis=analysis,
        files_analyzed=len(extracts),
        cache_hits=cache.hits,
        cache_misses=cache.misses,
    )
