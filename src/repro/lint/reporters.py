"""Reporters: text for humans, JSON for tools, GitHub annotations for CI.

All three render a :class:`LintReport` — the findings partitioned
against the baseline plus run metadata — and all three are pure
functions returning a string, so golden-output tests can pin them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.core.durable import canonical_json
from repro.lint.baseline import BaselinePartition
from repro.lint.errors import LintError
from repro.lint.findings import Finding

__all__ = ["LintReport", "REPORT_FORMATS", "render"]


@dataclasses.dataclass(frozen=True)
class LintReport:
    """Everything a reporter needs about one lint run."""

    partition: BaselinePartition
    files_scanned: int
    fixed: int = 0  # findings rewritten by --fix in this run

    @property
    def new(self) -> Tuple[Finding, ...]:
        return self.partition.new

    @property
    def suppressed(self) -> Tuple[Finding, ...]:
        return self.partition.suppressed

    @property
    def ok(self) -> bool:
        return not self.partition.new

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def render_text(report: LintReport) -> str:
    lines: List[str] = []
    for finding in report.new:
        flag = " [fixable]" if finding.fixable else ""
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col} "
            f"{finding.code}{flag} {finding.message}"
        )
    summary = (
        f"{len(report.new)} new finding(s), "
        f"{len(report.suppressed)} baselined, "
        f"{report.files_scanned} file(s) scanned"
    )
    if report.fixed:
        summary += f", {report.fixed} fixed"
    lines.append(summary)
    for identity, count in report.partition.stale:
        code, path, snippet = identity
        lines.append(
            f"stale baseline entry: {code} at {path} ({count} "
            f"unmatched occurrence(s) of {snippet!r}); shrink the "
            "baseline with --write-baseline"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    document = {
        "format_version": 1,
        "tool": "repro.lint",
        "summary": {
            "new": len(report.new),
            "suppressed": len(report.suppressed),
            "stale_baseline_entries": len(report.partition.stale),
            "files_scanned": report.files_scanned,
            "fixed": report.fixed,
            "ok": report.ok,
        },
        "findings": [f.to_dict() for f in report.new],
        "suppressed": [f.to_dict() for f in report.suppressed],
        "stale": [
            {"code": code, "path": path, "snippet": snippet, "count": count}
            for (code, path, snippet), count in report.partition.stale
        ],
    }
    return canonical_json(document).rstrip("\n")


def render_github(report: LintReport) -> str:
    """GitHub Actions workflow commands: one ::error line per finding."""
    lines = [
        "::error file={path},line={line},col={col},title={code}::{msg}".format(
            path=f.path,
            line=f.line,
            col=f.col,
            code=f.code,
            msg=_escape_github(f"{f.message} [{f.code}]"),
        )
        for f in report.new
    ]
    lines.append(
        f"::notice title=repro.lint::{len(report.new)} new, "
        f"{len(report.suppressed)} baselined, "
        f"{report.files_scanned} files"
    )
    return "\n".join(lines)


def _escape_github(message: str) -> str:
    # Workflow-command data must escape %, CR and LF.
    return (
        message.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
    )


REPORT_FORMATS: Dict[str, object] = {
    "text": render_text,
    "json": render_json,
    "github": render_github,
}


def render(report: LintReport, fmt: str) -> str:
    renderer = REPORT_FORMATS.get(fmt)
    if renderer is None:
        raise LintError(
            f"unknown report format {fmt!r} "
            f"(expected one of {', '.join(sorted(REPORT_FORMATS))})"
        )
    return renderer(report)  # type: ignore[operator]
