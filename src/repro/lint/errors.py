"""Errors raised by the static-contract checker itself.

These cover misuse of the linter (unknown reporter names, unreadable
baseline files, paths that do not exist) — *not* the contract violations
it reports, which are data (:class:`repro.lint.findings.Finding`), never
exceptions.
"""

from __future__ import annotations

from repro.errors import ReproError

__all__ = ["LintError"]


class LintError(ReproError):
    """The lint run itself cannot proceed (bad arguments, bad baseline).

    Distinct from a *finding*: findings are reported and exit with code 1;
    a ``LintError`` means the tool was invoked incorrectly.
    """
