"""The determinism certificate: ``.repro-effects.json``.

A committed, content-hashed, machine-readable record of which functions
the effect analysis proved ``pure``, ``process-pool-safe``, or
``deterministic`` (the ``effectful`` tier is absence).  It plays the
same role for parallel execution that ``lint-baseline.json`` plays for
findings — a reviewed artifact that may only *shrink* in risk:

- ``repro lint --effects --write-certificate`` refreshes it, refusing
  any *demotion* (a function whose recorded tier outranks its current
  one) unless ``--allow-demotions`` acknowledges the review.
- ``repro lint --effects`` reports demotions against the committed
  certificate as REP205 findings, so a pre-commit ``--changed`` run
  catches a certificate regression before push.
- ``repro campaign --workers N`` re-runs the (cached) analysis and
  refuses to start unless every submitted entry point still certifies
  at the pool-safe tier — the certificate file documents the contract,
  the gate re-proves it.

The document is canonical JSON through the same durable layer as every
other artifact: ``format_version``, per-module source digests, and the
``functions`` tier map.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Optional, Tuple

from repro.core.durable import (
    StoreError,
    atomic_write_json,
    read_json_document,
)
from repro.lint.effects.propagate import EffectAnalysis
from repro.lint.effects.ruledefs import TIER_EFFECTFUL, TIER_RANK
from repro.lint.errors import LintError

__all__ = [
    "CERTIFICATE_NAME",
    "CERTIFICATE_FORMAT_VERSION",
    "build_certificate",
    "load_certificate",
    "certificate_demotions",
    "write_certificate",
]

CERTIFICATE_NAME = ".repro-effects.json"
CERTIFICATE_FORMAT_VERSION = 1


def build_certificate(
    analysis: EffectAnalysis, module_digests: Dict[str, str]
) -> Dict[str, object]:
    """Certificate document for a propagated analysis.

    Only certified tiers are listed; ``effectful`` functions are simply
    absent, so the file reads as a positive claim set.
    """
    functions = {
        qualname: tier
        for qualname, tier in sorted(analysis.tiers.items())
        if TIER_RANK[tier] > TIER_RANK[TIER_EFFECTFUL]
    }
    return {
        "format_version": CERTIFICATE_FORMAT_VERSION,
        "modules": dict(sorted(module_digests.items())),
        "functions": functions,
    }


def load_certificate(
    path: str | pathlib.Path,
) -> Optional[Dict[str, object]]:
    """Load a committed certificate; ``None`` when absent.

    Unlike the summary caches, a *corrupt* certificate is an error, not
    a silent re-derive: the file is a reviewed artifact and quietly
    ignoring it would un-gate the parallel executor.
    """
    cert_path = pathlib.Path(path)
    if not cert_path.exists():
        return None
    try:
        data = read_json_document(
            cert_path,
            "determinism certificate",
            expected_version=CERTIFICATE_FORMAT_VERSION,
            remedy="regenerate with: repro lint src/repro --effects "
            "--write-certificate",
        )
    except StoreError as exc:
        raise LintError(str(exc)) from exc
    functions = data.get("functions")
    if not isinstance(functions, dict) or not all(
        isinstance(k, str) and v in TIER_RANK for k, v in functions.items()
    ):
        raise LintError(
            f"determinism certificate {cert_path} has a malformed "
            "'functions' tier map; regenerate with: repro lint "
            "src/repro --effects --write-certificate"
        )
    return data


def certificate_demotions(
    certificate: Dict[str, object], analysis: EffectAnalysis
) -> List[Tuple[str, str, str]]:
    """(qualname, certified tier, current tier) for every regression.

    A function counts as demoted when its current tier ranks below the
    committed one — including functions that disappeared entirely while
    other functions of their module survive (deletions of a whole
    module drop its claims legitimately; the digest map records which
    modules the certificate knew).
    """
    functions = certificate.get("functions")
    if not isinstance(functions, dict):
        return []
    analyzed_modules = {
        qualname: extract.module
        for extract in analysis.extracts
        for qualname in extract.functions
    }
    known_modules = set(analyzed_modules.values())
    demotions: List[Tuple[str, str, str]] = []
    for qualname, certified in sorted(functions.items()):
        current = analysis.tiers.get(qualname)
        if current is None:
            module = qualname.rsplit(".", 1)[0]
            while module and module not in known_modules:
                module = module.rsplit(".", 1)[0] if "." in module else ""
            if not module:
                continue  # whole module gone or outside the analyzed set
            current = TIER_EFFECTFUL
        if TIER_RANK[current] < TIER_RANK[str(certified)]:
            demotions.append((qualname, str(certified), current))
    return demotions


def write_certificate(
    path: str | pathlib.Path,
    analysis: EffectAnalysis,
    module_digests: Dict[str, str],
    *,
    allow_demotions: bool = False,
) -> Dict[str, object]:
    """Refresh the committed certificate, enforcing shrink-only risk.

    Promotions and new functions are always fine; demotions abort with
    the offending tier drops unless explicitly acknowledged.
    """
    cert_path = pathlib.Path(path)
    fresh = build_certificate(analysis, module_digests)
    previous = load_certificate(cert_path)
    if previous is not None and not allow_demotions:
        demoted = certificate_demotions(previous, analysis)
        if demoted:
            drops = "; ".join(
                f"{q}: {old} -> {new}" for q, old, new in demoted[:5]
            )
            raise LintError(
                f"refusing to demote {len(demoted)} certified "
                f"function(s) ({drops}); review the effect regression "
                "or pass --allow-demotions"
            )
    atomic_write_json(cert_path, fresh)
    return fresh
