"""The effect layer's entry point: files in, REP201-REP205 findings out.

``analyze_effects`` is to the effect layer what ``analyze_paths`` is to
the flow layer: it expands paths the same way, anchors finding paths on
the same ``root``, and returns plain :class:`Finding` objects the CLI
concatenates with the other layers' and hands to the same baseline
partition and reporters.

Per file: hash the source, hit the effect cache or parse + extract,
then build the call graph over all summaries (the flow layer's builder,
unchanged — effect summaries carry identically-shaped ``calls`` and
``arg_flows``), propagate, and generate findings.  When a committed
determinism certificate is present, tier regressions against it are
reported as REP205 findings anchored on the demoted function's
definition line.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
from typing import Dict, List, Optional, Sequence

from repro.lint.engine import iter_python_files, relative_finding_path
from repro.lint.findings import Finding
from repro.lint.effects.cache import EffectCache, source_digest
from repro.lint.effects.certificate import (
    certificate_demotions,
    load_certificate,
)
from repro.lint.effects.extract import EffectExtract, extract_effects
from repro.lint.effects.propagate import (
    EffectAnalysis,
    effect_findings,
    propagate_effects,
)
from repro.lint.flow.callgraph import CallGraph, build_callgraph

__all__ = ["EffectResult", "analyze_effects", "DEFAULT_EFFECT_CACHE_NAME"]

DEFAULT_EFFECT_CACHE_NAME = ".repro-effects-cache.json"


@dataclasses.dataclass
class EffectResult:
    """Findings plus the analysis artifacts tests and tooling inspect."""

    findings: List[Finding]
    analysis: EffectAnalysis
    files_analyzed: int
    cache_hits: int
    cache_misses: int
    #: relpath -> sha256 of the analyzed source (certificate input)
    module_digests: Dict[str, str]

    @property
    def callgraph(self) -> CallGraph:
        return self.analysis.graph


def analyze_effects(
    paths: Sequence[str | pathlib.Path],
    *,
    root: Optional[str | pathlib.Path] = None,
    cache_path: Optional[str | pathlib.Path] = None,
    certificate_path: Optional[str | pathlib.Path] = None,
) -> EffectResult:
    """Run the whole-program effect analysis over files and directories."""
    rootpath = (
        pathlib.Path(root) if root is not None else pathlib.Path.cwd()
    )
    cache = EffectCache.load(
        pathlib.Path(cache_path) if cache_path is not None else None
    )

    extracts: List[EffectExtract] = []
    sources: Dict[str, Sequence[str]] = {}
    module_digests: Dict[str, str] = {}
    for path in iter_python_files([pathlib.Path(p) for p in paths]):
        relpath = relative_finding_path(path, rootpath)
        source = path.read_text(encoding="utf-8")
        sources[relpath] = source.splitlines()
        digest = source_digest(source)
        cached = cache.get(relpath, digest)
        if cached is not None:
            extracts.append(cached)
        else:
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError:
                continue  # REP000 is the engine's report, not ours
            extract = extract_effects(tree, relpath)
            extracts.append(extract)
            cache.put(relpath, digest, extract)
        module_digests[relpath] = digest

    graph = build_callgraph(extracts)
    analysis = propagate_effects(extracts, graph)
    findings = effect_findings(analysis, sources)

    if certificate_path is not None:
        certificate = load_certificate(certificate_path)
        if certificate is not None:
            findings.extend(
                _demotion_findings(certificate, analysis, sources)
            )
    findings.sort(key=Finding.sort_key)

    cache.save()
    return EffectResult(
        findings=findings,
        analysis=analysis,
        files_analyzed=len(extracts),
        cache_hits=cache.hits,
        cache_misses=cache.misses,
        module_digests=module_digests,
    )


def _demotion_findings(
    certificate: Dict[str, object],
    analysis: EffectAnalysis,
    sources: Dict[str, Sequence[str]],
) -> List[Finding]:
    findings: List[Finding] = []
    for qualname, certified, current in certificate_demotions(
        certificate, analysis
    ):
        summary = analysis.summary_of(qualname)
        relpath, line = "", 1
        for extract in analysis.extracts:
            if qualname in extract.functions:
                relpath = extract.relpath
                break
        if summary is not None:
            line = summary.lineno
        lines = sources.get(relpath, ())
        snippet = lines[line - 1].strip() if 0 < line <= len(lines) else ""
        findings.append(
            Finding(
                code="REP205",
                message=(
                    f"'{qualname}' is certified '{certified}' in the "
                    f"determinism certificate but now analyzes as "
                    f"'{current}' "
                    f"(effects: {analysis.effect_words(qualname)})"
                ),
                path=relpath or "(deleted)",
                line=line,
                col=1,
                snippet=snippet,
            )
        )
    return findings
