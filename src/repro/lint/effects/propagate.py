"""Bottom-up effect propagation, tier assignment, REP201-REP205.

Three propagated facts close over the SCC condensation of the call
graph (the flow layer's graph builder runs unchanged over effect
summaries), callees first:

``flags``
    transitive effect flags — ``ambient``, ``global-write``, ``io``,
    and ``unordered-sink`` (the function, or anything it calls, writes
    set-iteration-ordered data into a durable artifact).  Plain union
    over call edges, like the flow layer's purity lattice.

``mutated_params``
    formals the function (transitively) mutates: seeded from local
    mutation sites, grown when the function forwards its own parameter
    into a callee formal the callee mutates.  Mutating a *local* that
    a callee scribbles on is not an effect — only the caller's own
    formals count, which is exactly the process-pool question (workers
    receive pickled copies, so argument mutation is the one in-place
    effect parallelism cannot reproduce).

``ret_unordered``
    whether the return value may derive from unordered iteration —
    resolved through ``call:`` atoms so ``sorted()`` at any hop
    launders the mark.

Tier assignment (:data:`~repro.lint.effects.ruledefs.TIER_RANK`) reads
those three facts; finding generation anchors REP201 on write sites
reachable from the certified roots (plus every resolved pool-submit
target), REP203 on sink flows and serialization-module argument edges,
and REP205 on submit sites whose target misses the pool-safe tier.
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.extract import MODULE_BODY
from repro.lint.flow.ruledefs import SINK_MODULE_FRAGMENTS
from repro.lint.effects.extract import (
    ATOM_UNORDERED,
    EffectExtract,
    EffectSummary,
)
from repro.lint.effects.ruledefs import (
    CERTIFIED_ROOTS,
    EFFECT_AMBIENT,
    EFFECT_GLOBAL_WRITE,
    EFFECT_IO,
    TIER_DETERMINISTIC,
    TIER_EFFECTFUL,
    TIER_POOL_SAFE,
    TIER_PURE,
    TIER_RANK,
)

__all__ = ["EffectAnalysis", "propagate_effects", "effect_findings"]

_UNORDERED_SINK = "unordered-sink"


@dataclasses.dataclass
class EffectAnalysis:
    """The propagated whole-program effect facts, keyed by qualname."""

    extracts: List[EffectExtract]
    graph: CallGraph
    #: transitive flags: ambient / global-write / io / unordered-sink
    flags: Dict[str, Set[str]]
    #: formals the function transitively mutates
    mutated_params: Dict[str, Set[str]]
    #: return value may carry unordered-iteration order
    ret_unordered: Dict[str, bool]
    #: certificate tier per function (module bodies excluded)
    tiers: Dict[str, str]

    def summary_of(self, qualname: str) -> Optional[EffectSummary]:
        for extract in self.extracts:
            found = extract.functions.get(qualname)
            if found is not None:
                return found
        return None

    def tier_of(self, qualname: str) -> str:
        return self.tiers.get(qualname, TIER_EFFECTFUL)

    def effect_words(self, qualname: str) -> str:
        """Deterministic one-line effect description, for messages."""
        words = sorted(self.flags.get(qualname, set()))
        if self.mutated_params.get(qualname):
            words.append(
                "mutates("
                + ",".join(sorted(self.mutated_params[qualname]))
                + ")"
            )
        if self.ret_unordered.get(qualname):
            words.append("returns-unordered")
        return "+".join(words) if words else "none"


def propagate_effects(
    extracts: Sequence[EffectExtract], graph: CallGraph
) -> EffectAnalysis:
    functions: Dict[str, EffectSummary] = {}
    modules: Dict[str, str] = {}
    for extract in extracts:
        for qualname, summary in extract.functions.items():
            functions[qualname] = summary
            modules[qualname] = extract.relpath

    flags: Dict[str, Set[str]] = {
        q: _direct_flags(functions[q]) for q in functions
    }
    mutated: Dict[str, Set[str]] = {
        q: {name for name, _line in functions[q].param_mutations}
        for q in functions
    }
    ret_unordered: Dict[str, bool] = {q: False for q in functions}
    sink_params = _serialization_params(functions, modules)

    for component in graph.order:
        changed = True
        while changed:
            changed = False
            for qualname in component:
                summary = functions[qualname]
                changed |= _update_flags(
                    summary, functions, flags, ret_unordered, sink_params
                )
                changed |= _update_mutated(summary, functions, mutated)
                changed |= _update_ret_unordered(summary, ret_unordered)

    tiers = {
        q: _tier(flags[q], mutated[q], ret_unordered[q])
        for q in functions
        if not q.endswith(MODULE_BODY)
    }
    return EffectAnalysis(
        extracts=list(extracts),
        graph=graph,
        flags=flags,
        mutated_params=mutated,
        ret_unordered=ret_unordered,
        tiers=tiers,
    )


def _direct_flags(summary: EffectSummary) -> Set[str]:
    direct = set()
    for kind in (EFFECT_AMBIENT, EFFECT_GLOBAL_WRITE, EFFECT_IO):
        if kind in summary.direct:
            direct.add(kind)
    return direct


def _serialization_params(
    functions: Dict[str, EffectSummary], modules: Dict[str, str]
) -> Dict[str, Tuple[str, ...]]:
    """Public serialization-module functions sink all their parameters.

    Same contract as the flow layer's param-sink seeding: handing
    order-sensitive data to a serializer is a violation even when the
    durable write lives outside the analyzed tree.
    """
    seeded: Dict[str, Tuple[str, ...]] = {}
    for qualname, summary in functions.items():
        if not summary.is_public or qualname.endswith(MODULE_BODY):
            continue
        stem = pathlib.PurePosixPath(modules[qualname]).stem
        if any(fragment in stem for fragment in SINK_MODULE_FRAGMENTS):
            seeded[qualname] = tuple(
                p for p in summary.params if p not in ("self", "cls")
            )
    return seeded


def _unordered_in(
    atoms: Sequence[str], ret_unordered: Dict[str, bool]
) -> bool:
    """Whether an atom set carries iteration-order sensitivity.

    Only the ``unordered`` mark (a value *derived from iterating* a
    set) counts — a set-typed value itself may be used purely for
    membership, and handing one to ``json`` raises rather than
    silently reordering.
    """
    for atom in atoms:
        if atom == ATOM_UNORDERED:
            return True
        label, _, payload = atom.partition(":")
        if label == "call" and ret_unordered.get(payload, False):
            return True
    return False


def _update_flags(
    summary: EffectSummary,
    functions: Dict[str, EffectSummary],
    flags: Dict[str, Set[str]],
    ret_unordered: Dict[str, bool],
    sink_params: Dict[str, Tuple[str, ...]],
) -> bool:
    mine = flags[summary.qualname]
    before = len(mine)
    for callee_name, _line, _caught in summary.calls:
        if callee_name in functions:
            mine |= flags[callee_name]
    for _sink, _line, atoms in summary.sink_flows:
        if _unordered_in(atoms, ret_unordered):
            mine.add(_UNORDERED_SINK)
    for callee_name, _line, pos_atoms, kw_atoms in summary.arg_flows:
        if callee_name not in sink_params:
            continue
        slotted = list(pos_atoms) + list(kw_atoms.values())
        if any(_unordered_in(atoms, ret_unordered) for atoms in slotted):
            mine.add(_UNORDERED_SINK)
    return len(mine) != before


def _slot_params(
    callee: EffectSummary,
    npos: int,
    kwnames: Sequence[str],
) -> Tuple[List[Optional[str]], Dict[str, str]]:
    """Map call-site argument slots onto the callee's formals."""
    params = list(callee.params)
    if callee.is_method and params and params[0] in ("self", "cls"):
        params = params[1:]
    positional: List[Optional[str]] = [
        params[i] if i < len(params) else None for i in range(npos)
    ]
    keywords = {name: name for name in kwnames if name in params}
    return positional, keywords


def _update_mutated(
    summary: EffectSummary,
    functions: Dict[str, EffectSummary],
    mutated: Dict[str, Set[str]],
) -> bool:
    mine = mutated[summary.qualname]
    changed = False
    for callee_name, _line, pos_atoms, kw_atoms in summary.arg_flows:
        callee = functions.get(callee_name)
        if callee is None:
            continue
        theirs = mutated.get(callee_name, set())
        if not theirs:
            continue
        positional, keywords = _slot_params(
            callee, len(pos_atoms), list(kw_atoms)
        )
        slots = [
            (target, pos_atoms[i])
            for i, target in enumerate(positional)
            if target is not None
        ] + [(target, kw_atoms[name]) for name, target in keywords.items()]
        for target, atoms in slots:
            if target not in theirs:
                continue
            for atom in atoms:
                label, _, payload = atom.partition(":")
                if label == "param" and payload not in mine:
                    mine.add(payload)
                    changed = True
    return changed


def _update_ret_unordered(
    summary: EffectSummary, ret_unordered: Dict[str, bool]
) -> bool:
    if ret_unordered[summary.qualname]:
        return False
    if _unordered_in(summary.ret_atoms, ret_unordered):
        ret_unordered[summary.qualname] = True
        return True
    return False


def _tier(
    flags: Set[str], mutated: Set[str], ret_unordered: bool
) -> str:
    ambient = EFFECT_AMBIENT in flags
    global_write = EFFECT_GLOBAL_WRITE in flags
    io = EFFECT_IO in flags
    unordered = _UNORDERED_SINK in flags or ret_unordered
    if not (ambient or global_write or io or mutated or unordered):
        return TIER_PURE
    if not (ambient or global_write or mutated or unordered):
        return TIER_POOL_SAFE
    if not (ambient or unordered):
        return TIER_DETERMINISTIC
    return TIER_EFFECTFUL


# ---------------------------------------------------------------------------
# Finding generation
# ---------------------------------------------------------------------------


def _reachable(
    graph: CallGraph, roots: Sequence[str]
) -> Set[str]:
    seen: Set[str] = set()
    work = [r for r in roots if r in graph.edges]
    while work:
        node = work.pop()
        if node in seen:
            continue
        seen.add(node)
        work.extend(
            callee
            for callee in graph.edges.get(node, ())
            if callee not in seen
        )
    return seen


def effect_findings(
    analysis: EffectAnalysis,
    sources: Dict[str, Sequence[str]],
    roots: Sequence[str] = CERTIFIED_ROOTS,
) -> List[Finding]:
    """REP201-REP205 findings from a propagated effect analysis."""
    findings: List[Finding] = []
    seen: Set[Tuple[str, str, int, str]] = set()

    def emit(code: str, relpath: str, line: int, message: str) -> None:
        key = (code, relpath, line, message)
        if key in seen:
            return
        seen.add(key)
        lines = sources.get(relpath, ())
        snippet = lines[line - 1].strip() if 0 < line <= len(lines) else ""
        findings.append(
            Finding(
                code=code,
                message=message,
                path=relpath,
                line=line,
                col=1,
                snippet=snippet,
            )
        )

    functions: Dict[str, EffectSummary] = {}
    modules: Dict[str, str] = {}
    for extract in analysis.extracts:
        functions.update(extract.functions)
        for qualname in extract.functions:
            modules[qualname] = extract.relpath
    sink_params = _serialization_params(functions, modules)

    submit_targets = sorted(
        {
            target
            for summary in functions.values()
            for target, _line, _display in summary.submits
            if target
        }
    )
    guarded = _reachable(analysis.graph, list(roots) + submit_targets)

    for extract in analysis.extracts:
        for qualname, summary in extract.functions.items():
            if qualname.endswith(MODULE_BODY):
                continue
            _shared_state_findings(
                extract, summary, qualname in guarded, emit
            )
            _closure_findings(extract, summary, emit)
            _unordered_findings(
                analysis, extract, summary, sink_params, emit
            )
            _aliasing_findings(extract, summary, emit)
            _submit_findings(analysis, extract, summary, functions, emit)

    findings.sort(key=Finding.sort_key)
    return findings


def _shared_state_findings(
    extract: EffectExtract,
    summary: EffectSummary,
    guarded: bool,
    emit: Callable[[str, str, int, str], None],
) -> None:
    if not guarded:
        return
    for name, line in summary.global_writes:
        emit(
            "REP201",
            extract.relpath,
            line,
            (
                f"write to module-level '{name}' in code reachable "
                "from a certified campaign entry point"
            ),
        )


def _closure_findings(
    extract: EffectExtract,
    summary: EffectSummary,
    emit: Callable[[str, str, int, str], None],
) -> None:
    for display, line, captured in summary.closure_submits:
        names = ", ".join(f"'{name}'" for name in captured)
        emit(
            "REP202",
            extract.relpath,
            line,
            (
                f"closure '{display}' capturing enclosing state "
                f"({names}) crosses an executor boundary"
            ),
        )


def _unordered_findings(
    analysis: EffectAnalysis,
    extract: EffectExtract,
    summary: EffectSummary,
    sink_params: Dict[str, Tuple[str, ...]],
    emit: Callable[[str, str, int, str], None],
) -> None:
    for sink, line, atoms in summary.sink_flows:
        if _unordered_in(atoms, analysis.ret_unordered):
            emit(
                "REP203",
                extract.relpath,
                line,
                (
                    "order-sensitive set iteration reaches durable "
                    f"sink {sink}"
                ),
            )
    for callee_name, line, pos_atoms, kw_atoms in summary.arg_flows:
        if callee_name not in sink_params:
            continue
        slotted = list(pos_atoms) + list(kw_atoms.values())
        if any(
            _unordered_in(atoms, analysis.ret_unordered)
            for atoms in slotted
        ):
            emit(
                "REP203",
                extract.relpath,
                line,
                (
                    "order-sensitive set-derived value handed to "
                    f"serializer {callee_name}"
                ),
            )


def _aliasing_findings(
    extract: EffectExtract,
    summary: EffectSummary,
    emit: Callable[[str, str, int, str], None],
) -> None:
    for param, line in summary.mutable_defaults:
        emit(
            "REP204",
            extract.relpath,
            line,
            (
                f"mutable default for parameter '{param}' is "
                "process-lifetime shared state"
            ),
        )
    mutated_lines = dict(reversed(summary.param_mutations))
    for param in summary.returned_params:
        if param in mutated_lines:
            emit(
                "REP204",
                extract.relpath,
                mutated_lines[param],
                (
                    f"parameter '{param}' is mutated and returned — "
                    "the result aliases the caller's argument"
                ),
            )


def _submit_findings(
    analysis: EffectAnalysis,
    extract: EffectExtract,
    summary: EffectSummary,
    functions: Dict[str, EffectSummary],
    emit: Callable[[str, str, int, str], None],
) -> None:
    for target, line, display in summary.submits:
        if not target or target not in functions:
            label = target or display
            emit(
                "REP205",
                extract.relpath,
                line,
                (
                    f"cannot certify '{label}' submitted to an "
                    "executor: callee is not statically analyzable"
                ),
            )
            continue
        tier = analysis.tier_of(target)
        if TIER_RANK[tier] < TIER_RANK[TIER_POOL_SAFE]:
            emit(
                "REP205",
                extract.relpath,
                line,
                (
                    f"'{target}' submitted to an executor but its "
                    f"certified tier is '{tier}' "
                    f"(effects: {analysis.effect_words(target)})"
                ),
            )

