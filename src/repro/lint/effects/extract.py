"""Per-module effect extraction: serializable local effect summaries.

One parse per module produces, for every function (and the module body
as the synthetic ``<module>``), the *local* effect facts the bottom-up
propagation pass closes over the call graph:

- ``direct`` — effect kinds observed in the body itself (``ambient``,
  ``global-write``, ``param-mutation``, ``io``), with the first line
  and a short human detail for messages.
- ``global_writes`` / ``param_mutations`` — the individual write and
  mutation sites (name, line), for REP201/REP204 anchoring.
- ``returned_params`` / ``mutable_defaults`` — REP204's two local
  shapes: a bare ``return param`` after mutating it, and a mutable
  default argument.
- ``submits`` / ``closure_submits`` — callables handed across an
  executor boundary (REP202/REP205).  Executors are tracked as a value
  mark, so ``with ProcessPoolExecutor() as ex:`` and plain assignment
  both work.
- ``sink_flows`` / ``arg_flows`` / ``ret_atoms`` — order-sensitivity
  taint: ``setlike`` marks a set-typed value, ``unordered`` marks a
  value derived from *iterating* one; ``sorted()`` and friends launder
  both (REP203).
- ``calls`` — resolved call edges; shaped exactly like the flow
  layer's so :func:`repro.lint.flow.callgraph.build_callgraph` works
  unchanged over effect extracts.

The walker is the flow extractor's two-pass flow-insensitive scheme
(atoms reach fixpoint through loops and re-assignments) with the same
soundness caveats: instance-attribute state and dynamic dispatch are
not tracked, and a method mutating ``self`` does not propagate to the
caller's receiver value.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.effects.ruledefs import (
    AMBIENT_ALLOWLIST,
    AMBIENT_CALLS,
    AMBIENT_KIND_BY_CALL,
    EFFECT_AMBIENT,
    EFFECT_GLOBAL_WRITE,
    EFFECT_IO,
    EFFECT_PARAM_MUTATION,
    EXECUTOR_SUBMIT_ATTRS,
    EXECUTOR_TYPES,
    MUTATOR_ATTRS,
    ORDER_SANITIZERS,
    SET_CONSTRUCTORS,
    SET_RETURNING_ATTRS,
    UNSEEDED_RNG_CONSTRUCTORS,
)
from repro.lint.flow.extract import MODULE_BODY
from repro.lint.flow.ruledefs import DURABLE_SINKS
from repro.lint.flow.symbols import ModuleSymbols, dotted, module_name_for

__all__ = [
    "EffectSummary",
    "EffectExtract",
    "extract_effects",
    "ATOM_SETLIKE",
    "ATOM_UNORDERED",
]

#: Value marks carried in atom sets beside ``param:``/``call:`` atoms.
ATOM_SETLIKE = "setlike"  # the value is a set/frozenset
ATOM_UNORDERED = "unordered"  # derived from iterating an unordered value
ATOM_EXECUTOR = "executor"  # the value is a pool/executor instance

_IO_CALLS = frozenset({"open", "os.replace", "os.rename", "os.fsync"})
_IO_ATTR_CALLS = frozenset({"write", "write_text", "write_bytes"})

#: Calls that expose iteration order of their (first) argument.
_ITERATING_CALLS = frozenset(
    {"list", "tuple", "iter", "enumerate", "reversed", "next", "zip"}
)

#: Default-argument expressions that denote fresh mutable state.
_MUTABLE_DEFAULT_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.deque",
        "collections.OrderedDict",
        "collections.Counter",
    }
)


@dataclasses.dataclass
class EffectSummary:
    """Local (callee-independent) effect facts of one function."""

    qualname: str
    lineno: int
    params: Tuple[str, ...]
    is_public: bool
    is_method: bool
    #: direct effect kind -> first line observed
    direct: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: direct effect kind -> short human detail ("time.time", "CACHE")
    detail: Dict[str, str] = dataclasses.field(default_factory=dict)
    #: (module-level name written, line)
    global_writes: List[Tuple[str, int]] = dataclasses.field(
        default_factory=list
    )
    #: (formal parameter mutated, line)
    param_mutations: List[Tuple[str, int]] = dataclasses.field(
        default_factory=list
    )
    #: parameters returned bare (``return param``)
    returned_params: List[str] = dataclasses.field(default_factory=list)
    #: (parameter with a mutable default, line)
    mutable_defaults: List[Tuple[str, int]] = dataclasses.field(
        default_factory=list
    )
    #: (display, line, captured enclosing names) — REP202 sites
    closure_submits: List[Tuple[str, int, Tuple[str, ...]]] = (
        dataclasses.field(default_factory=list)
    )
    #: (resolved qualname or '', line, display) — REP205 sites
    submits: List[Tuple[str, int, str]] = dataclasses.field(
        default_factory=list
    )
    #: durable-sink calls with the atoms of their arguments (REP203)
    sink_flows: List[Tuple[str, int, Tuple[str, ...]]] = dataclasses.field(
        default_factory=list
    )
    ret_atoms: List[str] = dataclasses.field(default_factory=list)
    calls: List[Tuple[str, int, Tuple[str, ...]]] = dataclasses.field(
        default_factory=list
    )
    arg_flows: List[
        Tuple[str, int, Tuple[Tuple[str, ...], ...], Dict[str, Tuple[str, ...]]]
    ] = dataclasses.field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "lineno": self.lineno,
            "params": list(self.params),
            "is_public": self.is_public,
            "is_method": self.is_method,
            "direct": dict(self.direct),
            "detail": dict(self.detail),
            "global_writes": [[n, ln] for n, ln in self.global_writes],
            "param_mutations": [[n, ln] for n, ln in self.param_mutations],
            "returned_params": sorted(self.returned_params),
            "mutable_defaults": [[n, ln] for n, ln in self.mutable_defaults],
            "closure_submits": [
                [d, ln, list(captured)]
                for d, ln, captured in self.closure_submits
            ],
            "submits": [[q, ln, d] for q, ln, d in self.submits],
            "sink_flows": [
                [s, ln, sorted(atoms)] for s, ln, atoms in self.sink_flows
            ],
            "ret_atoms": sorted(self.ret_atoms),
            "calls": [[c, ln, list(caught)] for c, ln, caught in self.calls],
            "arg_flows": [
                [
                    callee,
                    ln,
                    [sorted(a) for a in pos],
                    {k: sorted(v) for k, v in sorted(kw.items())},
                ]
                for callee, ln, pos, kw in self.arg_flows
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EffectSummary":
        return cls(
            qualname=str(data["qualname"]),
            lineno=int(data["lineno"]),
            params=tuple(data["params"]),
            is_public=bool(data["is_public"]),
            is_method=bool(data["is_method"]),
            direct={str(k): int(v) for k, v in data["direct"].items()},
            detail={str(k): str(v) for k, v in data["detail"].items()},
            global_writes=[
                (str(n), int(ln)) for n, ln in data["global_writes"]
            ],
            param_mutations=[
                (str(n), int(ln)) for n, ln in data["param_mutations"]
            ],
            returned_params=[str(n) for n in data["returned_params"]],
            mutable_defaults=[
                (str(n), int(ln)) for n, ln in data["mutable_defaults"]
            ],
            closure_submits=[
                (str(d), int(ln), tuple(str(c) for c in captured))
                for d, ln, captured in data["closure_submits"]
            ],
            submits=[
                (str(q), int(ln), str(d)) for q, ln, d in data["submits"]
            ],
            sink_flows=[
                (str(s), int(ln), tuple(atoms))
                for s, ln, atoms in data["sink_flows"]
            ],
            ret_atoms=list(data["ret_atoms"]),
            calls=[
                (str(c), int(ln), tuple(caught))
                for c, ln, caught in data["calls"]
            ],
            arg_flows=[
                (
                    str(callee),
                    int(ln),
                    tuple(tuple(a) for a in pos),
                    {str(k): tuple(v) for k, v in kw.items()},
                )
                for callee, ln, pos, kw in data["arg_flows"]
            ],
        )


@dataclasses.dataclass
class EffectExtract:
    """Everything effect propagation needs about one module."""

    relpath: str
    module: str
    functions: Dict[str, EffectSummary]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "relpath": self.relpath,
            "module": self.module,
            "functions": {
                name: fn.to_dict()
                for name, fn in sorted(self.functions.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EffectExtract":
        return cls(
            relpath=str(data["relpath"]),
            module=str(data["module"]),
            functions={
                str(name): EffectSummary.from_dict(fn)
                for name, fn in data["functions"].items()
            },
        )


def extract_effects(tree: ast.Module, relpath: str) -> EffectExtract:
    """Extract every function's effect summary from one parsed module."""
    posix = relpath.replace("\\", "/")
    module = module_name_for(posix)
    is_package = posix.endswith("__init__.py")
    symbols = ModuleSymbols.collect(tree, module, is_package=is_package)
    allowlisted = any(posix.endswith(sfx) for sfx in AMBIENT_ALLOWLIST)

    extract = EffectExtract(relpath=posix, module=module, functions={})
    index = _DefIndex(module)
    index.scan(tree)
    module_state = _module_level_names(tree)

    body_walker = _EffectWalker(
        qualname=f"{module}.{MODULE_BODY}" if module else MODULE_BODY,
        lineno=1,
        params=(),
        is_public=False,
        is_method=False,
        symbols=symbols,
        index=index,
        allowlisted=allowlisted,
        module_state=frozenset(),  # body assignments are definitions
        globals_env={},
        cls=None,
    )
    module_stmts = [
        s
        for s in tree.body
        if not isinstance(
            s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
    ]
    summary = body_walker.run(module_stmts)
    extract.functions[summary.qualname] = summary
    globals_env = body_walker.env

    for qualname, node, cls_name in index.definitions:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        walker = _EffectWalker(
            qualname=qualname,
            lineno=node.lineno,
            params=_param_names(node),
            is_public=_is_public(qualname, module),
            is_method=cls_name is not None,
            symbols=symbols,
            index=index,
            allowlisted=allowlisted,
            module_state=module_state,
            globals_env=globals_env,
            cls=cls_name,
        )
        fn = walker.run(node.body)
        fn.mutable_defaults = _mutable_defaults(node, symbols)
        extract.functions[qualname] = fn
    return extract


def _module_level_names(tree: ast.Module) -> frozenset:
    """Names bound by assignment in the module body (shared state)."""
    names: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                names.update(_binding_names(target))
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            names.update(_binding_names(stmt.target))
    return frozenset(names)


def _binding_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_binding_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _binding_names(target.value)
    return []


def _param_names(node: ast.AST) -> Tuple[str, ...]:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if args.vararg:
        names.append(args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return tuple(names)


def _is_public(qualname: str, module: str) -> bool:
    local = qualname[len(module) + 1 :] if module else qualname
    return not any(part.startswith("_") for part in local.split("."))


def _mutable_defaults(
    node: ast.AST, symbols: ModuleSymbols
) -> List[Tuple[str, int]]:
    """(param, line) for every default that denotes fresh mutable state."""
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = node.args
    found: List[Tuple[str, int]] = []
    positional = args.posonlyargs + args.args
    offset = len(positional) - len(args.defaults)
    pairs = [
        (positional[offset + i].arg, default)
        for i, default in enumerate(args.defaults)
    ] + [
        (arg.arg, default)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults)
        if default is not None
    ]
    for param, default in pairs:
        if isinstance(default, (ast.List, ast.Dict, ast.Set)):
            found.append((param, default.lineno))
        elif isinstance(default, ast.Call):
            callee = symbols.resolve(dotted(default.func))
            if callee in _MUTABLE_DEFAULT_CALLS:
                found.append((param, default.lineno))
    return found


class _DefIndex:
    """All function/method definitions of a module, in source order."""

    def __init__(self, module: str) -> None:
        self.module = module
        #: (qualname, def node, owning class name or None)
        self.definitions: List[Tuple[str, ast.AST, Optional[str]]] = []
        self.by_qualname: Dict[str, ast.AST] = {}

    def scan(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            self._scan_node(stmt, prefix=self.module, cls=None)

    def _scan_node(
        self, node: ast.AST, prefix: str, cls: Optional[str]
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{prefix}.{node.name}" if prefix else node.name
            self.definitions.append((qual, node, cls))
            self.by_qualname[qual] = node
            for child in node.body:
                self._scan_node(child, prefix=qual, cls=None)
        elif isinstance(node, ast.ClassDef):
            qual = f"{prefix}.{node.name}" if prefix else node.name
            for child in node.body:
                self._scan_node(child, prefix=qual, cls=node.name)


def _free_names(node: ast.AST) -> Set[str]:
    """Names a function/lambda loads without binding them itself."""
    bound: Set[str] = set()
    loaded: Set[str] = set()
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        args = node.args
        bound.update(a.arg for a in args.posonlyargs + args.args)
        bound.update(a.arg for a in args.kwonlyargs)
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            if isinstance(child.ctx, ast.Load):
                loaded.add(child.id)
            else:
                bound.add(child.id)
        elif isinstance(child, (ast.Global, ast.Nonlocal)):
            bound.update(child.names)
        elif isinstance(child, ast.ExceptHandler) and child.name:
            bound.add(child.name)
    return loaded - bound


class _EffectWalker:
    """Two-pass flow-insensitive effect collection over one body."""

    def __init__(
        self,
        *,
        qualname: str,
        lineno: int,
        params: Tuple[str, ...],
        is_public: bool,
        is_method: bool,
        symbols: ModuleSymbols,
        index: _DefIndex,
        allowlisted: bool,
        module_state: frozenset,
        globals_env: Dict[str, Set[str]],
        cls: Optional[str],
    ) -> None:
        self.summary = EffectSummary(
            qualname=qualname,
            lineno=lineno,
            params=params,
            is_public=is_public,
            is_method=is_method,
        )
        self.symbols = symbols
        self.index = index
        self.allowlisted = allowlisted
        self.module_state = module_state
        self.globals_env = globals_env
        self.cls = cls
        self.env: Dict[str, Set[str]] = {}
        #: names truly *bound* in this scope (plain-Name assignment,
        #: loop/with/comprehension targets) — ``env`` also holds names
        #: that merely received container-mutation taint, which must
        #: not shadow the module-global check.
        self._locals: Set[str] = set()
        self._ret: Set[str] = set()
        self._declared_globals: Set[str] = set()
        self._caught: Tuple[str, ...] = ()
        self._collect = False

    def run(self, body: Sequence[ast.stmt]) -> EffectSummary:
        self._collect = False
        self._walk(body)
        self._collect = True
        self._walk(body)
        self.summary.ret_atoms = sorted(
            a for a in self._ret if a != ATOM_EXECUTOR
        )
        return self.summary

    # ---- effect recording --------------------------------------------

    def _record(self, kind: str, line: int, detail: str) -> None:
        if not self._collect:
            return
        self.summary.direct.setdefault(kind, line)
        self.summary.detail.setdefault(kind, detail)

    def _global_write(self, name: str, line: int) -> None:
        if not self._collect:
            return
        self._record(EFFECT_GLOBAL_WRITE, line, name)
        self.summary.global_writes.append((name, line))

    def _param_mutation(self, name: str, line: int) -> None:
        if not self._collect:
            return
        self._record(EFFECT_PARAM_MUTATION, line, name)
        self.summary.param_mutations.append((name, line))

    def _is_local(self, name: str) -> bool:
        return name in self._locals or name in self.summary.params

    def _classify_write(self, base: Optional[str], line: int) -> None:
        """Mutation through ``base[...]``/``base.attr`` — whose state?"""
        if base is None:
            return
        if base in self.summary.params:
            self._param_mutation(base, line)
        elif base in self._declared_globals or (
            base not in self._locals and base in self.module_state
        ):
            self._global_write(base, line)

    # ---- statements --------------------------------------------------

    def _walk(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are indexed and summarized separately
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, ast.Global):
            self._declared_globals.update(stmt.names)
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            atoms = self._atoms(value) if value is not None else set()
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    if target.id in self._declared_globals:
                        self._global_write(target.id, stmt.lineno)
                    elif isinstance(stmt, ast.AugAssign) and (
                        target.id in self.summary.params
                    ):
                        # ``param += [...]`` mutates list-like arguments
                        self._param_mutation(target.id, stmt.lineno)
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    self._classify_write(
                        _base_name(target), stmt.lineno
                    )
                self._locals.update(_binding_names(target))
                for name in _target_names(target):
                    self.env.setdefault(name, set()).update(atoms)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    self._classify_write(_base_name(target), stmt.lineno)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._ret |= self._atoms(stmt.value)
                if self._collect and isinstance(stmt.value, ast.Name):
                    # self/cls are exempt: ``return self`` after mutating
                    # it is the fluent-builder idiom, not an alias leak.
                    if (
                        stmt.value.id in self.summary.params
                        and stmt.value.id not in ("self", "cls")
                        and stmt.value.id not in self.summary.returned_params
                    ):
                        self.summary.returned_params.append(stmt.value.id)
            return
        if isinstance(stmt, ast.Try):
            caught = self._caught
            names = _handler_names(stmt.handlers)
            self._caught = caught + names
            self._walk(stmt.body)
            self._caught = caught
            for handler in stmt.handlers:
                self._walk(handler.body)
            self._walk(stmt.orelse)
            self._walk(stmt.finalbody)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            atoms = self._iterated(self._atoms(stmt.iter), stmt.iter.lineno)
            self._locals.update(_binding_names(stmt.target))
            for name in _target_names(stmt.target):
                self.env.setdefault(name, set()).update(atoms)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                atoms = self._atoms(item.context_expr)
                if item.optional_vars is not None:
                    self._locals.update(
                        _binding_names(item.optional_vars)
                    )
                    for name in _target_names(item.optional_vars):
                        self.env.setdefault(name, set()).update(atoms)
            self._walk(stmt.body)
            return
        # Generic fallback (If, While, Match, Expr, Assert, Raise, ...):
        # evaluate expression children, recurse into statement lists.
        for field in ast.iter_fields(stmt):
            _, value = field
            if isinstance(value, ast.expr):
                self._atoms(value)
            elif isinstance(value, list):
                for expr in (v for v in value if isinstance(v, ast.expr)):
                    self._atoms(expr)
                inner = [v for v in value if isinstance(v, ast.stmt)]
                if inner:
                    self._walk(inner)
                for v in value:
                    if hasattr(ast, "match_case") and isinstance(
                        v, ast.match_case
                    ):
                        self._walk(v.body)

    # ---- expressions -------------------------------------------------

    def _atoms(self, node: Optional[ast.AST]) -> Set[str]:
        if node is None or isinstance(node, ast.Constant):
            return set()
        if isinstance(node, ast.Call):
            return self._call_atoms(node)
        if isinstance(node, ast.Name):
            return self._name_atoms(node)
        if isinstance(node, ast.Attribute):
            resolved = self.symbols.resolve(dotted(node))
            if resolved == "os.environ" or resolved.startswith(
                "os.environ."
            ):
                self._ambient("env", node.lineno, "os.environ")
            return self._atoms(node.value)
        if isinstance(node, (ast.Set, ast.SetComp)):
            if isinstance(node, ast.SetComp):
                self._comprehension(node.generators)
            return {ATOM_SETLIKE}
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            return self._comprehension_atoms(node)
        if isinstance(node, ast.Lambda):
            return self._atoms(node.body)
        result: Set[str] = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.expr, ast.comprehension, ast.keyword)):
                result |= self._atoms(child)
        return result

    def _comprehension(self, generators: Sequence[ast.comprehension]) -> Set[str]:
        """Bind comprehension targets; return the union of iter marks."""
        marks: Set[str] = set()
        for gen in generators:
            it = self._atoms(gen.iter)
            bound = self._iterated(it, gen.iter.lineno)
            self._locals.update(_binding_names(gen.target))
            for name in _target_names(gen.target):
                self.env.setdefault(name, set()).update(bound)
            for cond in gen.ifs:
                self._atoms(cond)
            marks |= it
        return marks

    def _comprehension_atoms(self, node: ast.AST) -> Set[str]:
        assert isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp))
        iter_marks = self._comprehension(node.generators)
        if isinstance(node, ast.DictComp):
            body = self._atoms(node.key) | self._atoms(node.value)
        else:
            body = self._atoms(node.elt)
        result = body | (iter_marks - {ATOM_SETLIKE})
        if ATOM_SETLIKE in iter_marks:
            result.add(ATOM_UNORDERED)
        return result

    def _iterated(self, atoms: Set[str], lineno: int) -> Set[str]:
        """Atoms of an element drawn from ``atoms``-marked iterable."""
        if ATOM_SETLIKE in atoms:
            return (atoms - {ATOM_SETLIKE}) | {ATOM_UNORDERED}
        return set(atoms)

    def _name_atoms(self, node: ast.Name) -> Set[str]:
        result: Set[str] = set(self.env.get(node.id, ()))
        if node.id in self.summary.params:
            result.add(f"param:{node.id}")
        elif node.id not in self.env and node.id in self.globals_env:
            result |= self.globals_env[node.id]
        return result

    def _ambient(self, kind: str, lineno: int, detail: str) -> None:
        if self.allowlisted:
            return
        self._record(EFFECT_AMBIENT, lineno, f"{detail} ({kind})")

    def _call_atoms(self, node: ast.Call) -> Set[str]:
        pos_atoms: List[Set[str]] = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                pos_atoms.append(self._atoms(arg.value))
            else:
                pos_atoms.append(self._atoms(arg))
        kw_atoms: Dict[str, Set[str]] = {}
        star_kw: Set[str] = set()
        for kw in node.keywords:
            if kw.arg is None:
                star_kw |= self._atoms(kw.value)
            else:
                kw_atoms[kw.arg] = self._atoms(kw.value)
        arg_union: Set[str] = set().union(*pos_atoms) if pos_atoms else set()
        for atoms in kw_atoms.values():
            arg_union |= atoms
        arg_union |= star_kw

        callee = self._resolve_callee(node.func)
        recv_atoms: Set[str] = set()
        if isinstance(node.func, ast.Attribute):
            recv_atoms = self._atoms(node.func.value)
        elif not isinstance(node.func, ast.Name):
            recv_atoms = self._atoms(node.func)

        # Executor boundary: ``pool.submit(fn, ...)`` / ``pool.map(fn, xs)``
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in EXECUTOR_SUBMIT_ATTRS
            and ATOM_EXECUTOR in recv_atoms
            and node.args
        ):
            self._submitted(node.args[0], node.lineno)

        # Receiver mutation: ``x.append(v)`` on a param or module global.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATOR_ATTRS
        ):
            self._classify_write(_base_name(node.func.value), node.lineno)

        # Ambient nondeterminism reads.
        if callee in AMBIENT_CALLS:
            self._ambient(
                AMBIENT_KIND_BY_CALL[callee], node.lineno, callee
            )
        elif callee == "os.getenv" or callee.startswith("os.environ."):
            self._ambient("env", node.lineno, callee)
        elif callee in UNSEEDED_RNG_CONSTRUCTORS:
            if not node.args and not node.keywords:
                self._ambient("rng", node.lineno, f"{callee}()")

        # I/O and durable sinks.
        if callee in _IO_CALLS or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _IO_ATTR_CALLS
        ):
            self._record(EFFECT_IO, node.lineno, callee or node.func.attr)
        if callee in DURABLE_SINKS:
            self._record(EFFECT_IO, node.lineno, callee)
            if self._collect:
                self.summary.sink_flows.append(
                    (
                        callee,
                        node.lineno,
                        tuple(sorted(arg_union - {ATOM_EXECUTOR})),
                    )
                )
            return arg_union | recv_atoms

        # Value-mark algebra.
        if callee in EXECUTOR_TYPES:
            return {ATOM_EXECUTOR}
        if callee in SET_CONSTRUCTORS:
            return (arg_union - {ATOM_UNORDERED, ATOM_SETLIKE}) | {
                ATOM_SETLIKE
            }
        if callee in ORDER_SANITIZERS:
            return arg_union - {ATOM_UNORDERED, ATOM_SETLIKE}
        if callee in _ITERATING_CALLS:
            if ATOM_SETLIKE in arg_union:
                return (arg_union - {ATOM_SETLIKE}) | {ATOM_UNORDERED}
            return arg_union | recv_atoms
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr == "join" and ATOM_SETLIKE in arg_union:
                return (
                    (arg_union - {ATOM_SETLIKE})
                    | recv_atoms
                    | {ATOM_UNORDERED}
                )
            if ATOM_SETLIKE in recv_atoms:
                if attr in SET_RETURNING_ATTRS:
                    return arg_union | {ATOM_SETLIKE}
                if attr == "pop":
                    return {ATOM_UNORDERED}

        result = arg_union | recv_atoms
        if callee:
            result.add(f"call:{callee}")
            if self._collect:
                self.summary.calls.append((callee, node.lineno, self._caught))
                if arg_union or any(pos_atoms) or any(kw_atoms.values()):
                    self.summary.arg_flows.append(
                        (
                            callee,
                            node.lineno,
                            tuple(tuple(sorted(a)) for a in pos_atoms),
                            {
                                k: tuple(sorted(v))
                                for k, v in kw_atoms.items()
                            },
                        )
                    )
        return result

    # ---- executor submissions ----------------------------------------

    def _submitted(self, arg: ast.expr, line: int) -> None:
        """Classify the callable handed across an executor boundary."""
        if not self._collect:
            return
        if isinstance(arg, ast.Lambda):
            captured = sorted(
                name
                for name in _free_names(arg)
                if self._is_local(name)
            )
            if captured:
                self.summary.closure_submits.append(
                    ("lambda", line, tuple(captured))
                )
            else:
                self.summary.submits.append(("", line, "lambda"))
            return
        if isinstance(arg, ast.Call):
            inner = self.symbols.resolve(dotted(arg.func))
            if inner == "functools.partial" and arg.args:
                self._submitted(arg.args[0], line)
                return
            self.summary.submits.append(("", line, dotted(arg.func) or "<call>"))
            return
        if isinstance(arg, ast.Name):
            nested = f"{self.summary.qualname}.{arg.id}"
            nested_node = self.index.by_qualname.get(nested)
            if nested_node is not None:
                captured = sorted(
                    name
                    for name in _free_names(nested_node)
                    if self._is_local(name)
                )
                if captured:
                    self.summary.closure_submits.append(
                        (arg.id, line, tuple(captured))
                    )
                else:
                    self.summary.submits.append((nested, line, arg.id))
                return
        resolved = self._resolve_callee(arg)
        self.summary.submits.append(
            (resolved, line, dotted(arg) or "<dynamic>")
        )

    # ---- name resolution ---------------------------------------------

    def _resolve_callee(self, func: ast.expr) -> str:
        name = dotted(func)
        if not name:
            return ""
        head, _, rest = name.partition(".")
        if head in ("self", "cls") and self.cls is not None and rest:
            candidate = (
                f"{self.symbols.module}.{self.cls}.{rest}"
                if self.symbols.module
                else f"{self.cls}.{rest}"
            )
            if candidate in self.index.by_qualname:
                return candidate
            return ""
        return self.symbols.resolve(name)


def _base_name(expr: ast.expr) -> Optional[str]:
    """The innermost Name of a Subscript/Attribute chain, if any."""
    node = expr
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _handler_names(
    handlers: Sequence[ast.ExceptHandler],
) -> Tuple[str, ...]:
    names: List[str] = []
    for handler in handlers:
        if handler.type is None:
            names.append("*")
        elif isinstance(handler.type, ast.Tuple):
            for element in handler.type.elts:
                name = dotted(element)
                if name:
                    names.append(name.rsplit(".", 1)[-1])
        else:
            name = dotted(handler.type)
            if name:
                names.append(name.rsplit(".", 1)[-1])
    return tuple(names)


def _target_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    if isinstance(target, (ast.Subscript, ast.Attribute)):
        return _target_names(target.value)
    return []
