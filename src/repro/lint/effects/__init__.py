"""Interprocedural effect-and-determinism analysis (REP201-REP205).

The third lint layer: per-function effect summaries, bottom-up fixpoint
propagation over the flow layer's call graph, certificate tiers
(``pure`` / ``process-pool-safe`` / ``deterministic``), and the
committed ``.repro-effects.json`` determinism certificate that gates
``repro campaign --workers N``.
"""

from repro.lint.effects.api import (
    DEFAULT_EFFECT_CACHE_NAME,
    EffectResult,
    analyze_effects,
)
from repro.lint.effects.certificate import (
    CERTIFICATE_NAME,
    build_certificate,
    certificate_demotions,
    load_certificate,
    write_certificate,
)
from repro.lint.effects.propagate import (
    EffectAnalysis,
    effect_findings,
    propagate_effects,
)
from repro.lint.effects.ruledefs import (
    CERTIFIED_ROOTS,
    EFFECT_CODES,
    EFFECT_RULES,
    TIER_DETERMINISTIC,
    TIER_EFFECTFUL,
    TIER_POOL_SAFE,
    TIER_PURE,
    TIER_RANK,
)

__all__ = [
    "DEFAULT_EFFECT_CACHE_NAME",
    "EffectResult",
    "analyze_effects",
    "CERTIFICATE_NAME",
    "build_certificate",
    "certificate_demotions",
    "load_certificate",
    "write_certificate",
    "EffectAnalysis",
    "effect_findings",
    "propagate_effects",
    "CERTIFIED_ROOTS",
    "EFFECT_CODES",
    "EFFECT_RULES",
    "TIER_DETERMINISTIC",
    "TIER_EFFECTFUL",
    "TIER_POOL_SAFE",
    "TIER_PURE",
    "TIER_RANK",
]
