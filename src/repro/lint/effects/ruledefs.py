"""The effect rule family REP201-REP205: parallel-safety contracts.

The third lint layer.  REP00x checks one AST node at a time; the flow
layer (REP10x) follows *values* from nondeterministic sources to
durable sinks.  This family follows *effects*: writes to shared state,
mutation of arguments, reads of ambient process state, I/O, and
order-sensitive iteration over unordered collections.  Its propagated
result is the determinism certificate (``.repro-effects.json``) that
gates the process-pool campaign executor — the same purity discipline
history-based predictors assume when replaying recorded workloads.

Like the flow rules these are whole-program and do not fit the
node-dispatch :class:`repro.lint.registry.Rule` interface; they share
the stable-code contract (reporters, baselines, and ``--select`` key on
the codes) and surface through the same
:class:`~repro.lint.findings.Finding` type.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Tuple

from repro.lint.flow.ruledefs import (
    CLOCK_SOURCES,
    RNG_GLOBAL_SOURCES,
    RNG_SEEDED_CONSTRUCTORS,
)

__all__ = [
    "EffectRule",
    "EFFECT_RULES",
    "EFFECT_CODES",
    "EFFECT_AMBIENT",
    "EFFECT_GLOBAL_WRITE",
    "EFFECT_PARAM_MUTATION",
    "EFFECT_IO",
    "EFFECT_UNORDERED",
    "TIER_PURE",
    "TIER_POOL_SAFE",
    "TIER_DETERMINISTIC",
    "TIER_EFFECTFUL",
    "TIER_RANK",
    "AMBIENT_CALLS",
    "AMBIENT_KIND_BY_CALL",
    "AMBIENT_ALLOWLIST",
    "EXECUTOR_TYPES",
    "EXECUTOR_SUBMIT_ATTRS",
    "MUTATOR_ATTRS",
    "ORDER_SANITIZERS",
    "SET_CONSTRUCTORS",
    "SET_RETURNING_ATTRS",
    "CERTIFIED_ROOTS",
]


@dataclasses.dataclass(frozen=True)
class EffectRule:
    """Identity card of one effect rule (for tables and docs)."""

    code: str
    name: str
    summary: str
    rationale: str


EFFECT_RULES: Tuple[EffectRule, ...] = (
    EffectRule(
        code="REP201",
        name="shared-state-write",
        summary=(
            "no write to module-level mutable state from code reachable "
            "from a certified entry point or a pool-submitted function"
        ),
        rationale=(
            "A module-global counter or cache written under a campaign "
            "driver is invisible shared state: serial runs thread it "
            "through every entry, worker processes each get a private "
            "copy, and the two executions silently diverge.  The effect "
            "summary propagates the write up the call graph to every "
            "certified root it can reach."
        ),
    ),
    EffectRule(
        code="REP202",
        name="closure-over-pool-boundary",
        summary=(
            "no closure or lambda capturing enclosing function state may "
            "cross an executor submit/map boundary"
        ),
        rationale=(
            "A closure submitted to a process pool captures variables by "
            "reference in the parent but by pickled copy in the worker; "
            "a captured list that the parent keeps appending to is a "
            "data race in thread pools and a silent stale snapshot in "
            "process pools.  Neither the AST rules nor value-taint "
            "tracking see it: the capture is an effect, not a value "
            "flow."
        ),
    ),
    EffectRule(
        code="REP203",
        name="unordered-iteration-to-sink",
        summary=(
            "no value derived from iterating an unordered collection "
            "(set/frozenset) may reach a serialized artifact"
        ),
        rationale=(
            "Set iteration order depends on insertion history and hash "
            "seeding; REP007 bans it inside serialization modules, but "
            "a list built from a set three calls away and handed to a "
            "report writer produces byte-different artifacts between "
            "runs and between processes.  The unordered mark propagates "
            "like taint until ``sorted()`` launders it."
        ),
    ),
    EffectRule(
        code="REP204",
        name="mutable-default-or-aliased-return",
        summary=(
            "no mutable default argument, and no function may both "
            "mutate a parameter and return it"
        ),
        rationale=(
            "A mutable default is process-lifetime shared state that "
            "accumulates across calls — byte-identical replay breaks "
            "the second time the function runs.  Mutate-and-return "
            "aliasing hands the caller a value that is secretly the "
            "caller's own argument, so 'pure consumer' call sites "
            "mutate upstream state."
        ),
    ),
    EffectRule(
        code="REP205",
        name="uncertified-pool-submit",
        summary=(
            "only functions certified process-pool-safe may be "
            "submitted to an executor"
        ),
        rationale=(
            "Parallel speedup is only trustworthy if every submitted "
            "function provably has no effect that distinguishes worker "
            "processes from in-process calls: no ambient "
            "nondeterminism, no shared-state writes, no argument "
            "mutation, no order-sensitive output.  The certificate is "
            "that proof; submitting anything else is parallelism by "
            "hope."
        ),
    ),
)

EFFECT_CODES: FrozenSet[str] = frozenset(rule.code for rule in EFFECT_RULES)

# ---------------------------------------------------------------------------
# Effect kinds (the summary lattice's flag set)
# ---------------------------------------------------------------------------

EFFECT_AMBIENT = "ambient"  # reads process-ambient nondeterminism
EFFECT_GLOBAL_WRITE = "global-write"  # writes module-level state
EFFECT_PARAM_MUTATION = "param-mutation"  # mutates a formal parameter
EFFECT_IO = "io"  # performs file/process I/O
EFFECT_UNORDERED = "unordered"  # unordered iteration feeds output

# ---------------------------------------------------------------------------
# Certificate tiers, best to worst.  A function's tier is the highest
# one whose flag constraints its *transitive* effect set satisfies:
#
#   pure               — no effects at all
#   process-pool-safe  — no ambient reads, no global writes, no
#                        mutation of its own formals, no unordered
#                        output (I/O allowed: a worker may write its
#                        own artifacts deterministically)
#   deterministic      — no ambient reads, no unordered output
#   effectful          — everything else (uncertified)
# ---------------------------------------------------------------------------

TIER_PURE = "pure"
TIER_POOL_SAFE = "process-pool-safe"
TIER_DETERMINISTIC = "deterministic"
TIER_EFFECTFUL = "effectful"

TIER_RANK: Dict[str, int] = {
    TIER_PURE: 3,
    TIER_POOL_SAFE: 2,
    TIER_DETERMINISTIC: 1,
    TIER_EFFECTFUL: 0,
}

# ---------------------------------------------------------------------------
# Ambient-nondeterminism sources (canonical qualified names).  The
# clock/env/rng sets are the flow layer's; the process-identity set is
# new — os.getpid() is harmless in serial runs and a result-splitting
# distinguisher under a process pool.
# ---------------------------------------------------------------------------

_PROCESS_IDENTITY_CALLS: FrozenSet[str] = frozenset(
    {
        "os.getpid",
        "os.getppid",
        "os.getcwd",
        "os.uname",
        "threading.get_ident",
        "threading.get_native_id",
        "socket.gethostname",
        "platform.node",
        "id",
    }
)

#: call qualname -> ambient kind label used in messages/certificates.
AMBIENT_KIND_BY_CALL: Dict[str, str] = (
    {name: "clock" for name in CLOCK_SOURCES}
    | {name: "rng" for name in RNG_GLOBAL_SOURCES}
    | {name: "process-identity" for name in _PROCESS_IDENTITY_CALLS}
    | {"os.getenv": "env"}
)

AMBIENT_CALLS: FrozenSet[str] = frozenset(AMBIENT_KIND_BY_CALL)

#: RNG constructors are ambient only when called unseeded (no args) —
#: re-exported so the extractor shares one definition with the flow
#: layer.
UNSEEDED_RNG_CONSTRUCTORS = RNG_SEEDED_CONSTRUCTORS

#: Module-path suffixes whose *direct* ambient reads are sanctioned
#: (reviewed operator-facing wall durations; never result-bearing).
#: Mirrors the flow layer's SOURCE_ALLOWLIST plus the parallel campaign
#: executor itself, whose elapsed telemetry is wall-clock by design.
AMBIENT_ALLOWLIST: Tuple[str, ...] = (
    "campaign/watchdog.py",
    "campaign/runner.py",
    "campaign/parallel.py",
    "workloads/suite.py",
    "service/clock.py",
)

# ---------------------------------------------------------------------------
# Executor boundaries
# ---------------------------------------------------------------------------

#: Constructors whose instances are executors; a ``.submit``/``.map``
#: attribute call on a value built from one of these is a pool boundary.
EXECUTOR_TYPES: FrozenSet[str] = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.Executor",
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
    }
)

#: Attribute names that hand a callable to an executor.  The first
#: argument of ``submit``/``apply_async`` and of the map family is the
#: submitted callable.
EXECUTOR_SUBMIT_ATTRS: FrozenSet[str] = frozenset(
    {"submit", "map", "imap", "imap_unordered", "apply_async", "starmap"}
)

# ---------------------------------------------------------------------------
# Mutation and ordering vocabularies
# ---------------------------------------------------------------------------

#: Method names that mutate their receiver in place.
MUTATOR_ATTRS: FrozenSet[str] = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "sort",
        "reverse", "add", "discard", "update", "setdefault", "popitem",
        "appendleft", "extendleft", "popleft",
        "intersection_update", "difference_update",
        "symmetric_difference_update",
    }
)

#: Calls whose result is order-insensitive even over an unordered
#: input, so they launder the unordered mark.
ORDER_SANITIZERS: FrozenSet[str] = frozenset(
    {"sorted", "len", "min", "max", "any", "all", "frozenset", "set"}
)

#: Expressions that build unordered collections.
SET_CONSTRUCTORS: FrozenSet[str] = frozenset({"set", "frozenset"})

#: Set methods returning sets — set-ness survives through them.
SET_RETURNING_ATTRS: FrozenSet[str] = frozenset(
    {
        "union", "intersection", "difference", "symmetric_difference",
        "copy",
    }
)

# ---------------------------------------------------------------------------
# Certified roots: the campaign entry points the process-pool executor
# submits (directly or through the figure registry's lambdas, which
# static resolution cannot see through — hence the explicit list).
# REP201 anchors shared-state findings on reachability from these, and
# the certificate-coverage test walks the call graph from them.
# ---------------------------------------------------------------------------

CERTIFIED_ROOTS: Tuple[str, ...] = (
    "repro.workloads.experiments.run_experiment",
    "repro.workloads.experiments.run_model_comparison",
    "repro.workloads.experiments.run_dataset_scaling",
    "repro.workloads.experiments.run_bandwidth_scaling",
    "repro.workloads.experiments.run_cross_cluster",
    "repro.workloads.experiments.run_fault_scenario",
)
