"""``repro lint --changed``: scope a run to git-modified Python files.

The pre-commit hook and quick local loops only care about files touched
since a base ref (default ``HEAD``): working-tree modifications, staged
changes, and untracked files.  Renames/copies report the new path; file
deletions are excluded (nothing to lint).

Everything funnels through one ``git`` invocation helper that turns any
failure — not a repository, unknown ref, git missing — into a
:class:`~repro.errors.UsageError`, which the CLI surfaces as exit 2
with the message instead of a traceback.
"""

from __future__ import annotations

import pathlib
import subprocess
from typing import List, Optional, Sequence

from repro.errors import UsageError

__all__ = ["changed_python_files"]


def _git(args: Sequence[str], cwd: pathlib.Path) -> str:
    try:
        proc = subprocess.run(
            ["git", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=False,
        )
    except OSError as exc:
        raise UsageError(f"--changed requires git: {exc}") from exc
    if proc.returncode != 0:
        detail = proc.stderr.strip() or proc.stdout.strip()
        raise UsageError(
            f"--changed: git {' '.join(args[:2])} failed: {detail}"
        )
    return proc.stdout


def changed_python_files(
    base: str = "HEAD",
    *,
    cwd: Optional[pathlib.Path] = None,
    scope: Sequence[pathlib.Path] = (),
) -> List[pathlib.Path]:
    """Python files changed since ``base``, newest git state wins.

    ``scope`` (when non-empty) keeps only files under one of the given
    files/directories — so ``repro lint src/repro --changed`` ignores a
    modified test file.  Paths are returned absolute, sorted, existing
    files only.
    """
    where = cwd or pathlib.Path.cwd()
    toplevel = pathlib.Path(
        _git(["rev-parse", "--show-toplevel"], where).strip()
    )
    names = set(
        _git(
            [
                "diff",
                "--name-only",
                "--diff-filter=ACMR",
                base,
                "--",
                "*.py",
            ],
            toplevel,
        ).splitlines()
    )
    names.update(
        _git(
            ["ls-files", "--others", "--exclude-standard", "--", "*.py"],
            toplevel,
        ).splitlines()
    )

    scope_resolved = [pathlib.Path(s).resolve() for s in scope]
    out: List[pathlib.Path] = []
    for name in sorted(names):
        path = (toplevel / name).resolve()
        if not path.is_file():
            continue
        if scope_resolved and not any(
            path == s or s in path.parents for s in scope_resolved
        ):
            continue
        out.append(path)
    return out
