"""Per-module context handed to every rule during the single AST walk."""

from __future__ import annotations

import ast
import dataclasses
from typing import Optional, Tuple

__all__ = ["ModuleContext"]


@dataclasses.dataclass(frozen=True)
class ModuleContext:
    """One parsed module: path identity plus source-access helpers.

    ``relpath`` is POSIX-style and relative to the lint root; it is the
    path that appears in findings, baselines, and rule allowlists, so it
    is stable across machines and checkouts.
    """

    relpath: str
    source: str
    tree: ast.Module
    lines: Tuple[str, ...]

    @classmethod
    def parse(cls, source: str, relpath: str) -> "ModuleContext":
        tree = ast.parse(source, filename=relpath)
        return cls(
            relpath=relpath.replace("\\", "/"),
            source=source,
            tree=tree,
            lines=tuple(source.splitlines()),
        )

    def line(self, lineno: int) -> str:
        """The 1-based source line, or '' when out of range."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def segment(self, node: ast.AST) -> Optional[str]:
        """The exact source text of ``node`` (None for synthetic nodes)."""
        return ast.get_source_segment(self.source, node)
