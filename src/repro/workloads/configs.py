"""The paper's (data nodes, compute nodes) configuration grid.

Section 5: "the number of data nodes is always kept smaller [or equal]
th[a]n the number of compute nodes ... Number of data nodes is varied
between 1 and 8, and the number of compute nodes is varied between 1 and
16."  The resulting 14 configurations (1-1 ... 8-16) are the x-axis of
Figures 2-13.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.middleware.scheduler import RunConfig
from repro.simgrid.errors import ConfigurationError
from repro.simgrid.hardware import ClusterSpec
from repro.workloads.clusters import DEFAULT_BANDWIDTH, pentium_myrinet_cluster

__all__ = ["PAPER_CONFIG_GRID", "config_grid", "make_run_config"]


def config_grid(
    data_node_counts: Sequence[int] = (1, 2, 4, 8),
    max_compute_nodes: int = 16,
) -> List[Tuple[int, int]]:
    """All (n, c) pairs with c a power-of-two multiple, n <= c <= max."""
    grid: List[Tuple[int, int]] = []
    for n in data_node_counts:
        if n > max_compute_nodes:
            raise ConfigurationError(
                f"data node count {n} exceeds max compute nodes "
                f"{max_compute_nodes}"
            )
        c = n
        while c <= max_compute_nodes:
            grid.append((n, c))
            c *= 2
    return grid


#: The 14 configurations of the paper's figures.
PAPER_CONFIG_GRID: List[Tuple[int, int]] = config_grid()


def make_run_config(
    data_nodes: int,
    compute_nodes: int,
    storage_cluster: ClusterSpec | None = None,
    compute_cluster: ClusterSpec | None = None,
    bandwidth: float = DEFAULT_BANDWIDTH,
) -> RunConfig:
    """A :class:`~repro.middleware.scheduler.RunConfig` with paper defaults.

    Both clusters default to the Pentium/Myrinet testbed, matching the
    paper's within-cluster experiments.
    """
    storage = storage_cluster or pentium_myrinet_cluster()
    compute = compute_cluster or storage
    return RunConfig(
        storage_cluster=storage,
        compute_cluster=compute,
        data_nodes=data_nodes,
        compute_nodes=compute_nodes,
        bandwidth=bandwidth,
    )
