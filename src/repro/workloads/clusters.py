"""The paper's two testbed clusters as simulator hardware specs.

Section 5 of the paper: "The cluster used for these experiments comprised
700 MHz Pentium machines connected through Myrinet LANai 7.0. ...
Predictions were then made for a cluster of dual processor 2.4GHz Opteron
250 machines connected through Mellanox Infiniband (1Gb)."

All values are in *model units* — a uniformly scaled-down replica of the
2007-era hardware, calibrated so the component shares of execution time
(retrieval / communication / processing) are plausible for the paper's
workloads.  The Opteron cluster's per-category CPU rates are deliberately
*not* a uniform multiple of the Pentium's: branch-heavy code speeds up more
than memory-bound code, which is what makes the per-application compute
scaling factors differ (the paper measured 0.233 for kNN up to 0.370 for
vortex detection, Section 5.4).
"""

from __future__ import annotations

from repro.simgrid.hardware import (
    ClusterSpec,
    CPUSpec,
    DiskSpec,
    NICSpec,
    NodeSpec,
    OpCategory,
)

__all__ = [
    "pentium_myrinet_cluster",
    "opteron_infiniband_cluster",
    "DEFAULT_BANDWIDTH",
    "LOW_BANDWIDTH",
    "HALF_LOW_BANDWIDTH",
]

#: Default repository-to-compute bandwidth per data node (model bytes/s).
DEFAULT_BANDWIDTH = 2.0e6

#: The paper's synthetic-bandwidth experiments profile at "500 Kbps" and
#: predict at "250 Kbps"; these are the model-unit equivalents.
LOW_BANDWIDTH = 1.0e6
HALF_LOW_BANDWIDTH = 0.5e6


def pentium_myrinet_cluster(num_nodes: int = 32) -> ClusterSpec:
    """The base-profile cluster: 700 MHz Pentium machines on Myrinet."""
    cpu = CPUSpec(
        name="pentium-700",
        rates={
            OpCategory.FLOP: 1.5e8,
            OpCategory.MEM: 2.5e8,
            OpCategory.BRANCH: 1.0e8,
        },
    )
    node = NodeSpec(
        cpu=cpu,
        disk=DiskSpec(seek_s=3.0e-4, stream_bw=2.5e6),
        nic=NICSpec(latency_s=1.0e-4, bw=1.0e7),
    )
    return ClusterSpec(
        name="pentium-myrinet",
        node=node,
        num_nodes=num_nodes,
        # 8 concurrent data nodes slightly exceed the backplane
        # (2.425e6 < 2.5e6 per-node), reproducing the mildly sub-linear
        # retrieval scaling the paper observes beyond 4 data nodes.
        repository_backplane_bw=1.94e7,
        node_startup_s=3.0e-4,
        compute_pass_startup_s=2.0e-4,
        chunk_dispatch_overhead_s=4.0e-5,
        chunk_receive_overhead_s=6.0e-5,
        intra_latency_s=2.5e-5,
        intra_bw=5.0e7,
        gather_deserialize_s=2.0e-5,
        cache_disk=DiskSpec(seek_s=1.0e-4, stream_bw=4.0e7),
    )


def opteron_infiniband_cluster(num_nodes: int = 32) -> ClusterSpec:
    """The cross-cluster prediction target: 2.4 GHz Opterons on InfiniBand.

    Per-category speedups over the Pentium cluster: FLOP x2.86, MEM x2.22,
    BRANCH x5.0 — so FLOP-heavy applications (vortex, EM) retain a larger
    compute-time fraction (higher scaling factor) than branch-heavy ones
    (kNN, defect), reproducing the Section 5.4 spread.
    """
    cpu = CPUSpec(
        name="opteron-250",
        rates={
            OpCategory.FLOP: 4.29e8,
            OpCategory.MEM: 5.56e8,
            OpCategory.BRANCH: 5.0e8,
        },
    )
    node = NodeSpec(
        cpu=cpu,
        disk=DiskSpec(seek_s=1.5e-4, stream_bw=5.0e6),
        nic=NICSpec(latency_s=2.0e-5, bw=1.0e8),
    )
    return ClusterSpec(
        name="opteron-infiniband",
        node=node,
        num_nodes=num_nodes,
        repository_backplane_bw=3.8e7,
        node_startup_s=1.5e-4,
        compute_pass_startup_s=1.0e-4,
        chunk_dispatch_overhead_s=2.0e-5,
        chunk_receive_overhead_s=3.0e-5,
        intra_latency_s=1.0e-5,
        intra_bw=2.5e8,
        gather_deserialize_s=8.0e-6,
        cache_disk=DiskSpec(seek_s=5.0e-5, stream_bw=8.0e7),
        # "dual processor 2.4GHz Opteron 250 machines" (Section 5): two
        # processes per node with mild memory-bus contention.
        smp_width=2,
        smp_memory_contention=0.08,
    )
