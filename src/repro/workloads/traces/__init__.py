"""Trace-realistic workloads: seeded generators, GWF traces, artifacts.

The trace layer generalizes the Poisson job streams of
:mod:`repro.workloads.streams` to the shapes real grid traces exhibit
(see DESIGN.md §16):

- :mod:`~repro.workloads.traces.distributions` — the parametric family
  (exponential, Weibull, lognormal, gamma, Pareto, uniform, constant)
  every arrival process draws from;
- :mod:`~repro.workloads.traces.spec` — per-VO submission mixes
  (:class:`VoSpec`) under day/week modulation (:class:`DiurnalSpec`),
  composed into a seeded :class:`TraceSpec`;
- :mod:`~repro.workloads.traces.generate` — deterministic expansion
  into broker jobs (child seeds per VO, largest-remainder counts,
  merged arrival order);
- :mod:`~repro.workloads.traces.artifact` — the durable, fingerprinted
  :class:`TraceWorkload` JSON artifact;
- :mod:`~repro.workloads.traces.gwf` — the Grid Workload Archive
  ``.gwf`` parser/serializer mapped onto the repro vocabulary;
- :mod:`~repro.workloads.traces.presets` — named GWA-shaped recipes
  (``poisson``, ``gwa-mixed``, ``heavy-tail``);
- :mod:`~repro.workloads.traces.grids` — the reference multi-site grid
  shared by ``repro trace run`` and the throughput benchmark.
"""

from repro.workloads.traces.artifact import TRACE_FORMAT_VERSION, TraceWorkload
from repro.workloads.traces.distributions import (
    DISTRIBUTION_KINDS,
    DistributionSpec,
)
from repro.workloads.traces.generate import (
    generate_trace,
    modulated_arrivals,
    realize_jobs,
    split_counts,
)
from repro.workloads.traces.grids import (
    REFERENCE_ALLOCATIONS,
    reference_grid,
)
from repro.workloads.traces.gwf import (
    DEFAULT_GWF_MAPPING,
    GWF_COLUMNS,
    GwfMapping,
    parse_gwf,
    trace_to_gwf,
)
from repro.workloads.traces.presets import TRACE_PRESETS, make_preset
from repro.workloads.traces.spec import DiurnalSpec, TraceSpec, VoSpec

__all__ = [
    "DISTRIBUTION_KINDS",
    "DistributionSpec",
    "DiurnalSpec",
    "VoSpec",
    "TraceSpec",
    "split_counts",
    "modulated_arrivals",
    "realize_jobs",
    "generate_trace",
    "TraceWorkload",
    "TRACE_FORMAT_VERSION",
    "GWF_COLUMNS",
    "GwfMapping",
    "DEFAULT_GWF_MAPPING",
    "parse_gwf",
    "trace_to_gwf",
    "TRACE_PRESETS",
    "make_preset",
    "REFERENCE_ALLOCATIONS",
    "reference_grid",
]
