"""The reference multi-site grid for trace-scale broker runs.

Six-figure traces need a topology with real placement freedom — the
two-site demo grids collapse every decision to a couple of candidates
and understate both the broker's work and its payoff.  The reference
grid is three repository datacenters and four heterogeneous compute
sites, fully meshed with asymmetric WAN bandwidths, giving every
dataset 3 replicas x 4 compute sites x 3 allocations = 36 candidate
placements.  ``repro trace run`` and ``benchmarks/bench_throughput.py``
share it so their numbers are comparable.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.simgrid.topology import GridTopology, SiteKind

__all__ = ["reference_grid", "REFERENCE_ALLOCATIONS"]

#: Candidate ``(data_nodes, compute_nodes)`` allocations per site pair.
REFERENCE_ALLOCATIONS: Tuple[Tuple[int, int], ...] = (
    (1, 2),
    (2, 4),
    (4, 8),
)


def reference_grid() -> GridTopology:
    """Three repositories, four heterogeneous compute sites, full mesh.

    WAN bandwidth falls off with the (repository, compute) indices so
    every path is distinct — no accidental ties for the policies to
    shrug at.
    """
    # Imported here: repro.workloads.clusters <- traces at module scope
    # would be harmless today, but every traces module keeps workload
    # imports lazy for symmetry with the broker-facing ones.
    from repro.workloads.clusters import (
        opteron_infiniband_cluster,
        pentium_myrinet_cluster,
    )

    topology = GridTopology()
    topology.add_site(
        "dc-east", SiteKind.REPOSITORY, pentium_myrinet_cluster(num_nodes=16)
    )
    topology.add_site(
        "dc-west",
        SiteKind.REPOSITORY,
        opteron_infiniband_cluster(num_nodes=12),
    )
    topology.add_site(
        "dc-south", SiteKind.REPOSITORY, pentium_myrinet_cluster(num_nodes=12)
    )
    topology.add_site(
        "hpc-1", SiteKind.COMPUTE, opteron_infiniband_cluster(num_nodes=32)
    )
    topology.add_site(
        "hpc-2", SiteKind.COMPUTE, pentium_myrinet_cluster(num_nodes=24)
    )
    topology.add_site(
        "hpc-3", SiteKind.COMPUTE, opteron_infiniband_cluster(num_nodes=16)
    )
    topology.add_site(
        "hpc-4", SiteKind.COMPUTE, pentium_myrinet_cluster(num_nodes=16)
    )
    repositories: List[str] = ["dc-east", "dc-west", "dc-south"]
    computes: List[str] = ["hpc-1", "hpc-2", "hpc-3", "hpc-4"]
    for i, repo in enumerate(repositories):
        for j, hpc in enumerate(computes):
            topology.connect(repo, hpc, bw=2.0e6 - 0.2e6 * i - 0.15e6 * j)
    return topology
