"""Seedable distribution specs for the trace workload generators.

Published grid-workload characterizations (the Grid Workloads Archive
papers, Guazzone-style trace fits) describe arrival processes and load
mixes with a small family of parametric distributions: exponential
(Poisson arrivals), Weibull (bursty interarrivals, shape < 1), lognormal
and gamma (daytime load), and Pareto (heavy tails).  A
:class:`DistributionSpec` names one member of that family with concrete
parameters and samples it from a caller-supplied seeded NumPy generator,
so every draw is attributable to the (seed, spec) pair and replays
byte-identically.

The classic ``StreamSpec`` Poisson stream is *one point in this space*:
``DistributionSpec.exponential(mean)`` issues the exact
``rng.exponential(mean, count)`` call the pre-trace generator made, so
the back-compat shim in :mod:`repro.workloads.streams` reproduces every
historical stream bit-for-bit.

Draw discipline: :meth:`DistributionSpec.sample` makes exactly one NumPy
vectorized call per invocation.  Changing the underlying NumPy method of
a kind would silently re-randomize every seeded trace, so — like the
stream draw order — the mapping below is part of the format.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

import numpy as np

from repro.simgrid.errors import ConfigurationError

__all__ = ["DistributionSpec", "DISTRIBUTION_KINDS"]


#: kind -> (ordered parameter names).  Order fixes ``params`` layout and
#: the positional meaning in :meth:`DistributionSpec.from_dict`.
DISTRIBUTION_KINDS: Mapping[str, Tuple[str, ...]] = {
    "exponential": ("mean",),
    "weibull": ("shape", "scale"),
    "lognormal": ("mu", "sigma"),
    "gamma": ("shape", "scale"),
    "pareto": ("shape", "scale"),
    "uniform": ("low", "high"),
    "constant": ("value",),
}


@dataclass(frozen=True)
class DistributionSpec:
    """One parametric distribution, samplable from a seeded generator.

    ``params`` is an ordered tuple of ``(name, value)`` pairs matching
    :data:`DISTRIBUTION_KINDS` — tuples (not dicts) keep the spec
    hashable and its canonical JSON stable.  Build instances through the
    named constructors (:meth:`exponential`, :meth:`weibull`, ...) or
    :meth:`from_dict`.
    """

    kind: str
    params: Tuple[Tuple[str, float], ...]

    def __post_init__(self) -> None:
        names = DISTRIBUTION_KINDS.get(self.kind)
        if names is None:
            raise ConfigurationError(
                f"unknown distribution kind '{self.kind}'; known: "
                + ", ".join(sorted(DISTRIBUTION_KINDS))
            )
        got = tuple(name for name, _ in self.params)
        if got != names:
            raise ConfigurationError(
                f"{self.kind} distribution needs params {names}, got {got}"
            )
        p = dict(self.params)
        if self.kind == "uniform":
            if not 0.0 <= p["low"] <= p["high"]:
                raise ConfigurationError(
                    "uniform distribution needs 0 <= low <= high"
                )
        elif self.kind == "constant":
            if p["value"] < 0.0:
                raise ConfigurationError(
                    "constant distribution needs value >= 0"
                )
        elif self.kind == "lognormal":
            if p["sigma"] <= 0.0:
                raise ConfigurationError("lognormal needs sigma > 0")
        else:
            for name, value in self.params:
                if value <= 0.0:
                    raise ConfigurationError(
                        f"{self.kind} distribution needs {name} > 0, "
                        f"got {value!r}"
                    )

    # -- named constructors -------------------------------------------

    @classmethod
    def exponential(cls, mean: float) -> "DistributionSpec":
        """Poisson arrivals: exponential gaps with the given mean."""
        return cls("exponential", (("mean", float(mean)),))

    @classmethod
    def weibull(cls, shape: float, scale: float) -> "DistributionSpec":
        """Weibull gaps; ``shape < 1`` gives the bursty GWA-style fits."""
        return cls(
            "weibull", (("shape", float(shape)), ("scale", float(scale)))
        )

    @classmethod
    def lognormal(cls, mu: float, sigma: float) -> "DistributionSpec":
        """Lognormal with log-space mean ``mu`` and deviation ``sigma``."""
        return cls("lognormal", (("mu", float(mu)), ("sigma", float(sigma))))

    @classmethod
    def gamma(cls, shape: float, scale: float) -> "DistributionSpec":
        return cls(
            "gamma", (("shape", float(shape)), ("scale", float(scale)))
        )

    @classmethod
    def pareto(cls, shape: float, scale: float) -> "DistributionSpec":
        """Pareto type I with minimum ``scale`` and tail index ``shape``."""
        return cls(
            "pareto", (("shape", float(shape)), ("scale", float(scale)))
        )

    @classmethod
    def uniform(cls, low: float, high: float) -> "DistributionSpec":
        return cls("uniform", (("low", float(low)), ("high", float(high))))

    @classmethod
    def constant(cls, value: float) -> "DistributionSpec":
        """A degenerate distribution: every draw is ``value``.

        Still consumes no randomness — handy for strictly periodic
        arrival processes and for pinning a quantity in tests.
        """
        return cls("constant", (("value", float(value)),))

    # -- sampling ------------------------------------------------------

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """``count`` i.i.d. draws as a float array, one NumPy call.

        The per-kind NumPy mapping is frozen (see module docstring);
        notably ``exponential`` issues ``rng.exponential(mean, count)``
        exactly as the historical Poisson stream generator did.
        """
        if count < 0:
            raise ConfigurationError("sample count must be >= 0")
        p = dict(self.params)
        if self.kind == "exponential":
            return rng.exponential(p["mean"], count)
        if self.kind == "weibull":
            return p["scale"] * rng.weibull(p["shape"], count)
        if self.kind == "lognormal":
            return rng.lognormal(p["mu"], p["sigma"], count)
        if self.kind == "gamma":
            return rng.gamma(p["shape"], p["scale"], count)
        if self.kind == "pareto":
            # NumPy's pareto() is the Lomax (shifted) variant; adding 1
            # and scaling recovers Pareto type I with minimum `scale`.
            return p["scale"] * (1.0 + rng.pareto(p["shape"], count))
        if self.kind == "uniform":
            return rng.uniform(p["low"], p["high"], count)
        # "constant" — __post_init__ guarantees the kind set is closed.
        return np.full(count, p["value"], dtype=float)

    def mean(self) -> float:
        """Analytic mean (``inf`` for Pareto with shape <= 1).

        Used by presets and reports to state the offered load implied by
        an interarrival spec without sampling it.
        """
        p = dict(self.params)
        if self.kind == "exponential":
            return p["mean"]
        if self.kind == "weibull":
            return p["scale"] * math.gamma(1.0 + 1.0 / p["shape"])
        if self.kind == "lognormal":
            return math.exp(p["mu"] + 0.5 * p["sigma"] ** 2)
        if self.kind == "gamma":
            return p["shape"] * p["scale"]
        if self.kind == "pareto":
            if p["shape"] <= 1.0:
                return math.inf
            return p["shape"] * p["scale"] / (p["shape"] - 1.0)
        if self.kind == "uniform":
            return 0.5 * (p["low"] + p["high"])
        return p["value"]

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "DistributionSpec":
        """Parse ``{"kind": ..., "params": {...}}`` (strict keys)."""
        kind = str(doc.get("kind", ""))
        names = DISTRIBUTION_KINDS.get(kind)
        if names is None:
            raise ConfigurationError(
                f"unknown distribution kind '{kind}'; known: "
                + ", ".join(sorted(DISTRIBUTION_KINDS))
            )
        raw = doc.get("params")
        if not isinstance(raw, Mapping):
            raise ConfigurationError(
                f"{kind} distribution needs a 'params' mapping"
            )
        extra = set(raw) - set(names)
        if extra:
            raise ConfigurationError(
                f"{kind} distribution got unknown params {sorted(extra)}"
            )
        missing = [n for n in names if n not in raw]
        if missing:
            raise ConfigurationError(
                f"{kind} distribution missing params {missing}"
            )
        return cls(kind, tuple((n, float(raw[n])) for n in names))
