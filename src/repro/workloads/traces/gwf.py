"""Grid Workload Archive (``.gwf``) traces, mapped onto the repro grid.

The GWA distributes real production traces (DAS-2, Grid'5000, NorduGrid,
AuverGrid, SHARCNET, LCG) in the Grid Workloads Format: one line per
job, 29 whitespace-separated columns, ``#`` comments, ``-1`` for any
unknown value.  :func:`parse_gwf` reads that format and maps each row
onto the repro vocabulary:

- **SubmitTime** (col 1) -> ``arrival`` (shifted so the trace starts at
  its origin; an explicit ``# repro-origin:`` header pins the shift);
- **RunTime** (col 3) -> a ``(workload, size)`` pair via the
  :class:`GwfMapping` runtime bins — real traces do not run k-means or
  vortex detection, so the mapping bins observed runtimes onto the
  registered mining workloads of comparable weight;
- **ReqTime** (col 8), when present, -> a deadline at
  ``arrival + ReqTime`` (the user's own wall-time request);
- **QueueID** (col 14), when present, -> ``priority``;
- **VOID** (col 27), else **GroupID** (col 12), -> the ``vo`` tag.

:func:`trace_to_gwf` writes any :class:`TraceWorkload` back out as GWF.
It emits registry headers (``# repro-executable:``, ``# repro-vo:``,
``# repro-origin:``) so the workload/size/VO assignment survives the
trip through ExecutableID/VOID integers; parsing a file we wrote
recovers the identical trace (the round-trip property the test suite
drives with Hypothesis).  Foreign GWA files lack those headers and fall
back to the runtime-bin mapping — lossy by design, exact by fiat.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

from repro.simgrid.errors import ConfigurationError
from repro.workloads.traces.artifact import TraceWorkload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.broker.jobs import BrokerJob

__all__ = [
    "GWF_COLUMNS",
    "GwfMapping",
    "DEFAULT_GWF_MAPPING",
    "parse_gwf",
    "trace_to_gwf",
]

#: The 29 standard GWF columns, in file order.
GWF_COLUMNS: Tuple[str, ...] = (
    "JobID", "SubmitTime", "WaitTime", "RunTime", "NProcs",
    "AverageCPUTimeUsed", "UsedMemory", "ReqNProcs", "ReqTime",
    "ReqMemory", "Status", "UserID", "GroupID", "ExecutableID",
    "QueueID", "PartitionID", "OrigSiteID", "LastRunSiteID",
    "JobStructure", "JobStructureParams", "UsedNetwork",
    "UsedLocalDiskSpace", "UsedResources", "ReqPlatform", "ReqNetwork",
    "ReqLocalDiskSpace", "ReqResources", "VOID", "ProjectID",
)

_SUBMIT, _RUNTIME, _REQTIME = 1, 3, 8
_GROUP, _EXECUTABLE, _QUEUE, _VOID = 12, 13, 14, 27


@dataclass(frozen=True)
class GwfMapping:
    """Runtime bins assigning each GWF row a repro ``(workload, size)``.

    ``bins`` are ``(upper_runtime_bound, workload, size)`` triples in
    strictly increasing bound order; a row whose RunTime is below the
    bound (and not below the previous one) takes that entry.  Rows at or
    beyond the last bound take ``overflow``.  Rows with unknown runtime
    (``-1``) take the first bin — the lightest class, matching the GWA
    convention that missing runtimes are overwhelmingly tiny failed
    jobs.
    """

    bins: Tuple[Tuple[float, str, Optional[str]], ...]
    overflow: Tuple[str, Optional[str]]

    def __post_init__(self) -> None:
        if not self.bins:
            raise ConfigurationError("GWF mapping needs at least one bin")
        bounds = [bound for bound, _, _ in self.bins]
        if any(b <= 0 for b in bounds) or sorted(set(bounds)) != bounds:
            raise ConfigurationError(
                "GWF mapping bounds must be positive and strictly increasing"
            )

    def classify(self, runtime: Optional[float]) -> Tuple[str, Optional[str]]:
        """The ``(workload, size)`` for an observed runtime (secs)."""
        if runtime is None:
            _, workload, size = self.bins[0]
            return workload, size
        for bound, workload, size in self.bins:
            if runtime < bound:
                return workload, size
        return self.overflow


#: Bins roughly matched to the registered workloads' relative weights:
#: short jobs -> kmeans on the default set, mid -> knn, long -> em on
#: the large set, and the heavy tail -> vortex on the full volume.
DEFAULT_GWF_MAPPING = GwfMapping(
    bins=(
        (60.0, "kmeans", None),
        (600.0, "knn", "350 MB"),
        (3600.0, "em", "350 MB"),
        (14400.0, "em", "1.4 GB"),
    ),
    overflow=("vortex", None),
)


def _field(parts: List[str], index: int) -> Optional[float]:
    """Column value as a float, ``None`` when absent or ``-1``."""
    if index >= len(parts):
        return None
    raw = parts[index]
    try:
        value = float(raw)
    except ValueError as exc:
        raise ConfigurationError(
            f"GWF column {GWF_COLUMNS[index]} has non-numeric value "
            f"{raw!r}"
        ) from exc
    return None if value < 0 else value


def parse_gwf(
    source: Union[str, pathlib.Path],
    mapping: GwfMapping = DEFAULT_GWF_MAPPING,
    *,
    name: Optional[str] = None,
) -> TraceWorkload:
    """Parse GWF text (or a path to it) into a :class:`TraceWorkload`.

    ``source`` holding a newline is treated as the text itself;
    otherwise it is read as a path.  Arrivals are shifted by the trace
    origin — the smallest SubmitTime, or the ``# repro-origin:`` header
    when present (files we wrote pin it to keep round-trips exact).
    """
    from repro.broker.jobs import BrokerJob

    if isinstance(source, pathlib.Path) or "\n" not in str(source):
        path = pathlib.Path(source)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read GWF trace '{path}': {exc}"
            ) from exc
        trace_name = name or path.stem
    else:
        text = str(source)
        trace_name = name or "gwf-trace"

    origin: Optional[float] = None
    deadline_absolute = False
    executables: Dict[int, Tuple[str, Optional[str]]] = {}
    vo_names: Dict[int, str] = {}
    rows: List[Tuple[str, List[str]]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line.lstrip("#").strip()
            if body.startswith("repro-origin:"):
                origin = float(body.split(":", 1)[1].strip())
            elif body.startswith("repro-deadline:"):
                deadline_absolute = (
                    body.split(":", 1)[1].strip() == "absolute"
                )
            elif body.startswith("repro-executable:"):
                # SIZE is the line's remainder: dataset labels contain
                # spaces ("350 MB"), so only two splits are safe.
                fields = body.split(":", 1)[1].split(None, 2)
                if len(fields) != 3:
                    raise ConfigurationError(
                        f"GWF line {lineno}: malformed repro-executable "
                        "header (want: ID WORKLOAD SIZE)"
                    )
                eid, workload, size = fields
                executables[int(eid)] = (
                    workload, None if size == "-" else size,
                )
            elif body.startswith("repro-vo:"):
                fields = body.split(":", 1)[1].split(None, 1)
                if len(fields) != 2:
                    raise ConfigurationError(
                        f"GWF line {lineno}: malformed repro-vo header "
                        "(want: ID NAME)"
                    )
                vo_names[int(fields[0])] = fields[1]
            continue
        parts = line.split()
        if len(parts) < 4:
            raise ConfigurationError(
                f"GWF line {lineno}: want at least 4 columns "
                "(JobID SubmitTime WaitTime RunTime), got "
                f"{len(parts)}"
            )
        rows.append((f"line {lineno}", parts))

    if not rows:
        raise ConfigurationError(
            f"GWF trace '{trace_name}' contains no job rows"
        )

    if origin is None:
        origin = min(
            submit
            for submit in (_field(parts, _SUBMIT) for _, parts in rows)
            if submit is not None
        )

    jobs: List[BrokerJob] = []
    for where, parts in rows:
        submit = _field(parts, _SUBMIT)
        arrival = 0.0 if submit is None else submit - origin
        if arrival < 0:
            raise ConfigurationError(
                f"GWF {where}: SubmitTime precedes the trace origin "
                f"({submit!r} < {origin!r})"
            )
        exec_id = _field(parts, _EXECUTABLE)
        if exec_id is not None and int(exec_id) in executables:
            workload, size = executables[int(exec_id)]
        else:
            workload, size = mapping.classify(_field(parts, _RUNTIME))
        req_time = _field(parts, _REQTIME)
        if req_time is None or req_time <= 0:
            deadline = None
        elif deadline_absolute:
            # Files we wrote carry the absolute deadline (see
            # trace_to_gwf): re-deriving it from a delta would drift by
            # an ulp and break the fingerprint round-trip.
            deadline = req_time
        else:
            deadline = arrival + req_time
        queue = _field(parts, _QUEUE)
        void = _field(parts, _VOID)
        if void is not None:
            vo: Optional[str] = vo_names.get(int(void), f"vo{int(void)}")
        else:
            group = _field(parts, _GROUP)
            vo = f"group{int(group)}" if group is not None else None
        jobs.append(
            BrokerJob(
                job_id=parts[0],
                workload=workload,
                size=size,
                arrival=arrival,
                deadline=deadline,
                priority=int(queue) if queue is not None else 0,
                vo=vo,
            )
        )

    job_ids = [job.job_id for job in jobs]
    if len(set(job_ids)) != len(job_ids):
        raise ConfigurationError(
            f"GWF trace '{trace_name}' has duplicate JobIDs"
        )
    return TraceWorkload.from_jobs(trace_name, jobs, source="gwf")


def _format_value(value: float) -> str:
    """Floats via ``repr`` (lossless round-trip), integers bare."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def trace_to_gwf(
    trace: TraceWorkload, path: Optional[Union[str, pathlib.Path]] = None
) -> str:
    """Render a trace as GWF text; optionally write it durably.

    The emitted registry headers make :func:`parse_gwf` an exact
    inverse: ``parse_gwf(trace_to_gwf(t))`` reproduces ``t``'s jobs
    (same fingerprint modulo name/spec provenance).
    """
    from repro.core.durable import atomic_write_text

    exec_ids: Dict[Tuple[str, Optional[str]], int] = {}
    vo_ids: Dict[str, int] = {}
    for job in trace.jobs:
        key = (job.workload, job.size)
        if key not in exec_ids:
            exec_ids[key] = len(exec_ids) + 1
        if job.vo is not None and job.vo not in vo_ids:
            vo_ids[job.vo] = len(vo_ids) + 1

    lines = [
        f"# GWF trace '{trace.name}' ({len(trace.jobs)} jobs), written "
        "by repro.workloads.traces",
        "# " + " ".join(GWF_COLUMNS),
        "# repro-origin: 0",
        "# repro-deadline: absolute",
    ]
    for (workload, size), eid in exec_ids.items():
        lines.append(
            f"# repro-executable: {eid} {workload} "
            f"{size if size is not None else '-'}"
        )
    for vo, vid in vo_ids.items():
        lines.append(f"# repro-vo: {vid} {vo}")

    for job in trace.jobs:
        row = ["-1"] * len(GWF_COLUMNS)
        row[0] = job.job_id
        row[_SUBMIT] = _format_value(job.arrival)
        row[_EXECUTABLE] = str(exec_ids[(job.workload, job.size)])
        if job.deadline is not None:
            row[_REQTIME] = _format_value(job.deadline)
        row[_QUEUE] = str(job.priority)
        if job.vo is not None:
            row[_VOID] = str(vo_ids[job.vo])
        lines.append(" ".join(row))

    text = "\n".join(lines) + "\n"
    if path is not None:
        atomic_write_text(path, text)
    return text
