"""The durable ``TraceWorkload`` artifact: jobs + provenance + identity.

A trace workload is a *value*: a named, ordered job list plus the spec
(or source description) that produced it.  Its canonical JSON document
carries a SHA-256 ``fingerprint`` over everything else in the document,
so

- two generators agree on a trace iff the fingerprints match (the
  replay identity the property tests assert), and
- a trace file edited by hand or truncated on disk is rejected at load
  time as corrupt rather than silently driving a different experiment.

Artifacts are written with the repo's durable store (atomic replace,
canonical JSON) and versioned with the usual ``format_version`` gate.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Tuple

from repro.core.durable import (
    CorruptStoreError,
    atomic_write_json,
    check_format_version,
    content_digest,
    read_json_document,
)
from repro.simgrid.errors import ConfigurationError
from repro.workloads.traces.generate import generate_trace
from repro.workloads.traces.spec import TraceSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.broker.jobs import BrokerJob

__all__ = ["TraceWorkload", "TRACE_FORMAT_VERSION"]

TRACE_FORMAT_VERSION = 1


def _job_to_dict(job: "BrokerJob") -> Dict[str, Any]:
    return {
        "id": job.job_id,
        "workload": job.workload,
        "size": job.size,
        "arrival": job.arrival,
        "deadline": job.deadline,
        "priority": job.priority,
        "vo": job.vo,
    }


def _job_from_dict(doc: Mapping[str, Any], index: int) -> "BrokerJob":
    # Imported here: repro.broker <- repro.workloads would cycle at
    # module scope (broker jobs build topologies from workload clusters).
    from repro.broker.jobs import BrokerJob

    try:
        return BrokerJob(
            job_id=str(doc["id"]),
            workload=str(doc["workload"]),
            size=None if doc.get("size") is None else str(doc["size"]),
            arrival=float(doc.get("arrival", 0.0)),
            deadline=(
                None
                if doc.get("deadline") is None
                else float(doc["deadline"])
            ),
            priority=int(doc.get("priority", 0)),
            vo=None if doc.get("vo") is None else str(doc["vo"]),
            arrival_index=index,
        )
    except KeyError as exc:
        raise ConfigurationError(
            f"trace job #{index} is missing field {exc}"
        ) from exc


@dataclass(frozen=True)
class TraceWorkload:
    """A named, fingerprinted job trace ready for the broker.

    ``jobs`` are in arrival order with ``arrival_index`` stamped;
    ``spec`` is the generator recipe as a plain dict (``None`` for
    traces parsed from external files) and ``source`` names where the
    trace came from (``"generated"``, ``"gwf"``, ...).
    """

    name: str
    jobs: Tuple[BrokerJob, ...]
    spec: Optional[Dict[str, Any]] = None
    source: str = "generated"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("trace workloads need a non-empty name")
        if not self.jobs:
            raise ConfigurationError("trace workloads need at least one job")
        for index, job in enumerate(self.jobs):
            if job.arrival_index != index:
                raise ConfigurationError(
                    f"trace job '{job.job_id}' has arrival_index "
                    f"{job.arrival_index}, expected {index} — traces must "
                    "be in stamped arrival order"
                )

    # -- construction --------------------------------------------------

    @classmethod
    def from_spec(
        cls, spec: TraceSpec, baselines: Any = None
    ) -> "TraceWorkload":
        """Generate the trace a spec describes (seeded, replayable)."""
        jobs = tuple(generate_trace(spec, baselines))
        return cls(
            name=spec.name, jobs=jobs, spec=spec.to_dict(),
            source="generated",
        )

    @classmethod
    def from_jobs(
        cls,
        name: str,
        jobs: Any,
        *,
        spec: Optional[Dict[str, Any]] = None,
        source: str = "generated",
    ) -> "TraceWorkload":
        """Wrap an explicit job list, restamping arrival indices."""
        ordered = sorted(jobs, key=lambda j: (j.arrival, j.job_id))
        from dataclasses import replace

        stamped = tuple(
            replace(job, arrival_index=index)
            for index, job in enumerate(ordered)
        )
        return cls(name=name, jobs=stamped, spec=spec, source=source)

    # -- identity ------------------------------------------------------

    def _payload(self) -> Dict[str, Any]:
        return {
            "format_version": TRACE_FORMAT_VERSION,
            "kind": "trace-workload",
            "name": self.name,
            "source": self.source,
            "spec": self.spec,
            "job_count": len(self.jobs),
            "jobs": [_job_to_dict(job) for job in self.jobs],
        }

    @property
    def fingerprint(self) -> str:
        """SHA-256 over the canonical document (sans the digest itself).

        Two traces are the same experiment input iff this matches —
        the identity that makes "(seed, spec) replays byte-identically"
        checkable with a string compare.
        """
        return content_digest(self._payload())

    def to_dict(self) -> Dict[str, Any]:
        doc = self._payload()
        doc["fingerprint"] = self.fingerprint
        return doc

    # -- durable persistence -------------------------------------------

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Atomically write the canonical artifact JSON."""
        return atomic_write_json(path, self.to_dict())

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "TraceWorkload":
        """Load and verify an artifact (version gate + fingerprint)."""
        doc = read_json_document(
            path,
            "trace workload",
            remedy="regenerate it with 'repro trace generate'",
        )
        check_format_version(
            doc, "trace workload", TRACE_FORMAT_VERSION, source=str(path)
        )
        return cls.from_dict(doc, source_path=str(path))

    @classmethod
    def from_dict(
        cls,
        doc: Mapping[str, Any],
        *,
        source_path: Optional[str] = None,
    ) -> "TraceWorkload":
        """Parse an artifact document, verifying its fingerprint."""
        jobs_doc = doc.get("jobs")
        if not isinstance(jobs_doc, list) or not jobs_doc:
            raise ConfigurationError(
                "trace workload document needs a non-empty 'jobs' list"
            )
        jobs: List[BrokerJob] = [
            _job_from_dict(j, i) for i, j in enumerate(jobs_doc)
        ]
        spec = doc.get("spec")
        trace = cls(
            name=str(doc.get("name", "")),
            jobs=tuple(jobs),
            spec=dict(spec) if isinstance(spec, Mapping) else None,
            source=str(doc.get("source", "generated")),
        )
        recorded = doc.get("fingerprint")
        if recorded is not None and recorded != trace.fingerprint:
            where = source_path or "trace workload document"
            raise CorruptStoreError(
                f"{where}: fingerprint mismatch — the file does not match "
                "the jobs it claims to carry; regenerate it with "
                "'repro trace generate'"
            )
        count = doc.get("job_count")
        if count is not None and int(count) != len(jobs):
            where = source_path or "trace workload document"
            raise CorruptStoreError(
                f"{where}: job_count {count} does not match the "
                f"{len(jobs)} jobs present"
            )
        return trace

    # -- conveniences --------------------------------------------------

    @property
    def vo_names(self) -> Tuple[str, ...]:
        """Distinct VO tags in first-appearance order."""
        seen: Dict[str, None] = {}
        for job in self.jobs:
            if job.vo is not None and job.vo not in seen:
                seen[job.vo] = None
        return tuple(seen)

    @property
    def horizon(self) -> float:
        """Arrival span (last arrival; the jobs are in arrival order)."""
        return self.jobs[-1].arrival

    def __len__(self) -> int:
        return len(self.jobs)
