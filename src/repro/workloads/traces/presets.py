"""Named trace presets fitted to published grid-workload shapes.

The Grid Workloads Archive characterizations (Iosup et al.) and the
Guazzone-style per-VO fits agree on the qualitative shape of production
grid load: a few virtual organisations dominate submissions, their
interarrivals are bursty (Weibull with shape < 1, or lognormal), the
load breathes with day and week cycles, and job weight is heavy-tailed.
These presets transplant that shape onto the simulator's model units —
"days" compressed so a 100k-job trace spans a few simulated hours —
with every distribution parameter spelled out, so a preset is just a
:class:`TraceSpec` value anyone can fork and tweak.

Scale discipline: every preset takes ``(count, seed)`` and scales its
interarrival means so the offered load stays roughly constant per
job — a 1M-job trace is a longer campaign, not a denser one.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping

from repro.simgrid.errors import ConfigurationError
from repro.workloads.traces.distributions import DistributionSpec
from repro.workloads.traces.spec import DiurnalSpec, TraceSpec, VoSpec

__all__ = ["TRACE_PRESETS", "make_preset"]

#: Mean model-seconds between arrivals, per VO weight unit, shared by
#: the presets so their offered load is comparable.
_BASE_GAP = 0.004


def _poisson(count: int, seed: int) -> TraceSpec:
    """The classic single-VO Poisson stream, as a trace spec.

    Demonstrates that the legacy ``StreamSpec`` world is one point in
    the trace space: one VO, exponential interarrivals, no modulation.
    """
    return TraceSpec(
        name="poisson",
        count=count,
        seed=seed,
        vos=(
            VoSpec(
                name="default",
                interarrival=DistributionSpec.exponential(_BASE_GAP),
                mix=(
                    ("kmeans", None, 2.0),
                    ("knn", "350 MB", 1.5),
                    ("vortex", None, 1.0),
                    ("kmeans", "350 MB", 1.0),
                    ("knn", None, 1.0),
                ),
                priorities=(0, 1, 2),
                priority_weights=(4.0, 2.0, 1.0),
            ),
        ),
    )


def _gwa_mixed(count: int, seed: int) -> TraceSpec:
    """Three VOs with GWA-style bursty fits under a diurnal cycle.

    The dominant VO submits in Weibull bursts (shape 0.64 — the
    LCG-style fit), a mid-size VO follows a lognormal daytime pattern,
    and a long-tail VO trickles Pareto-spaced heavy jobs with
    deadlines.  A compressed day (an eighth of the expected trace span)
    modulates all three at 35% daily / 15% weekly amplitude.
    """
    span = count * _BASE_GAP
    return TraceSpec(
        name="gwa-mixed",
        count=count,
        seed=seed,
        vos=(
            VoSpec(
                name="atlas",
                weight=5.0,
                # Weibull mean = scale * gamma(1 + 1/shape); at shape
                # 0.64, gamma(2.5625) ~ 1.3897, so dividing the target
                # gap by it keeps the offered load at ~_BASE_GAP/unit.
                interarrival=DistributionSpec.weibull(
                    0.64, _BASE_GAP / 1.3897
                ),
                mix=(
                    ("kmeans", None, 3.0),
                    ("kmeans", "350 MB", 2.0),
                    ("knn", "350 MB", 2.0),
                    ("knn", None, 1.0),
                ),
                priorities=(0, 1),
                priority_weights=(3.0, 1.0),
            ),
            VoSpec(
                name="cms",
                weight=3.0,
                # Lognormal mean = exp(mu + sigma^2/2); sigma 0.9 gives
                # the daytime burstiness, mu re-centres the mean.
                interarrival=DistributionSpec.lognormal(-5.9259, 0.9),
                mix=(
                    ("em", "350 MB", 2.0),
                    ("knn", "350 MB", 1.5),
                    ("vortex", None, 1.0),
                ),
                priorities=(0, 1, 2),
                priority_weights=(2.0, 2.0, 1.0),
            ),
            VoSpec(
                name="biomed",
                weight=1.0,
                # Pareto tail index 1.8 keeps the mean finite
                # (shape*scale/(shape-1) = 2.25*scale) but the tail
                # heavy — long gaps, then a burst of weighty jobs.
                interarrival=DistributionSpec.pareto(
                    1.8, _BASE_GAP / 2.25
                ),
                mix=(
                    ("em", "1.4 GB", 1.0),
                    ("vortex", None, 1.0),
                    ("kmeans", "1.4 GB", 1.0),
                ),
                deadline_fraction=0.5,
                deadline_slack=(2.0, 6.0),
                priorities=(1, 2),
                priority_weights=(1.0, 1.0),
            ),
        ),
        modulation=DiurnalSpec(
            day_seconds=max(span / 8.0, 1.0),
            amplitude=0.35,
            phase=0.0,
            week_amplitude=0.15,
        ),
    )


def _heavy_tail(count: int, seed: int) -> TraceSpec:
    """A single-VO stress preset: Pareto gaps, large-volume mixes.

    The burst/lull structure drives the broker's wait queue to its peak
    depths — the configuration the throughput benchmark leans on to
    exercise the indexed event queue honestly.
    """
    return TraceSpec(
        name="heavy-tail",
        count=count,
        seed=seed,
        vos=(
            VoSpec(
                name="batch",
                interarrival=DistributionSpec.pareto(
                    1.5, _BASE_GAP / 3.0
                ),
                mix=(
                    ("em", "1.4 GB", 2.0),
                    ("vortex", None, 2.0),
                    ("kmeans", "1.4 GB", 1.0),
                    ("knn", "1.4 GB", 1.0),
                ),
                priorities=(0, 1),
                priority_weights=(1.0, 1.0),
            ),
        ),
    )


TRACE_PRESETS: Mapping[str, Callable[[int, int], TraceSpec]] = {
    "poisson": _poisson,
    "gwa-mixed": _gwa_mixed,
    "heavy-tail": _heavy_tail,
}


def make_preset(name: str, count: int, seed: int = 0) -> TraceSpec:
    """The named preset's :class:`TraceSpec` at the given scale."""
    factory = TRACE_PRESETS.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown trace preset '{name}'; known: "
            + ", ".join(sorted(TRACE_PRESETS))
        )
    return factory(count, seed)
