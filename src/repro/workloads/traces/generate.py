"""Deterministic expansion of a :class:`TraceSpec` into broker jobs.

The per-VO draw discipline is the stream generator's, generalized:

1. all interarrival gaps in one vectorized call
   (``vo.interarrival.sample(rng, n)``);
2. gaps fold into arrival times — under a :class:`DiurnalSpec` each gap
   is divided by the rate factor at the *current* arrival time, the
   deterministic equivalent of rate-modulated thinning;
3. then per job, in order: mix index, priority index, deadline coin,
   slack uniform.

Step 3 is :func:`realize_jobs`, shared verbatim with
:func:`repro.workloads.streams.generate_stream` — the Poisson stream is
the single-VO exponential special case of this module, and the shared
helper is what keeps historical seeded streams byte-identical.

VO streams are merged by ``(arrival, job_id)`` and each job is stamped
with its zero-based ``arrival_index`` in the merged order, so reports
can aggregate per VO and per arrival window without a join back here.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

import numpy as np

from repro.simgrid.errors import ConfigurationError
from repro.workloads.traces.spec import DiurnalSpec, Mix, TraceSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (see below)
    from repro.broker.jobs import BrokerJob

__all__ = [
    "split_counts",
    "modulated_arrivals",
    "realize_jobs",
    "generate_trace",
]

#: ``baselines`` may be a callable ``(workload, size) -> seconds`` or a
#: mapping keyed like :attr:`BrokerJob.dataset_key` (see streams).
Baselines = object


def split_counts(total: int, weights: Sequence[float]) -> List[int]:
    """Apportion ``total`` across ``weights`` by largest remainder.

    Deterministic, exact (sums to ``total``), and stable: quotas are
    floored, then the leftover units go to the largest fractional
    remainders, earliest index winning ties.
    """
    if total < 0:
        raise ConfigurationError("cannot split a negative total")
    if not weights or any(w <= 0 for w in weights):
        raise ConfigurationError("split weights must be positive")
    scale = float(sum(weights))
    quotas = [total * w / scale for w in weights]
    counts = [int(q) for q in quotas]
    leftover = total - sum(counts)
    order = sorted(
        range(len(weights)), key=lambda i: (counts[i] - quotas[i], i)
    )
    for i in order[:leftover]:
        counts[i] += 1
    return counts


def modulated_arrivals(
    gaps: np.ndarray, modulation: Optional[DiurnalSpec]
) -> np.ndarray:
    """Fold raw gaps into arrival times, warped by the diurnal cycle.

    Without modulation this is a plain cumulative sum (the stream
    generator's behaviour).  With it, each gap is divided by the rate
    factor at the previous arrival — sequential by construction, since
    the factor depends on the clock the earlier gaps produced.
    """
    if modulation is None:
        return np.cumsum(gaps)
    arrivals = np.empty(len(gaps), dtype=float)
    t = 0.0
    rate_factor = modulation.rate_factor
    for i, gap in enumerate(gaps):
        t += float(gap) / rate_factor(t)
        arrivals[i] = t
    return arrivals


def realize_jobs(
    rng: np.random.Generator,
    arrivals: np.ndarray,
    *,
    mix: Mix,
    priorities: Sequence[int],
    priority_weights: Sequence[float],
    deadline_fraction: float,
    deadline_slack: Sequence[float],
    baselines: Baselines,
    job_id_for: Callable[[int, str], str],
    vo: Optional[str] = None,
) -> List["BrokerJob"]:
    """Draw the per-job fields over fixed arrivals (the step-3 loop).

    The draw order per job — mix index, priority index, deadline coin,
    slack uniform — is part of the seeded-workload format; both the
    trace generator and the legacy Poisson stream shim call this one
    loop so the order can never fork.
    """
    # Imported here: repro.broker.jobs <- repro.workloads would cycle at
    # module scope (broker jobs build topologies from workload clusters).
    from repro.broker.jobs import BrokerJob
    from repro.workloads.streams import _baseline_for

    mix_weights = np.array([w for _, _, w in mix], dtype=float)
    mix_weights /= mix_weights.sum()
    if priority_weights:
        prio_weights = np.array(priority_weights, dtype=float)
        prio_weights /= prio_weights.sum()
    else:
        prio_weights = None

    jobs: List[BrokerJob] = []
    for i in range(len(arrivals)):
        mix_index = int(rng.choice(len(mix), p=mix_weights))
        workload, size, _ = mix[mix_index]
        prio_index = int(rng.choice(len(priorities), p=prio_weights))
        priority = priorities[prio_index]
        arrival = float(arrivals[i])
        deadline = None
        if rng.random() < deadline_fraction:
            slack = float(rng.uniform(*deadline_slack))
            deadline = arrival + slack * _baseline_for(
                baselines, workload, size
            )
        jobs.append(
            BrokerJob(
                job_id=job_id_for(i, workload),
                workload=workload,
                size=size,
                arrival=arrival,
                deadline=deadline,
                priority=priority,
                vo=vo,
            )
        )
    return jobs


def generate_trace(
    spec: TraceSpec, baselines: Baselines = None
) -> List["BrokerJob"]:
    """Expand a :class:`TraceSpec` into a deterministic merged job list.

    Each VO draws from ``default_rng([spec.seed, vo_index])`` — a child
    seed sequence, so VO streams are independent and editing one VO's
    spec leaves every other VO's jobs untouched.  The merged list is
    sorted by ``(arrival, job_id)`` and stamped with ``arrival_index``.
    ``baselines`` is only consulted by VOs that draw deadlines.
    """
    counts = split_counts(spec.count, [vo.weight for vo in spec.vos])
    merged: List["BrokerJob"] = []
    for vo_index, (vo, n) in enumerate(zip(spec.vos, counts)):
        if n == 0:
            continue
        rng = np.random.default_rng([spec.seed, vo_index])
        gaps = vo.interarrival.sample(rng, n)
        arrivals = modulated_arrivals(gaps, spec.modulation)
        vo_name = vo.name
        merged.extend(
            realize_jobs(
                rng,
                arrivals,
                mix=vo.mix,
                priorities=vo.priorities,
                priority_weights=vo.priority_weights,
                deadline_fraction=vo.deadline_fraction,
                deadline_slack=vo.deadline_slack,
                baselines=baselines,
                job_id_for=(
                    lambda i, workload, _vo=vo_name: (
                        f"{_vo}-{i:06d}-{workload}"
                    )
                ),
                vo=vo_name,
            )
        )
    merged.sort(key=lambda job: (job.arrival, job.job_id))
    return [
        replace(job, arrival_index=index) for index, job in enumerate(merged)
    ]
