"""Trace workload specs: per-VO submission mixes under diurnal load.

A :class:`TraceSpec` is the seeded recipe for a realistic job trace:

- each :class:`VoSpec` is one virtual organisation with its own
  interarrival distribution (any :class:`DistributionSpec` — Weibull
  and lognormal fits are the GWA norm), workload/dataset mix, deadline
  behaviour, and priority distribution;
- ``weight`` splits the total job count across VOs (largest-remainder
  apportionment, so counts are exact and deterministic);
- an optional :class:`DiurnalSpec` modulates every VO's arrival rate
  with day and week cycles, the way production grid traces breathe.

Specs are frozen, validate eagerly, and round-trip through plain dicts,
so a trace artifact can embed the full generator provenance next to the
jobs it produced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.simgrid.errors import ConfigurationError
from repro.workloads.traces.distributions import DistributionSpec

__all__ = ["DiurnalSpec", "VoSpec", "TraceSpec", "Mix"]

#: ``(workload, size-or-None, weight)`` triples, as in ``StreamSpec``.
Mix = Tuple[Tuple[str, Optional[str], float], ...]

_DEFAULT_MIX: Mix = (
    ("kmeans", None, 1.0),
    ("knn", None, 1.0),
    ("vortex", None, 1.0),
)


@dataclass(frozen=True)
class DiurnalSpec:
    """Deterministic day/week rate modulation of an arrival process.

    The instantaneous rate factor at simulated time ``t`` is::

        (1 + amplitude * sin(2*pi*(t - phase)/day_seconds))
        * (1 + week_amplitude * sin(2*pi*(t - phase)/(7*day_seconds)))

    Amplitudes live in ``[0, 1)`` so the factor stays strictly positive;
    a raw interarrival gap ``g`` drawn at time ``t`` stretches to
    ``g / rate_factor(t)`` — rush hours compress gaps, nights dilate
    them.  ``day_seconds`` is in the simulator's model units, so short
    broker experiments can use compressed "days".
    """

    day_seconds: float = 86400.0
    amplitude: float = 0.0
    phase: float = 0.0
    week_amplitude: float = 0.0

    def __post_init__(self) -> None:
        if self.day_seconds <= 0:
            raise ConfigurationError("diurnal day_seconds must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ConfigurationError("diurnal amplitude must be in [0, 1)")
        if not 0.0 <= self.week_amplitude < 1.0:
            raise ConfigurationError(
                "diurnal week_amplitude must be in [0, 1)"
            )

    def rate_factor(self, t: float) -> float:
        """The strictly positive rate multiplier at time ``t``."""
        day = 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * (t - self.phase) / self.day_seconds
        )
        week = 1.0 + self.week_amplitude * math.sin(
            2.0 * math.pi * (t - self.phase) / (7.0 * self.day_seconds)
        )
        return day * week

    def to_dict(self) -> Dict[str, Any]:
        return {
            "day_seconds": self.day_seconds,
            "amplitude": self.amplitude,
            "phase": self.phase,
            "week_amplitude": self.week_amplitude,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "DiurnalSpec":
        return cls(
            day_seconds=float(doc.get("day_seconds", 86400.0)),
            amplitude=float(doc.get("amplitude", 0.0)),
            phase=float(doc.get("phase", 0.0)),
            week_amplitude=float(doc.get("week_amplitude", 0.0)),
        )


def _parse_mix(entries: Any) -> Mix:
    mix: List[Tuple[str, Optional[str], float]] = []
    for entry in entries:
        entry = list(entry)
        if not entry:
            raise ConfigurationError("empty mix entry")
        workload = str(entry[0])
        size = entry[1] if len(entry) > 1 else None
        size = str(size) if size is not None else None
        weight = float(entry[2]) if len(entry) > 2 else 1.0
        mix.append((workload, size, weight))
    return tuple(mix)


@dataclass(frozen=True)
class VoSpec:
    """One virtual organisation's submission behaviour.

    ``weight`` is this VO's share of the trace's total job count;
    ``interarrival`` draws the gaps between its consecutive submissions.
    The remaining fields mean exactly what they do on ``StreamSpec`` —
    the stream generator is the single-VO Poisson special case.
    """

    name: str
    weight: float = 1.0
    interarrival: DistributionSpec = DistributionSpec.exponential(0.1)
    mix: Mix = _DEFAULT_MIX
    deadline_fraction: float = 0.0
    deadline_slack: Tuple[float, float] = (1.5, 3.0)
    priorities: Tuple[int, ...] = (0,)
    priority_weights: Tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("VOs need a non-empty name")
        if self.weight <= 0:
            raise ConfigurationError(
                f"VO '{self.name}': weight must be positive"
            )
        if not self.mix:
            raise ConfigurationError(
                f"VO '{self.name}': needs a non-empty workload mix"
            )
        if any(weight <= 0 for _, _, weight in self.mix):
            raise ConfigurationError(
                f"VO '{self.name}': mix weights must be positive"
            )
        if not 0.0 <= self.deadline_fraction <= 1.0:
            raise ConfigurationError(
                f"VO '{self.name}': deadline fraction must be in [0, 1]"
            )
        lo, hi = self.deadline_slack
        if not 0.0 < lo <= hi:
            raise ConfigurationError(
                f"VO '{self.name}': deadline slack must satisfy 0 < lo <= hi"
            )
        if not self.priorities:
            raise ConfigurationError(
                f"VO '{self.name}': priorities must be non-empty"
            )
        if self.priority_weights and len(self.priority_weights) != len(
            self.priorities
        ):
            raise ConfigurationError(
                f"VO '{self.name}': priority_weights must match priorities "
                "in length"
            )

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "weight": self.weight,
            "interarrival": self.interarrival.to_dict(),
            "mix": [list(entry) for entry in self.mix],
            "deadline_fraction": self.deadline_fraction,
            "deadline_slack": list(self.deadline_slack),
            "priorities": list(self.priorities),
        }
        if self.priority_weights:
            doc["priority_weights"] = list(self.priority_weights)
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "VoSpec":
        if "name" not in doc:
            raise ConfigurationError("VO spec needs a 'name'")
        kwargs: Dict[str, Any] = {
            "name": str(doc["name"]),
            "weight": float(doc.get("weight", 1.0)),
            "deadline_fraction": float(doc.get("deadline_fraction", 0.0)),
        }
        if "interarrival" in doc:
            kwargs["interarrival"] = DistributionSpec.from_dict(
                doc["interarrival"]
            )
        if "mix" in doc:
            kwargs["mix"] = _parse_mix(doc["mix"])
        if "deadline_slack" in doc:
            lo, hi = doc["deadline_slack"]
            kwargs["deadline_slack"] = (float(lo), float(hi))
        if "priorities" in doc:
            kwargs["priorities"] = tuple(int(p) for p in doc["priorities"])
        if "priority_weights" in doc:
            kwargs["priority_weights"] = tuple(
                float(w) for w in doc["priority_weights"]
            )
        return cls(**kwargs)


@dataclass(frozen=True)
class TraceSpec:
    """The full seeded recipe for one trace workload.

    ``count`` is the total job count across all VOs.  Each VO draws from
    its own child generator seeded ``[seed, vo_index]`` (NumPy seed
    sequences), so adding a VO or resizing one never perturbs another
    VO's draws.
    """

    name: str
    count: int
    seed: int = 0
    vos: Tuple[VoSpec, ...] = (VoSpec("default"),)
    modulation: Optional[DiurnalSpec] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("trace specs need a non-empty name")
        if self.count <= 0:
            raise ConfigurationError("trace count must be positive")
        if not self.vos:
            raise ConfigurationError("trace needs at least one VO")
        names = [vo.name for vo in self.vos]
        if len(set(names)) != len(names):
            raise ConfigurationError("VO names must be unique within a trace")

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "count": self.count,
            "seed": self.seed,
            "vos": [vo.to_dict() for vo in self.vos],
        }
        if self.modulation is not None:
            doc["modulation"] = self.modulation.to_dict()
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "TraceSpec":
        for key in ("name", "count"):
            if key not in doc:
                raise ConfigurationError(f"trace spec needs a '{key}'")
        vos_doc = doc.get("vos")
        if not vos_doc:
            raise ConfigurationError("trace spec needs a non-empty 'vos'")
        modulation = None
        if doc.get("modulation") is not None:
            modulation = DiurnalSpec.from_dict(doc["modulation"])
        return cls(
            name=str(doc["name"]),
            count=int(doc["count"]),
            seed=int(doc.get("seed", 0)),
            vos=tuple(VoSpec.from_dict(v) for v in vos_doc),
            modulation=modulation,
        )
