"""Experiment definitions reproducing the paper's evaluation.

- :mod:`repro.workloads.clusters`    — the two testbed clusters (700 MHz
  Pentium + Myrinet; 2.4 GHz Opteron 250 + InfiniBand) as simulator specs.
- :mod:`repro.workloads.configs`     — the (data nodes, compute nodes)
  configuration grid of Section 5 (1-1 through 8-16).
- :mod:`repro.workloads.registry`    — application + dataset builders for
  the paper's five workloads at the paper's dataset sizes.
- :mod:`repro.workloads.experiments` — per-figure experiment drivers
  (Figures 2-13).
- :mod:`repro.workloads.streams`     — seeded synthetic job streams for
  broker experiments.
"""

from repro.workloads.clusters import (
    DEFAULT_BANDWIDTH,
    opteron_infiniband_cluster,
    pentium_myrinet_cluster,
)
from repro.workloads.configs import (
    PAPER_CONFIG_GRID,
    config_grid,
    make_run_config,
)
from repro.workloads.registry import (
    WORKLOADS,
    WorkloadSpec,
    make_app,
    make_dataset,
)
from repro.workloads.streams import StreamSpec, generate_stream

__all__ = [
    "DEFAULT_BANDWIDTH",
    "opteron_infiniband_cluster",
    "pentium_myrinet_cluster",
    "PAPER_CONFIG_GRID",
    "config_grid",
    "make_run_config",
    "WORKLOADS",
    "WorkloadSpec",
    "make_app",
    "make_dataset",
    "StreamSpec",
    "generate_stream",
]
