"""Application + dataset builders for the paper's five workloads.

The paper's datasets are multi-GB; this reproduction runs a uniformly
scaled-down replica (see DESIGN.md), with **1 model megabyte standing in
for 1 paper gigabyte** (``MODEL_BYTES_PER_GB``).  Labels such as
``"1.4 GB"`` below refer to the paper's nominal sizes; the corresponding
model datasets keep the same *ratios*, which is all the prediction
framework is sensitive to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.apps import (
    AprioriMining,
    DefectDetection,
    EMClustering,
    KMeansClustering,
    KNNSearch,
    NeuralNetTraining,
    VortexDetection,
)
from repro.datagen.cfd import make_field_dataset
from repro.datagen.lattice import make_lattice_dataset
from repro.datagen.points import make_point_dataset, make_training_dataset
from repro.datagen.transactions import make_transaction_dataset
from repro.middleware.api import GeneralizedReduction
from repro.middleware.dataset import Dataset
from repro.simgrid.errors import ConfigurationError

__all__ = [
    "MODEL_BYTES_PER_GB",
    "WORKLOADS",
    "WorkloadSpec",
    "make_app",
    "make_dataset",
    "nominal_to_model_bytes",
]

#: 1 paper gigabyte is represented by 1e6 model bytes.
MODEL_BYTES_PER_GB = 1.0e6

#: Target model bytes per chunk ("4 MB" nominal chunks).  Fixed across
#: dataset sizes so per-byte chunk overheads (seeks, message latencies,
#: dispatch) are scale-invariant, as they are for a fixed ADR chunk size.
CHUNK_MODEL_BYTES = 4096.0

#: Never fewer chunks than this, so 16 compute nodes stay busy.
MIN_CHUNKS = 16


def nominal_to_model_bytes(gigabytes: float) -> float:
    """Convert a paper-nominal size in GB to model bytes."""
    if gigabytes <= 0:
        raise ConfigurationError("dataset size must be positive")
    return gigabytes * MODEL_BYTES_PER_GB


def _num_chunks(model_bytes: float) -> int:
    """Chunk count: ~4 MB nominal chunks, rounded up to a multiple of 16.

    The repository stripes chunks evenly over data nodes, and FREERIDE-G
    deals them evenly over compute nodes; keeping the count a multiple of
    16 means every power-of-two configuration in the paper's grid divides
    evenly — matching the evenly laid-out ADR datasets of the testbed.
    """
    raw = max(MIN_CHUNKS, int(round(model_bytes / CHUNK_MODEL_BYTES)))
    return ((raw + 15) // 16) * 16


def _points_builder(
    num_centers: int, bytes_per_record: float = 16.0, labeled: bool = False
) -> Callable[[str, float, int], Dataset]:
    def build(name: str, model_bytes: float, seed: int) -> Dataset:
        chunks = _num_chunks(model_bytes)
        # A whole number of records per chunk keeps chunk sizes uniform.
        per_chunk = max(round(model_bytes / (bytes_per_record * chunks)), 1)
        num_points = per_chunk * chunks
        model_bytes = num_points * bytes_per_record
        if labeled:
            return make_training_dataset(
                name,
                num_points=num_points,
                num_dims=4,
                num_classes=num_centers,
                num_chunks=chunks,
                nbytes=model_bytes,
                seed=seed,
            )
        return make_point_dataset(
            name,
            num_points=num_points,
            num_dims=4,
            num_centers=num_centers,
            num_chunks=chunks,
            nbytes=model_bytes,
            seed=seed,
        )

    return build


def _field_builder() -> Callable[[str, float, int], Dataset]:
    def build(name: str, model_bytes: float, seed: int) -> Dataset:
        nx = 300
        chunks = _num_chunks(model_bytes)
        # A whole number of rows per chunk keeps row blocks uniform.
        rows_per_chunk = max(round(model_bytes / (8.0 * nx * chunks)), 1)
        ny = rows_per_chunk * chunks
        return make_field_dataset(
            name,
            ny=ny,
            nx=nx,
            num_chunks=chunks,
            nbytes=ny * nx * 8.0,
            seed=seed,
        )

    return build


def _transactions_builder(
    num_items: int = 48,
) -> Callable[[str, float, int], Dataset]:
    bytes_per_record = float(num_items)  # one model byte per item flag

    def build(name: str, model_bytes: float, seed: int) -> Dataset:
        chunks = _num_chunks(model_bytes)
        per_chunk = max(round(model_bytes / (bytes_per_record * chunks)), 1)
        num_transactions = per_chunk * chunks
        return make_transaction_dataset(
            name,
            num_transactions=num_transactions,
            num_items=num_items,
            num_chunks=chunks,
            nbytes=num_transactions * bytes_per_record,
            seed=seed,
        )

    return build


def _lattice_builder() -> Callable[[str, float, int], Dataset]:
    def build(name: str, model_bytes: float, seed: int) -> Dataset:
        nx = ny = 12
        chunks = _num_chunks(model_bytes)
        # A whole number of layers per chunk keeps z-slabs uniform.
        layers_per_chunk = max(
            round(model_bytes / (16.0 * nx * ny * chunks)), 1
        )
        nz = layers_per_chunk * chunks
        return make_lattice_dataset(
            name,
            nz=nz,
            ny=ny,
            nx=nx,
            num_chunks=chunks,
            nbytes=nz * ny * nx * 16.0,
            seed=seed,
        )

    return build


@dataclass(frozen=True)
class WorkloadSpec:
    """One paper workload: the application plus its dataset family.

    ``paper_object_class`` / ``paper_global_class`` record the model
    classes the paper states it used for the application (Section 5);
    ``natural_object_class`` / ``natural_global_class`` are the classes
    this reimplementation's algorithms actually exhibit (they differ only
    for EM — see DESIGN.md's model-fidelity notes).  Experiments use the
    *natural* classes, which is also what the paper's auto-detection
    procedure would select.
    """

    name: str
    app_factory: Callable[[], GeneralizedReduction]
    dataset_builder: Callable[[str, float, int], Dataset]
    dataset_sizes_gb: Dict[str, float]
    default_size: str
    paper_object_class: str
    paper_global_class: str
    natural_object_class: str
    natural_global_class: str
    seed: int = 0
    #: True for the five workloads of the paper's evaluation (Figures
    #: 2-13); False for the Section 2.2 extension workloads.
    in_paper_evaluation: bool = True

    def make_dataset(self, size_label: str | None = None) -> Dataset:
        """Build the dataset for one of the paper's named sizes."""
        label = size_label or self.default_size
        if label not in self.dataset_sizes_gb:
            raise ConfigurationError(
                f"workload '{self.name}' has no dataset size '{label}'; "
                f"known sizes: {sorted(self.dataset_sizes_gb)}"
            )
        model_bytes = nominal_to_model_bytes(self.dataset_sizes_gb[label])
        return self.dataset_builder(
            f"{self.name}-{label.replace(' ', '')}", model_bytes, self.seed
        )

    def make_app(self) -> GeneralizedReduction:
        """A fresh application instance with the evaluation parameters."""
        return self.app_factory()

    def model_bytes(self, size_label: str | None = None) -> float:
        """Model bytes of one of the named sizes."""
        label = size_label or self.default_size
        return nominal_to_model_bytes(self.dataset_sizes_gb[label])


WORKLOADS: Dict[str, WorkloadSpec] = {
    "kmeans": WorkloadSpec(
        name="kmeans",
        app_factory=KMeansClustering,
        dataset_builder=_points_builder(num_centers=10),
        dataset_sizes_gb={"1.4 GB": 1.4, "350 MB": 0.35, "700 MB": 0.7},
        default_size="1.4 GB",
        paper_object_class="constant",
        paper_global_class="linear-constant",
        natural_object_class="constant",
        natural_global_class="linear-constant",
        seed=101,
    ),
    "em": WorkloadSpec(
        name="em",
        app_factory=EMClustering,
        dataset_builder=_points_builder(num_centers=6),
        dataset_sizes_gb={"1.4 GB": 1.4, "350 MB": 0.35, "700 MB": 0.7},
        default_size="1.4 GB",
        paper_object_class="linear",
        paper_global_class="constant-linear",
        natural_object_class="constant",
        natural_global_class="linear-constant",
        seed=202,
    ),
    "knn": WorkloadSpec(
        name="knn",
        app_factory=KNNSearch,
        dataset_builder=_points_builder(
            num_centers=8, bytes_per_record=20.0, labeled=True
        ),
        dataset_sizes_gb={"1.4 GB": 1.4, "350 MB": 0.35, "700 MB": 0.7},
        default_size="1.4 GB",
        paper_object_class="constant",
        paper_global_class="linear-constant",
        natural_object_class="constant",
        natural_global_class="linear-constant",
        seed=303,
    ),
    "vortex": WorkloadSpec(
        name="vortex",
        app_factory=VortexDetection,
        dataset_builder=_field_builder(),
        dataset_sizes_gb={"710 MB": 0.71, "1.85 GB": 1.85},
        default_size="710 MB",
        paper_object_class="linear",
        paper_global_class="constant-linear",
        natural_object_class="linear",
        natural_global_class="constant-linear",
        seed=404,
    ),
    "defect": WorkloadSpec(
        name="defect",
        app_factory=DefectDetection,
        dataset_builder=_lattice_builder(),
        dataset_sizes_gb={"130 MB": 0.13, "1.8 GB": 1.8},
        default_size="130 MB",
        paper_object_class="linear",
        paper_global_class="constant-linear",
        natural_object_class="linear",
        natural_global_class="constant-linear",
        seed=505,
    ),
    # ------------------------------------------------------------------
    # Extension workloads: named by the paper's Section 2.2 as canonical
    # generalized reductions, but not part of its evaluation figures.
    # ------------------------------------------------------------------
    "apriori": WorkloadSpec(
        name="apriori",
        app_factory=AprioriMining,
        dataset_builder=_transactions_builder(),
        dataset_sizes_gb={"1 GB": 1.0, "250 MB": 0.25},
        default_size="1 GB",
        paper_object_class="constant",
        paper_global_class="linear-constant",
        natural_object_class="constant",
        natural_global_class="linear-constant",
        seed=606,
        in_paper_evaluation=False,
    ),
    "neuralnet": WorkloadSpec(
        name="neuralnet",
        app_factory=NeuralNetTraining,
        dataset_builder=_points_builder(
            num_centers=8, bytes_per_record=20.0, labeled=True
        ),
        dataset_sizes_gb={"1 GB": 1.0, "250 MB": 0.25},
        default_size="1 GB",
        paper_object_class="constant",
        paper_global_class="linear-constant",
        natural_object_class="constant",
        natural_global_class="linear-constant",
        seed=707,
        in_paper_evaluation=False,
    ),
}


def make_app(name: str) -> GeneralizedReduction:
    """A fresh application instance for a workload name."""
    return _workload(name).make_app()


def make_dataset(name: str, size_label: str | None = None) -> Dataset:
    """The dataset for a workload at one of its named sizes."""
    return _workload(name).make_dataset(size_label)


def _workload(name: str) -> WorkloadSpec:
    spec = WORKLOADS.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown workload '{name}'; known: {sorted(WORKLOADS)}"
        )
    return spec
