"""Per-figure experiment drivers for the paper's evaluation (Figures 2-13).

Every experiment follows the paper's protocol exactly:

1. Execute the application once on the **base profile** configuration and
   collect the :class:`~repro.core.profile.Profile`.
2. For every target configuration in the grid, execute the application for
   real (the "actual" time) and predict its execution time from the profile
   alone.
3. Report ``E = |T_exact - T_predicted| / T_exact`` per configuration.

The drivers return structured :class:`ExperimentResult` objects consumed by
the benchmark harness, the report formatter and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import (
    CrossClusterPredictor,
    DegradedModePredictor,
    GlobalReductionModel,
    ModelClasses,
    NoCommunicationModel,
    PredictionModel,
    PredictionTarget,
    Profile,
    ReductionCommunicationModel,
    measure_scaling_factors,
    relative_error,
)
from repro.faults import injector_from_dict, schedule_from_dict
from repro.middleware import FreerideGRuntime
from repro.middleware.scheduler import RunConfig
from repro.simgrid.errors import ConfigurationError
from repro.simgrid.hardware import ClusterSpec
from repro.workloads.clusters import (
    DEFAULT_BANDWIDTH,
    HALF_LOW_BANDWIDTH,
    LOW_BANDWIDTH,
    opteron_infiniband_cluster,
    pentium_myrinet_cluster,
)
from repro.workloads.configs import PAPER_CONFIG_GRID, make_run_config
from repro.workloads.registry import WORKLOADS, WorkloadSpec

__all__ = [
    "ExperimentRow",
    "ExperimentResult",
    "EXPERIMENTS",
    "FAST_CONFIG_GRID",
    "run_experiment",
    "run_model_comparison",
    "run_dataset_scaling",
    "run_bandwidth_scaling",
    "run_cross_cluster",
    "run_fault_scenario",
]

#: Reduced grid used by tests (`fast=True`) to keep runtimes low.
FAST_CONFIG_GRID: List[Tuple[int, int]] = [(1, 1), (1, 4), (2, 4), (4, 8)]


@dataclass(frozen=True)
class ExperimentRow:
    """One (configuration, model) cell of a figure."""

    data_nodes: int
    compute_nodes: int
    model: str
    actual: float
    predicted: float

    @property
    def label(self) -> str:
        return f"{self.data_nodes}-{self.compute_nodes}"

    @property
    def error(self) -> float:
        """Relative prediction error (fraction)."""
        return relative_error(self.actual, self.predicted)


@dataclass
class ExperimentResult:
    """All rows of one reproduced figure."""

    experiment_id: str
    title: str
    workload: str
    rows: List[ExperimentRow] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def models(self) -> List[str]:
        """Model labels present, in first-appearance order."""
        seen: List[str] = []
        for row in self.rows:
            if row.model not in seen:
                seen.append(row.model)
        return seen

    def rows_for_model(self, model: str) -> List[ExperimentRow]:
        """All rows produced by one model."""
        return [r for r in self.rows if r.model == model]

    def errors_for_model(self, model: str) -> List[float]:
        """Relative errors of one model across configurations."""
        return [r.error for r in self.rows_for_model(model)]

    def max_error(self, model: str) -> float:
        """Worst-case relative error of one model."""
        errors = self.errors_for_model(model)
        if not errors:
            raise ConfigurationError(f"no rows for model '{model}'")
        return max(errors)

    def mean_error(self, model: str) -> float:
        """Mean relative error of one model."""
        errors = self.errors_for_model(model)
        if not errors:
            raise ConfigurationError(f"no rows for model '{model}'")
        return sum(errors) / len(errors)


def _workload(name: str) -> WorkloadSpec:
    spec = WORKLOADS.get(name)
    if spec is None:
        raise ConfigurationError(f"unknown workload '{name}'")
    return spec


def _execute(
    spec: WorkloadSpec,
    config: RunConfig,
    size_label: Optional[str],
):
    dataset = spec.make_dataset(size_label)
    result = FreerideGRuntime(config).execute(spec.make_app(), dataset)
    return dataset, result


def _natural_classes(spec: WorkloadSpec) -> ModelClasses:
    return ModelClasses.parse(
        spec.natural_object_class, spec.natural_global_class
    )


def _grid(fast: bool) -> List[Tuple[int, int]]:
    return FAST_CONFIG_GRID if fast else list(PAPER_CONFIG_GRID)


# ---------------------------------------------------------------------------
# Figures 2-6: the three model levels across the configuration grid.
# ---------------------------------------------------------------------------


def run_model_comparison(
    workload: str,
    experiment_id: str,
    title: str,
    size_label: Optional[str] = None,
    fast: bool = False,
) -> ExperimentResult:
    """Compare the no-communication / reduction-communication / global-
    reduction models, base profile 1-1 (Figures 2-6)."""
    spec = _workload(workload)
    classes = _natural_classes(spec)
    models: List[PredictionModel] = [
        NoCommunicationModel(),
        ReductionCommunicationModel(classes),
        GlobalReductionModel(classes),
    ]

    profile_config = make_run_config(1, 1)
    dataset, profile_run = _execute(spec, profile_config, size_label)
    profile = Profile.from_run(profile_config, profile_run.breakdown)

    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        workload=workload,
        metadata={
            "base_profile": "1-1",
            "dataset": size_label or spec.default_size,
            "dataset_bytes": dataset.nbytes,
        },
    )
    for n, c in _grid(fast):
        config = make_run_config(n, c)
        _, run = _execute(spec, config, size_label)
        target = PredictionTarget(config=config, dataset_bytes=dataset.nbytes)
        for model in models:
            predicted = model.predict(profile, target)
            result.rows.append(
                ExperimentRow(
                    data_nodes=n,
                    compute_nodes=c,
                    model=model.label,
                    actual=run.breakdown.total,
                    predicted=predicted.total,
                )
            )
    return result


# ---------------------------------------------------------------------------
# Figures 7-8: dataset-size scaling, global-reduction model only.
# ---------------------------------------------------------------------------


def run_dataset_scaling(
    workload: str,
    experiment_id: str,
    title: str,
    profile_size: str,
    target_size: str,
    fast: bool = False,
) -> ExperimentResult:
    """Profile on a small dataset, predict a large one (Figures 7-8)."""
    spec = _workload(workload)
    model = GlobalReductionModel(_natural_classes(spec))

    profile_config = make_run_config(1, 1)
    _, profile_run = _execute(spec, profile_config, profile_size)
    profile = Profile.from_run(profile_config, profile_run.breakdown)

    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        workload=workload,
        metadata={
            "base_profile": "1-1",
            "profile_dataset": profile_size,
            "target_dataset": target_size,
        },
    )
    for n, c in _grid(fast):
        config = make_run_config(n, c)
        dataset, run = _execute(spec, config, target_size)
        target = PredictionTarget(config=config, dataset_bytes=dataset.nbytes)
        predicted = model.predict(profile, target)
        result.rows.append(
            ExperimentRow(
                data_nodes=n,
                compute_nodes=c,
                model=model.label,
                actual=run.breakdown.total,
                predicted=predicted.total,
            )
        )
    return result


# ---------------------------------------------------------------------------
# Figures 9-10: network-bandwidth change, global-reduction model only.
# ---------------------------------------------------------------------------


def run_bandwidth_scaling(
    workload: str,
    experiment_id: str,
    title: str,
    profile_bandwidth: float = LOW_BANDWIDTH,
    target_bandwidth: float = HALF_LOW_BANDWIDTH,
    fast: bool = False,
) -> ExperimentResult:
    """Profile at one synthetic bandwidth, predict another (Figures 9-10)."""
    spec = _workload(workload)
    model = GlobalReductionModel(_natural_classes(spec))

    profile_config = make_run_config(1, 1, bandwidth=profile_bandwidth)
    dataset, profile_run = _execute(spec, profile_config, None)
    profile = Profile.from_run(profile_config, profile_run.breakdown)

    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        workload=workload,
        metadata={
            "base_profile": "1-1",
            "profile_bandwidth": profile_bandwidth,
            "target_bandwidth": target_bandwidth,
        },
    )
    for n, c in _grid(fast):
        config = make_run_config(n, c, bandwidth=target_bandwidth)
        _, run = _execute(spec, config, None)
        target = PredictionTarget(config=config, dataset_bytes=dataset.nbytes)
        predicted = model.predict(profile, target)
        result.rows.append(
            ExperimentRow(
                data_nodes=n,
                compute_nodes=c,
                model=model.label,
                actual=run.breakdown.total,
                predicted=predicted.total,
            )
        )
    return result


# ---------------------------------------------------------------------------
# Figures 11-13: predictions for a different type of cluster.
# ---------------------------------------------------------------------------


def run_cross_cluster(
    workload: str,
    experiment_id: str,
    title: str,
    profile_size: str,
    target_size: str,
    profile_nodes: Tuple[int, int],
    representatives: Sequence[str],
    fast: bool = False,
    factor_nodes: Tuple[int, int] = (2, 4),
) -> ExperimentResult:
    """Predict Opteron-cluster execution from a Pentium-cluster profile.

    Component scaling factors are measured with the representative
    applications executed on identical configurations on both clusters
    (Section 3.4); the application under test is excluded from that set,
    matching the paper's protocol.
    """
    spec = _workload(workload)
    if workload in representatives:
        raise ConfigurationError(
            "the predicted application must not be a representative"
        )
    pentium = pentium_myrinet_cluster()
    opteron = opteron_infiniband_cluster()

    pairs = []
    rep_n, rep_c = factor_nodes
    for rep_name in representatives:
        rep = _workload(rep_name)
        config_a = make_run_config(rep_n, rep_c, storage_cluster=pentium)
        dataset_a = rep.make_dataset(None)
        run_a = FreerideGRuntime(config_a).execute(rep.make_app(), dataset_a)
        config_b = make_run_config(rep_n, rep_c, storage_cluster=opteron)
        run_b = FreerideGRuntime(config_b).execute(rep.make_app(), dataset_a)
        pairs.append(
            (
                Profile.from_run(config_a, run_a.breakdown),
                Profile.from_run(config_b, run_b.breakdown),
            )
        )
    factors = measure_scaling_factors(pairs)

    model = CrossClusterPredictor(
        GlobalReductionModel(_natural_classes(spec)), factors
    )

    pn, pc = profile_nodes
    profile_config = make_run_config(pn, pc, storage_cluster=pentium)
    _, profile_run = _execute(spec, profile_config, profile_size)
    profile = Profile.from_run(profile_config, profile_run.breakdown)

    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        workload=workload,
        metadata={
            "base_profile": f"{pn}-{pc}",
            "profile_dataset": profile_size,
            "target_dataset": target_size,
            "representatives": list(representatives),
            "sd": factors.sd,
            "sn": factors.sn,
            "sc": factors.sc,
            "per_app_sc": {
                app: ratios[2]
                for app, ratios in (factors.per_app or {}).items()
            },
        },
    )
    for n, c in _grid(fast):
        config = make_run_config(n, c, storage_cluster=opteron)
        dataset, run = _execute(spec, config, target_size)
        target = PredictionTarget(config=config, dataset_bytes=dataset.nbytes)
        predicted = model.predict(profile, target)
        result.rows.append(
            ExperimentRow(
                data_nodes=n,
                compute_nodes=c,
                model=model.label,
                actual=run.breakdown.total,
                predicted=predicted.total,
            )
        )
    return result


# ---------------------------------------------------------------------------
# Fault-scenario sweeps: campaign entries for unreliable-grid coverage.
# ---------------------------------------------------------------------------


def run_fault_scenario(
    workload: str,
    experiment_id: str,
    title: str,
    scenario: Dict[str, object],
    size_label: Optional[str] = None,
    fast: bool = False,
) -> ExperimentResult:
    """Sweep a fault scenario across the configuration grid.

    The Figure 2-6 protocol extended to unreliable grids: profile once on
    a clean 1-1 run, then execute every grid configuration under the
    fault schedule of ``scenario`` (the :mod:`repro.faults.scenario` JSON
    mapping) and predict it with the degraded-mode model, which adds the
    expected recovery term for the schedule.  The scenario must be valid
    for every configuration in the grid (node indices in range).
    """
    spec = _workload(workload)
    schedule = schedule_from_dict(scenario)
    predictor = DegradedModePredictor(
        GlobalReductionModel(_natural_classes(spec))
    )

    profile_config = make_run_config(1, 1)
    _, profile_run = _execute(spec, profile_config, size_label)
    profile = Profile.from_run(profile_config, profile_run.breakdown)

    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        workload=workload,
        metadata={
            "base_profile": "1-1",
            "dataset": size_label or spec.default_size,
            "scenario": dict(scenario),
        },
    )
    for n, c in _grid(fast):
        config = make_run_config(n, c)
        dataset = spec.make_dataset(size_label)
        run = FreerideGRuntime(
            config, faults=injector_from_dict(scenario)
        ).execute(spec.make_app(), dataset)
        target = PredictionTarget(config=config, dataset_bytes=dataset.nbytes)
        predicted = predictor.predict(profile, target, schedule)
        result.rows.append(
            ExperimentRow(
                data_nodes=n,
                compute_nodes=c,
                model="degraded mode",
                actual=run.breakdown.total,
                predicted=predicted.total,
            )
        )
    return result


# ---------------------------------------------------------------------------
# The figure registry.
# ---------------------------------------------------------------------------

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig02": lambda fast=False: run_model_comparison(
        "kmeans",
        "fig02",
        "Prediction Errors for k-means Clustering, base profile 1-1, 1.4 GB",
        fast=fast,
    ),
    "fig03": lambda fast=False: run_model_comparison(
        "vortex",
        "fig03",
        "Prediction Errors for Vortex Detection, base profile 1-1, 710 MB",
        fast=fast,
    ),
    "fig04": lambda fast=False: run_model_comparison(
        "defect",
        "fig04",
        "Prediction Errors for Molecular Defect Detection, base profile 1-1, 130 MB",
        fast=fast,
    ),
    "fig05": lambda fast=False: run_model_comparison(
        "em",
        "fig05",
        "Prediction Errors for EM Clustering, base profile 1-1, 1.4 GB",
        fast=fast,
    ),
    "fig06": lambda fast=False: run_model_comparison(
        "knn",
        "fig06",
        "Prediction Errors for KNN Search, base profile 1-1, 1.4 GB",
        fast=fast,
    ),
    "fig07": lambda fast=False: run_dataset_scaling(
        "em",
        "fig07",
        "Prediction Errors for EM Clustering, 1.4 GB dataset, "
        "base profile 1-1 with 350 MB",
        profile_size="350 MB",
        target_size="1.4 GB",
        fast=fast,
    ),
    "fig08": lambda fast=False: run_dataset_scaling(
        "defect",
        "fig08",
        "Prediction Errors for Molecular Defect Detection with 1.8 GB "
        "dataset, base profile 1-1 with 130 MB",
        profile_size="130 MB",
        target_size="1.8 GB",
        fast=fast,
    ),
    "fig09": lambda fast=False: run_bandwidth_scaling(
        "defect",
        "fig09",
        "Prediction Errors for Molecular Defect Detection with 250 Kbps, "
        "base profile 1-1 with 500 Kbps",
        fast=fast,
    ),
    "fig10": lambda fast=False: run_bandwidth_scaling(
        "em",
        "fig10",
        "Prediction Errors for EM Clustering with 250 Kbps, "
        "base profile 1-1 with 500 Kbps",
        fast=fast,
    ),
    "fig11": lambda fast=False: run_cross_cluster(
        "em",
        "fig11",
        "Prediction Errors for EM Clustering on a Different Cluster, "
        "700 MB dataset, base profile 8-8 with 350 MB",
        profile_size="350 MB",
        target_size="700 MB",
        profile_nodes=(8, 8),
        representatives=("kmeans", "knn", "vortex"),
        fast=fast,
    ),
    "fig12": lambda fast=False: run_cross_cluster(
        "defect",
        "fig12",
        "Prediction Errors for Molecular Defect Detection on a Different "
        "Cluster, 1.8 GB dataset, base profile 4-4 with 130 MB",
        profile_size="130 MB",
        target_size="1.8 GB",
        profile_nodes=(4, 4),
        representatives=("kmeans", "knn", "em"),
        fast=fast,
    ),
    "fig13": lambda fast=False: run_cross_cluster(
        "vortex",
        "fig13",
        "Prediction Errors for Vortex Detection on a Different Cluster, "
        "1.85 GB dataset, base profile 1-1 with 710 MB",
        profile_size="710 MB",
        target_size="1.85 GB",
        profile_nodes=(1, 1),
        representatives=("kmeans", "knn", "em"),
        fast=fast,
    ),
    # ------------------------------------------------------------------
    # Extension experiments: the Section 2.2 applications the paper names
    # but does not evaluate, run under the Figure 2-6 protocol.
    # ------------------------------------------------------------------
    "ext-apriori": lambda fast=False: run_model_comparison(
        "apriori",
        "ext-apriori",
        "Prediction Errors for Apriori Association Mining (extension), "
        "base profile 1-1, 1 GB",
        fast=fast,
    ),
    "ext-neuralnet": lambda fast=False: run_model_comparison(
        "neuralnet",
        "ext-neuralnet",
        "Prediction Errors for Neural Network Training (extension), "
        "base profile 1-1, 1 GB",
        fast=fast,
    ),
}


def run_experiment(experiment_id: str, fast: bool = False) -> ExperimentResult:
    """Run one figure reproduction by id (``"fig02"`` ... ``"fig13"``)."""
    runner = EXPERIMENTS.get(experiment_id)
    if runner is None:
        raise ConfigurationError(
            f"unknown experiment '{experiment_id}'; known: {sorted(EXPERIMENTS)}"
        )
    return runner(fast=fast)
