"""Seeded job-stream generators for broker experiments.

A :class:`StreamSpec` describes a synthetic arrival process — Poisson
arrivals (exponential inter-arrival times), a workload mix, optional
deadlines drawn as a slack multiple of each workload's best predicted
execution time, and a priority distribution.  :func:`generate_stream`
expands it into concrete :class:`~repro.broker.jobs.BrokerJob` objects
using a seeded NumPy generator, so the same spec always yields the same
stream — the foundation of the broker's bit-identical replay guarantee.

Since the trace layer landed (DESIGN.md §16) this module is a thin
front-end over :mod:`repro.workloads.traces`: the exponential gap draw
is ``DistributionSpec.exponential(mean)`` — Poisson is just one
distribution choice in that family — and the per-job field loop is the
shared :func:`repro.workloads.traces.generate.realize_jobs`.  Both
issue exactly the NumPy calls the pre-trace generator made, so every
historical seeded stream replays byte-identically (the golden under
``tests/workloads/goldens/stream_golden.json`` pins this).

Draw order is fixed (all inter-arrival gaps first, then per job: mix
index, priority index, deadline coin, slack): changing it would silently
change every seeded experiment, so treat it as part of the format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.simgrid.errors import ConfigurationError

__all__ = ["StreamSpec", "generate_stream", "stream_horizon"]

#: ``baselines`` may be a callable ``(workload, size) -> seconds`` or a
#: mapping keyed like :attr:`BrokerJob.dataset_key`.
Baselines = Union[
    Callable[[str, Optional[str]], float], Mapping[str, float], None
]


@dataclass(frozen=True)
class StreamSpec:
    """A deterministic recipe for a synthetic job stream.

    ``mix`` entries are ``(workload, size, weight)``; ``size`` may be
    ``None`` for the workload's default dataset.  ``deadline_fraction``
    of jobs get a deadline ``arrival + slack * baseline`` where slack is
    uniform over ``deadline_slack`` and baseline is the workload's best
    predicted execution time on the target grid.
    """

    count: int
    seed: int = 0
    mean_interarrival: float = 0.1
    mix: Tuple[Tuple[str, Optional[str], float], ...] = (
        ("kmeans", None, 1.0),
        ("knn", None, 1.0),
        ("vortex", None, 1.0),
    )
    deadline_fraction: float = 0.0
    deadline_slack: Tuple[float, float] = (1.5, 3.0)
    priorities: Tuple[int, ...] = (0,)
    priority_weights: Tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ConfigurationError("stream count must be positive")
        if self.mean_interarrival <= 0:
            raise ConfigurationError("mean inter-arrival must be positive")
        if not self.mix:
            raise ConfigurationError("stream needs a non-empty workload mix")
        if any(weight <= 0 for _, _, weight in self.mix):
            raise ConfigurationError("mix weights must be positive")
        if not 0.0 <= self.deadline_fraction <= 1.0:
            raise ConfigurationError("deadline fraction must be in [0, 1]")
        lo, hi = self.deadline_slack
        if not 0.0 < lo <= hi:
            raise ConfigurationError(
                "deadline slack must satisfy 0 < lo <= hi"
            )
        if not self.priorities:
            raise ConfigurationError("priorities must be non-empty")
        if self.priority_weights and len(self.priority_weights) != len(
            self.priorities
        ):
            raise ConfigurationError(
                "priority_weights must match priorities in length"
            )

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "StreamSpec":
        """Parse the ``stream`` section of a broker workload document.

        Example::

            {"count": 200, "seed": 7, "mean_interarrival": 0.05,
             "mix": [["kmeans", null, 2.0], ["em", null, 1.0]],
             "deadline_fraction": 0.4, "deadline_slack": [1.5, 3.0],
             "priorities": [0, 1]}
        """
        if "count" not in doc:
            raise ConfigurationError("stream spec needs a 'count'")
        kwargs: dict = {
            "count": int(doc["count"]),
            "seed": int(doc.get("seed", 0)),
            "mean_interarrival": float(doc.get("mean_interarrival", 0.1)),
            "deadline_fraction": float(doc.get("deadline_fraction", 0.0)),
        }
        if "mix" in doc:
            mix: List[Tuple[str, Optional[str], float]] = []
            for entry in doc["mix"]:
                entry = list(entry)
                if not entry:
                    raise ConfigurationError("empty mix entry")
                workload = str(entry[0])
                size = entry[1] if len(entry) > 1 else None
                size = str(size) if size is not None else None
                weight = float(entry[2]) if len(entry) > 2 else 1.0
                mix.append((workload, size, weight))
            kwargs["mix"] = tuple(mix)
        if "deadline_slack" in doc:
            lo, hi = doc["deadline_slack"]
            kwargs["deadline_slack"] = (float(lo), float(hi))
        if "priorities" in doc:
            kwargs["priorities"] = tuple(int(p) for p in doc["priorities"])
        if "priority_weights" in doc:
            kwargs["priority_weights"] = tuple(
                float(w) for w in doc["priority_weights"]
            )
        return cls(**kwargs)


def _baseline_for(
    baselines: Baselines, workload: str, size: Optional[str]
) -> float:
    key = f"{workload}@{size}" if size else workload
    if baselines is None:
        raise ConfigurationError(
            "stream draws deadlines but no baselines were provided; "
            "pass a mapping or GridBroker.baseline_estimate"
        )
    if callable(baselines):
        value = baselines(workload, size)
    else:
        if key not in baselines:
            raise ConfigurationError(f"no baseline for dataset '{key}'")
        value = baselines[key]
    value = float(value)
    if value <= 0:
        raise ConfigurationError(f"baseline for '{key}' must be positive")
    return value


def stream_horizon(jobs) -> float:
    """A fault-injection horizon covering a job stream's arrival span.

    The chaos timeline generator draws fault times over ``[0, horizon)``;
    one-and-a-half times the last arrival (with a 1-second floor for
    bursty short streams) keeps grid weather landing where jobs are
    actually contending rather than long after the stream drains.
    """
    if not jobs:
        raise ConfigurationError("cannot size a horizon for an empty stream")
    return max(1.0, 1.5 * max(job.arrival for job in jobs))


def generate_stream(spec: StreamSpec, baselines: Baselines = None) -> List:
    """Expand a :class:`StreamSpec` into a deterministic job list.

    Returns :class:`~repro.broker.jobs.BrokerJob` objects sorted by
    arrival.  ``baselines`` is only consulted when the spec draws
    deadlines.

    This is the single-VO exponential special case of the trace layer:
    the gap draw and the per-job loop below issue byte-for-byte the
    same generator calls as the pre-trace implementation.
    """
    # Imported here: the trace layer imports this module for
    # ``_baseline_for``; a module-scope import back would cycle.
    from repro.workloads.traces.distributions import DistributionSpec
    from repro.workloads.traces.generate import realize_jobs

    rng = np.random.default_rng(spec.seed)
    interarrival = DistributionSpec.exponential(spec.mean_interarrival)
    arrivals = np.cumsum(interarrival.sample(rng, spec.count))
    return realize_jobs(
        rng,
        arrivals,
        mix=spec.mix,
        priorities=spec.priorities,
        priority_weights=spec.priority_weights,
        deadline_fraction=spec.deadline_fraction,
        deadline_slack=spec.deadline_slack,
        baselines=baselines,
        job_id_for=lambda i, workload: f"job{i:04d}-{workload}",
    )
