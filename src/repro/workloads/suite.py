"""One-call reproduction of the paper's entire evaluation.

``run_paper_suite`` executes every registered experiment (Figures 2-13
plus the extension experiments), checks each against its recorded
:class:`~repro.analysis.expectations.FigureExpectation`, and returns a
:class:`SuiteReport`.  The CLI exposes it as ``repro suite``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.expectations import EXPECTATIONS, check_expectation
from repro.simgrid.errors import ConfigurationError
from repro.workloads.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    run_experiment,
)

__all__ = ["SuiteEntry", "SuiteReport", "run_paper_suite"]


@dataclass(frozen=True)
class SuiteEntry:
    """Outcome of one experiment within a suite run."""

    experiment_id: str
    result: ExperimentResult
    violations: List[str]
    elapsed_s: float

    @property
    def ok(self) -> bool:
        """True when every recorded claim of the paper held."""
        return not self.violations


@dataclass
class SuiteReport:
    """All experiments of one suite run."""

    entries: List[SuiteEntry] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the whole reproduction matches the paper."""
        return all(entry.ok for entry in self.entries)

    @property
    def failures(self) -> List[SuiteEntry]:
        """Entries with violated claims."""
        return [entry for entry in self.entries if not entry.ok]

    def entry(self, experiment_id: str) -> SuiteEntry:
        for candidate in self.entries:
            if candidate.experiment_id == experiment_id:
                return candidate
        raise ConfigurationError(f"no suite entry for '{experiment_id}'")

    def summary_lines(self) -> List[str]:
        """One status line per experiment (for the CLI)."""
        lines = []
        for entry in self.entries:
            status = "ok" if entry.ok else "MISMATCH"
            lines.append(
                f"{entry.experiment_id:14s} {status:8s} "
                f"({entry.elapsed_s:5.1f}s)  {entry.result.title}"
            )
            for violation in entry.violations:
                lines.append(f"{'':14s} !! {violation}")
        return lines


def run_paper_suite(
    fast: bool = False,
    experiment_ids: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SuiteReport:
    """Run experiments (all by default) and check the paper's claims.

    ``fast=True`` uses the reduced configuration grid — quick smoke
    coverage; the claims that need the full grid are skipped
    automatically by the checker.
    """
    ids = list(experiment_ids) if experiment_ids else sorted(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise ConfigurationError(f"unknown experiments: {unknown}")

    report = SuiteReport()
    for experiment_id in ids:
        start = time.perf_counter()
        result = run_experiment(experiment_id, fast=fast)
        elapsed = time.perf_counter() - start
        violations = (
            check_expectation(result)
            if experiment_id in EXPECTATIONS
            else []
        )
        report.entries.append(
            SuiteEntry(
                experiment_id=experiment_id,
                result=result,
                violations=violations,
                elapsed_s=elapsed,
            )
        )
        if progress is not None:
            status = "ok" if not violations else "MISMATCH"
            progress(f"{experiment_id} {status} ({elapsed:.1f}s)")
    return report
