"""One-call reproduction of the paper's entire evaluation.

``run_paper_suite`` executes every registered experiment (Figures 2-13
plus the extension experiments), checks each against its recorded
:class:`~repro.analysis.expectations.FigureExpectation`, and returns a
:class:`SuiteReport`.  The CLI exposes it as ``repro suite``.

With a ``journal`` path the suite runs on the crash-safe campaign
engine (:mod:`repro.campaign`): every finished experiment is durably
committed, a killed run resumes with ``resume=True`` re-running only the
incomplete experiments, and per-experiment deadlines are enforced by
the watchdog.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.expectations import EXPECTATIONS, check_expectation
from repro.simgrid.errors import ConfigurationError
from repro.workloads.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    run_experiment,
)

__all__ = [
    "SuiteEntry",
    "SuiteReport",
    "run_paper_suite",
    "suite_report_from_campaign",
]


@dataclass(frozen=True)
class SuiteEntry:
    """Outcome of one experiment within a suite run.

    ``status`` is ``"completed"`` for a plain run; journaled runs also
    produce ``"resumed"`` (restored from a previous run's journal) and
    ``"retried"`` (completed after a watchdog timeout).
    """

    experiment_id: str
    result: ExperimentResult
    violations: List[str]
    elapsed_s: float
    status: str = "completed"

    @property
    def ok(self) -> bool:
        """True when every recorded claim of the paper held."""
        return not self.violations


@dataclass
class SuiteReport:
    """All experiments of one suite run.

    ``interrupted`` is set by journaled runs the operator stopped
    mid-campaign (SIGINT/SIGTERM); the journal holds the completed
    entries and a ``resume`` run finishes the rest.
    """

    entries: List[SuiteEntry] = field(default_factory=list)
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        """True when the whole reproduction matches the paper."""
        return not self.interrupted and all(entry.ok for entry in self.entries)

    @property
    def failures(self) -> List[SuiteEntry]:
        """Entries with violated claims."""
        return [entry for entry in self.entries if not entry.ok]

    def entry(self, experiment_id: str) -> SuiteEntry:
        for candidate in self.entries:
            if candidate.experiment_id == experiment_id:
                return candidate
        raise ConfigurationError(f"no suite entry for '{experiment_id}'")

    def summary_lines(self) -> List[str]:
        """One status line per experiment (for the CLI)."""
        lines = []
        for entry in self.entries:
            status = "ok" if entry.ok else "MISMATCH"
            origin = "" if entry.status == "completed" else f" [{entry.status}]"
            lines.append(
                f"{entry.experiment_id:14s} {status:8s} "
                f"({entry.elapsed_s:5.1f}s)  {entry.result.title}{origin}"
            )
            for violation in entry.violations:
                lines.append(f"{'':14s} !! {violation}")
        if self.interrupted:
            lines.append(
                "suite interrupted — journal checkpoint written; re-run "
                "with resume to finish"
            )
        return lines


def suite_report_from_campaign(campaign_report) -> SuiteReport:
    """Project a :class:`~repro.campaign.report.CampaignReport` onto the
    suite's report type.

    Only productive entries (completed / resumed / retried) become
    :class:`SuiteEntry` rows — timed-out and skipped entries carry no
    result; they stay visible in the campaign report itself.
    """
    report = SuiteReport(interrupted=campaign_report.interrupted)
    for outcome in campaign_report.outcomes:
        if outcome.result is None:
            continue
        report.entries.append(
            SuiteEntry(
                experiment_id=outcome.entry_id,
                result=outcome.result,
                violations=list(outcome.violations),
                elapsed_s=outcome.elapsed_s,
                status=outcome.status,
            )
        )
    return report


def run_paper_suite(
    fast: bool = False,
    experiment_ids: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    journal: Optional[str | pathlib.Path] = None,
    resume: bool = False,
    results_dir: Optional[str | pathlib.Path] = None,
    deadline_s: Optional[float] = None,
) -> SuiteReport:
    """Run experiments (all by default) and check the paper's claims.

    ``fast=True`` uses the reduced configuration grid — quick smoke
    coverage; the claims that need the full grid are skipped
    automatically by the checker.

    With ``journal`` set, the suite runs on the crash-safe campaign
    engine: finished experiments are durably committed and
    ``resume=True`` continues a killed run, re-running only the
    experiments the journal does not hold.  ``deadline_s`` bounds each
    experiment's wall-clock time (watchdog-enforced).
    """
    if journal is not None:
        from repro.campaign.manifest import paper_suite_manifest
        from repro.campaign.runner import CampaignRunner

        manifest = paper_suite_manifest(
            fast=fast, experiment_ids=experiment_ids, deadline_s=deadline_s
        )
        runner = CampaignRunner(
            manifest,
            journal,
            results_dir=results_dir,
            progress=progress,
        )
        return suite_report_from_campaign(runner.run(resume=resume))

    ids = list(experiment_ids) if experiment_ids else sorted(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise ConfigurationError(f"unknown experiments: {unknown}")

    report = SuiteReport()
    for experiment_id in ids:
        start = time.perf_counter()
        result = run_experiment(experiment_id, fast=fast)
        elapsed = time.perf_counter() - start
        violations = (
            check_expectation(result)
            if experiment_id in EXPECTATIONS
            else []
        )
        report.entries.append(
            SuiteEntry(
                experiment_id=experiment_id,
                result=result,
                violations=violations,
                elapsed_s=elapsed,
            )
        )
        if progress is not None:
            status = "ok" if not violations else "MISMATCH"
            progress(f"{experiment_id} {status} ({elapsed:.1f}s)")
    return report
