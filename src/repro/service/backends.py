"""Backend evaluation with modeled cost and deterministic fault injection.

The service never calls the prediction core directly: every evaluation
goes through a :class:`ServiceBackend`, which (a) charges the request a
deterministic *modeled cost* — the latency accounting the resilience
pipeline budgets against — and (b) optionally consults a seeded
:class:`ServiceFaultInjector` that makes the backend slow, crashing, or
corrupt for chaos campaigns.  The same seed always produces the same
fault sequence, which is what makes a (seed, scenario) replay of the
recorded request log byte-identical.

Corrupt responses deserve emphasis: a backend that *returns garbage* is
more dangerous than one that crashes, because garbage can be cached and
served for hours.  :func:`validate_breakdown` is the service's tasting
ritual — every payload is validated before it is cached or served, and
a corrupt one is classified as a backend failure exactly like a crash.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.campaign.journal import CampaignJournal
from repro.core.models import PredictedBreakdown, PredictionModel
from repro.core.profile import Profile
from repro.core.target import PredictionTarget
from repro.core.whatif import ConfigurationForecast, sweep_configurations
from repro.middleware.scheduler import RunConfig
from repro.service.errors import BackendCrashError, CorruptResponseError
from repro.simgrid.errors import ConfigurationError

__all__ = [
    "ServiceCostModel",
    "BackendFaultSpec",
    "BackendFault",
    "ServiceFaultInjector",
    "ServiceBackend",
    "validate_breakdown",
    "breakdown_to_dict",
]


@dataclass(frozen=True)
class ServiceCostModel:
    """Modeled seconds of backend work per endpoint unit.

    These are the simulated service times the bulkhead queues and the
    deadline budgets are evaluated against — the service analogue of
    the simulator's per-chunk costs.
    """

    predict_s: float = 0.004
    whatif_pair_s: float = 0.0015
    broker_job_s: float = 0.02
    status_s: float = 0.001

    def __post_init__(self) -> None:
        for name in ("predict_s", "whatif_pair_s", "broker_job_s", "status_s"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")


@dataclass(frozen=True)
class BackendFaultSpec:
    """Per-call fault probabilities of one chaos scenario."""

    slow_probability: float = 0.0
    crash_probability: float = 0.0
    corrupt_probability: float = 0.0
    slow_factor: Tuple[float, float] = (2.0, 8.0)

    def __post_init__(self) -> None:
        for name in (
            "slow_probability", "crash_probability", "corrupt_probability",
        ):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        total = (
            self.slow_probability
            + self.crash_probability
            + self.corrupt_probability
        )
        if total > 1.0:
            raise ConfigurationError(
                f"fault probabilities sum to {total}; must be <= 1"
            )
        lo, hi = self.slow_factor
        if not 1.0 <= lo <= hi:
            raise ConfigurationError("slow_factor must satisfy 1 <= lo <= hi")


@dataclass(frozen=True)
class BackendFault:
    """One injected fault: ``kind`` in {slow, crash, corrupt}."""

    kind: str
    slow_factor: float = 1.0


class ServiceFaultInjector:
    """Seeded per-call fault draws with a fixed draw order.

    Each backend call consumes exactly one uniform draw (plus one more
    for the slow factor when the slow branch is taken), so the fault
    sequence is a pure function of ``(seed, spec, call index)`` — the
    replay format of the service chaos harness.
    """

    def __init__(self, seed: int, spec: BackendFaultSpec) -> None:
        self.seed = seed
        self.spec = spec
        self._rng = random.Random(seed)
        self.calls = 0
        self.injected: Dict[str, int] = {"slow": 0, "crash": 0, "corrupt": 0}

    def draw(self) -> Optional[BackendFault]:
        self.calls += 1
        spec = self.spec
        u = self._rng.random()
        if u < spec.crash_probability:
            self.injected["crash"] += 1
            return BackendFault("crash")
        if u < spec.crash_probability + spec.corrupt_probability:
            self.injected["corrupt"] += 1
            return BackendFault("corrupt")
        if (
            u
            < spec.crash_probability
            + spec.corrupt_probability
            + spec.slow_probability
        ):
            factor = self._rng.uniform(*spec.slow_factor)
            self.injected["slow"] += 1
            return BackendFault("slow", slow_factor=factor)
        return None


def validate_breakdown(breakdown: PredictedBreakdown) -> None:
    """Refuse non-finite or negative component times.

    Raises :class:`CorruptResponseError` — the service treats it as a
    backend failure; the payload is never cached or served.
    """
    for name in ("t_disk", "t_network", "t_compute", "t_ro", "t_g"):
        value = getattr(breakdown, name)
        if not math.isfinite(value) or value < 0.0:
            raise CorruptResponseError(
                f"corrupt prediction: {name}={value!r} is not a finite "
                "non-negative time"
            )


def breakdown_to_dict(breakdown: PredictedBreakdown) -> Dict[str, float]:
    """JSON-ready component map of a predicted breakdown."""
    return {
        "t_disk": breakdown.t_disk,
        "t_network": breakdown.t_network,
        "t_compute": breakdown.t_compute,
        "t_ro": breakdown.t_ro,
        "t_g": breakdown.t_g,
        "total": breakdown.total,
    }


class ServiceBackend:
    """The service's only door to the prediction core.

    Every method returns ``(payload, cost_s)`` where ``cost_s`` is the
    modeled backend time for this call, after any injected slow-down.
    Crash faults raise :class:`BackendCrashError` carrying the cost of
    the failed attempt; corrupt faults poison the payload so that
    validation (here, before returning) classifies them.
    """

    def __init__(
        self,
        cost_model: Optional[ServiceCostModel] = None,
        injector: Optional[ServiceFaultInjector] = None,
    ) -> None:
        self.cost_model = cost_model or ServiceCostModel()
        self.injector = injector
        self.calls = 0

    def _fault(self, base_cost_s: float) -> Tuple[Optional[str], float]:
        """Draw one fault; returns (corrupt?, adjusted cost)."""
        self.calls += 1
        if self.injector is None:
            return None, base_cost_s
        fault = self.injector.draw()
        if fault is None:
            return None, base_cost_s
        if fault.kind == "crash":
            raise BackendCrashError(
                "backend crashed mid-evaluation", cost_s=base_cost_s
            )
        if fault.kind == "slow":
            return None, base_cost_s * fault.slow_factor
        return "corrupt", base_cost_s

    # ------------------------------------------------------------------

    def predict(
        self,
        model: PredictionModel,
        profile: Profile,
        target: PredictionTarget,
    ) -> Tuple[Dict[str, float], float]:
        corrupt, cost = self._fault(self.cost_model.predict_s)
        breakdown = model.predict(profile, target)
        if corrupt:
            breakdown = PredictedBreakdown(
                t_disk=float("nan"),
                t_network=breakdown.t_network,
                t_compute=breakdown.t_compute,
            )
        try:
            validate_breakdown(breakdown)
        except CorruptResponseError as exc:
            exc.cost_s = cost
            raise
        return breakdown_to_dict(breakdown), cost

    def whatif(
        self,
        model: PredictionModel,
        profile: Profile,
        template: RunConfig,
        pairs: Sequence[Tuple[int, int]],
    ) -> Tuple[List[Dict[str, Any]], float]:
        base = self.cost_model.whatif_pair_s * max(1, len(pairs))
        corrupt, cost = self._fault(base)
        forecasts: List[ConfigurationForecast] = sweep_configurations(
            profile, model, template, pairs
        )
        totals = [f.predicted_total for f in forecasts]
        if corrupt and totals:
            totals[0] = float("nan")
        for total in totals:
            if not math.isfinite(total) or total < 0.0:
                exc = CorruptResponseError(
                    f"corrupt what-if sweep: predicted total {total!r}"
                )
                exc.cost_s = cost
                raise exc
        payload = [
            {
                "data_nodes": f.data_nodes,
                "compute_nodes": f.compute_nodes,
                "label": f.label,
                "node_cost": f.node_cost,
                "predicted_total": total,
            }
            for f, total in zip(forecasts, totals)
        ]
        return payload, cost

    def broker_submit(
        self,
        broker: Any,
        jobs: Sequence[Any],
        policy: str,
    ) -> Tuple[Dict[str, Any], float]:
        base = self.cost_model.broker_job_s * max(1, len(jobs))
        corrupt, cost = self._fault(base)
        if corrupt:
            exc = CorruptResponseError(
                "corrupt broker response: placement ledger failed checksum"
            )
            exc.cost_s = cost
            raise exc
        run = broker.run(jobs, policy)
        payload = {
            "policy": policy,
            "submitted": len(jobs),
            "placed": len(run.placements),
            "rejected": len(run.rejections),
            "failed": len(run.failures),
            "makespan_s": run.makespan,
            "placements": [
                {
                    "job_id": p.job_id,
                    "site": p.compute_site,
                    "predicted_s": p.predicted_total,
                    "actual_s": p.actual_total,
                }
                for p in run.placements
            ],
        }
        return payload, cost

    def campaign_status(
        self, journal_path: str
    ) -> Tuple[Dict[str, Any], float]:
        corrupt, cost = self._fault(self.cost_model.status_s)
        if corrupt:
            exc = CorruptResponseError(
                "corrupt campaign journal read: record checksum mismatch"
            )
            exc.cost_s = cost
            raise exc
        journal = CampaignJournal(journal_path)
        if not journal.exists:
            return {"exists": False, "settled": 0, "by_status": {}}, cost
        records = journal.load()
        by_status: Dict[str, int] = {}
        for record in records.values():
            by_status[record.status] = by_status.get(record.status, 0) + 1
        return {
            "exists": True,
            "settled": len(records),
            "by_status": {k: by_status[k] for k in sorted(by_status)},
        }, cost
