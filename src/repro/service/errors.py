"""The service-layer branch of the :class:`~repro.errors.ReproError` tree.

A service that faces heavy traffic is defined by how it fails: every
refusal the resilience pipeline can issue has its own exception type, so
the request handler can map each to the right HTTP status and the right
degraded-mode decision, and embedders still catch everything under
``ReproError``.
"""

from __future__ import annotations

from repro.errors import ReproError

__all__ = [
    "ServiceError",
    "AdmissionError",
    "BulkheadFullError",
    "CircuitOpenError",
    "DeadlineExceededError",
    "BackendError",
    "BackendCrashError",
    "CorruptResponseError",
]


class ServiceError(ReproError):
    """Base class for prediction-service failures."""


class AdmissionError(ServiceError):
    """The token bucket refused the request (load shedding, HTTP 429).

    Carries the deterministic ``retry_after_s`` hint the service returns
    as a ``Retry-After`` header — shedding is an answer, not a drop.
    """

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class BulkheadFullError(ServiceError):
    """The endpoint's worker pool and its wait queue are full (HTTP 503)."""


class CircuitOpenError(ServiceError):
    """The (app, cluster) circuit breaker is open; no probe is due yet."""


class DeadlineExceededError(ServiceError):
    """The request's deadline budget cannot be met (HTTP 504 when no
    cached prediction is available to degrade to)."""


class BackendError(ServiceError):
    """A backend evaluation attempt failed (crash or corrupt response).

    ``cost_s`` is the modeled time the failed attempt consumed — the
    handler charges it into the request's latency before retrying.
    """

    def __init__(self, message: str, cost_s: float = 0.0) -> None:
        super().__init__(message)
        self.cost_s = cost_s


class BackendCrashError(BackendError):
    """The backend raised instead of producing a prediction."""


class CorruptResponseError(BackendError):
    """The backend produced a payload that failed validation.

    A corrupt prediction (NaN, negative component time) must never be
    served or cached; the attempt is classified as a failure and feeds
    the circuit breaker exactly like a crash.
    """
