"""The service's time source.

Every resilience decision — token-bucket refill, breaker cool-down,
deadline budgets, cache age — reads time from a :class:`ServiceClock`
owned by the service, never from the host directly:

- :class:`VirtualClock` is the deterministic instance the chaos harness
  and every test drive; it only moves when the driver advances it, so a
  ``(seed, scenario)`` replay of a recorded request log is byte-identical.
- :class:`MonotonicClock` is the real-serving instance behind the HTTP
  adapter.  It is the *only* sanctioned wall-clock reader in the service
  layer (this module is on the REP001 allowlist); simulated results
  never depend on it.

Execution latency is *modeled* in both modes: the service charges each
request the deterministic cost of its backend work (plus queueing, retry
backoff, and injected fault delays), which is what the latency invariant
("settled latency stays under the declared deadline + ε") is checked
against.  Nothing in the service ever sleeps — waiting is accounted, not
performed.
"""

from __future__ import annotations

import abc
import time

from repro.simgrid.errors import ConfigurationError

__all__ = ["ServiceClock", "VirtualClock", "MonotonicClock"]


class ServiceClock(abc.ABC):
    """Monotonic seconds; the zero point is arbitrary but fixed."""

    @abc.abstractmethod
    def now(self) -> float:
        """Current time in seconds."""


class VirtualClock(ServiceClock):
    """Deterministic clock advanced explicitly by the driver."""

    def __init__(self, start_s: float = 0.0) -> None:
        self._now = float(start_s)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; rejects negative steps."""
        if seconds < 0:
            raise ConfigurationError("virtual clock cannot move backwards")
        self._now += seconds
        return self._now

    def advance_to(self, when_s: float) -> float:
        """Jump to an absolute time at or after the current one."""
        if when_s < self._now:
            raise ConfigurationError(
                f"virtual clock cannot rewind from {self._now} to {when_s}"
            )
        self._now = when_s
        return self._now


class MonotonicClock(ServiceClock):
    """Real serving: the host's monotonic clock, rebased to start at 0."""

    def __init__(self) -> None:
        self._epoch = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._epoch
