"""Seeded request workloads for chaos campaigns and benchmarks.

A service scenario is a *pure data artifact*: given a seed, this module
produces the exact same request sequence — ids, endpoints, parameters,
arrival times, deadlines — every time.  Combined with the seeded
backend fault injector and the virtual clock, that is what lets the
chaos harness demand a byte-identical request log on replay.

The demo profiles are synthetic but shaped like the paper's workloads:
constant per-object reduction time and linear-plus-constant global
reduction for the clustering family, the inverse shape for the
scientific codes.  They exist so the service (and its benchmark) can
run without first executing the full simulator to measure a profile.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.profile import Profile
from repro.service.app import ServiceRequest
from repro.simgrid.errors import ConfigurationError
from repro.workloads.clusters import (
    DEFAULT_BANDWIDTH,
    pentium_myrinet_cluster,
)

__all__ = ["RequestMix", "demo_profiles", "generate_requests"]


#: (app, dataset GB, t_disk, t_network, t_compute, t_ro, t_g) for the
#: synthetic demo profiles — deterministic stand-ins for measured runs.
_DEMO_APPS: Tuple[Tuple[str, float, float, float, float, float, float], ...] = (
    ("kmeans", 1.4, 11.2, 52.4, 158.0, 3.1, 0.6),
    ("apriori", 1.0, 8.0, 37.5, 61.0, 9.4, 2.2),
    ("vortex", 0.71, 5.7, 26.6, 44.0, 1.8, 0.9),
)

#: Candidate (data_nodes, compute_nodes) pairs predict requests draw from.
_NODE_PAIRS: Tuple[Tuple[int, int], ...] = (
    (1, 1), (1, 2), (2, 4), (4, 8), (8, 8), (8, 16),
)

_WHATIF_PAIRS: Tuple[Tuple[int, int], ...] = ((1, 2), (2, 4), (4, 8), (8, 16))


@dataclass(frozen=True)
class RequestMix:
    """Relative endpoint weights of a generated workload."""

    predict: float = 0.70
    whatif: float = 0.15
    status: float = 0.12
    broker: float = 0.03

    def __post_init__(self) -> None:
        weights = (self.predict, self.whatif, self.status, self.broker)
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ConfigurationError(
                "request mix weights must be non-negative with a "
                "positive sum"
            )


def demo_profiles() -> Dict[str, Profile]:
    """Synthetic reference profiles, one per demo app (1-1 base runs)."""
    cluster = pentium_myrinet_cluster()
    profiles: Dict[str, Profile] = {}
    for app, gigabytes, t_disk, t_network, t_compute, t_ro, t_g in _DEMO_APPS:
        dataset_bytes = gigabytes * 1.0e9
        profiles[app] = Profile(
            app=app,
            storage_cluster=cluster,
            compute_cluster=cluster,
            data_nodes=1,
            compute_nodes=1,
            bandwidth=DEFAULT_BANDWIDTH,
            dataset_bytes=dataset_bytes,
            t_disk=t_disk,
            t_network=t_network,
            t_compute=t_compute,
            t_ro=t_ro,
            t_g=t_g,
            max_object_bytes=4096.0,
        )
    return profiles


def _pick_endpoint(rng: random.Random, mix: RequestMix) -> str:
    total = mix.predict + mix.whatif + mix.status + mix.broker
    u = rng.random() * total
    if u < mix.predict:
        return "predict"
    if u < mix.predict + mix.whatif:
        return "what-if"
    if u < mix.predict + mix.whatif + mix.status:
        return "campaign-status"
    return "broker-submit"


def generate_requests(
    seed: int,
    count: int,
    rate_hz: float,
    profiles: Sequence[str],
    *,
    mix: Optional[RequestMix] = None,
    campaigns: Sequence[str] = ("demo",),
    deadline_s: Optional[float] = None,
    tight_deadline_fraction: float = 0.0,
    tight_deadline_s: float = 0.002,
) -> List[ServiceRequest]:
    """A seeded open-loop arrival sequence of service requests.

    Inter-arrival times are exponential with mean ``1 / rate_hz``, so
    ``rate_hz`` above the admission rate reliably exercises shedding.
    ``tight_deadline_fraction`` of requests carry ``tight_deadline_s``
    budgets that normal backend work cannot meet — the degraded-path
    workout.  Everything is a pure function of the arguments.
    """
    if count < 0:
        raise ConfigurationError("request count must be >= 0")
    if rate_hz <= 0:
        raise ConfigurationError("arrival rate must be positive")
    if not profiles:
        raise ConfigurationError("need at least one profile name")
    if not 0.0 <= tight_deadline_fraction <= 1.0:
        raise ConfigurationError(
            "tight_deadline_fraction must be in [0, 1]"
        )
    mix = mix if mix is not None else RequestMix()
    names = sorted(profiles)
    campaign_names = sorted(campaigns) or ["demo"]
    rng = random.Random(seed)
    requests: List[ServiceRequest] = []
    t = 0.0
    for index in range(count):
        t += rng.expovariate(rate_hz)
        endpoint = _pick_endpoint(rng, mix)
        params: Dict[str, object]
        if endpoint == "predict":
            n, c = _NODE_PAIRS[rng.randrange(len(_NODE_PAIRS))]
            params = {
                "profile": names[rng.randrange(len(names))],
                "data_nodes": n,
                "compute_nodes": c,
            }
        elif endpoint == "what-if":
            params = {
                "profile": names[rng.randrange(len(names))],
                "pairs": [list(pair) for pair in _WHATIF_PAIRS],
            }
        elif endpoint == "campaign-status":
            params = {
                "campaign": campaign_names[
                    rng.randrange(len(campaign_names))
                ],
            }
        else:
            params = {
                "policy": "min-completion",
                "jobs": [
                    {
                        "job_id": f"job-{index:06d}-{j}",
                        "workload": names[rng.randrange(len(names))],
                        "arrival": 0.0,
                    }
                    for j in range(2)
                ],
            }
        request_deadline = deadline_s
        if (
            tight_deadline_fraction > 0.0
            and rng.random() < tight_deadline_fraction
        ):
            request_deadline = tight_deadline_s
        requests.append(
            ServiceRequest(
                request_id=f"req-{index:06d}",
                endpoint=endpoint,
                params=params,
                arrival_s=t,
                deadline_s=request_deadline,
            )
        )
    return requests
