"""Resilience primitives: admission → deadline → bulkhead → breaker.

The service wraps every request in this pipeline (DESIGN.md §15):

1. :class:`TokenBucket` — admission control.  Over any window the
   service accepts at most ``burst + rate·window`` requests; the rest
   are *shed* with a deterministic ``Retry-After`` hint (HTTP 429).
   Shedding early is the cheapest possible failure: no worker time, no
   backend call, no queue growth.
2. :class:`DeadlineBudget` — the request's absolute deadline.  Budgets
   are propagated *down* the stack (handler → backend retries) via
   :meth:`DeadlineBudget.child`, which can only shrink the remaining
   time — a lower layer can never out-wait its caller.
3. :class:`Bulkhead` — a bounded worker pool per endpoint class with a
   bounded FIFO wait queue, modeled in simulated time.  One slow
   endpoint (broker submissions) can exhaust only its own pool; predict
   traffic keeps flowing.  A full pool+queue refuses (HTTP 503) instead
   of queueing unboundedly — the REP009 contract at the architecture
   level.
4. :class:`CircuitBreaker` — per-(app, cluster) failure isolation
   around predictor evaluation.  Repeated backend failures open the
   circuit; while open, requests go straight to degraded mode (cached
   prediction marked stale) without burning a worker on a doomed call.
   After a cool-down (reusing :class:`~repro.faults.retry.RetryPolicy`
   backoff, escalating with consecutive opens) one half-open probe is
   admitted; success closes the circuit, failure re-opens it.

Everything is deterministic given request arrival times: no threads, no
sleeps, no host clock — so the chaos harness can replay a scenario and
demand a byte-identical request log.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faults.retry import RetryPolicy
from repro.service.errors import (
    AdmissionError,
    BulkheadFullError,
    CircuitOpenError,
    DeadlineExceededError,
)
from repro.simgrid.errors import ConfigurationError

__all__ = [
    "DeadlineBudget",
    "TokenBucket",
    "BulkheadConfig",
    "Bulkhead",
    "BreakerState",
    "BreakerTransition",
    "CircuitBreaker",
    "BreakerBank",
    "ResilienceConfig",
]


# ----------------------------------------------------------------------
# Deadline budgets
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DeadlineBudget:
    """An absolute deadline carried through the request's layers.

    The budget is immutable; handing work to a lower layer derives a
    *child* budget whose deadline is never later than the parent's —
    the monotone-shrink property the hypothesis suite fuzzes.
    """

    start_s: float
    deadline_s: float

    def __post_init__(self) -> None:
        if self.deadline_s < self.start_s:
            raise ConfigurationError(
                "deadline budget cannot end before it starts"
            )

    @classmethod
    def begin(cls, now: float, budget_s: float) -> "DeadlineBudget":
        """A fresh budget of ``budget_s`` seconds starting at ``now``."""
        if budget_s <= 0:
            raise ConfigurationError("deadline budget must be positive")
        return cls(start_s=now, deadline_s=now + budget_s)

    def remaining_s(self, now: float) -> float:
        """Seconds left before the deadline (never negative)."""
        return max(0.0, self.deadline_s - now)

    def expired(self, now: float) -> bool:
        return now >= self.deadline_s

    def allows(self, now: float, cost_s: float) -> bool:
        """Whether ``cost_s`` more seconds of work still fit."""
        return now + cost_s <= self.deadline_s

    def child(
        self, now: float, max_share_s: Optional[float] = None
    ) -> "DeadlineBudget":
        """A sub-budget for a lower layer, starting at ``now``.

        The child's deadline is the parent's, optionally capped at
        ``now + max_share_s`` — it can only shrink, never extend.  A
        child requested after the parent expired is an error: the
        caller should have degraded already.
        """
        if self.expired(now):
            raise DeadlineExceededError(
                f"cannot derive a sub-budget at t={now:.6f}: parent "
                f"deadline {self.deadline_s:.6f} already passed"
            )
        deadline = self.deadline_s
        if max_share_s is not None:
            if max_share_s <= 0:
                raise ConfigurationError("budget share must be positive")
            deadline = min(deadline, now + max_share_s)
        return DeadlineBudget(start_s=now, deadline_s=deadline)


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, ``burst`` capacity.

    Starts full.  :meth:`admit` refills lazily from the elapsed time,
    then either takes one token or raises :class:`AdmissionError` with
    the exact time until the next token — the 429 ``Retry-After``.
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ConfigurationError("admission rate must be positive")
        if burst < 1:
            raise ConfigurationError("admission burst must be >= 1")
        self.rate = rate
        self.burst = burst
        self._tokens = float(burst)
        self._updated_at = 0.0
        self.admitted = 0
        self.shed = 0

    def _refill(self, now: float) -> None:
        if now > self._updated_at:
            self._tokens = min(
                self.burst, self._tokens + (now - self._updated_at) * self.rate
            )
            self._updated_at = now

    def admit(self, now: float) -> None:
        """Take one token or shed with a deterministic retry hint."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.admitted += 1
            return
        self.shed += 1
        retry_after = (1.0 - self._tokens) / self.rate
        raise AdmissionError(
            f"admission rate exceeded at t={now:.6f}; retry in "
            f"{retry_after:.6f}s",
            retry_after_s=retry_after,
        )


# ----------------------------------------------------------------------
# Bulkheads
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BulkheadConfig:
    """Size of one endpoint class's isolated worker pool."""

    workers: int = 4
    queue_depth: int = 16

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("bulkhead needs at least one worker")
        if self.queue_depth < 0:
            raise ConfigurationError("bulkhead queue depth must be >= 0")


class Bulkhead:
    """A bounded worker pool in simulated time.

    The pool tracks the *end times* of all admitted work.  A new request
    at ``now`` starts immediately if a worker is free, otherwise queues
    FIFO behind the in-flight work; when pool + queue are full it is
    refused outright.  :meth:`reserve` answers "when would this start?"
    without committing, so the caller can first check the request's
    deadline; :meth:`commit` then books the work.
    """

    def __init__(self, config: BulkheadConfig) -> None:
        self.config = config
        self._ends: List[float] = []
        self.refused = 0
        self.peak_queue = 0

    def _prune(self, now: float) -> None:
        self._ends = [end for end in self._ends if end > now]

    def queued(self, now: float) -> int:
        """Requests admitted but not yet started at ``now``."""
        self._prune(now)
        return max(0, len(self._ends) - self.config.workers)

    def reserve(self, now: float) -> float:
        """Earliest start time for new work arriving at ``now``.

        Raises :class:`BulkheadFullError` when the pool and its queue
        are both full — the refusal that keeps one endpoint class from
        starving the others.
        """
        self._prune(now)
        waiting = len(self._ends) - self.config.workers
        if waiting >= self.config.queue_depth:
            self.refused += 1
            raise BulkheadFullError(
                f"bulkhead full at t={now:.6f}: {self.config.workers} "
                f"worker(s) busy and {waiting} request(s) queued "
                f"(depth {self.config.queue_depth})"
            )
        self.peak_queue = max(self.peak_queue, max(0, waiting + 1))
        if len(self._ends) < self.config.workers:
            return now
        # FIFO behind current work: the new request starts when enough
        # earlier work has drained that a worker frees up for it.
        ordered = sorted(self._ends)
        return ordered[len(ordered) - self.config.workers]

    def commit(self, end_s: float) -> None:
        """Book admitted work that will occupy a worker until ``end_s``."""
        self._ends.append(end_s)


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


#: The legal edges of the breaker state machine.
_ALLOWED_TRANSITIONS = frozenset(
    {
        (BreakerState.CLOSED, BreakerState.OPEN),
        (BreakerState.OPEN, BreakerState.HALF_OPEN),
        (BreakerState.HALF_OPEN, BreakerState.CLOSED),
        (BreakerState.HALF_OPEN, BreakerState.OPEN),
    }
)


@dataclass(frozen=True)
class BreakerTransition:
    """One recorded state change (the fuzz suite audits these)."""

    at_s: float
    source: BreakerState
    target: BreakerState


class CircuitBreaker:
    """closed → open → half-open → closed, deterministically.

    ``failure_threshold`` consecutive backend failures open the
    circuit; it stays open for a cool-down drawn from ``cooldown``
    (:class:`RetryPolicy` backoff, escalating with consecutive opens,
    capped at the policy's ``max_backoff_s``).  The first
    :meth:`allow` at or after the cool-down flips to half-open and
    admits exactly one probe; the probe's outcome closes or re-opens
    the circuit.  Every transition is appended to :attr:`transitions`.
    """

    def __init__(
        self, failure_threshold: int, cooldown: RetryPolicy
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.consecutive_opens = 0
        self.open_until_s = 0.0
        self.opens = 0
        self.transitions: List[BreakerTransition] = []

    def _move(self, now: float, target: BreakerState) -> None:
        edge = (self.state, target)
        if edge not in _ALLOWED_TRANSITIONS:
            raise ConfigurationError(
                f"illegal breaker transition {edge[0].value} -> "
                f"{target.value}"
            )
        self.transitions.append(
            BreakerTransition(at_s=now, source=self.state, target=target)
        )
        self.state = target

    def _open(self, now: float) -> None:
        self.consecutive_opens += 1
        self.opens += 1
        retry_index = min(
            self.consecutive_opens, self.cooldown.max_attempts - 1
        )
        delay = self.cooldown.backoff_s(max(1, retry_index))
        self.open_until_s = now + delay
        self._move(now, BreakerState.OPEN)

    def allow(self, now: float) -> None:
        """Admit the call, or raise :class:`CircuitOpenError`.

        Open circuits flip to half-open once the cool-down elapses; the
        admitting call is the probe.
        """
        if self.state is BreakerState.CLOSED:
            return
        if self.state is BreakerState.OPEN:
            if now < self.open_until_s:
                raise CircuitOpenError(
                    f"circuit open until t={self.open_until_s:.6f} "
                    f"(now t={now:.6f})"
                )
            self._move(now, BreakerState.HALF_OPEN)
            return
        # HALF_OPEN: exactly one probe is in flight; further calls are
        # refused until its outcome is recorded.
        raise CircuitOpenError(
            f"circuit half-open at t={now:.6f}: probe outcome pending"
        )

    def record_success(self, now: float) -> None:
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self.consecutive_opens = 0
            self._move(now, BreakerState.CLOSED)

    def record_failure(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._open(now)
            return
        if self.state is BreakerState.CLOSED:
            self.consecutive_failures += 1
            if self.consecutive_failures >= self.failure_threshold:
                self.consecutive_failures = 0
                self._open(now)


class BreakerBank:
    """Lazily created :class:`CircuitBreaker` per (app, cluster) key.

    One unhealthy (app, cluster) pair must not poison predictions for
    every other pair — isolation is per key, like the calibrator's
    correction factors.
    """

    def __init__(
        self, failure_threshold: int, cooldown: RetryPolicy
    ) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}

    def breaker(self, app: str, cluster: str) -> CircuitBreaker:
        key = (app, cluster)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(self.failure_threshold, self.cooldown)
            self._breakers[key] = breaker
        return breaker

    def total_opens(self) -> int:
        return sum(b.opens for b in self._breakers.values())

    def snapshot(self) -> Dict[str, str]:
        """Current state per key, for reports (sorted, deterministic)."""
        return {
            f"{app} @ {cluster}": self._breakers[(app, cluster)].state.value
            for app, cluster in sorted(self._breakers)
        }


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------


def _default_bulkheads() -> Dict[str, BulkheadConfig]:
    return {
        "predict": BulkheadConfig(workers=4, queue_depth=16),
        "what-if": BulkheadConfig(workers=2, queue_depth=8),
        "broker-submit": BulkheadConfig(workers=1, queue_depth=2),
        "campaign-status": BulkheadConfig(workers=2, queue_depth=8),
    }


def _default_cooldown() -> RetryPolicy:
    return RetryPolicy(
        max_attempts=5,
        base_backoff_s=0.25,
        backoff_factor=2.0,
        max_backoff_s=4.0,
    )


def _default_retry() -> RetryPolicy:
    return RetryPolicy(
        max_attempts=3,
        base_backoff_s=0.005,
        backoff_factor=2.0,
        max_backoff_s=0.05,
    )


@dataclass(frozen=True)
class ResilienceConfig:
    """Every knob of the admission → deadline → bulkhead → breaker →
    degrade pipeline, with serving-grade defaults.

    Attributes
    ----------
    admission_rate / admission_burst:
        Token-bucket refill (requests/s) and capacity.
    default_deadline_s:
        Budget for requests that do not declare their own.
    deadline_epsilon_s:
        Slack the latency invariant tolerates on top of the declared
        deadline — covers the fixed cost of producing the degraded
        response itself.
    degraded_cost_s:
        Modeled cost of a cache-served / refused response (the fast
        path never consults a backend).
    retry:
        Backend retry budget *within* the request's deadline; backoff
        is charged to the request's latency.
    breaker_failure_threshold / breaker_cooldown:
        Circuit breaker tuning (see :class:`CircuitBreaker`).
    bulkheads:
        Worker pool sizes per endpoint class.
    max_stale_age_s:
        Oldest cached prediction degraded mode may serve; ``None``
        serves any age (the age is always reported either way).
    """

    admission_rate: float = 500.0
    admission_burst: float = 64.0
    default_deadline_s: float = 0.25
    deadline_epsilon_s: float = 1.0e-3
    degraded_cost_s: float = 2.0e-4
    retry: RetryPolicy = field(default_factory=_default_retry)
    breaker_failure_threshold: int = 3
    breaker_cooldown: RetryPolicy = field(default_factory=_default_cooldown)
    bulkheads: Tuple[Tuple[str, BulkheadConfig], ...] = field(
        default_factory=lambda: tuple(sorted(_default_bulkheads().items()))
    )
    max_stale_age_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.admission_rate <= 0:
            raise ConfigurationError("admission_rate must be positive")
        if self.admission_burst < 1:
            raise ConfigurationError("admission_burst must be >= 1")
        if self.default_deadline_s <= 0:
            raise ConfigurationError("default_deadline_s must be positive")
        if self.deadline_epsilon_s < 0:
            raise ConfigurationError("deadline_epsilon_s must be >= 0")
        if self.degraded_cost_s < 0:
            raise ConfigurationError("degraded_cost_s must be >= 0")
        if self.max_stale_age_s is not None and self.max_stale_age_s <= 0:
            raise ConfigurationError("max_stale_age_s must be positive")

    def bulkhead_config(self, endpoint: str) -> BulkheadConfig:
        for name, config in self.bulkheads:
            if name == endpoint:
                return config
        return BulkheadConfig()
