"""Stdlib HTTP and ASGI adapters over :class:`PredictionService`.

The service core is single-threaded and deterministic; these adapters
are the thin shells that face real sockets:

- :func:`asgi_app` wraps a service as an ASGI 3 application, so any
  ASGI server (or an in-process test harness speaking the protocol)
  can drive it without this repo importing one.
- :func:`make_server` builds a ``ThreadingHTTPServer`` whose handlers
  serialize into the shared service under one mutex, with explicit
  socket timeouts (the REP009 contract: no unbounded waits).

Routes (both adapters)::

    POST /v1/predict            {"params": {...}, "deadline_s": 0.25}
    POST /v1/what-if            {"params": {...}}
    POST /v1/broker-submit      {"params": {...}}
    POST /v1/campaign-status    {"params": {...}}
    GET  /v1/metrics
    GET  /v1/healthz

Responses carry the pipeline's verdict: 200 (fresh or ``stale: true``),
429 with ``Retry-After`` (shed), 503 (bulkhead full / breaker open),
504 (deadline unmeetable), 400/404/501 (client errors).  Request ids
are counter-based (``http-1``, ``http-2``, …) — deterministic, no
UUIDs (REP102).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Awaitable, Callable, Dict, Mapping, Optional, Tuple

from repro.core.durable import canonical_json
from repro.service.app import ENDPOINTS, PredictionService, ServiceRequest
from repro.service.errors import ServiceError

__all__ = ["ServiceGateway", "asgi_app", "make_server"]

_MAX_BODY_BYTES = 1 << 20
_SOCKET_TIMEOUT_S = 10.0


class ServiceGateway:
    """Thread-safe front door: one mutex, counter-based request ids."""

    def __init__(self, service: PredictionService) -> None:
        self.service = service
        self._lock = threading.Lock()
        self._counter = 0

    def dispatch(
        self,
        endpoint: str,
        payload: Mapping[str, Any],
    ) -> Tuple[int, Dict[str, Any], Optional[float]]:
        """Handle one request; returns (status, body, retry_after_s)."""
        with self._lock:
            self._counter += 1
            request_id = str(
                payload.get("request_id") or f"http-{self._counter}"
            )
            params = payload.get("params")
            deadline = payload.get("deadline_s")
            request = ServiceRequest(
                request_id=request_id,
                endpoint=endpoint,
                params=params if isinstance(params, Mapping) else {},
                deadline_s=float(deadline) if deadline is not None else None,
            )
            response = self.service.handle(request)
        body = dict(response.body)
        body["request_id"] = response.request_id
        body["outcome"] = response.outcome
        body["latency_s"] = response.latency_s
        return response.status, body, response.retry_after_s

    def metrics(self) -> Dict[str, Any]:
        with self._lock:
            return self.service.metrics()


def _route(
    gateway: ServiceGateway, method: str, path: str, raw_body: bytes
) -> Tuple[int, Dict[str, Any], Optional[float]]:
    """Shared routing for both adapters."""
    if method == "GET" and path == "/v1/healthz":
        return 200, {"status": "ok"}, None
    if method == "GET" and path == "/v1/metrics":
        return 200, gateway.metrics(), None
    if method == "POST" and path.startswith("/v1/"):
        endpoint = path[len("/v1/"):]
        if endpoint not in ENDPOINTS:
            return 404, {
                "error": f"unknown endpoint '{endpoint}'; known: "
                f"{', '.join(ENDPOINTS)}"
            }, None
        if len(raw_body) > _MAX_BODY_BYTES:
            return 413, {"error": "request body too large"}, None
        try:
            payload = json.loads(raw_body.decode("utf-8")) if raw_body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"request body is not JSON: {exc}"}, None
        if not isinstance(payload, dict):
            return 400, {"error": "request body must be a JSON object"}, None
        return gateway.dispatch(endpoint, payload)
    return 404, {"error": f"no route for {method} {path}"}, None


# ----------------------------------------------------------------------
# ASGI
# ----------------------------------------------------------------------


def asgi_app(
    service: PredictionService,
) -> Callable[..., Awaitable[None]]:
    """Wrap a service as an ASGI 3 application."""
    gateway = ServiceGateway(service)

    async def app(
        scope: Mapping[str, Any],
        receive: Callable[[], Awaitable[Mapping[str, Any]]],
        send: Callable[[Mapping[str, Any]], Awaitable[None]],
    ) -> None:
        if scope["type"] == "lifespan":
            while True:
                message = await receive()
                if message["type"] == "lifespan.startup":
                    await send({"type": "lifespan.startup.complete"})
                elif message["type"] == "lifespan.shutdown":
                    await send({"type": "lifespan.shutdown.complete"})
                    return
            return
        if scope["type"] != "http":
            raise ServiceError(
                f"unsupported ASGI scope '{scope['type']}'"
            )
        body = b""
        while True:
            message = await receive()
            if message["type"] == "http.request":
                body += message.get("body", b"")
                if not message.get("more_body", False):
                    break
            elif message["type"] == "http.disconnect":
                return
        status, payload, retry_after = _route(
            gateway, scope["method"].upper(), scope["path"], body
        )
        encoded = canonical_json(payload).encode("utf-8")
        headers = [
            (b"content-type", b"application/json"),
            (b"content-length", str(len(encoded)).encode("ascii")),
        ]
        if retry_after is not None:
            headers.append(
                (b"retry-after", f"{retry_after:.6f}".encode("ascii"))
            )
        await send(
            {"type": "http.response.start", "status": status,
             "headers": headers}
        )
        await send({"type": "http.response.body", "body": encoded})

    return app


# ----------------------------------------------------------------------
# Stdlib threaded server
# ----------------------------------------------------------------------


def make_server(
    service: PredictionService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ThreadingHTTPServer:
    """A ready-to-serve ``ThreadingHTTPServer`` over the service.

    The caller owns the lifecycle: ``serve_forever(poll_interval=...)``
    on a thread, ``shutdown()`` + ``server_close()`` to stop.  Port 0
    picks a free port (``server.server_address`` has the real one).
    """
    gateway = ServiceGateway(service)

    class Handler(BaseHTTPRequestHandler):
        timeout = _SOCKET_TIMEOUT_S
        protocol_version = "HTTP/1.1"

        def _respond(self, raw_body: bytes) -> None:
            status, payload, retry_after = _route(
                gateway, self.command, self.path, raw_body
            )
            encoded = canonical_json(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(encoded)))
            if retry_after is not None:
                self.send_header("Retry-After", f"{retry_after:.6f}")
            self.end_headers()
            self.wfile.write(encoded)

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            self._respond(b"")

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(min(length, _MAX_BODY_BYTES + 1))
            self._respond(raw)

        def log_message(self, format: str, *args: Any) -> None:
            pass  # the request log is the service's, not stderr's

    server = ThreadingHTTPServer((host, port), Handler)
    server.timeout = _SOCKET_TIMEOUT_S
    server.daemon_threads = True
    return server
