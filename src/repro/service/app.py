"""The prediction service: four endpoints behind one resilience pipeline.

:class:`PredictionService` exposes the existing prediction core as a
long-running shared service — ``predict``, ``what-if``,
``broker-submit``, and ``campaign-status`` — and wraps *every* request
in the same pipeline (DESIGN.md §15)::

    admission (token bucket, 429 + Retry-After)
      → deadline budget (absolute, shrink-only propagation)
        → bulkhead (per-endpoint worker pool, 503 when full)
          → circuit breaker (per (app, cluster), around evaluation)
            → backend evaluation (bounded retries within the budget)
              → graceful degradation (last-known-good, marked stale)

The service's contract, checked by the chaos harness
(:mod:`repro.faults.chaos`):

- every request is answered and *settled exactly once* in the request
  log — shed requests get a 429 with a deterministic ``Retry-After``,
  never a silent drop;
- a settled request's modeled latency never exceeds its declared
  deadline + ε;
- the entire request log replays byte-identically for the same
  ``(seed, scenario)`` pair under a :class:`VirtualClock`.

The service itself is single-threaded and deterministic; the HTTP
adapter (:mod:`repro.service.http`) serializes real concurrent
connections in front of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.broker.calibration import OnlineCalibrator
from repro.core import GlobalReductionModel, ModelClasses
from repro.core.fingerprint import prediction_fingerprint
from repro.core.models import PredictedBreakdown, PredictionModel
from repro.core.predcache import PredictionCache
from repro.core.profile import Profile
from repro.core.target import PredictionTarget
from repro.errors import InternalError
from repro.service.backends import ServiceBackend, breakdown_to_dict
from repro.service.clock import ServiceClock, VirtualClock
from repro.service.errors import (
    AdmissionError,
    BackendError,
    BulkheadFullError,
    CircuitOpenError,
)
from repro.service.resilience import (
    BreakerBank,
    Bulkhead,
    DeadlineBudget,
    ResilienceConfig,
    TokenBucket,
)
from repro.simgrid.errors import ConfigurationError
from repro.workloads.clusters import (
    DEFAULT_BANDWIDTH,
    opteron_infiniband_cluster,
    pentium_myrinet_cluster,
)
from repro.workloads.configs import make_run_config
from repro.workloads.registry import WORKLOADS

__all__ = [
    "ENDPOINTS",
    "ServiceRequest",
    "ServiceResponse",
    "RequestRecord",
    "RequestLog",
    "PredictionService",
    "serve_sequence",
]

#: The service's endpoint classes, each with its own bulkhead.
ENDPOINTS = ("predict", "what-if", "broker-submit", "campaign-status")

_LOG_FORMAT_VERSION = 1

_SERVICE_CLUSTERS = {
    "pentium-myrinet": pentium_myrinet_cluster,
    "opteron-infiniband": opteron_infiniband_cluster,
}


@dataclass(frozen=True)
class ServiceRequest:
    """One inbound request.

    ``arrival_s`` defaults to the service clock's now; the chaos
    harness sets it explicitly so a scenario is a pure data artifact.
    ``deadline_s`` is the request's *budget* (seconds from arrival);
    ``None`` uses the config default.
    """

    request_id: str
    endpoint: str
    params: Mapping[str, Any] = field(default_factory=dict)
    arrival_s: Optional[float] = None
    deadline_s: Optional[float] = None


@dataclass(frozen=True)
class ServiceResponse:
    """The answer to one request, with its settlement bookkeeping."""

    request_id: str
    endpoint: str
    status: int
    outcome: str
    body: Dict[str, Any]
    arrival_s: float
    settled_s: float
    stale: bool = False
    retries: int = 0
    retry_after_s: Optional[float] = None

    @property
    def latency_s(self) -> float:
        return self.settled_s - self.arrival_s

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "request_id": self.request_id,
            "endpoint": self.endpoint,
            "status": self.status,
            "outcome": self.outcome,
            "body": self.body,
            "arrival_s": self.arrival_s,
            "settled_s": self.settled_s,
            "stale": self.stale,
            "retries": self.retries,
        }
        if self.retry_after_s is not None:
            out["retry_after_s"] = self.retry_after_s
        return out


@dataclass(frozen=True)
class RequestRecord:
    """The log's view of one settled request."""

    request_id: str
    endpoint: str
    arrival_s: float
    settled_s: float
    status: int
    outcome: str
    stale: bool
    retries: int

    @property
    def latency_s(self) -> float:
        return self.settled_s - self.arrival_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "request_id": self.request_id,
            "endpoint": self.endpoint,
            "arrival_s": self.arrival_s,
            "settled_s": self.settled_s,
            "latency_s": self.latency_s,
            "status": self.status,
            "outcome": self.outcome,
            "stale": self.stale,
            "retries": self.retries,
        }


class RequestLog:
    """Append-only settlement ledger; the replay-compared artifact.

    Exactly-once is enforced structurally: settling the same request id
    twice raises :class:`~repro.errors.InternalError` — a service bug,
    not a client error.
    """

    def __init__(self) -> None:
        self.records: List[RequestRecord] = []
        self._settled_ids: set[str] = set()

    def __len__(self) -> int:
        return len(self.records)

    def __contains__(self, request_id: object) -> bool:
        return request_id in self._settled_ids

    def settle(self, record: RequestRecord) -> None:
        if record.request_id in self._settled_ids:
            raise InternalError(
                f"request '{record.request_id}' settled twice — the "
                "exactly-once invariant is broken"
            )
        self._settled_ids.add(record.request_id)
        self.records.append(record)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format_version": _LOG_FORMAT_VERSION,
            "records": [record.to_dict() for record in self.records],
        }

    def summary(self) -> Dict[str, Any]:
        """Deterministic numeric rollup (the benchmark's raw material)."""
        by_outcome: Dict[str, int] = {}
        by_status: Dict[str, int] = {}
        for record in self.records:
            by_outcome[record.outcome] = by_outcome.get(record.outcome, 0) + 1
            key = str(record.status)
            by_status[key] = by_status.get(key, 0) + 1
        latencies = sorted(record.latency_s for record in self.records)
        total = len(self.records)
        served = by_outcome.get("ok", 0) + by_outcome.get("stale", 0)
        return {
            "requests": total,
            "by_outcome": {k: by_outcome[k] for k in sorted(by_outcome)},
            "by_status": {k: by_status[k] for k in sorted(by_status)},
            "served": served,
            "shed": by_outcome.get("shed", 0),
            "stale_served": by_outcome.get("stale", 0),
            "shed_rate": (by_outcome.get("shed", 0) / total) if total else 0.0,
            "stale_rate": (
                by_outcome.get("stale", 0) / total
            ) if total else 0.0,
            "p50_latency_s": _percentile(latencies, 0.50),
            "p99_latency_s": _percentile(latencies, 0.99),
            "max_latency_s": latencies[-1] if latencies else 0.0,
        }


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over a pre-sorted sequence."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, int(round(q * len(ordered))) - 1))
    return ordered[rank]


class PredictionService:
    """Prediction-as-a-service over the existing core (see module doc).

    Parameters
    ----------
    profiles:
        Named reference profiles the ``predict`` / ``what-if``
        endpoints resolve against (e.g. a
        :meth:`~repro.core.store.ProfileStore.scan` result).
    clock:
        Time source; defaults to a fresh deterministic
        :class:`~repro.service.clock.VirtualClock`.
    config:
        Resilience pipeline knobs.
    backend:
        The evaluation door — pass one with a seeded fault injector to
        run a chaos scenario.
    broker:
        Optional :class:`~repro.broker.engine.GridBroker` behind
        ``broker-submit``; without one the endpoint answers 501.
    campaign_journals:
        ``name -> journal path`` map behind ``campaign-status``.
    calibrator:
        Optional online calibration state; corrections are applied to
        predictions and the state can be persisted for warm restarts
        (:meth:`save_calibration`).
    cache:
        Last-known-good prediction store for graceful degradation.
    """

    def __init__(
        self,
        profiles: Mapping[str, Profile],
        *,
        clock: Optional[ServiceClock] = None,
        config: Optional[ResilienceConfig] = None,
        backend: Optional[ServiceBackend] = None,
        broker: Optional[Any] = None,
        campaign_journals: Optional[Mapping[str, str]] = None,
        calibrator: Optional[OnlineCalibrator] = None,
        cache: Optional[PredictionCache] = None,
    ) -> None:
        self.profiles = dict(profiles)
        self.clock = clock if clock is not None else VirtualClock()
        self.config = config if config is not None else ResilienceConfig()
        if self.config.degraded_cost_s > self.config.deadline_epsilon_s:
            raise ConfigurationError(
                "degraded_cost_s must be <= deadline_epsilon_s, or the "
                "latency invariant cannot hold for abandoned requests"
            )
        self.backend = backend if backend is not None else ServiceBackend()
        self.broker = broker
        self.campaign_journals = dict(campaign_journals or {})
        self.calibrator = calibrator
        self.cache = cache if cache is not None else PredictionCache()
        self.log = RequestLog()
        self.bucket = TokenBucket(
            self.config.admission_rate, self.config.admission_burst
        )
        self.bulkheads: Dict[str, Bulkhead] = {
            endpoint: Bulkhead(self.config.bulkhead_config(endpoint))
            for endpoint in ENDPOINTS
        }
        self.breakers = BreakerBank(
            self.config.breaker_failure_threshold,
            self.config.breaker_cooldown,
        )
        self._models: Dict[str, PredictionModel] = {}

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------

    def _model_for(self, app: str) -> PredictionModel:
        model = self._models.get(app)
        if model is None:
            spec = WORKLOADS.get(app)
            if spec is not None:
                classes = ModelClasses.parse(
                    spec.natural_object_class, spec.natural_global_class
                )
            else:
                classes = ModelClasses.parse("constant", "linear-constant")
            model = GlobalReductionModel(classes)
            self._models[app] = model
        return model

    def _settle(
        self,
        request: ServiceRequest,
        arrival: float,
        settled: float,
        status: int,
        outcome: str,
        body: Dict[str, Any],
        *,
        stale: bool = False,
        retries: int = 0,
        retry_after_s: Optional[float] = None,
    ) -> ServiceResponse:
        self.log.settle(
            RequestRecord(
                request_id=request.request_id,
                endpoint=request.endpoint,
                arrival_s=arrival,
                settled_s=settled,
                status=status,
                outcome=outcome,
                stale=stale,
                retries=retries,
            )
        )
        return ServiceResponse(
            request_id=request.request_id,
            endpoint=request.endpoint,
            status=status,
            outcome=outcome,
            body=body,
            arrival_s=arrival,
            settled_s=settled,
            stale=stale,
            retries=retries,
            retry_after_s=retry_after_s,
        )

    def _reject(
        self,
        request: ServiceRequest,
        arrival: float,
        message: str,
        status: int = 400,
        outcome: str = "rejected",
    ) -> ServiceResponse:
        return self._settle(
            request,
            arrival,
            arrival + self.config.degraded_cost_s,
            status,
            outcome,
            {"error": message},
        )

    def _degrade(
        self,
        request: ServiceRequest,
        arrival: float,
        fingerprint: Optional[str],
        reason: str,
        refusal_status: int,
        message: str,
        *,
        at_s: Optional[float] = None,
        retries: int = 0,
    ) -> ServiceResponse:
        """Serve last-known-good if we have it; otherwise refuse loudly."""
        settled = (at_s if at_s is not None else arrival)
        settled += self.config.degraded_cost_s
        entry = self.cache.get(fingerprint) if fingerprint else None
        if entry is not None:
            age = entry.age_s(settled)
            max_age = self.config.max_stale_age_s
            if max_age is not None and age > max_age:
                entry = None
        if entry is not None:
            body = dict(entry.payload)
            body["stale"] = True
            body["stale_age_s"] = entry.age_s(settled)
            body["degraded_reason"] = reason
            return self._settle(
                request, arrival, settled, 200, "stale", body,
                stale=True, retries=retries,
            )
        return self._settle(
            request,
            arrival,
            settled,
            refusal_status,
            reason,
            {"error": message, "degraded_reason": reason},
            retries=retries,
        )

    def _evaluate(
        self,
        request: ServiceRequest,
        arrival: float,
        budget: DeadlineBudget,
        fingerprint: Optional[str],
        estimated_cost_s: float,
        call: Any,
        *,
        breaker_key: Optional[Tuple[str, str]] = None,
        cacheable: bool = True,
    ) -> ServiceResponse:
        """The bulkhead → breaker → retry → degrade tail of the pipeline.

        ``call`` performs one backend attempt and returns
        ``(payload, cost_s)``; failures raise
        :class:`~repro.service.errors.BackendError` with the attempt's
        cost attached.
        """
        bulkhead = self.bulkheads[request.endpoint]
        try:
            start = bulkhead.reserve(arrival)
        except BulkheadFullError as exc:
            return self._degrade(
                request, arrival, fingerprint, "bulkhead-full", 503, str(exc)
            )
        # Refuse before burning a worker when even a clean attempt
        # cannot finish inside the budget (queue wait included).
        if not budget.allows(start, estimated_cost_s):
            return self._degrade(
                request, arrival, fingerprint, "deadline", 504,
                f"deadline budget of {budget.deadline_s - arrival:.6f}s "
                "cannot be met",
            )
        breaker = (
            self.breakers.breaker(*breaker_key) if breaker_key else None
        )
        if breaker is not None:
            try:
                breaker.allow(arrival)
            except CircuitOpenError as exc:
                return self._degrade(
                    request, arrival, fingerprint, "breaker-open", 503,
                    str(exc),
                )

        retry = self.config.retry
        spent = 0.0
        retries = 0
        for attempt in range(1, retry.max_attempts + 1):
            try:
                payload, cost = call()
            except BackendError as exc:
                spent += exc.cost_s
                failed_at = min(start + spent, budget.deadline_s)
                if breaker is not None:
                    breaker.record_failure(failed_at)
                backoff = retry.backoff_s(attempt)
                can_retry = (
                    attempt < retry.max_attempts
                    and (breaker is None or breaker_allows(breaker, failed_at))
                    and budget.allows(
                        start, spent + backoff + estimated_cost_s
                    )
                )
                if can_retry:
                    spent += backoff
                    retries += 1
                    continue
                bulkhead.commit(min(start + spent, budget.deadline_s))
                return self._degrade(
                    request, arrival, fingerprint, "backend-error", 500,
                    f"backend failed after {attempt} attempt(s): {exc}",
                    at_s=min(start + spent, budget.deadline_s),
                    retries=retries,
                )
            spent += cost
            end = start + spent
            if end > budget.deadline_s:
                # The work finished, but past the deadline: the call is
                # abandoned at the deadline (the client is gone).  The
                # worker time until the deadline is still charged, and
                # the breaker counts the timeout as a failure.
                bulkhead.commit(budget.deadline_s)
                if breaker is not None:
                    breaker.record_failure(budget.deadline_s)
                return self._degrade(
                    request, arrival, fingerprint, "deadline", 504,
                    "backend exceeded the deadline budget",
                    at_s=budget.deadline_s,
                    retries=retries,
                )
            bulkhead.commit(end)
            if breaker is not None:
                breaker.record_success(end)
            if cacheable and fingerprint:
                self.cache.put(fingerprint, payload, end)
            body = dict(payload) if isinstance(payload, dict) else {
                "results": payload
            }
            body["stale"] = False
            return self._settle(
                request, arrival, end, 200, "ok", body, retries=retries
            )
        raise InternalError("retry loop exited without settling")

    # ------------------------------------------------------------------
    # Endpoint handlers
    # ------------------------------------------------------------------

    def _resolve_profile(self, params: Mapping[str, Any]) -> Profile:
        name = params.get("profile")
        if not isinstance(name, str) or name not in self.profiles:
            known = ", ".join(sorted(self.profiles)) or "(none)"
            raise ConfigurationError(
                f"unknown profile {name!r}; known profiles: {known}"
            )
        return self.profiles[name]

    def _resolve_target(
        self, profile: Profile, params: Mapping[str, Any]
    ) -> PredictionTarget:
        try:
            data_nodes = int(params["data_nodes"])
            compute_nodes = int(params["compute_nodes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"predict needs integer data_nodes and compute_nodes: {exc}"
            ) from exc
        cluster_name = str(params.get("cluster", "pentium-myrinet"))
        make_cluster = _SERVICE_CLUSTERS.get(cluster_name)
        if make_cluster is None:
            raise ConfigurationError(
                f"unknown cluster '{cluster_name}'; known: "
                f"{sorted(_SERVICE_CLUSTERS)}"
            )
        bandwidth = float(params.get("bandwidth", DEFAULT_BANDWIDTH))
        dataset_bytes = float(
            params.get("dataset_bytes", profile.dataset_bytes)
        )
        config = make_run_config(
            data_nodes,
            compute_nodes,
            storage_cluster=make_cluster(),
            bandwidth=bandwidth,
        ).with_processes_per_node(int(params.get("processes_per_node", 1)))
        return PredictionTarget(config=config, dataset_bytes=dataset_bytes)

    def _apply_calibration(
        self, app: str, cluster: str, payload: Dict[str, float]
    ) -> Dict[str, float]:
        if self.calibrator is None:
            return dict(payload, calibrated=False)
        raw = PredictedBreakdown(
            t_disk=payload["t_disk"],
            t_network=payload["t_network"],
            t_compute=payload["t_compute"],
            t_ro=payload["t_ro"],
            t_g=payload["t_g"],
        )
        corrected = self.calibrator.correct(app, cluster, cluster, raw)
        return dict(breakdown_to_dict(corrected), calibrated=True)

    def _handle_predict(
        self, request: ServiceRequest, arrival: float, budget: DeadlineBudget
    ) -> ServiceResponse:
        try:
            profile = self._resolve_profile(request.params)
            target = self._resolve_target(profile, request.params)
        except ConfigurationError as exc:
            return self._reject(request, arrival, str(exc))
        model = self._model_for(profile.app)
        fingerprint = prediction_fingerprint(profile, target, model.label)
        cluster = target.config.compute_cluster.name

        def call() -> Tuple[Dict[str, Any], float]:
            payload, cost = self.backend.predict(model, profile, target)
            payload = self._apply_calibration(profile.app, cluster, payload)
            payload["fingerprint"] = fingerprint
            payload["app"] = profile.app
            payload["target"] = target.label
            return payload, cost

        return self._evaluate(
            request,
            arrival,
            budget,
            fingerprint,
            self.backend.cost_model.predict_s,
            call,
            breaker_key=(profile.app, cluster),
        )

    def _handle_whatif(
        self, request: ServiceRequest, arrival: float, budget: DeadlineBudget
    ) -> ServiceResponse:
        try:
            profile = self._resolve_profile(request.params)
            pairs_raw = request.params.get("pairs")
            if not isinstance(pairs_raw, (list, tuple)) or not pairs_raw:
                raise ConfigurationError(
                    "what-if needs a non-empty 'pairs' list of "
                    "[data_nodes, compute_nodes]"
                )
            pairs = [(int(n), int(c)) for n, c in pairs_raw]
        except (ConfigurationError, TypeError, ValueError) as exc:
            return self._reject(request, arrival, str(exc))
        model = self._model_for(profile.app)
        cluster_name = str(request.params.get("cluster", "pentium-myrinet"))
        make_cluster = _SERVICE_CLUSTERS.get(cluster_name)
        if make_cluster is None:
            return self._reject(
                request, arrival, f"unknown cluster '{cluster_name}'"
            )
        bandwidth = float(request.params.get("bandwidth", DEFAULT_BANDWIDTH))
        template = make_run_config(
            1, 1, storage_cluster=make_cluster(), bandwidth=bandwidth
        )
        target = PredictionTarget(
            config=template, dataset_bytes=profile.dataset_bytes
        )
        fingerprint = prediction_fingerprint(
            profile,
            target,
            model.label,
            extra=(("endpoint", "what-if"), ("pairs", [list(p) for p in pairs])),
        )
        cluster = template.compute_cluster.name

        def call() -> Tuple[Dict[str, Any], float]:
            forecasts, cost = self.backend.whatif(
                model, profile, template, pairs
            )
            best = min(forecasts, key=lambda f: f["predicted_total"])
            payload: Dict[str, Any] = {
                "app": profile.app,
                "forecasts": forecasts,
                "recommended": best["label"],
                "fingerprint": fingerprint,
            }
            return payload, cost

        return self._evaluate(
            request,
            arrival,
            budget,
            fingerprint,
            self.backend.cost_model.whatif_pair_s * len(pairs),
            call,
            breaker_key=(profile.app, cluster),
        )

    def _handle_broker_submit(
        self, request: ServiceRequest, arrival: float, budget: DeadlineBudget
    ) -> ServiceResponse:
        if self.broker is None:
            return self._reject(
                request, arrival,
                "no broker is configured behind this service",
                status=501, outcome="unconfigured",
            )
        jobs_raw = request.params.get("jobs")
        if not isinstance(jobs_raw, (list, tuple)) or not jobs_raw:
            return self._reject(
                request, arrival,
                "broker-submit needs a non-empty 'jobs' list",
            )
        policy = str(request.params.get("policy", "min-completion"))
        try:
            from repro.broker.jobs import BrokerJob

            jobs = [
                BrokerJob(
                    job_id=str(job["job_id"]),
                    workload=str(job["workload"]),
                    size=job.get("size"),
                    arrival=float(job.get("arrival", 0.0)),
                )
                for job in jobs_raw
            ]
        except (KeyError, TypeError, ValueError) as exc:
            return self._reject(
                request, arrival, f"malformed job list: {exc}"
            )

        def call() -> Tuple[Dict[str, Any], float]:
            return self.backend.broker_submit(self.broker, jobs, policy)

        return self._evaluate(
            request,
            arrival,
            budget,
            None,  # a submission is a mutation: never served stale
            self.backend.cost_model.broker_job_s * len(jobs),
            call,
            cacheable=False,
        )

    def _handle_campaign_status(
        self, request: ServiceRequest, arrival: float, budget: DeadlineBudget
    ) -> ServiceResponse:
        name = request.params.get("campaign")
        if not isinstance(name, str) or name not in self.campaign_journals:
            known = ", ".join(sorted(self.campaign_journals)) or "(none)"
            return self._reject(
                request, arrival,
                f"unknown campaign {name!r}; known campaigns: {known}",
            )
        journal_path = self.campaign_journals[name]
        from repro.core.durable import content_digest

        fingerprint = content_digest(
            {"endpoint": "campaign-status", "campaign": name}
        )

        def call() -> Tuple[Dict[str, Any], float]:
            payload, cost = self.backend.campaign_status(journal_path)
            payload = dict(payload)
            payload["campaign"] = name
            return payload, cost

        return self._evaluate(
            request,
            arrival,
            budget,
            fingerprint,
            self.backend.cost_model.status_s,
            call,
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def handle(self, request: ServiceRequest) -> ServiceResponse:
        """Run one request through the full resilience pipeline."""
        arrival = (
            request.arrival_s
            if request.arrival_s is not None
            else self.clock.now()
        )
        if request.request_id in self.log:
            # Answered without re-settling: the log stays exactly-once.
            return ServiceResponse(
                request_id=request.request_id,
                endpoint=request.endpoint,
                status=409,
                outcome="duplicate",
                body={"error": f"request id '{request.request_id}' was "
                      "already settled"},
                arrival_s=arrival,
                settled_s=arrival + self.config.degraded_cost_s,
            )
        if request.endpoint not in ENDPOINTS:
            return self._reject(
                request, arrival,
                f"unknown endpoint '{request.endpoint}'; known: "
                f"{', '.join(ENDPOINTS)}",
                status=404,
            )
        try:
            self.bucket.admit(arrival)
        except AdmissionError as exc:
            return self._settle(
                request,
                arrival,
                arrival + self.config.degraded_cost_s,
                429,
                "shed",
                {
                    "error": "service over capacity; request shed",
                    "retry_after_s": exc.retry_after_s,
                },
                retry_after_s=exc.retry_after_s,
            )
        deadline_s = (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.default_deadline_s
        )
        try:
            budget = DeadlineBudget.begin(arrival, deadline_s)
        except ConfigurationError as exc:
            return self._reject(request, arrival, str(exc))
        handler = {
            "predict": self._handle_predict,
            "what-if": self._handle_whatif,
            "broker-submit": self._handle_broker_submit,
            "campaign-status": self._handle_campaign_status,
        }[request.endpoint]
        return handler(request, arrival, budget)

    # ------------------------------------------------------------------
    # Calibration persistence (warm restarts)
    # ------------------------------------------------------------------

    def observe_actual(
        self,
        app: str,
        cluster: str,
        raw: PredictedBreakdown,
        actual: Tuple[float, float, float],
    ) -> None:
        """Feed one observed execution into the calibration state."""
        if self.calibrator is None:
            raise ConfigurationError(
                "service has no calibrator to feed observations into"
            )
        self.calibrator.observe(app, cluster, cluster, raw, actual)

    def save_calibration(self, path: str) -> None:
        """Persist the calibration state for the next process."""
        if self.calibrator is None:
            raise ConfigurationError("service has no calibrator to save")
        self.calibrator.save(path)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        """One deterministic dict of everything a dashboard would want."""
        out = self.log.summary()
        out["admission"] = {
            "admitted": self.bucket.admitted,
            "shed": self.bucket.shed,
        }
        out["bulkheads"] = {
            endpoint: {
                "refused": self.bulkheads[endpoint].refused,
                "peak_queue": self.bulkheads[endpoint].peak_queue,
            }
            for endpoint in sorted(self.bulkheads)
        }
        out["breakers"] = {
            "opens": self.breakers.total_opens(),
            "states": self.breakers.snapshot(),
        }
        out["cache"] = {
            "entries": len(self.cache),
            "stores": self.cache.stores,
            "evictions": self.cache.evictions,
        }
        if self.backend.injector is not None:
            out["injected_faults"] = dict(self.backend.injector.injected)
        return out


def breaker_allows(breaker: Any, now: float) -> bool:
    """Non-raising probe of :meth:`CircuitBreaker.allow` for retry loops.

    A retry must not proceed when its own failures just opened the
    circuit — but the *probe* admission of ``allow`` must not be
    consumed either (the retry would steal the half-open slot and the
    state machine would record a phantom transition).  Only a CLOSED
    breaker lets a retry through.
    """
    from repro.service.resilience import BreakerState

    return breaker.state is BreakerState.CLOSED


def serve_sequence(
    service: PredictionService, requests: Sequence[ServiceRequest]
) -> List[ServiceResponse]:
    """Drive a scenario: requests in arrival order on a virtual clock.

    Each request's ``arrival_s`` must be set and non-decreasing; the
    service clock is advanced to it before handling, so admission
    refill, breaker cool-downs, and cache ages all see scenario time.
    """
    clock = service.clock
    if not isinstance(clock, VirtualClock):
        raise ConfigurationError(
            "serve_sequence needs a service on a VirtualClock"
        )
    responses: List[ServiceResponse] = []
    for request in requests:
        if request.arrival_s is None:
            raise ConfigurationError(
                f"request '{request.request_id}' has no arrival_s; "
                "scenario requests must carry explicit arrival times"
            )
        clock.advance_to(request.arrival_s)
        responses.append(service.handle(request))
    return responses
