"""Resilient prediction-as-a-service over the prediction core.

The paper frames prediction as an offline modeling exercise; a grid
broker that consults predictions for every placement needs it as a
long-running shared *service* that stays predictable when the world is
not — overload, slow backends, crashing backends, corrupt responses.
This package is that service, resilience-first (DESIGN.md §15):

- :mod:`repro.service.app` — the four endpoints behind one pipeline:
  admission → deadline budget → bulkhead → circuit breaker → graceful
  degradation.
- :mod:`repro.service.resilience` — the pipeline's primitives.
- :mod:`repro.service.backends` — modeled backend costs + seeded fault
  injection (the chaos door).
- :mod:`repro.service.clock` — virtual vs. monotonic time.
- :mod:`repro.service.workload` — seeded request scenarios.
- :mod:`repro.service.http` — ASGI / stdlib HTTP shells.
"""

from repro.service.app import (
    ENDPOINTS,
    PredictionService,
    RequestLog,
    RequestRecord,
    ServiceRequest,
    ServiceResponse,
    serve_sequence,
)
from repro.service.backends import (
    BackendFaultSpec,
    ServiceBackend,
    ServiceCostModel,
    ServiceFaultInjector,
)
from repro.service.clock import MonotonicClock, ServiceClock, VirtualClock
from repro.service.http import ServiceGateway, asgi_app, make_server
from repro.service.errors import (
    AdmissionError,
    BackendCrashError,
    BackendError,
    BulkheadFullError,
    CircuitOpenError,
    CorruptResponseError,
    DeadlineExceededError,
    ServiceError,
)
from repro.service.resilience import (
    Bulkhead,
    BulkheadConfig,
    BreakerBank,
    BreakerState,
    CircuitBreaker,
    DeadlineBudget,
    ResilienceConfig,
    TokenBucket,
)
from repro.service.workload import RequestMix, demo_profiles, generate_requests

__all__ = [
    "ENDPOINTS",
    "PredictionService",
    "RequestLog",
    "RequestRecord",
    "ServiceRequest",
    "ServiceResponse",
    "serve_sequence",
    "BackendFaultSpec",
    "ServiceBackend",
    "ServiceCostModel",
    "ServiceFaultInjector",
    "MonotonicClock",
    "ServiceClock",
    "VirtualClock",
    "ServiceGateway",
    "asgi_app",
    "make_server",
    "AdmissionError",
    "BackendCrashError",
    "BackendError",
    "BulkheadFullError",
    "CircuitOpenError",
    "CorruptResponseError",
    "DeadlineExceededError",
    "ServiceError",
    "Bulkhead",
    "BulkheadConfig",
    "BreakerBank",
    "BreakerState",
    "CircuitBreaker",
    "DeadlineBudget",
    "ResilienceConfig",
    "TokenBucket",
    "RequestMix",
    "demo_profiles",
    "generate_requests",
]
