"""Legacy setuptools entry point.

Kept so ``pip install -e .`` works on environments without the ``wheel``
package (PEP 517 editable installs require it); all metadata lives in
pyproject.toml.
"""
from setuptools import setup

setup()
