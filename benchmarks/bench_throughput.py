"""Broker throughput at trace scale: indexed engine vs the linear shim.

Drives a six-figure GWA-style trace (the ``gwa-mixed`` preset: three
VOs, Weibull/lognormal/Pareto interarrivals, diurnal modulation)
through every placement policy on the reference multi-site grid, under
**both** engines per policy: the retained ``linear`` event loop — the
pre-scale-up reference path — and the default ``indexed`` engine.
Pairing the engines per policy is what makes the speedup honest: the
policies do different amounts of per-decision work (deadline-aware
pays admission control the others skip), so the only like-for-like
ratio is same stream, same policy, different engine.

Asserted invariants:

- **zero lost jobs** — every run accounts for the full stream
  (placements + rejections + terminal failures == count), under both
  engines and every policy;
- **engine equivalence** — each policy's linear and indexed reports
  serialize identically (spot-checked at the byte level on the
  baseline policy, structurally on all);
- **throughput floor** — every indexed policy clears
  ``REPRO_TRACE_BENCH_FLOOR`` jobs/sec (default 50: small runs pay
  one-time middleware-cache fills that a full trace amortizes away,
  and CI runners are slow);
- **scale-up ratio** — at full scale (>= 50k jobs) the *slowest*
  per-policy speedup is >= 10x.

The distilled numbers land in ``BENCH_throughput.json`` at the repo
root (canonical JSON — reruns of an unchanged broker diff clean), the
human-readable table under ``benchmarks/results/throughput.txt``.

``REPRO_TRACE_BENCH_COUNT`` shrinks the trace for CI smoke runs (the
ratio assert arms only at full scale; the loss/floor/equivalence
asserts always hold); the full 100k-job trace is the default.
"""

from __future__ import annotations

import os
import pathlib
import time

from repro.analysis import format_throughput
from repro.broker import GridBroker
from repro.broker.report import BrokerReport, _run_to_dict
from repro.core.durable import atomic_write_json, atomic_write_text
from repro.workloads.traces import (
    REFERENCE_ALLOCATIONS,
    TraceWorkload,
    make_preset,
    reference_grid,
)

from benchmarks.conftest import RESULTS_DIR, run_once

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

COUNT = int(os.environ.get("REPRO_TRACE_BENCH_COUNT", "100000"))
FLOOR = float(os.environ.get("REPRO_TRACE_BENCH_FLOOR", "50"))
#: The scale-up headline arms only on runs big enough to be meaningful.
FULL_SCALE = 50_000
SEED = 3
POLICIES = ["min-completion", "min-cost", "deadline-aware", "round-robin"]
BASELINE_POLICY = "min-completion"


def build_trace(broker: GridBroker) -> TraceWorkload:
    spec = make_preset("gwa-mixed", COUNT, seed=SEED)
    return TraceWorkload.from_spec(spec, baselines=broker.baseline_estimate)


def timed_run(broker: GridBroker, jobs, policy: str, engine: str):
    """One policy run under the wall clock, distilled to the JSON row."""
    start = time.perf_counter()
    run = broker.run(jobs, policy, engine=engine)
    wall = time.perf_counter() - start
    stats = broker.last_queue_stats
    return run, {
        "engine": engine,
        "policy": policy,
        "wall_seconds": wall,
        "jobs_per_sec": len(jobs) / wall,
        "completed": len(run.placements),
        "rejected": len(run.rejections),
        "failed": len(run.failures),
        "lost_jobs": len(jobs) - run.jobs,
        "events": stats.get("events", 0),
        "peak_event_queue_depth": stats.get("peak_event_queue_depth", 0),
        "peak_pending_depth": stats.get("peak_pending_depth", 0),
        "makespan_s": run.makespan,
    }


def run_throughput_study():
    broker = GridBroker(reference_grid(), REFERENCE_ALLOCATIONS)
    trace = build_trace(broker)
    jobs = list(trace.jobs)

    # Warm the broker's memoized selection/prediction/execution caches
    # outside the timed region, once per policy: different policies
    # place onto different (dataset, site, allocation) combos, and the
    # one-time middleware simulations filling those caches are
    # identical deterministic inputs for both engines — paying them
    # inside a timed region would measure the simulator, not the
    # scheduler.
    warm = jobs[: min(2000, len(jobs))]
    for policy in POLICIES:
        broker.run(warm, policy)

    policies = {}
    baseline_runs = None
    for policy in POLICIES:
        linear_run, linear_row = timed_run(broker, jobs, policy, "linear")
        indexed_run, indexed_row = timed_run(broker, jobs, policy, "indexed")
        policies[policy] = {
            "linear": linear_row,
            "indexed": indexed_row,
            "speedup": indexed_row["jobs_per_sec"]
            / linear_row["jobs_per_sec"],
            "identical": _run_to_dict(linear_run) == _run_to_dict(
                indexed_run
            ),
        }
        if policy == BASELINE_POLICY:
            baseline_runs = (linear_run, indexed_run)
        # Full runs are large at 100k jobs; keep only the baseline pair
        # alive for the byte-level check.
        del linear_run, indexed_run

    doc = {
        "kind": "bench-throughput",
        "trace": trace.name,
        "trace_fingerprint": trace.fingerprint,
        "seed": SEED,
        "jobs": COUNT,
        "topology": "reference-grid (3 repositories x 4 compute sites, "
        "36 candidates per dataset)",
        "policies": policies,
        "speedup_min": min(p["speedup"] for p in policies.values()),
    }
    return trace, doc, baseline_runs


def test_trace_throughput(benchmark, tmp_path):
    trace, doc, baseline_runs = run_once(benchmark, run_throughput_study)

    text = format_throughput(doc)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_text(RESULTS_DIR / "throughput.txt", text + "\n")
    atomic_write_json(REPO_ROOT / "BENCH_throughput.json", doc)

    for policy, entry in doc["policies"].items():
        # Zero lost jobs, under every engine and policy.
        for row in (entry["linear"], entry["indexed"]):
            assert row["lost_jobs"] == 0, (
                f"{row['engine']}/{policy} lost {row['lost_jobs']} jobs"
            )
            assert (
                row["completed"] + row["rejected"] + row["failed"] == COUNT
            )
        # Same policy, same stream => same report, engine-independent.
        assert entry["identical"], f"engines diverged on {policy}"
        # Throughput floor for the indexed engine, at any scale.
        rate = entry["indexed"]["jobs_per_sec"]
        assert rate >= FLOOR, (
            f"indexed/{policy} at {rate:.0f} jobs/s is below the "
            f"{FLOOR:.0f} floor"
        )

    # The scale-up headline: at full scale, every policy schedules the
    # stream >= 10x faster on the indexed engine than on the retained
    # pre-scale-up linear path.
    if COUNT >= FULL_SCALE:
        assert doc["speedup_min"] >= 10.0, (
            f"slowest per-policy speedup is only {doc['speedup_min']:.1f}x"
        )

    # And the equivalence holds at the byte level, not just structurally.
    linear_run, indexed_run = baseline_runs
    a = BrokerReport(name=trace.name, runs=(linear_run,)).save(
        tmp_path / "linear.json"
    )
    b = BrokerReport(name=trace.name, runs=(indexed_run,)).save(
        tmp_path / "indexed.json"
    )
    assert a.read_bytes() == b.read_bytes()
