"""Ablation: how the additive model behaves under chunk pipelining.

``T_exec = T_disk + T_network + T_compute`` assumes the stages do not
overlap — true for FREERIDE-G's phase-structured execution, which is what
makes the paper's predictors so simple.  This bench runs the same
workloads under the chunk-streaming :class:`PipelinedRuntime` and
reports:

- the speedup pipelining gives over phased execution, and
- the error the additive predictor would make if the deployed middleware
  actually pipelined (it systematically overestimates, approaching the
  sum-vs-max gap).

This quantifies the robustness boundary of the paper's model: it is tied
to the middleware's phased execution, not to grid processing in general.
"""

from repro.core import (
    GlobalReductionModel,
    ModelClasses,
    PipelinedBottleneckModel,
    PredictionTarget,
    Profile,
    relative_error,
)
from repro.middleware import FreerideGRuntime
from repro.middleware.pipelined import PipelinedRuntime
from repro.workloads.configs import make_run_config
from repro.workloads.registry import WORKLOADS

from benchmarks.conftest import run_once

SIZES = {"knn": "350 MB", "vortex": "710 MB", "defect": "130 MB"}


def run_pipelining_study():
    rows = []
    for name, size in SIZES.items():
        spec = WORKLOADS[name]
        dataset = spec.make_dataset(size)
        profile_config = make_run_config(1, 1)
        profile_run = FreerideGRuntime(profile_config).execute(
            spec.make_app(), dataset
        )
        profile = Profile.from_run(profile_config, profile_run.breakdown)
        model = GlobalReductionModel(
            ModelClasses.parse(
                spec.natural_object_class, spec.natural_global_class
            )
        )

        bottleneck_model = PipelinedBottleneckModel(
            ModelClasses.parse(
                spec.natural_object_class, spec.natural_global_class
            )
        )

        config = make_run_config(2, 4)
        phased = FreerideGRuntime(config).execute(spec.make_app(), dataset)
        piped = PipelinedRuntime(config).execute(spec.make_app(), dataset)
        target = PredictionTarget(config=config, dataset_bytes=dataset.nbytes)
        predicted = model.predict(profile, target).total
        predicted_bottleneck = bottleneck_model.predict(profile, target).total

        rows.append(
            {
                "workload": name,
                "phased": phased.breakdown.total,
                "pipelined": piped.makespan,
                "speedup": phased.breakdown.total / piped.makespan,
                "err_phased": relative_error(
                    phased.breakdown.total, predicted
                ),
                "err_pipelined": relative_error(piped.makespan, predicted),
                "err_bottleneck": relative_error(
                    piped.makespan, predicted_bottleneck
                ),
            }
        )
    return rows


def test_additive_model_assumes_phased_execution(benchmark):
    rows = run_once(benchmark, run_pipelining_study)

    print()
    print(f"{'workload':>10} {'phased':>9} {'pipelined':>10} {'speedup':>8} "
          f"{'additive err (phased)':>22} {'additive err (piped)':>21} "
          f"{'bottleneck err (piped)':>23}")
    for r in rows:
        print(f"{r['workload']:>10} {r['phased']:8.4f}s {r['pipelined']:9.4f}s "
              f"{r['speedup']:7.2f}x {100 * r['err_phased']:21.2f}% "
              f"{100 * r['err_pipelined']:20.2f}% "
              f"{100 * r['err_bottleneck']:22.2f}%")

    for r in rows:
        # Pipelining helps (the single-pass apps overlap all three stages).
        assert r["speedup"] > 1.2
        # The additive model is accurate for the phased middleware it was
        # built for, and substantially overestimates a pipelining one.
        assert r["err_phased"] < 0.05
        assert r["err_pipelined"] > 3.0 * r["err_phased"]
        # The bottleneck composition recovers most of that accuracy: the
        # paper's per-component predictors survive a streaming middleware,
        # only the composition rule changes.
        assert r["err_bottleneck"] < 0.20
        assert r["err_bottleneck"] < r["err_pipelined"] / 3.0
