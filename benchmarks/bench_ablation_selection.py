"""Ablation: end-to-end resource-selection quality.

The framework exists to drive resource selection (Sections 2.1 and 3): it
must pick the (replica, configuration) pair with minimum cost.  This bench
builds a small grid with two replicas (one behind a thin WAN link), ranks
every candidate with the global-reduction model, then executes *every*
candidate for real and reports:

- the **regret** of the predicted best (actual time of the predicted best
  divided by the actual optimum, minus one), and
- the **pairwise ranking agreement** between predicted and actual orders.
"""

import itertools

from repro.core import (
    GlobalReductionModel,
    ModelClasses,
    Profile,
)
from repro.core.selection import ResourceSelector
from repro.middleware import FreerideGRuntime, ReplicaCatalog
from repro.middleware.scheduler import RunConfig
from repro.simgrid.topology import GridTopology, SiteKind
from repro.workloads.clusters import pentium_myrinet_cluster
from repro.workloads.configs import make_run_config
from repro.workloads.registry import WORKLOADS

from benchmarks.conftest import run_once

ALLOCATIONS = [(1, 1), (1, 4), (2, 4), (2, 8), (4, 8), (4, 16), (8, 16)]


def run_selection_study(workload: str = "kmeans", size: str = "350 MB"):
    spec = WORKLOADS[workload]
    dataset = spec.make_dataset(size)
    cluster = pentium_myrinet_cluster()

    topo = GridTopology()
    topo.add_site("repo-near", SiteKind.REPOSITORY, cluster)
    topo.add_site("repo-far", SiteKind.REPOSITORY, cluster)
    topo.add_site("hpc", SiteKind.COMPUTE, cluster)
    topo.connect("repo-near", "hpc", bw=2.0e6)
    topo.connect("repo-far", "hpc", bw=4.0e5)
    catalog = ReplicaCatalog(topo)
    catalog.add(dataset.name, "repo-near")
    catalog.add(dataset.name, "repo-far")

    profile_config = make_run_config(1, 1)
    profile_run = FreerideGRuntime(profile_config).execute(
        spec.make_app(), dataset
    )
    profile = Profile.from_run(profile_config, profile_run.breakdown)
    model = GlobalReductionModel(
        ModelClasses.parse(spec.natural_object_class, spec.natural_global_class)
    )

    outcome = ResourceSelector(topo, catalog, model, ALLOCATIONS).select(
        dataset.name, dataset.nbytes, profile
    )

    actual = {}
    for cand in outcome:
        config = RunConfig(
            storage_cluster=cluster,
            compute_cluster=cluster,
            data_nodes=cand.data_nodes,
            compute_nodes=cand.compute_nodes,
            bandwidth=cand.bandwidth,
        )
        run = FreerideGRuntime(config).execute(spec.make_app(), dataset)
        actual[cand.label] = run.breakdown.total

    predicted_order = [c.label for c in outcome]
    actual_best = min(actual.values())
    regret = actual[outcome.best.label] / actual_best - 1.0

    agree = total = 0
    for a, b in itertools.combinations(predicted_order, 2):
        total += 1
        if actual[a] <= actual[b]:
            agree += 1
    return {
        "regret": regret,
        "ranking_agreement": agree / total,
        "candidates": len(predicted_order),
        "best": outcome.best.label,
    }


def test_selection_quality(benchmark):
    stats = run_once(benchmark, run_selection_study)
    print(
        f"\nselection over {stats['candidates']} candidates: "
        f"best={stats['best']}  regret={stats['regret']:.2%}  "
        f"pairwise ranking agreement={stats['ranking_agreement']:.1%}"
    )
    assert stats["regret"] < 0.02
    assert stats["ranking_agreement"] > 0.9
