"""Section 5.4's observation: per-application compute scaling factors.

The paper: "scaling factors for the computation component did vary
considerably across applications, ranging from 0.233 for kNN to 0.370 for
Vortex detection."  This bench measures all five applications on identical
configurations on both clusters and prints the componentwise factors; the
spread across applications is the fundamental accuracy limit of the
averaged-factor approach of Section 3.4.
"""

from repro.core import Profile, measure_scaling_factors
from repro.middleware import FreerideGRuntime
from repro.workloads.clusters import (
    opteron_infiniband_cluster,
    pentium_myrinet_cluster,
)
from repro.workloads.configs import make_run_config
from repro.workloads.registry import WORKLOADS

from benchmarks.conftest import run_once

SMALL_SIZE = {
    "kmeans": "350 MB",
    "em": "350 MB",
    "knn": "350 MB",
    "vortex": "710 MB",
    "defect": "130 MB",
    "apriori": "250 MB",
    "neuralnet": "250 MB",
}


def measure_all_factors():
    pentium = pentium_myrinet_cluster()
    opteron = opteron_infiniband_cluster()
    pairs = []
    for name, spec in sorted(WORKLOADS.items()):
        dataset = spec.make_dataset(SMALL_SIZE[name])
        config_a = make_run_config(2, 4, storage_cluster=pentium)
        run_a = FreerideGRuntime(config_a).execute(spec.make_app(), dataset)
        config_b = make_run_config(2, 4, storage_cluster=opteron)
        run_b = FreerideGRuntime(config_b).execute(spec.make_app(), dataset)
        pairs.append(
            (
                Profile.from_run(config_a, run_a.breakdown),
                Profile.from_run(config_b, run_b.breakdown),
            )
        )
    return measure_scaling_factors(pairs)


def test_compute_scaling_factors_vary_by_application(benchmark):
    factors = run_once(benchmark, measure_all_factors)

    print()
    print("componentwise scaling factors, Pentium/Myrinet -> Opteron/InfiniBand")
    print(f"  averaged: sd={factors.sd:.3f}  sn={factors.sn:.3f}  sc={factors.sc:.3f}")
    for app, (sd, sn, sc) in sorted(factors.per_app.items()):
        print(f"  {app:8s} sd={sd:.3f}  sn={sn:.3f}  sc={sc:.3f}")

    sc_values = {app: r[2] for app, r in factors.per_app.items()}
    # The paper's spread: kNN lowest (0.233), vortex highest (0.370).
    assert min(sc_values, key=sc_values.get) in {"knn", "defect"}
    assert max(sc_values.values()) - min(sc_values.values()) > 0.05
    # All components speed up on the newer cluster.
    assert all(r[2] < 1.0 for r in factors.per_app.values())
