"""Ablation: serialized vs binomial-tree reduction-object gather.

FREERIDE-G serializes the gather at the master, which is exactly why the
paper's T_ro grows with the compute-node count and why the
no-communication model degrades at 16 nodes.  This ablation re-runs
k-means at increasing node counts under both gather topologies and shows
(a) the serialized gather's T_ro grows ~linearly while the tree's grows
~logarithmically, and (b) how much of the no-communication model's error
a tree gather would have removed.
"""

from repro.core import (
    NoCommunicationModel,
    PredictionTarget,
    Profile,
    relative_error,
)
from repro.middleware import FreerideGRuntime, GatherTopology
from repro.workloads.configs import make_run_config
from repro.workloads.registry import WORKLOADS

from benchmarks.conftest import run_once


def run_gather_study():
    spec = WORKLOADS["kmeans"]
    dataset = spec.make_dataset("350 MB")

    profile_config = make_run_config(1, 1)
    profile_run = FreerideGRuntime(profile_config).execute(
        spec.make_app(), dataset
    )
    profile = Profile.from_run(profile_config, profile_run.breakdown)
    model = NoCommunicationModel()

    rows = []
    for c in (2, 4, 8, 16):
        config = make_run_config(2, c)
        entry = {"c": c}
        for topology in (GatherTopology.SERIAL, GatherTopology.TREE):
            run = FreerideGRuntime(
                config.with_gather_topology(topology)
            ).execute(spec.make_app(), dataset)
            target = PredictionTarget(
                config=config, dataset_bytes=dataset.nbytes
            )
            predicted = model.predict(profile, target)
            entry[topology.value] = {
                "t_ro": run.breakdown.t_ro,
                "total": run.breakdown.total,
                "err": relative_error(run.breakdown.total, predicted.total),
            }
        rows.append(entry)
    return rows


def test_gather_topology_ablation(benchmark):
    rows = run_once(benchmark, run_gather_study)

    print()
    print(f"{'c':>4} {'serial t_ro':>12} {'tree t_ro':>12} "
          f"{'no-comm err (serial)':>21} {'no-comm err (tree)':>19}")
    for r in rows:
        print(f"{r['c']:>4} {r['serial']['t_ro']:11.5f}s "
              f"{r['tree']['t_ro']:11.5f}s "
              f"{100 * r['serial']['err']:20.2f}% "
              f"{100 * r['tree']['err']:18.2f}%")

    # The serialized gather's cost grows much faster than the tree's.
    serial_growth = rows[-1]["serial"]["t_ro"] / rows[0]["serial"]["t_ro"]
    tree_growth = rows[-1]["tree"]["t_ro"] / rows[0]["tree"]["t_ro"]
    assert serial_growth > 2.0 * tree_growth
    # At 16 nodes the tree gather removes part of the no-communication
    # model's error (less unmodelled serialized time remains).
    assert rows[-1]["tree"]["err"] < rows[-1]["serial"]["err"]
