"""Figure 11: EM clustering predicted on a different cluster.

Base profile: 8-8 on the Pentium/Myrinet cluster with 350 MB; predictions
target the Opteron/InfiniBand cluster with 700 MB.  Componentwise scaling
factors are averaged over k-means, kNN and vortex detection (EM itself is
excluded), exactly as in Section 5.4.

Expected shape: cross-cluster errors exceed the within-cluster
experiments (the averaged compute factor does not match EM's own), with
the per-application compute factors spreading noticeably.
"""

from repro.workloads.experiments import run_experiment

from benchmarks.conftest import run_once


def test_fig11_em_cross_cluster(benchmark, figure_report):
    result = run_once(benchmark, lambda: run_experiment("fig11"))
    figure_report(result)

    assert result.max_error("cross-cluster") < 0.12
    # The target cluster is strictly faster: all factors below 1.
    assert 0 < result.metadata["sc"] < 1
    assert 0 < result.metadata["sd"] < 1
    # Per-application compute factors differ (the paper saw 0.233-0.370).
    per_app = result.metadata["per_app_sc"]
    assert max(per_app.values()) - min(per_app.values()) > 0.02
