"""Broker policies over a seeded 200-job heterogeneous stream.

Drives the four placement policies over the same Poisson stream on a
Pentium/Myrinet + Opteron/InfiniBand grid and checks the subsystem's
headline claims:

- prediction-guided placement (min-completion) beats the prediction-free
  round-robin baseline on makespan;
- deadline-aware admission control strictly reduces the deadline-miss
  rate vs round-robin (rejected deadline jobs count as missed, so the
  policy cannot game the metric by refusing work);
- online calibration reduces the mean relative prediction error over the
  last 50 jobs vs the uncalibrated control run;
- replaying the same seed yields a byte-identical report file.

Besides the human-readable table under ``benchmarks/results/``, the
bench distills the per-policy headline numbers into ``BENCH_broker.json``
at the repository root — the committed, machine-readable perf trajectory
the ROADMAP calls for (canonical JSON, so reruns of an unchanged broker
diff clean).

``REPRO_BROKER_BENCH_COUNT`` shrinks the stream for CI smoke runs (the
error window scales down with it); the full 200-job stream is the
default.
"""

from __future__ import annotations

import os
import pathlib

from repro.analysis import format_broker
from repro.core.durable import atomic_write_json, atomic_write_text
from repro.broker import GridBroker
from repro.simgrid.topology import GridTopology, SiteKind
from repro.workloads.clusters import (
    opteron_infiniband_cluster,
    pentium_myrinet_cluster,
)
from repro.workloads.streams import StreamSpec, generate_stream

from benchmarks.conftest import RESULTS_DIR, run_once

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

COUNT = int(os.environ.get("REPRO_BROKER_BENCH_COUNT", "200"))
#: Jobs of the calibration-accuracy window (the stream's converged tail).
ERROR_WINDOW = min(50, max(COUNT // 4, 1))

POLICIES = ["min-completion", "min-cost", "deadline-aware", "round-robin"]


def hetero_grid() -> GridTopology:
    topology = GridTopology()
    topology.add_site(
        "repo-a", SiteKind.REPOSITORY, pentium_myrinet_cluster(num_nodes=16)
    )
    topology.add_site(
        "hpc-1", SiteKind.COMPUTE, pentium_myrinet_cluster(num_nodes=16)
    )
    topology.add_site(
        "hpc-2", SiteKind.COMPUTE, opteron_infiniband_cluster(num_nodes=16)
    )
    topology.connect("repo-a", "hpc-1", bw=2.0e6)
    topology.connect("repo-a", "hpc-2", bw=1.0e6)
    return topology


def stream_spec() -> StreamSpec:
    return StreamSpec(
        count=COUNT,
        seed=42,
        mean_interarrival=0.08,
        mix=(
            ("kmeans", None, 2.0),
            ("knn", None, 1.0),
            ("vortex", None, 1.0),
            ("em", None, 1.0),
        ),
        deadline_fraction=0.4,
        deadline_slack=(1.2, 3.0),
        priorities=(0, 1),
    )


def run_broker_study():
    def one_report():
        broker = GridBroker(hetero_grid(), [(1, 2), (2, 4)])
        jobs = generate_stream(
            stream_spec(), baselines=broker.baseline_estimate
        )
        return broker.compare("bench-broker", jobs, POLICIES)

    report = one_report()
    replay = one_report()
    return report, replay


def bench_summary(report) -> dict:
    """Distill one policy comparison into the committed perf record."""
    return {
        "kind": "bench-broker",
        "jobs": COUNT,
        "error_window": ERROR_WINDOW,
        "policies": {
            run.label: {
                "completed": len(run.placements),
                "rejected": len(run.rejections),
                "makespan_s": run.makespan,
                "mean_wait_s": run.mean_wait,
                "deadline_miss_rate": run.deadline_miss_rate,
                "mean_abs_error": run.mean_error(),
                "tail_abs_error": run.mean_error(last=ERROR_WINDOW),
            }
            for run in report.runs
        },
    }


def test_broker_policies_and_calibration(benchmark, tmp_path):
    report, replay = run_once(benchmark, run_broker_study)

    text = format_broker(report)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_text(RESULTS_DIR / "broker.txt", text + "\n")
    report.save(RESULTS_DIR / "broker.json")
    atomic_write_json(REPO_ROOT / "BENCH_broker.json", bench_summary(report))

    min_completion = report.run("min-completion")
    deadline_aware = report.run("deadline-aware")
    round_robin = report.run("round-robin")
    uncalibrated = report.run("min-completion (uncalibrated)")

    # Every job of the stream is accounted for under every policy.
    assert all(run.jobs == COUNT for run in report.runs)

    # Prediction-guided placement beats the prediction-free baseline.
    assert min_completion.makespan < round_robin.makespan

    # Admission control strictly reduces deadline misses.
    assert deadline_aware.deadline_miss_rate < round_robin.deadline_miss_rate

    # Online calibration converges: the error of the stream's tail is
    # below the uncalibrated control's.
    calibrated_tail = min_completion.mean_error(last=ERROR_WINDOW)
    uncalibrated_tail = uncalibrated.mean_error(last=ERROR_WINDOW)
    assert calibrated_tail < uncalibrated_tail

    # Replaying the same seed is byte-identical on disk.
    a = report.save(tmp_path / "a.json")
    b = replay.save(tmp_path / "b.json")
    assert a.read_bytes() == b.read_bytes()
