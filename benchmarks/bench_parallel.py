"""Serial vs process-pool execution of the paper-figure campaign.

Runs the same fast paper-figure campaign twice — once on the serial
:class:`~repro.campaign.runner.CampaignRunner`, once on the
certificate-gated :class:`~repro.campaign.parallel.ParallelCampaignRunner`
with ``REPRO_PARALLEL_BENCH_WORKERS`` workers — and checks the
subsystem's headline claims:

- the process pool may only start because every campaign entry point is
  *proven* process-pool-safe by the effect analysis (the gate runs, and
  its cost is reported separately);
- the parallel journal and every per-entry result artifact are
  **byte-identical** to the serial run's (modulo the wall-clock
  ``elapsed_s`` journal fields, excluded as between any two serial
  runs);
- both runs exit clean.

The wall-clock headline lands in ``BENCH_parallel.json`` at the
repository root together with ``cpu_count`` — the speedup is bounded by
the cores the host actually has (a single-core CI box will honestly
report ~1x or below; the byte-identity claims hold regardless).

``REPRO_PARALLEL_BENCH_COUNT`` shrinks the campaign for CI smoke runs;
the full fast figure suite is the default.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.campaign import (
    CampaignRunner,
    ParallelCampaignRunner,
    paper_suite_manifest,
    verify_pool_safety,
)
from repro.core.durable import atomic_write_json, atomic_write_text
from repro.workloads.experiments import EXPERIMENTS

from benchmarks.conftest import RESULTS_DIR, run_once

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

COUNT = int(
    os.environ.get("REPRO_PARALLEL_BENCH_COUNT", str(len(EXPERIMENTS)))
)
WORKERS = int(os.environ.get("REPRO_PARALLEL_BENCH_WORKERS", "4"))


def journal_projection(path: pathlib.Path) -> dict:
    """The journal minus its wall-clock fields (the determinism view)."""
    document = json.loads(path.read_text())
    for entry in document["entries"]:
        del entry["elapsed_s"]
    return document


def run_campaigns(scratch: pathlib.Path) -> dict:
    manifest = paper_suite_manifest(
        fast=True, experiment_ids=sorted(EXPERIMENTS)[:COUNT]
    )

    t0 = time.perf_counter()
    proven = verify_pool_safety()
    certify_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    serial = CampaignRunner(
        manifest,
        scratch / "serial.journal.json",
        results_dir=scratch / "serial",
    ).run()
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = ParallelCampaignRunner(
        manifest,
        scratch / "parallel.journal.json",
        workers=WORKERS,
        results_dir=scratch / "parallel",
    ).run()
    parallel_s = time.perf_counter() - t0

    assert serial.exit_code == 0, "serial campaign must exit clean"
    assert parallel.exit_code == 0, "parallel campaign must exit clean"

    identical = journal_projection(
        scratch / "serial.journal.json"
    ) == journal_projection(scratch / "parallel.journal.json")
    artifacts = sorted(p.name for p in (scratch / "serial").iterdir())
    identical = identical and artifacts == sorted(
        p.name for p in (scratch / "parallel").iterdir()
    )
    for name in artifacts:
        identical = identical and (
            (scratch / "serial" / name).read_bytes()
            == (scratch / "parallel" / name).read_bytes()
        )

    return {
        "kind": "bench-parallel",
        "campaign": manifest.name,
        "entries": len(manifest.entries),
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "certified_entry_points": len(proven),
        "certify_s": round(certify_s, 3),
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3),
        "byte_identical": identical,
    }


def format_parallel(doc: dict) -> str:
    lines = [
        f"parallel campaign bench — {doc['entries']} entries, "
        f"{doc['workers']} workers on {doc['cpu_count']} cpu(s)",
        f"  certificate gate   {doc['certify_s']:8.3f}s "
        f"({doc['certified_entry_points']} entry points proven)",
        f"  serial             {doc['serial_s']:8.3f}s",
        f"  parallel           {doc['parallel_s']:8.3f}s "
        f"({doc['speedup']:.2f}x)",
        f"  byte-identical     {doc['byte_identical']}",
    ]
    return "\n".join(lines)


def test_parallel_campaign_speedup_and_identity(benchmark, tmp_path):
    doc = run_once(benchmark, lambda: run_campaigns(tmp_path))

    text = format_parallel(doc)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_text(RESULTS_DIR / "parallel.txt", text + "\n")
    atomic_write_json(REPO_ROOT / "BENCH_parallel.json", doc)

    # The non-negotiable claim: parallel output is the serial output.
    assert doc["byte_identical"], (
        "parallel campaign produced different bytes than the serial run"
    )
    # Every submitted entry point carried a proof.
    assert doc["certified_entry_points"] >= 6
    # The gate is a bounded startup cost, not a per-entry tax.
    assert doc["certify_s"] < doc["serial_s"] + doc["parallel_s"]
