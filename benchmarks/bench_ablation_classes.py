"""Ablation: what the two-class structure of Sections 3.3.1-3.3.2 buys.

The refined predictors need a (reduction-object-size, global-reduction)
class assignment per application.  This ablation runs the global-reduction
model for k-means (constant / linear-constant) and vortex detection
(linear / constant-linear) twice — once with the correct classes and once
with the classes swapped — and shows that misassignment measurably hurts
where the serialized terms matter (large compute-node counts).
"""

from repro.core import (
    GlobalReductionModel,
    ModelClasses,
    PredictionTarget,
    Profile,
    relative_error,
)
from repro.middleware import FreerideGRuntime
from repro.workloads.configs import PAPER_CONFIG_GRID, make_run_config
from repro.workloads.registry import WORKLOADS

from benchmarks.conftest import run_once

SWAPPED = {
    "constant": "linear",
    "linear": "constant",
    "linear-constant": "constant-linear",
    "constant-linear": "linear-constant",
}


def run_ablation(workload: str, size: str):
    spec = WORKLOADS[workload]
    dataset = spec.make_dataset(size)
    profile_config = make_run_config(1, 1)
    profile_run = FreerideGRuntime(profile_config).execute(
        spec.make_app(), dataset
    )
    profile = Profile.from_run(profile_config, profile_run.breakdown)

    correct = GlobalReductionModel(
        ModelClasses.parse(spec.natural_object_class, spec.natural_global_class)
    )
    swapped = GlobalReductionModel(
        ModelClasses.parse(
            SWAPPED[spec.natural_object_class],
            SWAPPED[spec.natural_global_class],
        )
    )

    errors = {"correct": [], "swapped": []}
    for n, c in PAPER_CONFIG_GRID:
        config = make_run_config(n, c)
        actual = FreerideGRuntime(config).execute(spec.make_app(), dataset)
        target = PredictionTarget(config=config, dataset_bytes=dataset.nbytes)
        for label, model in [("correct", correct), ("swapped", swapped)]:
            predicted = model.predict(profile, target)
            errors[label].append(
                relative_error(actual.breakdown.total, predicted.total)
            )
    return errors


def test_class_misassignment_hurts_kmeans(benchmark):
    errors = run_once(benchmark, lambda: run_ablation("kmeans", "350 MB"))
    correct = max(errors["correct"])
    swapped = max(errors["swapped"])
    print(f"\nkmeans class ablation: max error correct={correct:.2%} "
          f"swapped={swapped:.2%}")
    assert swapped > correct


def test_class_misassignment_hurts_vortex(benchmark):
    errors = run_once(benchmark, lambda: run_ablation("vortex", "710 MB"))
    correct = max(errors["correct"])
    swapped = max(errors["swapped"])
    print(f"\nvortex class ablation: max error correct={correct:.2%} "
          f"swapped={swapped:.2%}")
    assert swapped >= correct
