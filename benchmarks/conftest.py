"""Benchmark harness fixtures.

Every ``bench_figXX_*.py`` regenerates one figure of the paper on the full
14-configuration grid, prints the error table a reader can compare against
the paper, and writes it to ``benchmarks/results/<figure>.txt``.

Run with::

    pytest benchmarks/ --benchmark-only

The timing reported by pytest-benchmark is the wall time of the whole
figure reproduction (profile run + 14 actual runs + predictions); the
interesting output is the table, shown with ``-s`` or found under
``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import format_experiment, save_result
from repro.core.durable import atomic_write_text
from repro.analysis.expectations import EXPECTATIONS, check_expectation
from repro.workloads.experiments import ExperimentResult

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def figure_report():
    """Print a reproduced figure, persist it, and check the paper's claims.

    The figure table goes to ``benchmarks/results/<figure>.txt`` and a
    machine-readable JSON copy next to it (a baseline for
    :func:`repro.analysis.compare_results`).  When the figure has a
    recorded :class:`~repro.analysis.expectations.FigureExpectation`, any
    violated claim fails the bench.
    """

    def report(result: ExperimentResult) -> None:
        text = format_experiment(result)
        print()
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        stem = f"{result.experiment_id}_{result.workload}"
        atomic_write_text(RESULTS_DIR / f"{stem}.txt", text + "\n")
        save_result(result, RESULTS_DIR / f"{stem}.json")

        if result.experiment_id in EXPECTATIONS:
            violations = check_expectation(result)
            assert not violations, (
                f"{result.experiment_id} no longer matches the paper: "
                + "; ".join(violations)
            )

    return report


def run_once(benchmark, fn):
    """Execute a deterministic experiment exactly once under the timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
