"""Ablation: does prediction-driven allocation actually help?

The paper's motivation is resource allocation: prediction models exist so
the middleware can pick the (replica, configuration) pair minimizing
cost.  This bench schedules a mixed batch of jobs on a capacity-limited
grid under three policies — the framework's *predicted-best*, a random
feasible choice, and a grab-the-most-nodes heuristic — executes every
placement for real, and compares makespan and mean turnaround.
"""

from repro.core import (
    GlobalReductionModel,
    GridScheduler,
    Job,
    ModelClasses,
    Profile,
    max_parallelism_policy,
    predicted_best_policy,
    random_policy,
)
from repro.middleware import FreerideGRuntime, ReplicaCatalog
from repro.simgrid.topology import GridTopology, SiteKind
from repro.workloads.clusters import pentium_myrinet_cluster
from repro.workloads.configs import make_run_config
from repro.workloads.registry import WORKLOADS

from benchmarks.conftest import run_once

SMALL_SIZE = {"knn": "350 MB", "vortex": "710 MB", "defect": "130 MB",
              "kmeans": "350 MB"}
JOB_MIX = ["knn", "vortex", "defect", "kmeans", "knn", "defect", "vortex"]


def run_scheduling_study():
    cluster = pentium_myrinet_cluster(num_nodes=16)
    topo = GridTopology()
    topo.add_site("repo", SiteKind.REPOSITORY, cluster)
    topo.add_site("hpc-a", SiteKind.COMPUTE, cluster)
    topo.add_site("hpc-b", SiteKind.COMPUTE,
                  pentium_myrinet_cluster(num_nodes=8))
    topo.connect("repo", "hpc-a", bw=2.0e6)
    topo.connect("repo", "hpc-b", bw=5.0e5)
    catalog = ReplicaCatalog(topo)

    jobs = []
    for i, name in enumerate(JOB_MIX):
        spec = WORKLOADS[name]
        dataset = spec.make_dataset(SMALL_SIZE[name])
        dataset.name = f"{dataset.name}-job{i}"
        catalog.add(dataset.name, "repo")
        config = make_run_config(1, 1)
        run = FreerideGRuntime(config).execute(spec.make_app(), dataset)
        jobs.append(
            Job(
                job_id=f"job-{i}-{name}",
                workload=name,
                dataset=dataset,
                app_factory=spec.make_app,
                profile=Profile.from_run(config, run.breakdown),
            )
        )

    scheduler = GridScheduler(
        topology=topo,
        catalog=catalog,
        model=GlobalReductionModel(
            ModelClasses.parse("constant", "linear-constant")
        ),
        allocations=[(1, 2), (2, 4), (4, 8)],
    )

    outcomes = {}
    outcomes["predicted best"] = scheduler.schedule(
        jobs, predicted_best_policy
    )
    outcomes["max parallelism"] = scheduler.schedule(
        jobs, max_parallelism_policy
    )
    outcomes["random (mean of 3)"] = None
    randoms = [
        scheduler.schedule(jobs, random_policy(seed)) for seed in (1, 2, 3)
    ]
    return outcomes, randoms


def test_prediction_driven_allocation_wins(benchmark):
    outcomes, randoms = run_once(benchmark, run_scheduling_study)

    best = outcomes["predicted best"]
    grabby = outcomes["max parallelism"]
    random_turnaround = sum(s.mean_turnaround for s in randoms) / len(randoms)
    random_makespan = sum(s.makespan for s in randoms) / len(randoms)

    print()
    print(f"{'policy':>20} {'makespan':>10} {'mean turnaround':>16}")
    print(f"{'predicted best':>20} {best.makespan:9.3f}s "
          f"{best.mean_turnaround:15.3f}s")
    print(f"{'max parallelism':>20} {grabby.makespan:9.3f}s "
          f"{grabby.mean_turnaround:15.3f}s")
    print(f"{'random (mean of 3)':>20} {random_makespan:9.3f}s "
          f"{random_turnaround:15.3f}s")

    # The paper's motivating claim: prediction-driven selection beats
    # prediction-free policies.
    assert best.mean_turnaround <= random_turnaround
    assert best.mean_turnaround <= grabby.mean_turnaround * 1.02
