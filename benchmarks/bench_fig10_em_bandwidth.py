"""Figure 10: EM clustering under halved network bandwidth.

Same protocol as Figure 9 for the EM application.

Expected shape: errors below ~1-2% everywhere; changing only the
bandwidth leaves the error-vs-configuration shape unchanged.
"""

from repro.workloads.experiments import run_experiment

from benchmarks.conftest import run_once


def test_fig10_em_bandwidth(benchmark, figure_report):
    result = run_once(benchmark, lambda: run_experiment("fig10"))
    figure_report(result)

    assert result.max_error("global reduction") < 0.02
