"""Chaos campaigns over the broker: resilience under seeded grid faults.

Sweeps seeded fault timelines (site outages, node-pool shrinks, WAN
degradations, transient job failures) over the same heterogeneous
stream as ``bench_broker`` and checks the fault model's tentpole
guarantees for *both* recovery policies:

- every admitted job settles exactly once (placed, rejected, or
  terminally failed) — chaos never loses work;
- no reservation window overlaps a declared site outage and no node is
  double-booked;
- replaying an identical (seed, scenario) pair yields a byte-identical
  report — determinism survives adversity.

The per-seed outcomes and aggregate goodput land in
``BENCH_resilience.json`` at the repository root (canonical JSON), the
machine-readable resilience trajectory companion to
``BENCH_broker.json``.

``REPRO_CHAOS_BENCH_COUNT`` caps the stream size for CI smoke runs;
the full 120-job stream is the default.
"""

from __future__ import annotations

import os

from repro.broker import GridBroker
from repro.core.durable import atomic_write_json, atomic_write_text
from repro.faults.chaos import ChaosSpec, run_campaign
from repro.workloads.streams import StreamSpec, generate_stream, stream_horizon

from benchmarks.bench_broker import REPO_ROOT, hetero_grid
from benchmarks.conftest import RESULTS_DIR, run_once

CHAOS_COUNT = int(os.environ.get("REPRO_CHAOS_BENCH_COUNT", "120"))

SEEDS = [11, 23, 47, 89]

RECOVERIES = ["resubmit", "migrate"]


def chaos_stream_spec() -> StreamSpec:
    return StreamSpec(
        count=CHAOS_COUNT,
        seed=42,
        mean_interarrival=0.08,
        mix=(
            ("kmeans", None, 2.0),
            ("knn", None, 1.0),
            ("vortex", None, 1.0),
            ("em", None, 1.0),
        ),
        deadline_fraction=0.4,
        deadline_slack=(1.2, 3.0),
        priorities=(0, 1),
    )


def run_resilience_study():
    broker = GridBroker(hetero_grid(), [(1, 2), (2, 4)])
    jobs = generate_stream(chaos_stream_spec(), baselines=broker.baseline_estimate)
    spec = ChaosSpec(horizon=stream_horizon(jobs))
    return {
        recovery: run_campaign(
            broker, jobs, SEEDS, spec, recovery=recovery
        )
        for recovery in RECOVERIES
    }


def campaign_summary(report) -> dict:
    cases = report.cases
    return {
        "recovery": report.recovery,
        "policy": report.policy,
        "ok": report.ok,
        "seeds": len(cases),
        "faults": sum(case.faults for case in cases),
        "completed": sum(case.completed for case in cases),
        "rejected": sum(case.rejected for case in cases),
        "failed": sum(case.failed for case in cases),
        "preemptions": sum(case.preemptions for case in cases),
        "min_goodput": min(case.goodput for case in cases),
        "cases": [case.to_dict() for case in cases],
    }


def format_campaigns(campaigns) -> str:
    lines = [f"chaos campaigns: {CHAOS_COUNT} jobs x {len(SEEDS)} seeds"]
    for recovery, report in campaigns.items():
        lines.append(
            f"  {recovery:<10} ok={report.ok}  preemptions "
            f"{sum(c.preemptions for c in report.cases)}  failed "
            f"{sum(c.failed for c in report.cases)}  min goodput "
            f"{100 * min(c.goodput for c in report.cases):.1f}%"
        )
        for case in report.cases:
            lines.append(
                f"    seed {case.seed:>3}: {case.faults} fault(s), "
                f"{case.completed} done, {case.failed} failed, "
                f"{case.preemptions} preempted, goodput "
                f"{100 * case.goodput:.1f}%, replay "
                f"{'ok' if case.replay_identical else 'DIVERGED'}"
            )
    return "\n".join(lines)


def test_chaos_invariants_hold(benchmark):
    campaigns = run_once(benchmark, run_resilience_study)

    text = format_campaigns(campaigns)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_text(RESULTS_DIR / "resilience.txt", text + "\n")
    atomic_write_json(
        REPO_ROOT / "BENCH_resilience.json",
        {
            "kind": "bench-resilience",
            "jobs": CHAOS_COUNT,
            "seeds": SEEDS,
            "campaigns": {
                recovery: campaign_summary(report)
                for recovery, report in campaigns.items()
            },
        },
    )

    for recovery, report in campaigns.items():
        assert report.ok, f"{recovery}: " + "; ".join(report.violations)

    # Chaos must actually have exercised the fault path — a campaign
    # that drew zero faults across every seed proves nothing.
    assert any(
        case.faults > 0 for report in campaigns.values() for case in report.cases
    )
