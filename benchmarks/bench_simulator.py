"""Per-event simulator path: tuple-heap + slotted events vs the reference.

The REP3xx perf-contract burn-down rebuilt the discrete-event core
(`repro.simgrid.engine`): events are slotted, the heap holds plain
``(time, seq, event)`` tuples compared at C level instead of dispatching
into a dataclass ``__lt__`` per sift, and the drain loop in ``run()``
executes events inline instead of paying three bound-method calls per
event.  This bench proves the two claims the optimization was sold on:

- the event execution order (and thus every downstream artifact) is
  byte-identical to the pre-optimization engine, reproduced here as
  ``_ReferenceSimulator`` — a faithful copy of the seed implementation;
- draining a six-figure event queue is at least twice as fast.

Besides the assertion, the headline numbers go to
``BENCH_simulator.json`` at the repository root (canonical JSON, so
reruns of an unchanged engine diff clean).

``REPRO_SIM_BENCH_COUNT`` shrinks the event count for CI smoke runs;
the full 300k-event queue is the default.
"""

from __future__ import annotations

import heapq
import itertools
import os
import pathlib
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.core.durable import atomic_write_json
from repro.simgrid.engine import Simulator
from repro.simgrid.errors import EngineError

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

COUNT = int(os.environ.get("REPRO_SIM_BENCH_COUNT", "300000"))
#: Every CANCEL_STRIDE-th event is cancelled before the drain, so the
#: skip branch of the dispatch loop is part of what is measured.
CANCEL_STRIDE = 5
SEED = 13
ROUNDS = 3


@dataclass(order=True)
class _ReferenceEvent:
    """The seed Event: dict-backed, ordered by dataclass ``__lt__``."""

    time: float
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        self.cancelled = True


class _ReferenceSimulator:
    """The seed per-event path: a heap of Event objects, step() per event."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[_ReferenceEvent] = []
        self._seq = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def processed_events(self) -> int:
        return self._processed

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> _ReferenceEvent:
        if delay < 0:
            raise EngineError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> _ReferenceEvent:
        if time < self._now:
            raise EngineError(
                f"cannot schedule into the past (t={time} < now={self._now})"
            )
        event = _ReferenceEvent(
            float(time), next(self._seq), callback, tuple(args)
        )
        heapq.heappush(self._queue, event)
        return event

    def step(self) -> bool:
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        assert until is None, "the bench only drains"
        while self.step():
            pass


def _fill(sim, count: int) -> List[int]:
    """Schedule the pinned workload; returns the sink the drain fills."""
    rng = random.Random(SEED)
    sink: List[int] = []
    events = [
        sim.schedule(rng.uniform(0.0, 1000.0), sink.append, i)
        for i in range(count)
    ]
    for i, event in enumerate(events):
        if i % CANCEL_STRIDE == 0:
            event.cancel()
    return sink


def _drain_time(sim_cls, count: int):
    """(best drain seconds, executed order) over ROUNDS fills."""
    best = float("inf")
    order: List[int] = []
    for _ in range(ROUNDS):
        sim = sim_cls()
        sink = _fill(sim, count)
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        order = sink
    return best, order


def bench_summary(
    ref_s: float, new_s: float, identical: bool
) -> dict:
    return {
        "kind": "bench-simulator",
        "events": COUNT,
        "cancel_stride": CANCEL_STRIDE,
        "seed": SEED,
        "reference_drain_s": ref_s,
        "optimized_drain_s": new_s,
        "speedup": ref_s / new_s,
        "byte_identical_order": identical,
    }


def test_simulator_drain_speedup(benchmark):
    ref_s, ref_order = _drain_time(_ReferenceSimulator, COUNT)

    def drain():
        return _drain_time(Simulator, COUNT)

    new_s, new_order = benchmark.pedantic(
        drain, rounds=1, iterations=1, warmup_rounds=0
    )

    # Identical event execution order — the optimization is invisible
    # to everything built on the engine.
    identical = ref_order == new_order
    assert identical

    summary = bench_summary(ref_s, new_s, identical)
    atomic_write_json(REPO_ROOT / "BENCH_simulator.json", summary)
    print()
    print(
        f"drain of {COUNT} events: reference {ref_s:.3f}s, "
        f"optimized {new_s:.3f}s, speedup {summary['speedup']:.2f}x"
    )

    # The committed claim is >= 2x on the full-size queue; under CI
    # smoke sizes (and CI noise) the floor is softer but still real.
    floor = 2.0 if COUNT >= 100_000 else 1.2
    assert summary["speedup"] >= floor
