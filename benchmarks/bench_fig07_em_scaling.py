"""Figure 7: EM clustering, dataset-size scaling (350 MB profile -> 1.4 GB).

The base profile is collected on the 1-1 configuration with the *small*
dataset; predictions target the 4x larger dataset on all 14
configurations, using the global-reduction model only (the paper drops the
weaker models from Section 5.2 onward).

Expected shape: errors stay small (the paper reports under 2%); the
error-vs-configuration shape matches the same-dataset figure, with the
largest errors at configurations with equal data and compute node counts
and a drop-off as compute nodes scale up.
"""

from repro.workloads.experiments import run_experiment

from benchmarks.conftest import run_once


def test_fig07_em_dataset_scaling(benchmark, figure_report):
    result = run_once(benchmark, lambda: run_experiment("fig07"))
    figure_report(result)

    assert result.max_error("global reduction") < 0.04
    # Scale-up recovers accuracy: within the n=8 group, 8-16 beats 8-8.
    by_label = {row.label: row.error for row in result.rows}
    assert by_label["8-16"] <= by_label["8-8"] + 1e-3
