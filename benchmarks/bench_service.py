"""Prediction-as-a-service under load: baseline vs. faulted vs. overload.

Drives the :mod:`repro.service` pipeline with seeded request workloads
across three scenarios — a clean baseline, the standard chaos fault mix
(slow/crashing/corrupt backends + tight deadlines), and a deliberate
overload at ~8x the admission rate — and checks the tentpole
guarantees for every one:

- every accepted request settles exactly once (chaos never loses work);
- shed requests are answered 429 + Retry-After, never silently dropped;
- every settled latency respects the declared deadline (+ epsilon);
- replaying an identical (seed, spec) pair yields a byte-identical
  request log — determinism survives adversity.

Per-scenario throughput, latency percentiles, shed rate, and
stale-serve rate land in ``BENCH_service.json`` at the repository root
(canonical JSON), the service-layer companion to
``BENCH_resilience.json``.

``REPRO_SERVICE_BENCH_COUNT`` caps the request count for CI smoke
runs; the full 400-request workload is the default.
"""

from __future__ import annotations

import os

from repro.analysis import format_service_chaos, format_service_metrics
from repro.core.durable import atomic_write_json, atomic_write_text
from repro.faults.chaos import ServiceChaosSpec, run_service_campaign
from repro.service import (
    PredictionService,
    ServiceBackend,
    ServiceFaultInjector,
    BackendFaultSpec,
    demo_profiles,
    generate_requests,
    serve_sequence,
)

from benchmarks.bench_broker import REPO_ROOT
from benchmarks.conftest import RESULTS_DIR, run_once

SERVICE_COUNT = int(os.environ.get("REPRO_SERVICE_BENCH_COUNT", "400"))

SEEDS = [11, 23, 47]

SCENARIOS = {
    "baseline": ServiceChaosSpec(
        requests=SERVICE_COUNT,
        rate_hz=300.0,
        slow_probability=0.0,
        crash_probability=0.0,
        corrupt_probability=0.0,
        tight_deadline_fraction=0.0,
    ),
    "faulted": ServiceChaosSpec(requests=SERVICE_COUNT, rate_hz=300.0),
    "overload": ServiceChaosSpec(
        requests=SERVICE_COUNT,
        rate_hz=4000.0,
        slow_probability=0.15,
        crash_probability=0.10,
        corrupt_probability=0.05,
    ),
}


def serve_scenario(seed: int, spec: ServiceChaosSpec):
    """One fresh service driven through one seeded (seed, spec) workload."""
    profiles = demo_profiles()
    injector = ServiceFaultInjector(
        seed + 1,
        BackendFaultSpec(
            slow_probability=spec.slow_probability,
            crash_probability=spec.crash_probability,
            corrupt_probability=spec.corrupt_probability,
        ),
    )
    service = PredictionService(
        profiles,
        backend=ServiceBackend(injector=injector),
        campaign_journals={"demo": "service-chaos-demo.journal"},
    )
    requests = generate_requests(
        seed,
        spec.requests,
        spec.rate_hz,
        sorted(profiles),
        tight_deadline_fraction=spec.tight_deadline_fraction,
    )
    responses = serve_sequence(service, requests)
    return service, responses


def measure(seed: int, spec: ServiceChaosSpec) -> dict:
    """Throughput and latency rollup of one representative run."""
    service, responses = serve_scenario(seed, spec)
    summary = service.log.summary()
    span_s = max(r.settled_s for r in responses) - min(
        r.arrival_s for r in responses
    )
    return {
        "seed": seed,
        "offered_rate_hz": spec.rate_hz,
        "achieved_req_per_s": (
            summary["served"] / span_s if span_s > 0 else 0.0
        ),
        "served": summary["served"],
        "shed": summary["shed"],
        "stale_served": summary["stale_served"],
        "shed_rate": summary["shed_rate"],
        "stale_rate": summary["stale_rate"],
        "p50_latency_s": summary["p50_latency_s"],
        "p99_latency_s": summary["p99_latency_s"],
        "max_latency_s": summary["max_latency_s"],
    }


def run_service_study():
    return {
        name: {
            "campaign": run_service_campaign(SEEDS, spec),
            "measured": measure(SEEDS[0], spec),
        }
        for name, spec in SCENARIOS.items()
    }


def test_service_resilience_invariants_hold(benchmark):
    study = run_once(benchmark, run_service_study)

    lines = []
    for name, entry in study.items():
        lines.append(f"=== {name} ===")
        lines.append(format_service_chaos(entry["campaign"]))
        measured = entry["measured"]
        lines.append(
            f"  measured (seed {measured['seed']}): "
            f"{measured['achieved_req_per_s']:.0f} req/s  "
            f"p99 {1000 * measured['p99_latency_s']:.3f}ms  "
            f"shed {100 * measured['shed_rate']:.1f}%  "
            f"stale {100 * measured['stale_rate']:.1f}%"
        )
        lines.append("")
    text = "\n".join(lines)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_text(RESULTS_DIR / "service.txt", text)
    atomic_write_json(
        REPO_ROOT / "BENCH_service.json",
        {
            "kind": "bench-service",
            "requests": SERVICE_COUNT,
            "seeds": SEEDS,
            "scenarios": {
                name: {
                    "campaign": entry["campaign"].to_dict(),
                    "measured": entry["measured"],
                }
                for name, entry in study.items()
            },
        },
    )

    # Tentpole invariants: no scenario loses a request, diverges on
    # replay, or violates a latency/settlement contract.
    for name, entry in study.items():
        report = entry["campaign"]
        assert report.ok, f"{name}: " + "; ".join(report.violations)

    # The chaos path must actually have fired, and the overload path
    # must actually have shed — otherwise the scenarios prove nothing.
    faulted = study["faulted"]["campaign"]
    assert any(
        count > 0 for case in faulted.cases for _, count in case.injected
    )
    overload = study["overload"]["campaign"]
    assert all(case.shed > 0 for case in overload.cases)
    baseline = study["baseline"]["campaign"]
    assert all(case.shed == 0 for case in baseline.cases)
