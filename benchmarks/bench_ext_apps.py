"""Extension benches: the Section 2.2 applications the paper names but
does not evaluate.

Apriori association mining and artificial-neural-network training are the
other two canonical generalized reductions listed in Section 2.2 of the
paper.  Running them under the Figure 2-6 protocol checks that the
prediction framework generalizes beyond the five evaluated applications:
the same model ordering and error shapes must emerge, with no per-app
tuning.
"""

from repro.analysis import model_ordering_holds
from repro.workloads.experiments import run_experiment

from benchmarks.conftest import run_once


def test_ext_apriori(benchmark, figure_report):
    result = run_once(benchmark, lambda: run_experiment("ext-apriori"))
    figure_report(result)

    assert model_ordering_holds(result, tolerance=1e-4)
    assert result.max_error("global reduction") < 0.08


def test_ext_neuralnet(benchmark, figure_report):
    result = run_once(benchmark, lambda: run_experiment("ext-neuralnet"))
    figure_report(result)

    assert model_ordering_holds(result, tolerance=1e-4)
    assert result.max_error("global reduction") < 0.08
