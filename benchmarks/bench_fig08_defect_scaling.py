"""Figure 8: defect detection, dataset-size scaling (130 MB -> 1.8 GB).

The most aggressive extrapolation in the paper: the profile dataset is
~14x smaller than the predicted one.

Expected shape: errors stay within a few percent; within each data-node
group the equal-node-count configuration is the hardest, recovering as
compute nodes scale up; retrieval scales linearly to 4 data nodes and
mildly sub-linearly at 8 (the repository backplane).
"""

from repro.workloads.experiments import run_experiment

from benchmarks.conftest import run_once


def test_fig08_defect_dataset_scaling(benchmark, figure_report):
    result = run_once(benchmark, lambda: run_experiment("fig08"))
    figure_report(result)

    assert result.max_error("global reduction") < 0.04
    by_label = {row.label: row.error for row in result.rows}
    assert by_label["8-16"] <= by_label["8-8"] + 1e-3
