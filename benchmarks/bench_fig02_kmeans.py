"""Figure 2: prediction errors for k-means clustering (kmeans).

Reproduces the paper's Figure 2: relative prediction error of the three
model levels (*no communication*, *reduction communication*, *global
reduction*) over the 14 (data nodes, compute nodes) configurations, all
predicted from a single 1-1 base profile on the 1.4 GB dataset.

Expected shape (matching the paper): the three models are nested in
accuracy — the global-reduction model is the most accurate everywhere and
stays within a few percent; the no-communication model degrades as the
configuration scales up (largest errors at 8-8 / 8-16 style
configurations).
"""

from repro.analysis import model_ordering_holds
from repro.workloads.experiments import run_experiment

from benchmarks.conftest import run_once


def test_fig02_kmeans(benchmark, figure_report):
    result = run_once(benchmark, lambda: run_experiment("fig02"))
    figure_report(result)

    assert model_ordering_holds(result, tolerance=1e-4)
    assert result.max_error("global reduction") < 0.05
    assert result.max_error("no communication") < 0.12
    # The no-communication model's worst configuration is a scale-up.
    from repro.analysis import worst_configuration

    worst = worst_configuration(result, "no communication")
    assert worst.compute_nodes >= 8
