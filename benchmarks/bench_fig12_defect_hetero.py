"""Figure 12: defect detection predicted on a different cluster.

Base profile: 4-4 on the Pentium cluster with 130 MB; predictions target
the Opteron cluster with 1.8 GB.  Factors averaged over k-means, kNN and
EM.

Expected shape: the largest errors of the cross-cluster family — defect
detection's branch-heavy kernel speeds up far more than the averaged
factor suggests, so its compute component is consistently mispredicted
(the paper's Figure 12 peaks around 16%).
"""

from repro.analysis import mean
from repro.workloads.experiments import run_experiment

from benchmarks.conftest import run_once


def test_fig12_defect_cross_cluster(benchmark, figure_report):
    result = run_once(benchmark, lambda: run_experiment("fig12"))
    figure_report(result)

    assert result.max_error("cross-cluster") < 0.15
    # Equal-node-count configurations are the hardest; scaling compute
    # nodes up recovers accuracy (the paper's Section 5.4 narrative).
    rows = result.rows_for_model("cross-cluster")
    equal = mean([r.error for r in rows if r.compute_nodes == r.data_nodes])
    sixteens = mean([r.error for r in rows if r.compute_nodes == 16])
    assert equal > sixteens
