"""Ablation: cluster-of-SMPs execution (FREERIDE-G's Section 1 feature).

On the dual-processor Opteron cluster, compares configurations with equal
total compute slots — ``2c`` nodes with one process each vs ``c`` nodes
with two processes each.  The SMP configuration halves the number of
gathered reduction objects (threads merge in shared memory) but pays
memory-bus contention on the kernel; the bench reports both effects and
checks that the slot-aware predictor stays accurate for SMP targets it has
never profiled.
"""

from repro.core import (
    GlobalReductionModel,
    ModelClasses,
    PredictionTarget,
    Profile,
    relative_error,
)
from repro.middleware import FreerideGRuntime
from repro.workloads.clusters import opteron_infiniband_cluster
from repro.workloads.configs import make_run_config
from repro.workloads.registry import WORKLOADS

from benchmarks.conftest import run_once


def run_smp_study():
    spec = WORKLOADS["em"]
    dataset = spec.make_dataset("350 MB")
    opteron = opteron_infiniband_cluster()

    profile_config = make_run_config(1, 1, storage_cluster=opteron)
    profile_run = FreerideGRuntime(profile_config).execute(
        spec.make_app(), dataset
    )
    profile = Profile.from_run(profile_config, profile_run.breakdown)
    model = GlobalReductionModel(
        ModelClasses.parse(spec.natural_object_class, spec.natural_global_class)
    )

    rows = []
    for nodes, ppn in [(4, 1), (8, 1), (4, 2), (16, 1), (8, 2)]:
        config = make_run_config(
            2, nodes, storage_cluster=opteron
        ).with_processes_per_node(ppn)
        run = FreerideGRuntime(config).execute(spec.make_app(), dataset)
        target = PredictionTarget(config=config, dataset_bytes=dataset.nbytes)
        predicted = model.predict(profile, target)
        rows.append(
            {
                "nodes": nodes,
                "ppn": ppn,
                "slots": config.compute_slots,
                "actual": run.breakdown.total,
                "t_ro": run.breakdown.t_ro,
                "t_compute": run.breakdown.t_compute,
                "predicted": predicted.total,
                "error": relative_error(run.breakdown.total, predicted.total),
            }
        )
    return rows


def test_smp_tradeoff_and_prediction(benchmark):
    rows = run_once(benchmark, run_smp_study)

    print()
    print(f"{'nodes':>6} {'ppn':>4} {'slots':>6} {'actual':>9} "
          f"{'t_ro':>9} {'t_comp':>9} {'pred':>9} {'err':>7}")
    by_key = {}
    for r in rows:
        by_key[(r["nodes"], r["ppn"])] = r
        print(f"{r['nodes']:>6} {r['ppn']:>4} {r['slots']:>6} "
              f"{r['actual']:8.4f}s {r['t_ro']:8.5f}s {r['t_compute']:8.4f}s "
              f"{r['predicted']:8.4f}s {100 * r['error']:6.2f}%")

    # Same slot count: the SMP variant gathers half as many objects...
    assert by_key[(4, 2)]["t_ro"] < by_key[(8, 1)]["t_ro"]
    assert by_key[(8, 2)]["t_ro"] < by_key[(16, 1)]["t_ro"]
    # ...but pays memory contention on the kernel.
    assert by_key[(4, 2)]["t_compute"] > by_key[(8, 1)]["t_compute"]
    # The slot-aware predictor stays accurate for unseen SMP targets.
    assert all(r["error"] < 0.10 for r in rows)
