"""Figure 9: defect detection under halved network bandwidth.

Profile collected at the model equivalent of the paper's "500 Kbps"
synthetic bandwidth on 1-1; predictions target the halved bandwidth on all
14 configurations (global-reduction model).

Expected shape: errors are the smallest of any experiment family (the
paper's Figure 9 tops out below 0.2%; we allow a small multiple of that).
"""

from repro.workloads.experiments import run_experiment

from benchmarks.conftest import run_once


def test_fig09_defect_bandwidth(benchmark, figure_report):
    result = run_once(benchmark, lambda: run_experiment("fig09"))
    figure_report(result)

    assert result.max_error("global reduction") < 0.02
