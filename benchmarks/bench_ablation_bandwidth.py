"""Ablation: what bandwidth-prediction quality does to T̂_network.

The paper's network predictor needs b̂, the bandwidth of the target data
movement (Section 3.2 points at wide-area bandwidth prediction work for
it).  This bench runs the whole chain: a synthetic shared-WAN bandwidth
trace drives per-step actual network times, each forecaster supplies b̂
for the same steps, and the resulting T̂_network error is reported per
forecaster — showing that a robust forecaster (sliding median / adaptive)
keeps the end-to-end prediction honest through congestion episodes.
"""

import numpy as np

from repro.core import Profile
from repro.core.bandwidth import (
    AdaptivePredictor,
    BandwidthTrace,
    EWMAPredictor,
    LastValuePredictor,
    RunningMeanPredictor,
    SlidingMedianPredictor,
)
from repro.core.predictors import predict_network_time
from repro.core.target import PredictionTarget
from repro.middleware import FreerideGRuntime
from repro.workloads.configs import make_run_config
from repro.workloads.registry import WORKLOADS

from benchmarks.conftest import run_once


def run_bandwidth_chain(steps: int = 120):
    spec = WORKLOADS["knn"]
    dataset = spec.make_dataset("350 MB")
    base_bw = 1.0e6

    profile_config = make_run_config(1, 1, bandwidth=base_bw)
    profile_run = FreerideGRuntime(profile_config).execute(
        spec.make_app(), dataset
    )
    profile = Profile.from_run(profile_config, profile_run.breakdown)

    trace = BandwidthTrace.synthesize(
        steps, base_bw=base_bw, congestion_prob=0.06, seed=17
    )
    predictors = [
        LastValuePredictor(initial=base_bw),
        RunningMeanPredictor(initial=base_bw),
        SlidingMedianPredictor(window=10, initial=base_bw),
        EWMAPredictor(alpha=0.3, initial=base_bw),
        AdaptivePredictor(),
    ]

    errors = {p.label: [] for p in predictors}
    target_config = make_run_config(1, 1, bandwidth=base_bw)
    for actual_bw in trace:
        actual_target = PredictionTarget(
            config=target_config.with_bandwidth(actual_bw),
            dataset_bytes=dataset.nbytes,
        )
        actual_network = predict_network_time(profile, actual_target)
        for predictor in predictors:
            forecast_bw = predictor.predict()
            forecast_target = PredictionTarget(
                config=target_config.with_bandwidth(forecast_bw),
                dataset_bytes=dataset.nbytes,
            )
            predicted_network = predict_network_time(profile, forecast_target)
            errors[predictor.label].append(
                abs(predicted_network - actual_network) / actual_network
            )
            predictor.observe(actual_bw)
    return {label: float(np.mean(vals)) for label, vals in errors.items()}


def test_bandwidth_forecast_quality_propagates(benchmark):
    mean_errors = run_once(benchmark, run_bandwidth_chain)

    print()
    print("mean relative T_network error by bandwidth forecaster:")
    for label, err in sorted(mean_errors.items(), key=lambda kv: kv[1]):
        print(f"  {label:22s} {100 * err:6.2f}%")

    # Forecaster choice visibly changes the end-to-end error: the
    # never-adapting running mean trails a responsive EWMA on a trace with
    # diurnal swings.
    assert mean_errors["EWMA (0.3)"] < mean_errors["running mean"]
    # The adaptive selector is competitive with its best member — the NWS
    # property that motivates forecaster selection.
    best_member = min(
        err for label, err in mean_errors.items()
        if label != "adaptive (NWS-style)"
    )
    assert mean_errors["adaptive (NWS-style)"] <= 1.3 * best_member
    # And every forecaster keeps T_network errors bounded.
    assert all(err < 0.5 for err in mean_errors.values())
