"""Figure 13: vortex detection predicted on a different cluster.

Base profile: 1-1 on the Pentium cluster with 710 MB; predictions target
the Opteron cluster with 1.85 GB.  Factors averaged over k-means, kNN and
EM.

Expected shape (per the paper): the largest inaccuracies occur at
configurations with equal numbers of data and compute nodes — the same
configurations that were hardest within-cluster — so "modeling different
resources does not impact prediction accuracy" beyond the averaged-factor
error.
"""

from repro.analysis import worst_configuration
from repro.workloads.experiments import run_experiment

from benchmarks.conftest import run_once


def test_fig13_vortex_cross_cluster(benchmark, figure_report):
    result = run_once(benchmark, lambda: run_experiment("fig13"))
    figure_report(result)

    assert result.max_error("cross-cluster") < 0.10
    worst = worst_configuration(result, "cross-cluster")
    assert worst.compute_nodes == worst.data_nodes
