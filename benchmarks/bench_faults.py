"""Fault tolerance: recovery overhead vs fault rate, and predictability.

Sweeps the transient chunk-read-error rate and the crash scenarios over
the EM workload (multi-pass, so compute-node recovery exercises the
checkpoint path), reporting:

- the recovery overhead (faulted vs fault-free wall time) as the fault
  rate rises — retries are charged honestly, so overhead must grow
  monotonically with the rate;
- that every faulted run still produces a bit-identical application
  result (role-preserving recovery);
- that the degraded-mode predictor tracks the faulted runs within the
  framework's accuracy envelope.
"""

from repro.core import (
    DegradedModePredictor,
    GlobalReductionModel,
    ModelClasses,
    PredictionTarget,
    Profile,
    relative_error,
)
from repro.faults import (
    ChunkReadError,
    ComputeNodeCrash,
    DataNodeCrash,
    FaultInjector,
    FaultSchedule,
    results_equal,
)
from repro.middleware import FreerideGRuntime
from repro.workloads.configs import make_run_config
from repro.workloads.registry import WORKLOADS

from benchmarks.conftest import run_once

RATES = [0.0, 0.02, 0.05, 0.1, 0.2]

CRASH_SCENARIOS = {
    "one data node @50%": FaultSchedule([DataNodeCrash(0, 1, 0.5)]),
    "one compute node @30%": FaultSchedule([ComputeNodeCrash(1, 2, 0.3)]),
    "both crashes": FaultSchedule(
        [DataNodeCrash(0, 0, 0.5), ComputeNodeCrash(1, 3, 0.3)]
    ),
}


def run_fault_study():
    spec = WORKLOADS["em"]
    dataset = spec.make_dataset("350 MB")
    config = make_run_config(2, 4)

    base = FreerideGRuntime(config).execute(spec.make_app(), dataset)
    profile = Profile.from_run(config, base.breakdown)
    predictor = DegradedModePredictor(
        GlobalReductionModel(
            ModelClasses.parse(
                spec.natural_object_class, spec.natural_global_class
            )
        )
    )
    target = PredictionTarget(config=config, dataset_bytes=dataset.nbytes)

    rate_rows = []
    for rate in RATES:
        schedule = (
            FaultSchedule([ChunkReadError(rate=rate)])
            if rate > 0.0
            else FaultSchedule()
        )
        run = FreerideGRuntime(
            config, faults=FaultInjector(schedule, seed=17)
        ).execute(spec.make_app(), dataset)
        predicted = predictor.predict(profile, target, schedule)
        rate_rows.append(
            {
                "rate": rate,
                "actual": run.breakdown.total,
                "overhead": run.breakdown.total - base.breakdown.total,
                "events": len(run.breakdown.fault_events),
                "predicted": predicted.total,
                "error": relative_error(predicted.total, run.breakdown.total),
                "identical": results_equal(base.result, run.result),
            }
        )

    crash_rows = []
    for label, schedule in CRASH_SCENARIOS.items():
        run = FreerideGRuntime(
            config, faults=FaultInjector(schedule, seed=17)
        ).execute(spec.make_app(), dataset)
        predicted = predictor.predict(profile, target, schedule)
        crash_rows.append(
            {
                "scenario": label,
                "actual": run.breakdown.total,
                "overhead": run.breakdown.total - base.breakdown.total,
                "t_ckpt": run.breakdown.t_ckpt,
                "predicted": predicted.total,
                "error": relative_error(predicted.total, run.breakdown.total),
                "identical": results_equal(base.result, run.result),
            }
        )
    return base.breakdown.total, rate_rows, crash_rows


def test_recovery_overhead_vs_fault_rate(benchmark):
    base_total, rate_rows, crash_rows = run_once(benchmark, run_fault_study)

    print()
    print(f"fault-free baseline: {base_total:.4f}s")
    print(f"{'rate':>6} {'actual':>9} {'overhead':>9} {'events':>7} "
          f"{'pred':>9} {'err':>7}")
    for r in rate_rows:
        print(f"{r['rate']:>6.2f} {r['actual']:8.4f}s {r['overhead']:8.4f}s "
              f"{r['events']:>7} {r['predicted']:8.4f}s "
              f"{100 * r['error']:6.2f}%")
    print()
    print(f"{'scenario':>22} {'actual':>9} {'overhead':>9} {'t_ckpt':>9} "
          f"{'pred':>9} {'err':>7}")
    for r in crash_rows:
        print(f"{r['scenario']:>22} {r['actual']:8.4f}s "
              f"{r['overhead']:8.4f}s {r['t_ckpt']:8.5f}s "
              f"{r['predicted']:8.4f}s {100 * r['error']:6.2f}%")

    # Results are bit-identical under every fault load.
    assert all(r["identical"] for r in rate_rows + crash_rows)
    # Zero-rate schedule adds zero overhead; overhead grows with the rate.
    assert rate_rows[0]["overhead"] == 0.0
    overheads = [r["overhead"] for r in rate_rows]
    assert overheads == sorted(overheads)
    # The degraded-mode predictor stays within the paper's envelope.
    assert all(r["error"] < 0.15 for r in rate_rows + crash_rows)
