"""Campaign engine: journal-commit overhead on a real figure reproduction.

Runs Figure 2 on the full grid twice — once as a plain loop, once under
the crash-safe campaign engine (durable journal commit + result
artifact per entry) — and reports the end-to-end difference.  That
difference is informational: two multi-second simulation runs differ by
a few percent from scheduler and allocator noise alone, so the enforced
budget is measured directly instead — the per-entry durable cost (one
atomic journal commit carrying the full fig02 payload, plus the result
artifact write, both with fsync) must stay **under 2%** of the plain
experiment runtime.
"""

import time

from repro.campaign import (
    CampaignJournal,
    CampaignRunner,
    JournalRecord,
    paper_suite_manifest,
)
from repro.analysis.results_io import result_to_dict, save_result
from repro.workloads.experiments import run_experiment

from benchmarks.conftest import run_once

SAMPLES = 20


def run_campaign_study(tmp_path):
    # Plain loop: the baseline the suite ran before the campaign engine.
    start = time.perf_counter()
    plain_result = run_experiment("fig02", fast=False)
    plain_s = time.perf_counter() - start

    # Campaign run: same experiment under journal + watchdog + artifact.
    manifest = paper_suite_manifest(experiment_ids=["fig02"])
    runner = CampaignRunner(
        manifest,
        tmp_path / "journal.json",
        results_dir=tmp_path / "results",
        handle_signals=False,
    )
    start = time.perf_counter()
    report = runner.run()
    campaign_s = time.perf_counter() - start

    # The enforced number: per-entry durable cost.  Each sample is a
    # fresh journal taking one commit of the real fig02 payload, plus
    # the result-artifact write — exactly what the engine adds per
    # settled entry.
    payload = result_to_dict(plain_result)
    record = JournalRecord(
        entry_id="fig02",
        status="completed",
        attempts=1,
        elapsed_s=plain_s,
        payload=payload,
    )
    start = time.perf_counter()
    for i in range(SAMPLES):
        journal = CampaignJournal(tmp_path / f"micro-{i}.json")
        journal.initialize("micro", "fp")
        journal.commit(record)
        save_result(plain_result, tmp_path / f"micro-result-{i}.json")
    durable_s = (time.perf_counter() - start) / SAMPLES

    return plain_s, campaign_s, durable_s, report


def test_journal_commit_overhead(benchmark, tmp_path):
    plain_s, campaign_s, durable_s, report = run_once(
        benchmark, lambda: run_campaign_study(tmp_path)
    )
    delta_s = campaign_s - plain_s
    durable_pct = 100.0 * durable_s / plain_s

    print()
    print(f"plain fig02 run:       {plain_s:8.3f}s")
    print(f"campaign fig02 run:    {campaign_s:8.3f}s "
          f"({100.0 * delta_s / plain_s:+.2f}%, includes run-to-run noise)")
    print(f"per-entry durable cost: {1e3 * durable_s:7.3f}ms "
          f"({durable_pct:.3f}% of the experiment it protects; "
          f"journal commit + artifact, fsync'd, mean of {SAMPLES})")

    assert report.ok
    # The durability budget: committing an entry must cost less than 2%
    # of running it.
    assert durable_s < 0.02 * plain_s
