"""Tests for the pipelined bottleneck model (extension)."""

import pytest

from repro.core.classes import ModelClasses
from repro.core.models import GlobalReductionModel
from repro.core.pipeline_model import PipelinedBottleneckModel

from tests.core.conftest import make_profile, make_target

CLASSES = ModelClasses.parse("constant", "linear-constant")


class TestPipelinedBottleneckModel:
    def test_total_is_bottleneck_plus_tail(self):
        profile = make_profile(
            t_disk=5.0, t_network=2.0, t_compute=3.0, t_ro=0.0, t_g=0.0, r=0.0
        )
        target = make_target(n=1, c=1, s=profile.dataset_bytes)
        predicted = PipelinedBottleneckModel(CLASSES).predict(profile, target)
        # disk dominates: makespan = max(5, 2, 3) = 5 (+ zero tail)
        assert predicted.total == pytest.approx(5.0)

    def test_never_exceeds_additive_model(self):
        profile = make_profile()
        for c in (1, 2, 4, 8, 16):
            target = make_target(n=1, c=c, s=profile.dataset_bytes)
            additive = GlobalReductionModel(CLASSES).predict(profile, target)
            bottleneck = PipelinedBottleneckModel(CLASSES).predict(
                profile, target
            )
            assert bottleneck.total <= additive.total + 1e-12

    def test_serial_tail_matches_global_model(self):
        profile = make_profile()
        target = make_target(n=2, c=8, s=profile.dataset_bytes)
        additive = GlobalReductionModel(CLASSES).predict(profile, target)
        bottleneck = PipelinedBottleneckModel(CLASSES).predict(profile, target)
        assert bottleneck.t_ro == pytest.approx(additive.t_ro)
        assert bottleneck.t_g == pytest.approx(additive.t_g)

    def test_bottleneck_switches_with_configuration(self):
        """With enough compute nodes, the network becomes the bottleneck
        and further compute scaling stops paying."""
        profile = make_profile(
            t_disk=1.0, t_network=4.0, t_compute=16.0, t_ro=0.0, t_g=0.0, r=0.0
        )
        model = PipelinedBottleneckModel(CLASSES)
        few = model.predict(
            profile, make_target(n=1, c=2, s=profile.dataset_bytes)
        )
        many = model.predict(
            profile, make_target(n=1, c=8, s=profile.dataset_bytes)
        )
        saturated = model.predict(
            profile, make_target(n=1, c=16, s=profile.dataset_bytes)
        )
        assert few.total > many.total  # compute-bound at 2 nodes
        # once the network is the bottleneck, adding nodes changes little
        assert many.total - saturated.total < few.total - many.total

    @pytest.mark.slow
    def test_predicts_pipelined_runtime(self):
        """End-to-end: the bottleneck model tracks the actual pipelined
        makespan far better than the additive model does."""
        from repro.core import PredictionTarget, Profile, relative_error
        from repro.middleware import FreerideGRuntime
        from repro.middleware.pipelined import PipelinedRuntime
        from repro.workloads.configs import make_run_config
        from repro.workloads.registry import WORKLOADS

        spec = WORKLOADS["knn"]
        dataset = spec.make_dataset("350 MB")
        profile_config = make_run_config(1, 1)
        profile_run = FreerideGRuntime(profile_config).execute(
            spec.make_app(), dataset
        )
        profile = Profile.from_run(profile_config, profile_run.breakdown)
        classes = ModelClasses.parse(
            spec.natural_object_class, spec.natural_global_class
        )

        config = make_run_config(2, 4)
        piped = PipelinedRuntime(config).execute(spec.make_app(), dataset)
        target = PredictionTarget(config=config, dataset_bytes=dataset.nbytes)

        bottleneck_err = relative_error(
            piped.makespan,
            PipelinedBottleneckModel(classes).predict(profile, target).total,
        )
        additive_err = relative_error(
            piped.makespan,
            GlobalReductionModel(classes).predict(profile, target).total,
        )
        assert bottleneck_err < 0.15
        assert bottleneck_err < additive_err / 3.0
