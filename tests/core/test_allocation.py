"""Tests for the capacity-aware grid scheduler."""

import pytest

from repro.core import (
    GlobalReductionModel,
    GridScheduler,
    Job,
    ModelClasses,
    Profile,
    max_parallelism_policy,
    predicted_best_policy,
    random_policy,
)
from repro.middleware import FreerideGRuntime, ReplicaCatalog
from repro.simgrid.errors import ConfigurationError
from repro.simgrid.topology import GridTopology, SiteKind
from repro.workloads.clusters import pentium_myrinet_cluster
from repro.workloads.configs import make_run_config
from repro.workloads.registry import WORKLOADS

SMALL_SIZE = {"knn": "350 MB", "vortex": "710 MB", "defect": "130 MB"}


@pytest.fixture(scope="module")
def grid():
    cluster = pentium_myrinet_cluster(num_nodes=16)
    topo = GridTopology()
    topo.add_site("repo", SiteKind.REPOSITORY, cluster)
    topo.add_site("hpc-a", SiteKind.COMPUTE, cluster)
    topo.add_site("hpc-b", SiteKind.COMPUTE, pentium_myrinet_cluster(num_nodes=8))
    topo.connect("repo", "hpc-a", bw=2.0e6)
    topo.connect("repo", "hpc-b", bw=5.0e5)
    return topo


@pytest.fixture(scope="module")
def jobs(grid):
    catalog = ReplicaCatalog(grid)
    out = []
    for i, name in enumerate(["knn", "vortex", "defect", "knn", "defect"]):
        spec = WORKLOADS[name]
        dataset = spec.make_dataset(SMALL_SIZE[name])
        dataset.name = f"{dataset.name}-job{i}"
        if dataset.name not in catalog:
            catalog.add(dataset.name, "repo")
        config = make_run_config(1, 1)
        run = FreerideGRuntime(config).execute(spec.make_app(), dataset)
        out.append(
            Job(
                job_id=f"job-{i}-{name}",
                workload=name,
                dataset=dataset,
                app_factory=spec.make_app,
                profile=Profile.from_run(config, run.breakdown),
            )
        )
    return catalog, out


def make_scheduler(grid, catalog, allocations=((1, 2), (2, 4), (4, 8))):
    classes = ModelClasses.parse("constant", "linear-constant")
    return GridScheduler(
        topology=grid,
        catalog=catalog,
        model=GlobalReductionModel(classes),
        allocations=allocations,
    )


@pytest.mark.slow
class TestGridScheduler:
    def test_all_jobs_placed(self, grid, jobs):
        catalog, batch = jobs
        schedule = make_scheduler(grid, catalog).schedule(
            batch, predicted_best_policy
        )
        assert len(schedule.placements) == len(batch)
        placed = {p.job_id for p in schedule.placements}
        assert placed == {j.job_id for j in batch}

    def test_capacity_never_oversubscribed(self, grid, jobs):
        catalog, batch = jobs
        schedule = make_scheduler(grid, catalog).schedule(
            batch, max_parallelism_policy
        )
        capacity = {s.name: s.cluster.num_nodes for s in grid.sites()}
        events = []
        for p in schedule.placements:
            for site, nodes in [
                (p.compute_site, p.compute_nodes),
                (p.replica_site, p.data_nodes),
            ]:
                events.append((p.start, nodes, site))
                events.append((p.end, -nodes, site))
        in_use = {name: 0 for name in capacity}
        # process releases before acquisitions at equal times
        for time, delta, site in sorted(events, key=lambda e: (e[0], e[1])):
            in_use[site] += delta
            assert in_use[site] <= capacity[site], (
                f"{site} oversubscribed at t={time}"
            )

    def test_deterministic_for_deterministic_policies(self, grid, jobs):
        catalog, batch = jobs
        scheduler = make_scheduler(grid, catalog)
        a = scheduler.schedule(batch, predicted_best_policy)
        b = scheduler.schedule(batch, predicted_best_policy)
        assert [p.label for p in a.placements] == [p.label for p in b.placements]
        assert a.makespan == b.makespan

    def test_predicted_best_beats_random(self, grid, jobs):
        catalog, batch = jobs
        scheduler = make_scheduler(grid, catalog)
        best = scheduler.schedule(batch, predicted_best_policy)
        random_means = []
        for seed in (1, 2, 3):
            random_means.append(
                scheduler.schedule(batch, random_policy(seed)).mean_turnaround
            )
        assert best.mean_turnaround <= min(random_means) * 1.02

    def test_impossible_job_rejected(self, grid, jobs):
        catalog, batch = jobs
        scheduler = make_scheduler(grid, catalog, allocations=[(16, 16)])
        # hpc-b has 8 nodes; repo has 16 — a 16-16 allocation can only fit
        # hpc-a+repo together, but repo only has 16 nodes total, so data
        # nodes fit; compute on hpc-a fits too: it IS placeable.  Use an
        # allocation beyond every cluster instead.
        scheduler = make_scheduler(grid, catalog, allocations=[(16, 32)])
        with pytest.raises(ConfigurationError):
            scheduler.schedule(batch, predicted_best_policy)

    def test_empty_batch_rejected(self, grid, jobs):
        catalog, _ = jobs
        with pytest.raises(ConfigurationError):
            make_scheduler(grid, catalog).schedule([], predicted_best_policy)

    def test_schedule_metrics(self, grid, jobs):
        catalog, batch = jobs
        schedule = make_scheduler(grid, catalog).schedule(
            batch, predicted_best_policy
        )
        assert schedule.makespan >= max(p.duration for p in schedule.placements)
        assert schedule.mean_turnaround <= schedule.makespan
        first = schedule.placements[0]
        assert schedule.placement_of(first.job_id) == first
        with pytest.raises(ConfigurationError):
            schedule.placement_of("nope")
