"""Tests for cross-cluster scaling factors and prediction."""

import pytest

from repro.core.classes import ModelClasses
from repro.core.heterogeneous import (
    ComponentScalingFactors,
    CrossClusterPredictor,
    measure_scaling_factors,
)
from repro.core.models import GlobalReductionModel, NoCommunicationModel
from repro.simgrid.errors import ConfigurationError

from tests.conftest import small_cluster_spec
from tests.core.conftest import make_profile, make_target


class TestComponentScalingFactors:
    def test_positive_required(self):
        with pytest.raises(ConfigurationError):
            ComponentScalingFactors(sd=0.0, sn=1.0, sc=1.0)


class TestMeasureScalingFactors:
    def test_single_app_ratios(self):
        a = make_profile(t_disk=2.0, t_network=4.0, t_compute=8.0, app="x")
        b = make_profile(t_disk=1.0, t_network=4.0, t_compute=2.0, app="x")
        factors = measure_scaling_factors([(a, b)])
        assert factors.sd == pytest.approx(0.5)
        assert factors.sn == pytest.approx(1.0)
        assert factors.sc == pytest.approx(0.25)

    def test_averaging_over_apps(self):
        pair1 = (
            make_profile(t_compute=8.0, app="a"),
            make_profile(t_compute=2.0, app="a"),
        )
        pair2 = (
            make_profile(t_compute=8.0, app="b"),
            make_profile(t_compute=4.0, app="b"),
        )
        factors = measure_scaling_factors([pair1, pair2])
        assert factors.sc == pytest.approx((0.25 + 0.5) / 2)
        assert set(factors.per_app) == {"a", "b"}

    def test_mismatched_configs_rejected(self):
        a = make_profile(c=1)
        b = make_profile(c=2)
        with pytest.raises(ConfigurationError):
            measure_scaling_factors([(a, b)])

    def test_mismatched_dataset_rejected(self):
        a = make_profile(s=1e6)
        b = make_profile(s=2e6)
        with pytest.raises(ConfigurationError):
            measure_scaling_factors([(a, b)])

    def test_zero_component_rejected(self):
        a = make_profile(t_disk=0.0)
        b = make_profile()
        with pytest.raises(ConfigurationError):
            measure_scaling_factors([(a, b)])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            measure_scaling_factors([])


class TestCrossClusterPredictor:
    def test_components_rescaled(self):
        profile = make_profile()
        other = small_cluster_spec(name="other-cluster")
        target = make_target(n=1, c=1, s=profile.dataset_bytes, cluster=other)
        factors = ComponentScalingFactors(sd=0.5, sn=1.0, sc=0.25)
        base = NoCommunicationModel()
        predictor = CrossClusterPredictor(base, factors)

        on_b = predictor.predict(profile, target)
        same_target = make_target(n=1, c=1, s=profile.dataset_bytes)
        on_a = base.predict(profile, same_target)

        assert on_b.t_disk == pytest.approx(0.5 * on_a.t_disk)
        assert on_b.t_network == pytest.approx(1.0 * on_a.t_network)
        assert on_b.t_compute == pytest.approx(0.25 * on_a.t_compute)

    def test_selective_application_for_mixed_deployments(self):
        """apply=('compute',) leaves disk and network untouched — the
        mixed case where only the compute side moves to new hardware."""
        profile = make_profile(t_ro=0.0, t_g=0.0)
        target = make_target(n=1, c=2, s=profile.dataset_bytes)
        factors = ComponentScalingFactors(sd=0.5, sn=0.5, sc=0.25)
        base = NoCommunicationModel()
        on_a = base.predict(profile, target)
        mixed = CrossClusterPredictor(
            base, factors, apply=("compute",)
        ).predict(profile, target)
        assert mixed.t_disk == pytest.approx(on_a.t_disk)
        assert mixed.t_network == pytest.approx(on_a.t_network)
        assert mixed.t_compute == pytest.approx(0.25 * on_a.t_compute)

    def test_apply_validation(self):
        factors = ComponentScalingFactors(sd=1.0, sn=1.0, sc=1.0)
        with pytest.raises(ConfigurationError):
            CrossClusterPredictor(NoCommunicationModel(), factors, apply=())
        with pytest.raises(ConfigurationError):
            CrossClusterPredictor(
                NoCommunicationModel(), factors, apply=("gpu",)
            )

    def test_base_prediction_uses_profile_clusters(self):
        """The intermediate prediction must run against cluster A hardware
        even when the target names cluster B (the target's node counts,
        size and bandwidth still apply)."""
        profile = make_profile(r=1000.0, rounds=1)
        slow_interconnect = small_cluster_spec(name="slow")
        import dataclasses

        slow_interconnect = dataclasses.replace(
            slow_interconnect, intra_latency_s=1.0  # absurdly slow
        )
        target = make_target(
            n=1, c=4, s=profile.dataset_bytes, cluster=slow_interconnect
        )
        factors = ComponentScalingFactors(sd=1.0, sn=1.0, sc=1.0)
        classes = ModelClasses.parse("constant", "linear-constant")
        predictor = CrossClusterPredictor(GlobalReductionModel(classes), factors)
        pred = predictor.predict(profile, target)
        # If the gather were fitted on the target's (absurd) interconnect,
        # T_ro would be ~3 seconds; on the profile's cluster it is tiny.
        assert pred.t_ro < 0.01
