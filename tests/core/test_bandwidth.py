"""Tests for the wide-area bandwidth predictors."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bandwidth import (
    AdaptivePredictor,
    BandwidthTrace,
    EWMAPredictor,
    LastValuePredictor,
    RunningMeanPredictor,
    SlidingMeanPredictor,
    SlidingMedianPredictor,
    evaluate_predictors,
)
from repro.simgrid.errors import ConfigurationError


class TestBandwidthTrace:
    def test_synthesize_deterministic(self):
        a = BandwidthTrace.synthesize(100, seed=3)
        b = BandwidthTrace.synthesize(100, seed=3)
        assert a.samples == b.samples

    def test_positive_samples(self):
        trace = BandwidthTrace.synthesize(500, seed=5)
        assert all(s > 0 for s in trace)

    def test_mean_near_base(self):
        trace = BandwidthTrace.synthesize(
            2000, base_bw=1e6, congestion_prob=0.0, seed=7
        )
        assert np.mean(trace.samples) == pytest.approx(1e6, rel=0.2)

    def test_congestion_lowers_minimum(self):
        calm = BandwidthTrace.synthesize(500, congestion_prob=0.0, seed=9)
        stormy = BandwidthTrace.synthesize(
            500, congestion_prob=0.2, congestion_depth=0.8, seed=9
        )
        assert min(stormy.samples) < min(calm.samples)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BandwidthTrace([])
        with pytest.raises(ConfigurationError):
            BandwidthTrace([1.0, -1.0])
        with pytest.raises(ConfigurationError):
            BandwidthTrace.synthesize(0)
        with pytest.raises(ConfigurationError):
            BandwidthTrace.synthesize(10, ar_coefficient=1.0)


class TestIndividualPredictors:
    def test_last_value(self):
        p = LastValuePredictor(initial=5.0)
        assert p.predict() == 5.0
        p.observe(7.0)
        assert p.predict() == 7.0

    def test_running_mean(self):
        p = RunningMeanPredictor(initial=2.0)
        p.observe(4.0)
        assert p.predict() == pytest.approx(3.0)

    def test_sliding_mean_window(self):
        p = SlidingMeanPredictor(window=2, initial=0.0)
        p.observe(10.0)
        p.observe(20.0)  # initial 0.0 evicted
        assert p.predict() == pytest.approx(15.0)

    def test_sliding_median_resists_outliers(self):
        p = SlidingMedianPredictor(window=5, initial=10.0)
        for v in [10.0, 10.0, 10.0, 0.1]:  # one congestion dip
            p.observe(v)
        assert p.predict() == pytest.approx(10.0)

    def test_ewma_converges(self):
        p = EWMAPredictor(alpha=0.5, initial=0.0)
        for _ in range(20):
            p.observe(8.0)
        assert p.predict() == pytest.approx(8.0, rel=1e-4)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            SlidingMeanPredictor(window=0)
        with pytest.raises(ConfigurationError):
            SlidingMedianPredictor(window=-1)
        with pytest.raises(ConfigurationError):
            EWMAPredictor(alpha=0.0)
        with pytest.raises(ConfigurationError):
            AdaptivePredictor(members=[])

    @settings(max_examples=25)
    @given(st.lists(st.floats(min_value=1.0, max_value=1e9), min_size=1, max_size=50))
    def test_predictions_within_observed_range(self, values):
        """Every forecaster stays inside the convex hull of what it saw
        (plus its initial value)."""
        for predictor in [
            LastValuePredictor(initial=values[0]),
            SlidingMeanPredictor(window=5, initial=values[0]),
            SlidingMedianPredictor(window=5, initial=values[0]),
            EWMAPredictor(alpha=0.4, initial=values[0]),
        ]:
            for v in values:
                predictor.observe(v)
            low, high = min(values), max(values)
            assert low - 1e-6 <= predictor.predict() <= high + 1e-6


class TestAdaptivePredictor:
    def test_tracks_best_member(self):
        """On a constant series the adaptive forecast becomes exact."""
        p = AdaptivePredictor()
        for _ in range(30):
            p.observe(5e5)
        assert p.predict() == pytest.approx(5e5, rel=1e-3)

    def test_beats_worst_member_on_synthetic_trace(self):
        trace = BandwidthTrace.synthesize(400, congestion_prob=0.05, seed=11)
        scores = evaluate_predictors(
            trace,
            [
                LastValuePredictor(),
                RunningMeanPredictor(),
                AdaptivePredictor(),
            ],
        )
        adaptive = scores["adaptive (NWS-style)"].mean_absolute_error
        worst = max(
            s.mean_absolute_error
            for label, s in scores.items()
            if label != "adaptive (NWS-style)"
        )
        assert adaptive <= worst


class TestEvaluatePredictors:
    def test_scores_every_predictor(self):
        trace = BandwidthTrace.synthesize(100, seed=13)
        predictors = [LastValuePredictor(), EWMAPredictor()]
        scores = evaluate_predictors(trace, predictors)
        assert set(scores) == {p.label for p in predictors}
        for score in scores.values():
            assert score.mean_absolute_error >= 0
            assert score.mean_absolute_percentage_error >= 0

    def test_validation(self):
        trace = BandwidthTrace.synthesize(10, seed=1)
        with pytest.raises(ConfigurationError):
            evaluate_predictors(trace, [])
        with pytest.raises(ConfigurationError):
            evaluate_predictors(trace, [LastValuePredictor()], warmup=10)
