"""Tests for the three nested prediction models."""

import pytest

from repro.core.classes import ModelClasses
from repro.core.models import (
    GlobalReductionModel,
    NoCommunicationModel,
    PredictedBreakdown,
    ReductionCommunicationModel,
)

from tests.core.conftest import make_profile, make_target

CLASSES = ModelClasses.parse("constant", "linear-constant")


class TestPredictedBreakdown:
    def test_total(self):
        pred = PredictedBreakdown(t_disk=1.0, t_network=2.0, t_compute=3.0)
        assert pred.total == 6.0

    def test_scaled(self):
        pred = PredictedBreakdown(
            t_disk=1.0, t_network=2.0, t_compute=3.0, t_ro=0.5, t_g=0.25
        )
        scaled = pred.scaled(0.5, 1.0, 2.0)
        assert scaled.t_disk == 0.5
        assert scaled.t_network == 2.0
        assert scaled.t_compute == 6.0
        assert scaled.t_ro == 1.0


class TestModelNesting:
    """The three models share T̂_disk and T̂_network and differ only in
    how the processing component is decomposed."""

    def test_disk_and_network_identical_across_models(self, profile, target):
        preds = [
            NoCommunicationModel().predict(profile, target),
            ReductionCommunicationModel(CLASSES).predict(profile, target),
            GlobalReductionModel(CLASSES).predict(profile, target),
        ]
        for pred in preds[1:]:
            assert pred.t_disk == pytest.approx(preds[0].t_disk)
            assert pred.t_network == pytest.approx(preds[0].t_network)

    def test_no_comm_has_no_serial_terms(self, profile, target):
        pred = NoCommunicationModel().predict(profile, target)
        assert pred.t_ro == 0.0
        assert pred.t_g == 0.0

    def test_reduction_model_separates_t_ro(self, profile, target):
        pred = ReductionCommunicationModel(CLASSES).predict(profile, target)
        assert pred.t_ro > 0.0  # target has c=4 > 1
        assert pred.t_g == 0.0

    def test_global_model_separates_both(self, profile, target):
        pred = GlobalReductionModel(CLASSES).predict(profile, target)
        assert pred.t_ro > 0.0
        assert pred.t_g > 0.0

    def test_serial_terms_do_not_shrink_with_more_nodes(self, profile):
        model = GlobalReductionModel(CLASSES)
        few = model.predict(profile, make_target(n=1, c=2, s=profile.dataset_bytes))
        many = model.predict(profile, make_target(n=1, c=16, s=profile.dataset_bytes))
        assert many.t_ro > few.t_ro
        assert many.t_g > few.t_g

    def test_predict_total_convenience(self, profile, target):
        model = GlobalReductionModel(CLASSES)
        assert model.predict_total(profile, target) == pytest.approx(
            model.predict(profile, target).total
        )

    def test_labels_match_paper_legends(self):
        assert NoCommunicationModel.label == "no communication"
        assert ReductionCommunicationModel.label == "reduction communication"
        assert GlobalReductionModel.label == "global reduction"


class TestModelFormulas:
    def test_global_model_subtracts_serial_parts_before_scaling(self):
        profile = make_profile(
            c=1, t_compute=4.0, t_ro=0.0, t_g=1.0, r=0.0, rounds=1
        )
        # T'' = 3.0; target c=2: compute = 3/2 + t_ro_hat + t_g_hat
        target = make_target(n=1, c=2, s=profile.dataset_bytes)
        pred = GlobalReductionModel(CLASSES).predict(profile, target)
        t_g_hat = 1.0 * 2  # linear-constant from c=1 to c=2
        assert pred.t_g == pytest.approx(t_g_hat)
        assert pred.t_compute == pytest.approx(1.5 + pred.t_ro + t_g_hat)

    def test_identity_prediction_on_profile_config_no_comm(self):
        profile = make_profile(n=2, c=4)
        target = make_target(n=2, c=4, s=profile.dataset_bytes, b=profile.bandwidth)
        pred = NoCommunicationModel().predict(profile, target)
        assert pred.total == pytest.approx(profile.total)
