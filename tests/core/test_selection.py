"""Tests for resource and replica selection."""

import pytest

from repro.core.models import NoCommunicationModel
from repro.core.selection import ResourceSelector
from repro.middleware.replica import ReplicaCatalog
from repro.simgrid.errors import ConfigurationError
from repro.simgrid.topology import GridTopology, SiteKind

from tests.conftest import small_cluster_spec
from tests.core.conftest import make_profile


@pytest.fixture
def grid():
    """Two replicas, two compute sites; repo-b -> hpc-1 has a fat link."""
    topo = GridTopology()
    cluster = small_cluster_spec()
    topo.add_site("repo-a", SiteKind.REPOSITORY, cluster)
    topo.add_site("repo-b", SiteKind.REPOSITORY, cluster)
    topo.add_site("hpc-1", SiteKind.COMPUTE, cluster)
    topo.add_site("hpc-2", SiteKind.COMPUTE, small_cluster_spec(num_nodes=4))
    topo.connect("repo-a", "hpc-1", bw=2e5)
    topo.connect("repo-a", "hpc-2", bw=2e5)
    topo.connect("repo-b", "hpc-1", bw=2e6)

    catalog = ReplicaCatalog(topo)
    catalog.add("points", "repo-a")
    catalog.add("points", "repo-b")
    return topo, catalog


class TestResourceSelector:
    def make_selector(self, grid, allocations=((1, 1), (2, 4), (4, 8))):
        topo, catalog = grid
        return ResourceSelector(
            topology=topo,
            catalog=catalog,
            model_for_site=NoCommunicationModel(),
            allocations=allocations,
        )

    def test_best_minimizes_predicted_total(self, grid):
        selector = self.make_selector(grid)
        outcome = selector.select("points", 1e6, make_profile())
        totals = [c.predicted_total for c in outcome]
        assert totals == sorted(totals)
        assert outcome.best.predicted_total == totals[0]

    def test_prefers_fat_replica_link(self, grid):
        selector = self.make_selector(grid, allocations=[(2, 4)])
        outcome = selector.select("points", 1e6, make_profile())
        # repo-b -> hpc-1 has 10x the bandwidth: network time dominates
        assert outcome.best.replica_site == "repo-b"
        assert outcome.best.compute_site == "hpc-1"

    def test_infeasible_allocations_skipped(self, grid):
        # hpc-2 has only 4 nodes; the (4, 8) allocation is infeasible there
        selector = self.make_selector(grid, allocations=[(4, 8)])
        outcome = selector.select("points", 1e6, make_profile())
        assert all(c.compute_site != "hpc-2" for c in outcome)

    def test_unreachable_pairs_skipped(self, grid):
        topo, catalog = grid
        # An island compute site with no links is silently skipped.
        topo.add_site("hpc-island", SiteKind.COMPUTE, small_cluster_spec())
        selector = self.make_selector(grid, allocations=[(1, 1)])
        outcome = selector.select("points", 1e6, make_profile())
        assert not any(c.compute_site == "hpc-island" for c in outcome)

    def test_compute_sites_filter(self, grid):
        selector = self.make_selector(grid)
        outcome = selector.select(
            "points", 1e6, make_profile(), compute_sites=["hpc-2"]
        )
        assert all(c.compute_site == "hpc-2" for c in outcome)

    def test_unknown_dataset_raises(self, grid):
        selector = self.make_selector(grid)
        from repro.simgrid.errors import TopologyError

        with pytest.raises(TopologyError):
            selector.select("missing", 1e6, make_profile())

    def test_invalid_dataset_size(self, grid):
        selector = self.make_selector(grid)
        with pytest.raises(ConfigurationError):
            selector.select("points", 0.0, make_profile())

    def test_empty_allocations_rejected(self, grid):
        topo, catalog = grid
        with pytest.raises(ConfigurationError):
            ResourceSelector(topo, catalog, NoCommunicationModel(), [])

    def test_callable_model_dispatch(self, grid):
        topo, catalog = grid
        calls = []

        def model_for(site):
            calls.append(site)
            return NoCommunicationModel()

        selector = ResourceSelector(topo, catalog, model_for, [(1, 1)])
        selector.select("points", 1e6, make_profile())
        assert set(calls) == {"hpc-1", "hpc-2"}

    def test_candidate_labels(self, grid):
        selector = self.make_selector(grid, allocations=[(2, 4)])
        outcome = selector.select("points", 1e6, make_profile())
        assert outcome.best.label == "repo-b[2] -> hpc-1[4]"


class TestRejectionReasons:
    def make_selector(self, grid, allocations=((1, 1), (2, 4), (4, 8))):
        topo, catalog = grid
        return ResourceSelector(
            topology=topo,
            catalog=catalog,
            model_for_site=NoCommunicationModel(),
            allocations=allocations,
        )

    def test_infeasible_allocation_recorded(self, grid):
        # hpc-2 has only 4 nodes, so (4, 8) is pruned there — with a reason.
        selector = self.make_selector(grid, allocations=[(4, 8)])
        outcome = selector.select("points", 1e6, make_profile())
        pruned = [r for r in outcome.rejections if r.compute_site == "hpc-2"]
        assert pruned, "expected rejections for the undersized site"
        for r in pruned:
            assert r.code == "infeasible-allocation"
            assert r.data_nodes == 4 and r.compute_nodes == 8
            assert r.reason
            assert "hpc-2" in r.label or r.replica_site in r.label

    def test_unreachable_pair_recorded(self, grid):
        topo, catalog = grid
        topo.add_site("hpc-island", SiteKind.COMPUTE, small_cluster_spec())
        selector = self.make_selector(grid, allocations=[(1, 1)])
        outcome = selector.select("points", 1e6, make_profile())
        island = [
            r for r in outcome.rejections if r.compute_site == "hpc-island"
        ]
        # Both replicas fail to reach the island; site-level rejections
        # carry no allocation.
        assert {r.replica_site for r in island} == {"repo-a", "repo-b"}
        assert all(r.code == "unreachable" for r in island)
        assert all(r.data_nodes is None for r in island)

    def test_all_infeasible_raises_with_reasons(self, grid):
        from repro.core.selection import InfeasibleSelectionError

        selector = self.make_selector(grid, allocations=[(16, 32)])
        with pytest.raises(InfeasibleSelectionError) as excinfo:
            selector.select("points", 1e6, make_profile())
        err = excinfo.value
        assert err.rejections
        assert all(r.code == "infeasible-allocation" for r in err.rejections)
        # The error is still a ConfigurationError for legacy callers.
        assert isinstance(err, ConfigurationError)

    def test_feasible_selection_keeps_empty_rejections(self, grid):
        selector = self.make_selector(grid, allocations=[(1, 1)])
        outcome = selector.select("points", 1e6, make_profile())
        assert outcome.rejections == ()
