"""Shared fixtures for prediction-framework tests."""

from __future__ import annotations

import pytest

from repro.core.profile import Profile
from repro.core.target import PredictionTarget
from repro.middleware.scheduler import RunConfig

from tests.conftest import small_cluster_spec


def make_profile(
    n=1,
    c=1,
    s=1.0e6,
    b=5.0e5,
    t_disk=1.0,
    t_network=2.0,
    t_compute=4.0,
    t_ro=0.2,
    t_g=0.1,
    r=512.0,
    broadcast=0.0,
    rounds=1,
    app="test-app",
    cluster=None,
):
    cluster = cluster or small_cluster_spec()
    return Profile(
        app=app,
        storage_cluster=cluster,
        compute_cluster=cluster,
        data_nodes=n,
        compute_nodes=c,
        bandwidth=b,
        dataset_bytes=s,
        t_disk=t_disk,
        t_network=t_network,
        t_compute=t_compute,
        t_ro=t_ro,
        t_g=t_g,
        max_object_bytes=r,
        broadcast_bytes=broadcast,
        gather_rounds=rounds,
    )


def make_target(n=2, c=4, s=2.0e6, b=5.0e5, cluster=None):
    cluster = cluster or small_cluster_spec()
    config = RunConfig(
        storage_cluster=cluster,
        compute_cluster=cluster,
        data_nodes=n,
        compute_nodes=c,
        bandwidth=b,
    )
    return PredictionTarget(config=config, dataset_bytes=s)


@pytest.fixture
def profile():
    return make_profile()


@pytest.fixture
def target():
    return make_target()
