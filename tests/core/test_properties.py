"""Metamorphic and algebraic properties of the prediction framework.

These are the laws the paper's formulas imply; hypothesis explores the
parameter space so regressions in any scaling factor are caught even where
no example-based test looks.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.classes import (
    GlobalReductionClass,
    ModelClasses,
    ReductionObjectClass,
    estimate_global_reduction_time,
    estimate_object_size,
)
from repro.core.heterogeneous import (
    ComponentScalingFactors,
    CrossClusterPredictor,
)
from repro.core.models import (
    GlobalReductionModel,
    NoCommunicationModel,
    ReductionCommunicationModel,
)
from repro.core.predictors import (
    predict_compute_naive,
    predict_disk_time,
    predict_network_time,
)

from tests.core.conftest import make_profile, make_target

CLASSES = ModelClasses.parse("constant", "linear-constant")

sizes = st.floats(min_value=1e4, max_value=1e9)
scales = st.floats(min_value=0.1, max_value=10.0)
nodes = st.integers(1, 16)
times = st.floats(min_value=1e-3, max_value=1e3)


class TestComponentHomogeneity:
    """Every component predictor is homogeneous of degree 1 in ŝ."""

    @given(sizes, scales, nodes, times)
    def test_disk_scales_linearly_in_dataset(self, s, k, n, t_disk):
        profile = make_profile(s=s, t_disk=t_disk)
        base = make_target(n=n, c=16, s=s)
        scaled = make_target(n=n, c=16, s=s * k)
        assert predict_disk_time(profile, scaled) == pytest.approx(
            k * predict_disk_time(profile, base), rel=1e-9
        )

    @given(sizes, scales, nodes)
    def test_network_scales_linearly_in_dataset(self, s, k, n):
        profile = make_profile(s=s)
        base = make_target(n=n, c=16, s=s)
        scaled = make_target(n=n, c=16, s=s * k)
        assert predict_network_time(profile, scaled) == pytest.approx(
            k * predict_network_time(profile, base), rel=1e-9
        )

    @given(sizes, scales, nodes)
    def test_compute_scales_linearly_in_dataset(self, s, k, c):
        profile = make_profile(s=s, t_ro=0.0, t_g=0.0)
        base = make_target(n=1, c=c, s=s)
        scaled = make_target(n=1, c=c, s=s * k)
        assert predict_compute_naive(profile, scaled) == pytest.approx(
            k * predict_compute_naive(profile, base), rel=1e-9
        )


class TestBandwidthReciprocity:
    @given(st.floats(min_value=1e4, max_value=1e8), scales)
    def test_network_inverse_in_bandwidth(self, b, k):
        profile = make_profile(b=b)
        base = make_target(n=1, c=1, s=profile.dataset_bytes, b=b)
        scaled = make_target(n=1, c=1, s=profile.dataset_bytes, b=b * k)
        assert predict_network_time(profile, scaled) == pytest.approx(
            predict_network_time(profile, base) / k, rel=1e-9
        )


class TestIdentityPredictions:
    """Predicting the profile's own configuration reproduces the profile."""

    @given(nodes, nodes, times, times, times)
    @settings(max_examples=30)
    def test_no_comm_identity(self, n, extra, t_disk, t_network, t_compute):
        c = n + extra if n + extra <= 16 else 16
        if c < n:
            c = n
        profile = make_profile(
            n=n, c=c, t_disk=t_disk, t_network=t_network,
            t_compute=t_compute, t_ro=0.0, t_g=0.0,
        )
        target = make_target(
            n=n, c=c, s=profile.dataset_bytes, b=profile.bandwidth
        )
        predicted = NoCommunicationModel().predict(profile, target)
        assert predicted.total == pytest.approx(profile.total, rel=1e-9)


class TestMonotonicity:
    @given(nodes)
    def test_disk_nonincreasing_in_data_nodes(self, n):
        profile = make_profile()
        current = predict_disk_time(
            profile, make_target(n=n, c=16, s=profile.dataset_bytes)
        )
        more = predict_disk_time(
            profile, make_target(n=min(n + 1, 16), c=16, s=profile.dataset_bytes)
        )
        assert more <= current + 1e-12

    @given(st.integers(1, 15))
    def test_t_ro_nondecreasing_in_compute_nodes(self, c):
        profile = make_profile()
        model = GlobalReductionModel(CLASSES)
        fewer = model.predict(
            profile, make_target(n=1, c=c, s=profile.dataset_bytes)
        )
        more = model.predict(
            profile, make_target(n=1, c=c + 1, s=profile.dataset_bytes)
        )
        assert more.t_ro >= fewer.t_ro


class TestModelRelationships:
    @given(nodes, times, st.floats(min_value=0.0, max_value=0.3))
    @settings(max_examples=30)
    def test_components_nonnegative(self, c, t_compute, serial_fraction):
        profile = make_profile(
            t_compute=t_compute,
            t_ro=t_compute * serial_fraction / 2,
            t_g=t_compute * serial_fraction / 2,
        )
        target = make_target(n=1, c=c, s=profile.dataset_bytes)
        for model in (
            NoCommunicationModel(),
            ReductionCommunicationModel(CLASSES),
            GlobalReductionModel(CLASSES),
        ):
            predicted = model.predict(profile, target)
            assert predicted.t_disk >= 0
            assert predicted.t_network >= 0
            assert predicted.t_compute >= 0
            assert predicted.total >= 0


class TestCrossClusterLaws:
    @given(times, times, times)
    @settings(max_examples=30)
    def test_unit_factors_reproduce_base_model(self, t_disk, t_network, t_compute):
        profile = make_profile(
            t_disk=t_disk, t_network=t_network, t_compute=t_compute,
            t_ro=0.0, t_g=0.0,
        )
        target = make_target(n=2, c=4, s=profile.dataset_bytes)
        base = NoCommunicationModel()
        unit = CrossClusterPredictor(
            base, ComponentScalingFactors(sd=1.0, sn=1.0, sc=1.0)
        )
        assert unit.predict(profile, target).total == pytest.approx(
            base.predict(profile, target).total, rel=1e-9
        )

    @given(scales, scales, scales)
    def test_factors_scale_components_independently(self, sd, sn, sc):
        profile = make_profile(t_ro=0.0, t_g=0.0)
        target = make_target(n=2, c=4, s=profile.dataset_bytes)
        base = NoCommunicationModel()
        on_a = base.predict(profile, target)
        on_b = CrossClusterPredictor(
            base, ComponentScalingFactors(sd=sd, sn=sn, sc=sc)
        ).predict(profile, target)
        assert on_b.t_disk == pytest.approx(sd * on_a.t_disk, rel=1e-9)
        assert on_b.t_network == pytest.approx(sn * on_a.t_network, rel=1e-9)
        assert on_b.t_compute == pytest.approx(sc * on_a.t_compute, rel=1e-9)


class TestClassEstimatorLaws:
    @given(sizes, nodes, scales)
    def test_constant_object_size_is_invariant(self, s, c, k):
        profile = make_profile(s=s, r=1234.0)
        target = make_target(n=1, c=c, s=s * k)
        assert (
            estimate_object_size(profile, target, ReductionObjectClass.CONSTANT)
            == 1234.0
        )

    @given(sizes, st.integers(1, 16), scales)
    def test_linear_object_size_tracks_share(self, s, c, k):
        profile = make_profile(s=s, c=1, r=1000.0)
        target = make_target(n=1, c=c, s=s * k)
        expected = 1000.0 * k / c
        assert estimate_object_size(
            profile, target, ReductionObjectClass.LINEAR
        ) == pytest.approx(expected, rel=1e-9)

    @given(times, st.integers(1, 16), scales)
    def test_global_reduction_classes_orthogonal(self, t_g, c, k):
        profile = make_profile(
            c=1, t_g=t_g, t_ro=0.0, t_compute=t_g + 1.0
        )
        target = make_target(n=1, c=c, s=profile.dataset_bytes * k)
        linear_constant = estimate_global_reduction_time(
            profile, target, GlobalReductionClass.LINEAR_CONSTANT
        )
        constant_linear = estimate_global_reduction_time(
            profile, target, GlobalReductionClass.CONSTANT_LINEAR
        )
        assert linear_constant == pytest.approx(t_g * c, rel=1e-9)
        assert constant_linear == pytest.approx(t_g * k, rel=1e-9)
