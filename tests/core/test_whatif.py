"""Tests for configuration what-if analysis."""

import pytest

from repro.core.models import NoCommunicationModel
from repro.core.whatif import (
    ConfigurationForecast,
    marginal_speedups,
    recommend_nodes,
    sweep_configurations,
)
from repro.simgrid.errors import ConfigurationError

from tests.conftest import small_cluster_spec
from tests.core.conftest import make_profile
from repro.middleware.scheduler import RunConfig


def make_template():
    cluster = small_cluster_spec()
    return RunConfig(
        storage_cluster=cluster,
        compute_cluster=cluster,
        data_nodes=1,
        compute_nodes=1,
        bandwidth=5e5,
    )


class TestSweepConfigurations:
    def test_sweep_covers_all_pairs(self):
        profile = make_profile(t_ro=0.0, t_g=0.0)
        pairs = [(1, 1), (1, 4), (2, 8)]
        forecasts = sweep_configurations(
            profile, NoCommunicationModel(), make_template(), pairs
        )
        assert [f.label for f in forecasts] == ["1-1", "1-4", "2-8"]
        # more parallelism never predicts slower under the naive model
        assert forecasts[0].predicted_total >= forecasts[1].predicted_total
        assert forecasts[1].predicted_total >= forecasts[2].predicted_total

    def test_dataset_override(self):
        profile = make_profile(t_ro=0.0, t_g=0.0)
        base = sweep_configurations(
            profile, NoCommunicationModel(), make_template(), [(1, 1)]
        )[0]
        doubled = sweep_configurations(
            profile,
            NoCommunicationModel(),
            make_template(),
            [(1, 1)],
            dataset_bytes=2 * profile.dataset_bytes,
        )[0]
        assert doubled.predicted_total == pytest.approx(
            2 * base.predicted_total
        )

    def test_empty_pairs_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_configurations(
                make_profile(), NoCommunicationModel(), make_template(), []
            )


class TestMarginalSpeedups:
    def test_speedups_between_successive(self):
        forecasts = [
            ConfigurationForecast(1, 1, 8.0),
            ConfigurationForecast(1, 2, 4.0),
            ConfigurationForecast(1, 4, 3.0),
        ]
        steps = marginal_speedups(forecasts)
        assert steps[0] == ("1-1", "1-2", pytest.approx(2.0))
        assert steps[1] == ("1-2", "1-4", pytest.approx(4.0 / 3.0))

    def test_needs_two(self):
        with pytest.raises(ConfigurationError):
            marginal_speedups([ConfigurationForecast(1, 1, 1.0)])


class TestRecommendNodes:
    def test_zero_tolerance_returns_fastest(self):
        forecasts = [
            ConfigurationForecast(1, 1, 8.0),
            ConfigurationForecast(8, 16, 1.0),
        ]
        assert recommend_nodes(forecasts, tolerance=0.0).label == "8-16"

    def test_tolerance_prefers_cheaper_configuration(self):
        forecasts = [
            ConfigurationForecast(1, 2, 1.04),   # 3 machines, within 5%
            ConfigurationForecast(8, 16, 1.0),   # 24 machines, fastest
        ]
        assert recommend_nodes(forecasts, tolerance=0.05).label == "1-2"

    def test_out_of_tolerance_excluded(self):
        forecasts = [
            ConfigurationForecast(1, 2, 1.5),
            ConfigurationForecast(8, 16, 1.0),
        ]
        assert recommend_nodes(forecasts, tolerance=0.05).label == "8-16"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            recommend_nodes([])
        with pytest.raises(ConfigurationError):
            recommend_nodes(
                [ConfigurationForecast(1, 1, 1.0)], tolerance=-0.1
            )

    def test_end_to_end_knee_detection(self):
        """With a serialized gather, throwing 16 nodes at a small job is
        predicted to be barely better than 8 — the recommendation stops at
        the knee."""
        from repro.core.classes import ModelClasses
        from repro.core.models import GlobalReductionModel

        profile = make_profile(
            c=1, t_compute=1.0, t_ro=0.0, t_g=0.05, r=4096.0
        )
        model = GlobalReductionModel(
            ModelClasses.parse("constant", "linear-constant")
        )
        forecasts = sweep_configurations(
            profile, model, make_template(), [(1, c) for c in (1, 2, 4, 8, 16)]
        )
        pick = recommend_nodes(forecasts, tolerance=0.10)
        assert pick.compute_nodes < 16
