"""Tests for profile persistence and hardware-spec serialization."""

import json

import pytest

from repro.core.store import (
    ProfileStore,
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)
from repro.simgrid.errors import ConfigurationError
from repro.simgrid.serialize import cluster_from_dict, cluster_to_dict
from repro.workloads.clusters import (
    opteron_infiniband_cluster,
    pentium_myrinet_cluster,
)

from tests.conftest import small_cluster_spec
from tests.core.conftest import make_profile


class TestClusterSerialization:
    @pytest.mark.parametrize(
        "factory",
        [small_cluster_spec, pentium_myrinet_cluster, opteron_infiniband_cluster],
    )
    def test_round_trip(self, factory):
        original = factory()
        rebuilt = cluster_from_dict(cluster_to_dict(original))
        assert rebuilt == original

    def test_round_trip_is_json_safe(self):
        data = cluster_to_dict(small_cluster_spec())
        rebuilt = cluster_from_dict(json.loads(json.dumps(data)))
        assert rebuilt == small_cluster_spec()

    def test_missing_field_rejected(self):
        data = cluster_to_dict(small_cluster_spec())
        del data["cpu"]
        with pytest.raises(ConfigurationError):
            cluster_from_dict(data)

    def test_none_cache_disk_round_trips(self):
        import dataclasses

        original = dataclasses.replace(small_cluster_spec(), cache_disk=None)
        rebuilt = cluster_from_dict(cluster_to_dict(original))
        assert rebuilt.cache_disk is None


class TestProfileSerialization:
    def test_round_trip(self):
        original = make_profile(n=2, c=4, rounds=3, broadcast=128.0)
        rebuilt = profile_from_dict(profile_to_dict(original))
        # metadata is intentionally not persisted; compare the rest
        assert rebuilt.app == original.app
        assert rebuilt.total == pytest.approx(original.total)
        assert rebuilt.t_ro == original.t_ro
        assert rebuilt.max_object_bytes == original.max_object_bytes
        assert rebuilt.gather_rounds == 3
        assert rebuilt.broadcast_bytes == 128.0
        assert rebuilt.storage_cluster == original.storage_cluster

    def test_version_checked(self):
        data = profile_to_dict(make_profile())
        data["format_version"] = 999
        with pytest.raises(ConfigurationError):
            profile_from_dict(data)

    def test_malformed_rejected(self):
        data = profile_to_dict(make_profile())
        del data["t_disk"]
        with pytest.raises(ConfigurationError):
            profile_from_dict(data)


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path):
        profile = make_profile()
        path = save_profile(profile, tmp_path / "p.json")
        loaded = load_profile(path)
        assert loaded.total == pytest.approx(profile.total)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_profile(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_profile(path)


class TestProfileStore:
    def test_save_load_list(self, tmp_path):
        store = ProfileStore(tmp_path / "profiles")
        store.save("kmeans-1-1", make_profile(app="kmeans"))
        store.save("em-1-1", make_profile(app="em"))
        assert store.names() == ["em-1-1", "kmeans-1-1"]
        assert "kmeans-1-1" in store
        assert len(store) == 2
        assert store.load("kmeans-1-1").app == "kmeans"

    def test_invalid_names_rejected(self, tmp_path):
        store = ProfileStore(tmp_path)
        with pytest.raises(ConfigurationError):
            store.save("", make_profile())
        with pytest.raises(ConfigurationError):
            store.save("../escape", make_profile())
        with pytest.raises(ConfigurationError):
            store.save(".hidden", make_profile())


class TestDurableStore:
    def test_corrupt_file_names_path_and_remedy(self, tmp_path):
        from repro.core.durable import CorruptStoreError

        path = tmp_path / "p.json"
        path.write_text("{truncated")
        with pytest.raises(CorruptStoreError) as excinfo:
            load_profile(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert "re-profile" in message

    def test_future_format_version_names_remedy(self, tmp_path):
        from repro.core.durable import FormatVersionError

        path = save_profile(make_profile(), tmp_path / "p.json")
        data = json.loads(path.read_text())
        data["format_version"] = 999
        path.write_text(json.dumps(data))
        with pytest.raises(FormatVersionError, match="newer version"):
            load_profile(path)

    def test_save_leaves_no_temp_files(self, tmp_path):
        save_profile(make_profile(), tmp_path / "p.json")
        assert [p.name for p in tmp_path.iterdir()] == ["p.json"]

    def test_failed_save_preserves_previous_profile(self, tmp_path, monkeypatch):
        import repro.core.durable as durable

        path = save_profile(make_profile(app="kmeans"), tmp_path / "p.json")
        before = path.read_bytes()

        def explode(*_args, **_kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(durable.os, "replace", explode)
        with pytest.raises(OSError):
            save_profile(make_profile(app="em"), path)
        monkeypatch.undo()

        # Atomicity: the old profile is intact, no temp file remains.
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["p.json"]
        assert load_profile(path).app == "kmeans"


class TestScanQuarantine:
    def seed_store(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.save("kmeans", make_profile(app="kmeans"))
        store.save("apriori", make_profile(app="apriori"))
        return store

    def test_clean_scan_loads_everything(self, tmp_path):
        store = self.seed_store(tmp_path)
        profiles = store.scan()
        assert sorted(profiles) == ["apriori", "kmeans"]
        assert profiles["kmeans"].app == "kmeans"

    def test_truncated_profile_is_quarantined_and_scan_continues(
        self, tmp_path
    ):
        store = self.seed_store(tmp_path)
        victim = tmp_path / "kmeans.json"
        # Truncate mid-document: invalid JSON, a classic torn write.
        victim.write_text(victim.read_text()[: len(victim.read_text()) // 2])
        with pytest.warns(UserWarning, match="quarantined"):
            profiles = store.scan()
        assert sorted(profiles) == ["apriori"]
        quarantined = list(tmp_path.glob("kmeans.json.corrupt-*"))
        assert len(quarantined) == 1
        assert not victim.exists()

    def test_quarantined_files_leave_later_scans_clean(self, tmp_path):
        store = self.seed_store(tmp_path)
        (tmp_path / "kmeans.json").write_text("{ not json")
        with pytest.warns(UserWarning):
            store.scan()
        # Second scan: the corpse no longer matches *.json.
        profiles = store.scan()
        assert sorted(profiles) == ["apriori"]
        assert "kmeans" not in store

    def test_quarantine_name_is_content_addressed(self, tmp_path):
        from repro.core.durable import quarantine_corrupt

        path = tmp_path / "bad.json"
        path.write_text("{ torn")
        target = quarantine_corrupt(path)
        assert target.name.startswith("bad.json.corrupt-")
        assert target.read_text() == "{ torn"

    def test_quarantine_missing_file_raises_corrupt_store_error(
        self, tmp_path
    ):
        from repro.core.durable import CorruptStoreError, quarantine_corrupt

        with pytest.raises(CorruptStoreError, match="cannot quarantine"):
            quarantine_corrupt(tmp_path / "ghost.json")
