"""Tests for the application model classes and their estimators."""

import pytest

from repro.core.classes import (
    GlobalReductionClass,
    ModelClasses,
    ReductionObjectClass,
    estimate_global_reduction_time,
    estimate_object_size,
)
from repro.simgrid.errors import ConfigurationError

from tests.core.conftest import make_profile, make_target


class TestModelClasses:
    def test_parse(self):
        classes = ModelClasses.parse("constant", "linear-constant")
        assert classes.object_size is ReductionObjectClass.CONSTANT
        assert classes.global_reduction is GlobalReductionClass.LINEAR_CONSTANT

    def test_parse_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            ModelClasses.parse("quadratic", "linear-constant")
        with pytest.raises(ConfigurationError):
            ModelClasses.parse("constant", "exponential")


class TestObjectSizeEstimation:
    def test_constant_class_returns_profile_size(self):
        profile = make_profile(r=768.0)
        target = make_target(n=4, c=16, s=8e6)
        size = estimate_object_size(profile, target, ReductionObjectClass.CONSTANT)
        assert size == 768.0

    def test_linear_class_scales_with_data_share(self):
        profile = make_profile(c=2, s=1e6, r=1000.0)
        target = make_target(n=2, c=8, s=2e6)
        # share_profile = 5e5, share_target = 2.5e5 -> half the object
        size = estimate_object_size(profile, target, ReductionObjectClass.LINEAR)
        assert size == pytest.approx(500.0)

    def test_linear_class_identity_on_profile_share(self):
        profile = make_profile(c=4, s=4e6, r=1000.0)
        target = make_target(n=2, c=8, s=8e6)  # same per-node share (1e6)
        size = estimate_object_size(profile, target, ReductionObjectClass.LINEAR)
        assert size == pytest.approx(1000.0)


class TestGlobalReductionEstimation:
    def test_linear_constant_scales_with_nodes(self):
        profile = make_profile(c=2, t_g=0.5)
        target = make_target(n=2, c=8, s=profile.dataset_bytes)
        t_g = estimate_global_reduction_time(
            profile, target, GlobalReductionClass.LINEAR_CONSTANT
        )
        assert t_g == pytest.approx(2.0)

    def test_linear_constant_ignores_dataset_size(self):
        profile = make_profile(c=2, t_g=0.5, s=1e6)
        target = make_target(n=2, c=2, s=9e6)
        t_g = estimate_global_reduction_time(
            profile, target, GlobalReductionClass.LINEAR_CONSTANT
        )
        assert t_g == pytest.approx(0.5)

    def test_constant_linear_scales_with_dataset(self):
        profile = make_profile(c=2, t_g=0.5, s=1e6)
        target = make_target(n=2, c=16, s=3e6)
        t_g = estimate_global_reduction_time(
            profile, target, GlobalReductionClass.CONSTANT_LINEAR
        )
        assert t_g == pytest.approx(1.5)
