"""Tests for prediction fingerprints and the last-known-good cache."""

from __future__ import annotations

import pytest

from repro.core.durable import CorruptStoreError
from repro.core.fingerprint import prediction_fingerprint
from repro.core.predcache import CachedPrediction, PredictionCache
from repro.simgrid.errors import ConfigurationError

from tests.core.conftest import make_profile, make_target


class TestFingerprint:
    def test_same_inputs_same_fingerprint(self):
        profile, target = make_profile(), make_target()
        a = prediction_fingerprint(profile, target, "global reduction")
        b = prediction_fingerprint(profile, target, "global reduction")
        assert a == b

    def test_any_input_perturbs_the_fingerprint(self):
        profile, target = make_profile(), make_target()
        base = prediction_fingerprint(profile, target, "global reduction")
        assert base != prediction_fingerprint(
            make_profile(t_disk=9.9), target, "global reduction"
        )
        assert base != prediction_fingerprint(
            profile, make_target(c=8), "global reduction"
        )
        assert base != prediction_fingerprint(
            profile, target, "no communication"
        )
        assert base != prediction_fingerprint(
            profile, target, "global reduction", extra=(("pairs", [1]),)
        )

    def test_fingerprint_is_hex_digest(self):
        digest = prediction_fingerprint(
            make_profile(), make_target(), "m"
        )
        assert len(digest) == 64
        int(digest, 16)


class TestPredictionCache:
    def test_put_get_and_hit_counting(self):
        cache = PredictionCache(max_entries=4)
        cache.put("fp1", {"total": 1.0}, 10.0)
        entry = cache.get("fp1")
        assert entry is not None
        assert entry.payload == {"total": 1.0}
        assert entry.age_s(12.5) == pytest.approx(2.5)
        assert entry.hits == 1
        cache.get("fp1")
        assert cache.get("fp1").hits == 3
        assert cache.get("missing") is None

    def test_eviction_is_deterministic_oldest_first(self):
        cache = PredictionCache(max_entries=2)
        cache.put("a", {}, 1.0)
        cache.put("b", {}, 2.0)
        cache.put("c", {}, 3.0)
        assert cache.get("a") is None
        assert cache.get("b") is not None
        assert cache.evictions == 1

    def test_refresh_moves_entry_to_back(self):
        cache = PredictionCache(max_entries=2)
        cache.put("a", {}, 1.0)
        cache.put("b", {}, 2.0)
        cache.put("a", {"fresh": True}, 3.0)  # refresh: now newest
        cache.put("c", {}, 4.0)
        assert cache.get("b") is None
        assert cache.get("a").payload == {"fresh": True}

    def test_round_trip_preserves_order_and_counters(self, tmp_path):
        cache = PredictionCache(max_entries=3)
        cache.put("a", {"total": 1.0}, 1.0)
        cache.put("b", {"total": 2.0}, 2.0)
        cache.get("b")
        path = tmp_path / "cache.json"
        cache.save(path)
        loaded = PredictionCache.load(path)
        assert len(loaded) == 2
        assert loaded.get("b").payload == {"total": 2.0}
        # Eviction order survives the round trip.
        loaded.put("c", {}, 3.0)
        loaded.put("d", {}, 4.0)
        assert loaded.get("a") is None
        assert loaded.get("b") is not None

    def test_corrupt_cache_file_names_remedy(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{ torn")
        with pytest.raises(CorruptStoreError, match="rebuilds"):
            PredictionCache.load(path)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PredictionCache(max_entries=0)


class TestCachedPrediction:
    def test_age_never_negative(self):
        entry = CachedPrediction(payload={}, stored_at_s=5.0)
        assert entry.age_s(4.0) == 0.0
