"""Tests for the component predictors (the paper's Section 3.2-3.3.1 formulas)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.classes import ReductionObjectClass
from repro.core.predictors import (
    predict_compute_naive,
    predict_disk_time,
    predict_network_time,
    predict_reduction_comm_time,
)
from repro.simgrid.network import CommCostModel

from tests.core.conftest import make_profile, make_target

pos_small = st.floats(min_value=0.1, max_value=100.0)
node_counts = st.integers(1, 16)


class TestDiskPredictor:
    def test_formula(self):
        profile = make_profile(n=2, s=1e6, t_disk=4.0)
        target = make_target(n=4, c=4, s=3e6)
        # (3e6/1e6) * (2/4) * 4.0
        assert predict_disk_time(profile, target) == pytest.approx(6.0)

    def test_identity_on_profile_config(self):
        profile = make_profile(n=2, c=4)
        target = make_target(n=2, c=4, s=profile.dataset_bytes)
        assert predict_disk_time(profile, target) == pytest.approx(profile.t_disk)

    @given(node_counts, node_counts, pos_small)
    def test_inverse_in_target_nodes(self, n_profile, n_target, t_disk):
        profile = make_profile(n=n_profile, c=16, t_disk=t_disk)
        target_half = make_target(n=n_target, c=16, s=profile.dataset_bytes)
        predicted = predict_disk_time(profile, target_half)
        assert predicted == pytest.approx(t_disk * n_profile / n_target)


class TestNetworkPredictor:
    def test_formula_includes_bandwidth_ratio(self):
        profile = make_profile(n=1, b=1e6, s=1e6, t_network=2.0)
        target = make_target(n=2, c=4, s=2e6, b=5e5)
        # (2e6/1e6) * (1/2) * (1e6/5e5) * 2.0
        assert predict_network_time(profile, target) == pytest.approx(4.0)

    def test_halving_bandwidth_doubles_time(self):
        profile = make_profile(b=1e6)
        slow = make_target(n=1, c=1, s=profile.dataset_bytes, b=5e5)
        fast = make_target(n=1, c=1, s=profile.dataset_bytes, b=1e6)
        assert predict_network_time(profile, slow) == pytest.approx(
            2.0 * predict_network_time(profile, fast)
        )

    def test_data_node_scaling_can_be_disabled(self):
        profile = make_profile(n=1)
        target = make_target(n=4, c=4, s=profile.dataset_bytes, b=profile.bandwidth)
        with_scaling = predict_network_time(profile, target)
        without = predict_network_time(profile, target, scale_with_data_nodes=False)
        assert without == pytest.approx(profile.t_network)
        assert with_scaling == pytest.approx(profile.t_network / 4.0)


class TestComputePredictorNaive:
    def test_formula(self):
        profile = make_profile(c=2, s=1e6, t_compute=8.0)
        target = make_target(n=2, c=8, s=2e6)
        # (2e6/1e6) * (2/8) * 8
        assert predict_compute_naive(profile, target) == pytest.approx(4.0)

    @given(node_counts, pos_small)
    def test_linear_speedup_assumption(self, c, t_compute):
        profile = make_profile(c=1, t_compute=t_compute, t_ro=0.0, t_g=0.0)
        target = make_target(n=1, c=c, s=profile.dataset_bytes)
        assert predict_compute_naive(profile, target) == pytest.approx(
            t_compute / c
        )


class TestReductionCommPredictor:
    def test_single_node_is_free(self):
        profile = make_profile(r=1024.0)
        target = make_target(n=1, c=1, s=profile.dataset_bytes)
        predicted = predict_reduction_comm_time(
            profile, target, ReductionObjectClass.CONSTANT
        )
        assert predicted == 0.0

    def test_constant_class_uses_profile_object_size(self):
        profile = make_profile(r=1000.0, rounds=1)
        target = make_target(n=1, c=5, s=profile.dataset_bytes)
        comm = CommCostModel(w=1e-6, l=1e-4)
        predicted = predict_reduction_comm_time(
            profile, target, ReductionObjectClass.CONSTANT, comm
        )
        assert predicted == pytest.approx(4 * (1e-6 * 1000.0 + 1e-4))

    def test_linear_class_scales_with_data_share(self):
        profile = make_profile(c=1, s=1e6, r=1000.0, rounds=1)
        # same total data, 4 nodes -> per-node share and object shrink 4x
        target = make_target(n=1, c=4, s=1e6)
        comm = CommCostModel(w=1e-6, l=0.0)
        predicted = predict_reduction_comm_time(
            profile, target, ReductionObjectClass.LINEAR, comm
        )
        assert predicted == pytest.approx(3 * 1e-6 * 250.0)

    def test_broadcast_adds_messages(self):
        comm = CommCostModel(w=1e-6, l=1e-4)
        no_bcast = make_profile(r=1000.0, broadcast=0.0)
        with_bcast = make_profile(r=1000.0, broadcast=500.0)
        target = make_target(n=1, c=3, s=no_bcast.dataset_bytes)
        base = predict_reduction_comm_time(
            no_bcast, target, ReductionObjectClass.CONSTANT, comm
        )
        extra = predict_reduction_comm_time(
            with_bcast, target, ReductionObjectClass.CONSTANT, comm
        )
        assert extra == pytest.approx(base + 2 * (1e-6 * 500.0 + 1e-4))

    def test_gather_rounds_multiply(self):
        comm = CommCostModel(w=1e-6, l=1e-4)
        one = make_profile(rounds=1)
        ten = make_profile(rounds=10)
        target = make_target(n=1, c=4, s=one.dataset_bytes)
        assert predict_reduction_comm_time(
            ten, target, ReductionObjectClass.CONSTANT, comm
        ) == pytest.approx(
            10
            * predict_reduction_comm_time(
                one, target, ReductionObjectClass.CONSTANT, comm
            )
        )

    def test_default_comm_model_fitted_from_cluster(self):
        profile = make_profile()
        target = make_target(n=1, c=2, s=profile.dataset_bytes)
        predicted = predict_reduction_comm_time(
            profile, target, ReductionObjectClass.CONSTANT
        )
        cluster = target.config.compute_cluster
        expected = cluster.gather_message_time(profile.max_object_bytes)
        assert predicted == pytest.approx(expected, rel=1e-6)
