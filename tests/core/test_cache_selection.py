"""Tests for non-local cache-site selection."""

import pytest

from repro.core.cache_selection import (
    CachePlan,
    CacheSiteOption,
    select_cache_site,
)
from repro.core.models import NoCommunicationModel
from repro.simgrid.errors import ConfigurationError

from tests.core.conftest import make_profile, make_target


def multi_pass_profile(**kw):
    defaults = dict(rounds=5, t_compute=4.0)
    defaults.update(kw)
    profile = make_profile(**defaults)
    # give the profile some cache time (inside t_compute)
    import dataclasses

    return dataclasses.replace(profile, t_cache=1.0)


LOCAL = CacheSiteOption(site="local-disk", bandwidth=None)


class TestCacheSiteOption:
    def test_local(self):
        assert LOCAL.is_local
        assert not CacheSiteOption("x", 1e6).is_local

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CacheSiteOption("x", 0.0)


class TestSelectCacheSite:
    def test_local_estimate_is_base_prediction(self):
        profile = multi_pass_profile()
        target = make_target(n=1, c=2, s=profile.dataset_bytes)
        model = NoCommunicationModel()
        plans = select_cache_site(profile, target, model, [LOCAL])
        assert plans[0].estimated_total == pytest.approx(
            model.predict(profile, target).total
        )

    def test_fast_remote_site_wins_over_slow_one(self):
        profile = multi_pass_profile()
        target = make_target(n=1, c=2, s=profile.dataset_bytes)
        fast = CacheSiteOption("near", 1e8)
        slow = CacheSiteOption("far", 1e4)
        plans = select_cache_site(
            profile, target, NoCommunicationModel(), [slow, fast, LOCAL]
        )
        assert plans[0].option.site in {"near", "local-disk"}
        assert plans[-1].option.site == "far"

    def test_extremely_fast_remote_beats_local(self):
        profile = multi_pass_profile()
        target = make_target(n=1, c=2, s=profile.dataset_bytes)
        infinite = CacheSiteOption("ram-over-rdma", 1e15)
        plans = select_cache_site(
            profile, target, NoCommunicationModel(), [LOCAL, infinite]
        )
        # replacing a positive local cache time by ~zero traffic must win
        assert plans[0].option.site == "ram-over-rdma"

    def test_ranking_is_sorted(self):
        profile = multi_pass_profile()
        target = make_target(n=1, c=2, s=profile.dataset_bytes)
        options = [CacheSiteOption(f"s{i}", bw) for i, bw in
                   enumerate([1e5, 1e6, 1e7])] + [LOCAL]
        plans = select_cache_site(
            profile, target, NoCommunicationModel(), options
        )
        totals = [p.estimated_total for p in plans]
        assert totals == sorted(totals)

    def test_single_pass_profile_rejected(self):
        profile = make_profile(rounds=1)
        target = make_target(n=1, c=2, s=profile.dataset_bytes)
        with pytest.raises(ConfigurationError):
            select_cache_site(profile, target, NoCommunicationModel(), [LOCAL])

    def test_empty_options_rejected(self):
        profile = multi_pass_profile()
        target = make_target(n=1, c=2, s=profile.dataset_bytes)
        with pytest.raises(ConfigurationError):
            select_cache_site(profile, target, NoCommunicationModel(), [])


class TestCacheSelectionEndToEnd:
    @pytest.mark.slow
    def test_estimates_track_actual_runs(self):
        """Selection estimates must rank options the same way actual
        simulated executions do."""
        from repro.core import GlobalReductionModel, ModelClasses, Profile
        from repro.core.target import PredictionTarget
        from repro.middleware.runtime import FreerideGRuntime
        from repro.workloads.configs import make_run_config
        from repro.workloads.registry import WORKLOADS

        spec = WORKLOADS["kmeans"]
        dataset = spec.make_dataset("350 MB")
        profile_config = make_run_config(1, 1)
        profile_run = FreerideGRuntime(profile_config).execute(
            spec.make_app(), dataset
        )
        profile = Profile.from_run(profile_config, profile_run.breakdown)
        model = GlobalReductionModel(
            ModelClasses.parse(
                spec.natural_object_class, spec.natural_global_class
            )
        )
        target_config = make_run_config(2, 4)
        target = PredictionTarget(
            config=target_config, dataset_bytes=dataset.nbytes
        )
        options = [
            CacheSiteOption("local-disk", None),
            CacheSiteOption("near-cache", 5.0e6),
            CacheSiteOption("far-cache", 2.0e5),
        ]
        plans = select_cache_site(profile, target, model, options)

        actual = {}
        for option in options:
            config = target_config.with_remote_cache(option.bandwidth)
            run = FreerideGRuntime(config).execute(spec.make_app(), dataset)
            actual[option.site] = run.breakdown.total

        predicted_order = [p.option.site for p in plans]
        actual_order = sorted(actual, key=actual.get)
        assert predicted_order == actual_order
