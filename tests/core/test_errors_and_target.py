"""Tests for the error metric and prediction targets."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import relative_error
from repro.simgrid.errors import ConfigurationError

from tests.core.conftest import make_target


class TestRelativeError:
    def test_exact_prediction(self):
        assert relative_error(10.0, 10.0) == 0.0

    def test_symmetric_in_direction(self):
        assert relative_error(10.0, 9.0) == pytest.approx(0.1)
        assert relative_error(10.0, 11.0) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            relative_error(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            relative_error(1.0, -0.1)

    @given(
        st.floats(min_value=1e-6, max_value=1e6),
        st.floats(min_value=0.0, max_value=1e6),
    )
    def test_nonnegative(self, actual, predicted):
        assert relative_error(actual, predicted) >= 0.0


class TestPredictionTarget:
    def test_properties_delegate_to_config(self):
        target = make_target(n=2, c=8, s=3e6, b=7e5)
        assert target.data_nodes == 2
        assert target.compute_nodes == 8
        assert target.bandwidth == 7e5
        assert target.label == "2-8"
        assert target.dataset_bytes == 3e6

    def test_with_dataset_bytes(self):
        target = make_target(s=1e6)
        bigger = target.with_dataset_bytes(4e6)
        assert bigger.dataset_bytes == 4e6
        assert target.dataset_bytes == 1e6

    def test_positive_size_required(self):
        with pytest.raises(ConfigurationError):
            make_target(s=0.0)

    def test_from_run_config(self):
        from repro.core.target import PredictionTarget

        target = make_target()
        clone = PredictionTarget.from_run_config(target.config, 5e5)
        assert clone.dataset_bytes == 5e5
        assert clone.config is target.config
