"""Tests for class auto-detection from multiple profiles."""

import pytest

from repro.core.classes import GlobalReductionClass, ReductionObjectClass
from repro.core.classify import classify_global_reduction, classify_object_size
from repro.simgrid.errors import ConfigurationError

from tests.core.conftest import make_profile


class TestClassifyObjectSize:
    def test_constant_detected(self):
        profiles = [
            make_profile(c=1, s=1e6, r=512.0),
            make_profile(c=4, s=1e6, r=512.0),
            make_profile(c=1, s=4e6, r=512.0),
        ]
        assert classify_object_size(profiles) is ReductionObjectClass.CONSTANT

    def test_linear_detected(self):
        profiles = [
            make_profile(c=1, s=1e6, r=1000.0),
            make_profile(c=4, s=1e6, r=250.0),
            make_profile(c=1, s=2e6, r=2000.0),
        ]
        assert classify_object_size(profiles) is ReductionObjectClass.LINEAR

    def test_noisy_linear_still_detected(self):
        profiles = [
            make_profile(c=1, s=1e6, r=1000.0),
            make_profile(c=4, s=1e6, r=270.0),
            make_profile(c=8, s=1e6, r=122.0),
        ]
        assert classify_object_size(profiles) is ReductionObjectClass.LINEAR

    def test_needs_two_profiles(self):
        with pytest.raises(ConfigurationError):
            classify_object_size([make_profile()])

    def test_needs_variation(self):
        with pytest.raises(ConfigurationError):
            classify_object_size([make_profile(), make_profile()])


class TestClassifyGlobalReduction:
    def test_linear_constant_detected(self):
        profiles = [
            make_profile(c=1, s=1e6, t_g=0.1),
            make_profile(c=4, s=1e6, t_g=0.4),
            make_profile(c=1, s=4e6, t_g=0.1),
        ]
        assert (
            classify_global_reduction(profiles)
            is GlobalReductionClass.LINEAR_CONSTANT
        )

    def test_constant_linear_detected(self):
        profiles = [
            make_profile(c=1, s=1e6, t_g=0.1),
            make_profile(c=8, s=1e6, t_g=0.1),
            make_profile(c=1, s=4e6, t_g=0.4),
        ]
        assert (
            classify_global_reduction(profiles)
            is GlobalReductionClass.CONSTANT_LINEAR
        )

    def test_needs_variation(self):
        with pytest.raises(ConfigurationError):
            classify_global_reduction([make_profile(), make_profile()])
