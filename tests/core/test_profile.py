"""Tests for the profile artefact."""

import pytest

from repro.core.profile import Profile
from repro.middleware.runtime import FreerideGRuntime
from repro.middleware.scheduler import RunConfig
from repro.simgrid.errors import ConfigurationError

from tests.conftest import SumApp, make_tiny_points, small_cluster_spec
from tests.core.conftest import make_profile


class TestProfileValidation:
    def test_total_and_label(self):
        profile = make_profile(n=2, c=4)
        assert profile.total == pytest.approx(7.0)
        assert profile.label == "2-4"

    def test_scalable_compute(self):
        profile = make_profile(t_compute=4.0, t_ro=0.5, t_g=0.25)
        assert profile.scalable_compute == pytest.approx(3.25)

    def test_serialized_parts_cannot_exceed_compute(self):
        with pytest.raises(ConfigurationError):
            make_profile(t_compute=1.0, t_ro=0.8, t_g=0.5)

    def test_negative_components_rejected(self):
        with pytest.raises(ConfigurationError):
            make_profile(t_disk=-1.0)

    def test_nonpositive_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            make_profile(s=0.0)

    def test_nonpositive_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            make_profile(n=0)

    def test_with_breakdown_rescales_serial_parts(self):
        profile = make_profile(t_compute=4.0, t_ro=0.4, t_g=0.2)
        scaled = profile.with_breakdown(t_disk=2.0, t_network=3.0, t_compute=2.0)
        assert scaled.t_disk == 2.0
        assert scaled.t_ro == pytest.approx(0.2)
        assert scaled.t_g == pytest.approx(0.1)


class TestProfileFromRun:
    def test_round_trip_from_middleware(self):
        cluster = small_cluster_spec()
        config = RunConfig(
            storage_cluster=cluster,
            compute_cluster=cluster,
            data_nodes=2,
            compute_nodes=4,
            bandwidth=5e5,
        )
        dataset = make_tiny_points()
        run = FreerideGRuntime(config).execute(SumApp(passes=2), dataset)
        profile = Profile.from_run(config, run.breakdown)
        assert profile.app == "sum-app"
        assert profile.data_nodes == 2
        assert profile.compute_nodes == 4
        assert profile.dataset_bytes == dataset.nbytes
        assert profile.t_disk == pytest.approx(run.breakdown.t_disk)
        assert profile.t_compute == pytest.approx(run.breakdown.t_compute)
        assert profile.t_ro == pytest.approx(run.breakdown.t_ro)
        assert profile.gather_rounds == 2
        assert profile.total == pytest.approx(run.breakdown.total)
