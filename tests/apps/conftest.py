"""Shared helpers for application tests."""

from __future__ import annotations

import pytest

from repro.middleware.runtime import FreerideGRuntime, RunResult
from repro.middleware.scheduler import RunConfig

from tests.conftest import small_cluster_spec


def execute(app, dataset, data_nodes=1, compute_nodes=1, bandwidth=5e5) -> RunResult:
    """Run an application on the tiny test cluster."""
    cluster = small_cluster_spec()
    config = RunConfig(
        storage_cluster=cluster,
        compute_cluster=cluster,
        data_nodes=data_nodes,
        compute_nodes=compute_nodes,
        bandwidth=bandwidth,
    )
    return FreerideGRuntime(config).execute(app, dataset)


#: Configurations used by the config-invariance tests.
INVARIANCE_CONFIGS = [(1, 1), (1, 4), (2, 4), (4, 8), (8, 16)]
