"""Tests for the neural-network training application."""

import numpy as np
import pytest

from repro.apps.neuralnet import NeuralNetTraining
from repro.datagen.points import make_training_dataset
from repro.simgrid.errors import ConfigurationError

from tests.apps.conftest import INVARIANCE_CONFIGS, execute


@pytest.fixture(scope="module")
def dataset():
    return make_training_dataset(
        "nn-test", num_points=2000, num_dims=4, num_classes=4, num_chunks=32, seed=41
    )


def make_app(epochs=6):
    return NeuralNetTraining(hidden=12, num_epochs=epochs, learning_rate=0.2, seed=3)


class TestNeuralNetCorrectness:
    def test_loss_decreases_monotonically(self, dataset):
        run = execute(make_app(), dataset, 2, 4)
        losses = run.result["loss_history"]
        assert len(losses) == 6
        assert all(b < a for a, b in zip(losses, losses[1:]))

    def test_one_pass_per_epoch(self, dataset):
        run = execute(make_app(epochs=3), dataset, 1, 2)
        assert run.breakdown.num_passes == 3

    def test_result_invariant_across_configurations(self, dataset):
        reference = None
        for n, c in INVARIANCE_CONFIGS:
            run = execute(make_app(), dataset, n, c)
            w1 = run.result["weights"]["w1"]
            if reference is None:
                reference = w1
            else:
                np.testing.assert_allclose(w1, reference, rtol=1e-9, atol=1e-12)

    def test_learns_to_classify_blobs(self, dataset):
        app = make_app(epochs=25)
        run = execute(app, dataset, 2, 4)
        features = dataset.records[:, :4].astype(np.float64)
        labels = dataset.records[:, 4].astype(np.int64)
        accuracy = float((app.predict(features) == labels).mean())
        assert accuracy > 0.8

    def test_matches_serial_reference(self, dataset):
        serial_app = make_app(epochs=2)
        serial_app.begin(dict(dataset.meta))
        serial = serial_app.run_serial(
            [dataset.chunk_payload(i) for i in range(len(dataset))]
        )
        parallel = execute(make_app(epochs=2), dataset, 4, 8).result
        np.testing.assert_allclose(
            serial["weights"]["w2"], parallel["weights"]["w2"], rtol=1e-9
        )


class TestNeuralNetModelClasses:
    def test_object_size_is_parameter_count(self, dataset):
        app = make_app()
        app.begin(dict(dataset.meta))
        obj = app.make_local_object()
        assert app.object_nbytes(obj) == (app.num_params + 1) * 8 + 8

    def test_object_size_independent_of_config(self, dataset):
        one = execute(make_app(), dataset, 1, 1)
        wide = execute(make_app(), dataset, 4, 16)
        assert (
            one.breakdown.max_reduction_object_bytes
            == wide.breakdown.max_reduction_object_bytes
        )

    def test_flags(self):
        app = make_app()
        assert app.broadcasts_result is True
        assert app.multi_pass_hint is True


class TestNeuralNetValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            NeuralNetTraining(hidden=0)
        with pytest.raises(ConfigurationError):
            NeuralNetTraining(num_epochs=0)
        with pytest.raises(ConfigurationError):
            NeuralNetTraining(learning_rate=0.0)
