"""Tests for the apriori association-mining application."""

import pytest

from repro.apps.apriori import AprioriMining
from repro.datagen.transactions import make_transaction_dataset
from repro.simgrid.errors import ConfigurationError

from tests.apps.conftest import INVARIANCE_CONFIGS, execute


@pytest.fixture(scope="module")
def dataset():
    return make_transaction_dataset(
        "ap-test",
        num_transactions=1600,
        num_items=32,
        num_chunks=32,
        pattern_prob=0.35,
        seed=31,
    )


def make_app():
    return AprioriMining(min_support=0.25, max_k=4)


class TestAprioriCorrectness:
    def test_finds_all_planted_patterns(self, dataset):
        run = execute(make_app(), dataset, 2, 4)
        found = set(run.result["frequent_itemsets"])
        for pattern in dataset.meta["true_patterns"]:
            assert tuple(pattern) in found, f"missing planted pattern {pattern}"

    def test_downward_closure(self, dataset):
        """Apriori invariant: every subset of a frequent itemset is frequent."""
        from itertools import combinations

        run = execute(make_app(), dataset, 2, 4)
        frequent = set(run.result["frequent_itemsets"])
        for itemset in frequent:
            if len(itemset) > 1:
                for subset in combinations(itemset, len(itemset) - 1):
                    assert subset in frequent

    def test_supports_at_least_threshold(self, dataset):
        run = execute(make_app(), dataset, 1, 2)
        for support in run.result["frequent_itemsets"].values():
            assert support >= 0.25

    def test_result_invariant_across_configurations(self, dataset):
        reference = None
        for n, c in INVARIANCE_CONFIGS:
            run = execute(make_app(), dataset, n, c)
            summary = sorted(run.result["frequent_itemsets"].items())
            if reference is None:
                reference = summary
            else:
                assert summary == reference

    def test_pass_per_level(self, dataset):
        run = execute(make_app(), dataset, 1, 2)
        assert run.breakdown.num_passes == run.result["levels_explored"]

    def test_exact_supports(self, dataset):
        """Distributed counting must equal a direct global count."""
        import numpy as np

        run = execute(make_app(), dataset, 4, 8)
        data = dataset.records > 0.5
        for itemset, support in run.result["frequent_itemsets"].items():
            direct = float(data[:, list(itemset)].all(axis=1).mean())
            assert support == pytest.approx(direct, abs=1e-12)

    def test_high_threshold_stops_early(self, dataset):
        run = execute(AprioriMining(min_support=0.99, max_k=4), dataset, 1, 2)
        assert run.result["levels_explored"] == 1
        assert not run.result["frequent_itemsets"]


class TestAprioriModelClasses:
    def test_object_size_independent_of_config(self, dataset):
        one = execute(make_app(), dataset, 1, 1)
        wide = execute(make_app(), dataset, 4, 16)
        assert (
            one.breakdown.max_reduction_object_bytes
            == wide.breakdown.max_reduction_object_bytes
        )

    def test_flags(self):
        app = make_app()
        assert app.broadcasts_result is True
        assert app.multi_pass_hint is True


class TestAprioriValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            AprioriMining(min_support=0.0)
        with pytest.raises(ConfigurationError):
            AprioriMining(min_support=1.5)
        with pytest.raises(ConfigurationError):
            AprioriMining(max_k=0)
