"""Tests for union-find and fragment joining."""

import pytest
from hypothesis import given, strategies as st

from repro.apps.joining import UnionFind, join_fragments


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind([1, 2, 3])
        assert uf.find(1) != uf.find(2)
        assert len(uf.groups()) == 3

    def test_union_merges(self):
        uf = UnionFind([1, 2, 3])
        uf.union(1, 2)
        assert uf.find(1) == uf.find(2)
        assert uf.find(3) != uf.find(1)

    def test_transitivity(self):
        uf = UnionFind(range(4))
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(1, 2)
        assert len(uf.groups()) == 1

    def test_idempotent_union(self):
        uf = UnionFind([1, 2])
        uf.union(1, 2)
        uf.union(2, 1)
        assert len(uf.groups()) == 1

    def test_add_idempotent(self):
        uf = UnionFind()
        uf.add("a")
        uf.add("a")
        assert len(uf) == 1

    def test_contains(self):
        uf = UnionFind(["x"])
        assert "x" in uf
        assert "y" not in uf

    @given(
        st.integers(2, 30).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                    max_size=60,
                ),
            )
        )
    )
    def test_groups_partition_elements(self, data):
        n, unions = data
        uf = UnionFind(range(n))
        for a, b in unions:
            uf.union(a, b)
        groups = uf.groups()
        flattened = sorted(x for g in groups for x in g)
        assert flattened == list(range(n))
        # connectivity: united pairs land in the same group
        for a, b in unions:
            assert uf.find(a) == uf.find(b)


def frag(block, lo=False, hi=False, tag=None):
    return {"block": block, "touches_lo": lo, "touches_hi": hi, "tag": tag}


class TestJoinFragments:
    def always(self, a, b):
        return True

    def never(self, a, b):
        return False

    def test_no_boundary_touch_no_join(self):
        frags = [frag(0), frag(1)]
        groups = join_fragments(frags, self.always)
        assert len(groups) == 2

    def test_adjacent_touching_fragments_join(self):
        frags = [frag(0, hi=True), frag(1, lo=True)]
        groups = join_fragments(frags, self.always)
        assert len(groups) == 1

    def test_predicate_consulted(self):
        frags = [frag(0, hi=True), frag(1, lo=True)]
        groups = join_fragments(frags, self.never)
        assert len(groups) == 2

    def test_non_adjacent_blocks_never_join(self):
        frags = [frag(0, hi=True), frag(2, lo=True)]
        groups = join_fragments(frags, self.always)
        assert len(groups) == 2

    def test_chain_through_middle_block(self):
        frags = [
            frag(0, hi=True),
            frag(1, lo=True, hi=True),
            frag(2, lo=True),
        ]
        groups = join_fragments(frags, self.always)
        assert len(groups) == 1
        assert len(groups[0]) == 3

    def test_selective_predicate(self):
        frags = [
            frag(0, hi=True, tag="a"),
            frag(0, hi=True, tag="b"),
            frag(1, lo=True, tag="a"),
            frag(1, lo=True, tag="b"),
        ]
        groups = join_fragments(frags, lambda x, y: x["tag"] == y["tag"])
        assert len(groups) == 2
        for group in groups:
            tags = {f["tag"] for f in group}
            assert len(tags) == 1

    def test_empty_input(self):
        assert join_fragments([], self.always) == []
