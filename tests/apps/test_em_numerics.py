"""Numerical robustness tests for the EM implementation."""

import numpy as np
import pytest

from repro.apps.em import EMClustering
from repro.datagen.points import make_point_dataset
from repro.simgrid.errors import ConfigurationError

from tests.apps.conftest import execute


class TestEMNumerics:
    def test_degenerate_data_stays_positive_definite(self):
        """Points lying exactly on a plane would make covariances
        singular; the regularization floor must keep EM running."""
        rng = np.random.default_rng(5)
        points = rng.normal(size=(600, 3)).astype(np.float32)
        points[:, 2] = 1.0  # zero variance in the third dimension
        from repro.middleware.dataset import ArrayDataset

        dataset = ArrayDataset(
            "flat", points, num_chunks=16,
            meta={"num_dims": 3, "init_sample": points[:64].astype(np.float64)},
        )
        app = EMClustering(k=2, num_iterations=3, seed=11)
        run = execute(app, dataset, 1, 2)
        for cov in run.result["covariances"]:
            assert np.all(np.linalg.eigvalsh(cov) > 0)

    def test_responsibilities_sum_to_one(self):
        dataset = make_point_dataset("em-resp", 500, 3, 3, 16, seed=13)
        app = EMClustering(k=3, num_iterations=1, seed=7)
        app.begin(dict(dataset.meta))
        resp, log_evidence = app._responsibilities(
            dataset.records[:100].astype(np.float64)
        )
        np.testing.assert_allclose(resp.sum(axis=1), np.ones(100), atol=1e-12)
        assert np.all(np.isfinite(log_evidence))

    def test_extreme_points_do_not_overflow(self):
        app = EMClustering(k=2, num_iterations=1, seed=7)
        app.begin({"num_dims": 2})
        far = np.full((10, 2), 1e3)
        resp, log_evidence = app._responsibilities(far)
        assert np.all(np.isfinite(resp))
        assert np.all(np.isfinite(log_evidence))

    def test_lost_positive_definiteness_detected(self):
        app = EMClustering(k=1, num_iterations=1, seed=7)
        app.begin({"num_dims": 2})
        app.covs = np.array([[[1.0, 2.0], [2.0, 1.0]]])  # indefinite
        with pytest.raises(ConfigurationError):
            app._refresh_precisions()

    def test_single_component(self):
        dataset = make_point_dataset("em-one", 400, 2, 1, 16, seed=17)
        app = EMClustering(k=1, num_iterations=2, seed=7)
        run = execute(app, dataset, 1, 2)
        assert run.result["weights"][0] == pytest.approx(1.0)
