"""Tests for the EM clustering application."""

import numpy as np
import pytest

from repro.apps.em import EMClustering
from repro.datagen.points import make_point_dataset
from repro.simgrid.errors import ConfigurationError

from tests.apps.conftest import INVARIANCE_CONFIGS, execute


@pytest.fixture(scope="module")
def dataset():
    return make_point_dataset(
        "em-test", num_points=2000, num_dims=3, num_centers=3, num_chunks=32, seed=13
    )


def make_app(iters=4):
    return EMClustering(k=3, num_iterations=iters, seed=7)


class TestEMCorrectness:
    def test_two_passes_per_iteration(self, dataset):
        run = execute(make_app(iters=4), dataset, 1, 2)
        assert run.breakdown.num_passes == 8
        assert run.result["iterations"] == 4

    def test_loglikelihood_improves(self, dataset):
        run = execute(make_app(iters=5), dataset, 1, 2)
        history = run.result["loglik_history"]
        assert len(history) == 5
        assert history[-1] > history[0]

    def test_result_invariant_across_configurations(self, dataset):
        reference = None
        for n, c in INVARIANCE_CONFIGS:
            run = execute(make_app(), dataset, n, c)
            if reference is None:
                reference = run.result
            else:
                np.testing.assert_allclose(
                    run.result["means"], reference["means"], rtol=1e-6
                )
                np.testing.assert_allclose(
                    run.result["covariances"], reference["covariances"], rtol=1e-6
                )

    def test_recovers_planted_means(self, dataset):
        run = execute(make_app(iters=8), dataset, 2, 4)
        found = run.result["means"]
        for centre in dataset.meta["true_centers"]:
            nearest = np.min(np.linalg.norm(found - centre, axis=1))
            assert nearest < 1.0

    def test_covariances_positive_definite(self, dataset):
        run = execute(make_app(), dataset, 2, 4)
        for cov in run.result["covariances"]:
            eigvals = np.linalg.eigvalsh(cov)
            assert np.all(eigvals > 0)

    def test_weights_form_distribution(self, dataset):
        run = execute(make_app(), dataset, 2, 4)
        weights = run.result["weights"]
        assert np.all(weights >= 0)
        assert float(weights.sum()) == pytest.approx(1.0, abs=1e-9)


class TestEMModelClasses:
    def test_object_size_constant_across_configs(self, dataset):
        small = execute(make_app(), dataset, 1, 1)
        wide = execute(make_app(), dataset, 4, 16)
        assert (
            small.breakdown.max_reduction_object_bytes
            == wide.breakdown.max_reduction_object_bytes
        )

    def test_e_and_m_objects_have_expected_sizes(self):
        app = make_app()
        app.begin({"num_dims": 3})
        e_obj = app.make_local_object()
        assert app.object_nbytes(e_obj) == (3 * (3 + 1) + 1) * 8 + 8
        app._phase = "M"
        m_obj = app.make_local_object()
        assert app.object_nbytes(m_obj) == 3 * 9 * 8 + 8

    def test_flags(self):
        app = make_app()
        assert app.broadcasts_result is True
        assert app.multi_pass_hint is True


class TestEMValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            EMClustering(k=0)
        with pytest.raises(ConfigurationError):
            EMClustering(num_iterations=0)
