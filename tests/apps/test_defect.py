"""Tests for the molecular defect detection application."""

import pytest

from repro.apps.defect import DefectDetection, _signature
from repro.datagen.lattice import DEFECT_TEMPLATES, make_lattice_dataset
from repro.simgrid.errors import ConfigurationError

from tests.apps.conftest import INVARIANCE_CONFIGS, execute


@pytest.fixture(scope="module")
def dataset():
    return make_lattice_dataset(
        "df-test", nz=64, ny=12, nx=12, num_chunks=32, num_defects=10, seed=23
    )


def make_app():
    return DefectDetection()


class TestDefectCorrectness:
    def test_detects_all_planted_defects(self, dataset):
        run = execute(make_app(), dataset, 2, 4)
        assert run.result["count"] == len(dataset.meta["true_defects"])

    def test_signatures_match_planted_templates(self, dataset):
        run = execute(make_app(), dataset, 2, 4)
        planted = sorted(
            tuple(d["signature"]) for d in dataset.meta["true_defects"]
        )
        detected = sorted(tuple(d["signature"]) for d in run.result["defects"])
        assert detected == planted

    def test_result_invariant_across_configurations(self, dataset):
        reference = None
        for n, c in INVARIANCE_CONFIGS:
            run = execute(make_app(), dataset, n, c)
            summary = sorted(
                (d["anchor"], d["signature"]) for d in run.result["defects"]
            )
            if reference is None:
                reference = summary
            else:
                assert summary == reference

    def test_defects_join_across_slabs(self, dataset):
        """The di-vacancy-z template spans two z-layers; with 2-layer slabs
        some planted defect should straddle a cut eventually.  At minimum,
        joined results never double-count."""
        run = execute(make_app(), dataset, 4, 8)
        total_sites = sum(d["num_sites"] for d in run.result["defects"])
        expected_sites = sum(
            len(DEFECT_TEMPLATES[d["template"]])
            for d in dataset.meta["true_defects"]
        )
        assert total_sites == expected_sites

    def test_catalog_learns_unknown_shapes(self, dataset):
        app = make_app()
        run = execute(app, dataset, 1, 2)
        # seed catalog has 2 entries; planted set includes other templates
        assert run.result["catalog_size"] > 2

    def test_known_shapes_do_not_grow_catalog(self):
        ds = make_lattice_dataset(
            "df-known", nz=32, ny=10, nx=10, num_chunks=16, num_defects=0, seed=29
        )
        app = make_app()
        run = execute(app, ds, 1, 2)
        assert run.result["catalog_size"] == 2
        assert run.result["count"] == 0

    def test_class_ids_stable_for_same_signature(self, dataset):
        run = execute(make_app(), dataset, 2, 4)
        by_signature = {}
        for d in run.result["defects"]:
            by_signature.setdefault(d["signature"], set()).add(d["class_id"])
        for ids in by_signature.values():
            assert len(ids) == 1

    def test_threshold_from_metadata_wins(self, dataset):
        app = DefectDetection(threshold=99.0)
        app.begin(dict(dataset.meta))
        assert app.threshold == dataset.meta["detection_threshold"]


class TestDefectModelClasses:
    def test_object_size_scales_with_local_share(self, dataset):
        one = execute(make_app(), dataset, 1, 1)
        sixteen = execute(make_app(), dataset, 4, 16)
        assert (
            sixteen.breakdown.max_reduction_object_bytes
            < one.breakdown.max_reduction_object_bytes
        )

    def test_broadcasts_catalog(self, dataset):
        run = execute(make_app(), dataset, 2, 4)
        assert run.breakdown.metadata["broadcast_nbytes"] > 0

    def test_flags(self):
        app = make_app()
        assert app.broadcasts_result is True
        assert app.multi_pass_hint is False


class TestSignature:
    def test_translation_invariance(self):
        a = _signature([(3, 4, 5, 0), (4, 4, 5, 0)])
        b = _signature([(0, 0, 0, 0), (1, 0, 0, 0)])
        assert a == b

    def test_species_sensitivity(self):
        assert _signature([(0, 0, 0, 0)]) != _signature([(0, 0, 0, 1)])


class TestDefectValidation:
    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            DefectDetection(threshold=0.0)
