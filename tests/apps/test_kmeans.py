"""Tests for the k-means application."""

import numpy as np
import pytest

from repro.apps.kmeans import KMeansClustering
from repro.datagen.points import make_point_dataset
from repro.simgrid.errors import ConfigurationError

from tests.apps.conftest import INVARIANCE_CONFIGS, execute


@pytest.fixture(scope="module")
def dataset():
    return make_point_dataset(
        "km-test", num_points=2000, num_dims=3, num_centers=4, num_chunks=32, seed=11
    )


def make_app():
    return KMeansClustering(k=4, num_iterations=8, seed=5)


class TestKMeansCorrectness:
    def test_recovers_planted_centers(self, dataset):
        run = execute(make_app(), dataset, 2, 4)
        found = run.result["centers"]
        true = dataset.meta["true_centers"]
        # every true centre should have a found centre nearby
        for centre in true:
            nearest = np.min(np.linalg.norm(found - centre, axis=1))
            assert nearest < 1.0

    def test_result_invariant_across_configurations(self, dataset):
        reference = None
        for n, c in INVARIANCE_CONFIGS:
            run = execute(make_app(), dataset, n, c)
            centers = run.result["centers"]
            if reference is None:
                reference = centers
            else:
                np.testing.assert_allclose(centers, reference, rtol=1e-8)

    def test_matches_serial_reference(self, dataset):
        app = make_app()
        app.begin(dict(dataset.meta))
        serial = app.run_serial(
            [dataset.chunk_payload(i) for i in range(len(dataset))]
        )
        parallel = execute(make_app(), dataset, 4, 8).result
        np.testing.assert_allclose(
            serial["centers"], parallel["centers"], rtol=1e-8
        )

    def test_runs_fixed_iterations(self, dataset):
        run = execute(make_app(), dataset, 1, 2)
        assert run.result["iterations"] == 8
        assert run.breakdown.num_passes == 8

    def test_shift_history_decreases(self, dataset):
        run = execute(make_app(), dataset, 1, 2)
        shifts = run.result["shift_history"]
        assert shifts[-1] < shifts[0]


class TestKMeansModelClasses:
    def test_object_size_constant_in_everything(self, dataset):
        small = execute(make_app(), dataset, 1, 1)
        wide = execute(make_app(), dataset, 4, 16)
        assert (
            small.breakdown.max_reduction_object_bytes
            == wide.breakdown.max_reduction_object_bytes
        )

    def test_object_size_depends_on_k_and_d(self):
        app = KMeansClustering(k=4, num_iterations=1)
        app.begin({"num_dims": 3})
        obj = app.make_local_object()
        assert app.object_nbytes(obj) == 4 * (3 + 1) * 8 + 8

    def test_global_reduction_grows_with_nodes(self, dataset):
        narrow = execute(make_app(), dataset, 1, 2)
        wide = execute(make_app(), dataset, 1, 16)
        assert wide.breakdown.t_g > narrow.breakdown.t_g

    def test_broadcasts_and_caches(self):
        app = make_app()
        assert app.broadcasts_result is True
        assert app.multi_pass_hint is True


class TestKMeansValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            KMeansClustering(k=0)
        with pytest.raises(ConfigurationError):
            KMeansClustering(num_iterations=0)

    def test_empty_cluster_keeps_old_center(self, dataset):
        # k much larger than the planted centres guarantees empty clusters.
        app = KMeansClustering(k=32, num_iterations=2, seed=5)
        run = execute(app, dataset, 1, 2)
        assert np.all(np.isfinite(run.result["centers"]))
