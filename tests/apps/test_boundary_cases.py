"""Deliberate boundary-straddling cases for the scientific applications.

The figure tests use randomly placed features; these tests *construct*
features exactly on partition boundaries so the cross-partition joining
paths are exercised deterministically.
"""

import numpy as np
import pytest

from repro.apps.defect import DefectDetection
from repro.apps.vortex import VortexDetection
from repro.datagen.cfd import FieldDataset, generate_velocity_field
from repro.datagen.lattice import LatticeDataset

from tests.apps.conftest import execute


class TestVortexOnBoundary:
    def make_dataset(self, num_chunks):
        """One vortex centred exactly on a chunk boundary row."""
        ny, nx = 64, 64
        u, v, truth = generate_velocity_field(ny, nx, 0, seed=71)
        # Plant a synthetic swirl centred on row 32 (the 2-chunk boundary).
        yy, xx = np.meshgrid(
            np.arange(ny, dtype=np.float64),
            np.arange(nx, dtype=np.float64),
            indexing="ij",
        )
        dy, dx = yy - 32.0, xx - 32.0
        r2 = np.maximum(dy**2 + dx**2, 1e-9)
        swirl = 60.0 / (2.0 * np.pi * r2) * (1.0 - np.exp(-r2 / 16.0))
        u = (u + (-swirl * dy).astype(np.float32)).astype(np.float32)
        v = (v + (swirl * dx).astype(np.float32)).astype(np.float32)
        return FieldDataset("boundary-vx", u, v, num_chunks=num_chunks)

    @pytest.mark.parametrize("num_chunks", [2, 4, 8, 16])
    def test_single_vortex_survives_any_partitioning(self, num_chunks):
        dataset = self.make_dataset(num_chunks)
        run = execute(VortexDetection(), dataset, 1, min(num_chunks, 4))
        assert run.result["count"] == 1
        vortex = run.result["vortices"][0]
        assert vortex["ymin"] <= 32 <= vortex["ymax"]

    def test_fragment_count_tracks_partitioning(self):
        coarse = execute(VortexDetection(), self.make_dataset(2), 1, 2)
        fine = execute(VortexDetection(), self.make_dataset(16), 1, 4)
        assert (
            fine.result["vortices"][0]["num_fragments"]
            >= coarse.result["vortices"][0]["num_fragments"]
        )

    def test_area_independent_of_partitioning(self):
        areas = set()
        for chunks in (2, 4, 8):
            run = execute(VortexDetection(), self.make_dataset(chunks), 1, 2)
            areas.add(run.result["vortices"][0]["area"])
        assert len(areas) == 1


class TestDefectOnBoundary:
    def make_dataset(self, anchor_z, num_chunks=8):
        """A 2-layer defect anchored at ``anchor_z`` in a 16-layer lattice."""
        nz, ny, nx = 16, 8, 8
        rng = np.random.default_rng(73)
        displacement = np.abs(rng.normal(0.0, 0.02, size=(nz, ny, nx))).astype(
            np.float32
        )
        species = np.zeros((nz, ny, nx), dtype=np.int8)
        for dz in (0, 1):  # the di-vacancy-z template
            displacement[anchor_z + dz, 4, 4] = 0.7
        return LatticeDataset(
            "boundary-df",
            displacement,
            species,
            num_chunks=num_chunks,
            meta={"detection_threshold": 0.3},
        )

    @pytest.mark.parametrize("anchor_z", [1, 5, 7, 9, 13])
    def test_z_spanning_defect_joined_exactly_once(self, anchor_z):
        """With 2-layer slabs, odd anchors straddle a cut; the join must
        produce exactly one 2-site defect either way."""
        dataset = self.make_dataset(anchor_z)
        run = execute(DefectDetection(), dataset, 2, 4)
        assert run.result["count"] == 1
        defect = run.result["defects"][0]
        assert defect["num_sites"] == 2
        assert defect["anchor"] == (anchor_z, 4, 4)

    def test_straddling_defect_has_two_fragments(self):
        run = execute(DefectDetection(), self.make_dataset(anchor_z=7), 2, 4)
        assert run.result["defects"][0]["num_fragments"] == 2

    def test_interior_defect_has_one_fragment(self):
        run = execute(DefectDetection(), self.make_dataset(anchor_z=4), 2, 4)
        assert run.result["defects"][0]["num_fragments"] == 1

    def test_signature_matches_template_regardless_of_cut(self):
        from repro.datagen.lattice import DEFECT_TEMPLATES, template_signature

        expected = template_signature(DEFECT_TEMPLATES["di-vacancy-z"])
        for anchor in (4, 7):
            run = execute(DefectDetection(), self.make_dataset(anchor), 1, 2)
            assert run.result["defects"][0]["signature"] == expected
