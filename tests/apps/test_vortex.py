"""Tests for the vortex detection application."""

import numpy as np
import pytest

from repro.apps.vortex import VortexDetection
from repro.datagen.cfd import make_field_dataset
from repro.simgrid.errors import ConfigurationError

from tests.apps.conftest import INVARIANCE_CONFIGS, execute


@pytest.fixture(scope="module")
def dataset():
    return make_field_dataset(
        "vx-test", ny=192, nx=128, num_chunks=32, num_vortices=5, seed=21
    )


def make_app():
    return VortexDetection(vort_threshold=0.3, min_area=4)


class TestVortexCorrectness:
    def test_detects_planted_vortices(self, dataset):
        run = execute(make_app(), dataset, 2, 4)
        assert run.result["count"] == len(dataset.meta["true_vortices"])

    def test_detected_regions_near_truth(self, dataset):
        run = execute(make_app(), dataset, 2, 4)
        for truth in dataset.meta["true_vortices"]:
            hits = [
                v
                for v in run.result["vortices"]
                if v["ymin"] - 2 <= truth["cy"] <= v["ymax"] + 2
                and v["xmin"] - 2 <= truth["cx"] <= v["xmax"] + 2
            ]
            assert hits, f"no detected region covers vortex at "\
                f"({truth['cy']:.0f}, {truth['cx']:.0f})"

    def test_swirl_sign_matches_truth(self, dataset):
        run = execute(make_app(), dataset, 1, 1)
        # Match regions to planted vortices by containment and compare signs.
        for truth in dataset.meta["true_vortices"]:
            for v in run.result["vortices"]:
                if (
                    v["ymin"] <= truth["cy"] <= v["ymax"]
                    and v["xmin"] <= truth["cx"] <= v["xmax"]
                ):
                    assert v["sign"] == truth["sign"]

    def test_result_invariant_across_configurations(self, dataset):
        reference = None
        for n, c in INVARIANCE_CONFIGS:
            run = execute(make_app(), dataset, n, c)
            summary = [
                (v["ymin"], v["xmin"], v["area"], round(v["strength"], 6))
                for v in run.result["vortices"]
            ]
            if reference is None:
                reference = summary
            else:
                assert summary == reference

    def test_fragments_join_across_blocks(self, dataset):
        """With 32 row blocks of 6 rows each, every planted vortex spans
        several blocks, so the joined regions must merge fragments."""
        run = execute(make_app(), dataset, 2, 8)
        assert any(v["num_fragments"] > 1 for v in run.result["vortices"])

    def test_sorted_by_strength(self, dataset):
        run = execute(make_app(), dataset, 1, 2)
        strengths = [abs(v["strength"]) for v in run.result["vortices"]]
        assert strengths == sorted(strengths, reverse=True)

    def test_denoising_drops_small_regions(self, dataset):
        run = execute(VortexDetection(min_area=4), dataset, 1, 1)
        assert all(v["area"] >= 4 for v in run.result["vortices"])

    def test_calm_field_detects_nothing(self):
        calm = make_field_dataset(
            "calm", ny=64, nx=64, num_chunks=16, num_vortices=0, seed=22
        )
        run = execute(make_app(), calm, 1, 2)
        assert run.result["count"] == 0


class TestVortexModelClasses:
    def test_object_size_scales_with_local_share(self, dataset):
        one = execute(make_app(), dataset, 1, 1)
        sixteen = execute(make_app(), dataset, 4, 16)
        # max per-node object shrinks roughly with the per-node data share
        assert (
            sixteen.breakdown.max_reduction_object_bytes
            < one.breakdown.max_reduction_object_bytes
        )

    def test_global_reduction_roughly_constant_in_nodes(self, dataset):
        two = execute(make_app(), dataset, 1, 2)
        sixteen = execute(make_app(), dataset, 8, 16)
        assert sixteen.breakdown.t_g == pytest.approx(
            two.breakdown.t_g, rel=0.5
        )

    def test_flags(self):
        app = make_app()
        assert app.broadcasts_result is False
        assert app.multi_pass_hint is False


class TestVortexValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            VortexDetection(vort_threshold=0.0)
        with pytest.raises(ConfigurationError):
            VortexDetection(min_area=0)
