"""Tests for the kNN search application."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.knn import KNNCandidates, KNNSearch
from repro.datagen.points import make_training_dataset
from repro.simgrid.errors import ConfigurationError

from tests.apps.conftest import INVARIANCE_CONFIGS, execute


@pytest.fixture(scope="module")
def dataset():
    return make_training_dataset(
        "knn-test", num_points=2000, num_dims=3, num_classes=5, num_chunks=32, seed=17
    )


def make_app(k=6, q=16):
    return KNNSearch(k=k, num_queries=q, seed=19)


def brute_force(dataset, app):
    """Exact reference answer computed with a single global scan."""
    records = dataset.records.astype(np.float64)
    features, labels = records[:, :3], records[:, 3]
    out_d = np.empty((app.num_queries, app.k))
    out_l = np.empty((app.num_queries, app.k))
    for i, q in enumerate(app.queries):
        d2 = ((features - q) ** 2).sum(axis=1)
        order = np.argsort(d2, kind="stable")[: app.k]
        out_d[i] = d2[order]
        out_l[i] = labels[order]
    return out_d, out_l


class TestKNNCorrectness:
    def test_matches_brute_force(self, dataset):
        app = make_app()
        run = execute(app, dataset, 2, 4)
        expected_d, _ = brute_force(dataset, app)
        np.testing.assert_allclose(
            run.result["neighbors_dists"] ** 2, expected_d, rtol=1e-5, atol=1e-8
        )

    def test_result_invariant_across_configurations(self, dataset):
        reference = None
        for n, c in INVARIANCE_CONFIGS:
            run = execute(make_app(), dataset, n, c)
            dists = run.result["neighbors_dists"]
            if reference is None:
                reference = dists
            else:
                np.testing.assert_allclose(dists, reference, rtol=1e-6)

    def test_single_pass(self, dataset):
        run = execute(make_app(), dataset, 1, 2)
        assert run.breakdown.num_passes == 1

    def test_predictions_are_valid_classes(self, dataset):
        run = execute(make_app(), dataset, 2, 4)
        preds = run.result["predictions"]
        assert np.all((preds >= 0) & (preds < 5))


class TestKNNCandidates:
    def test_empty_is_padded(self):
        cand = KNNCandidates.empty(3, 4)
        assert np.all(np.isinf(cand.dists))
        assert np.all(cand.labels == -1.0)

    def test_absorb_keeps_smallest(self):
        cand = KNNCandidates.empty(1, 2)
        cand.absorb(np.array([[3.0, 1.0, 2.0]]), np.array([[30.0, 10.0, 20.0]]))
        np.testing.assert_allclose(cand.dists, [[1.0, 2.0]])
        np.testing.assert_allclose(cand.labels, [[10.0, 20.0]])

    @settings(max_examples=25)
    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    def test_merge_order_does_not_matter(self, dists):
        """The min-k candidate set is a semilattice: splitting the stream
        any way and merging yields the same result as one batch."""
        k = 4
        labels = np.arange(len(dists), dtype=np.float64)
        d = np.asarray(dists)[None, :]
        l = labels[None, :]

        batch = KNNCandidates.empty(1, k)
        batch.absorb(d, l)

        split = KNNCandidates.empty(1, k)
        mid = len(dists) // 2
        if mid:
            split.absorb(d[:, :mid], l[:, :mid])
        split.absorb(d[:, mid:], l[:, mid:])

        np.testing.assert_allclose(split.dists, batch.dists)


class TestKNNModelClasses:
    def test_object_size_constant(self, dataset):
        small = execute(make_app(), dataset, 1, 1)
        wide = execute(make_app(), dataset, 4, 16)
        assert (
            small.breakdown.max_reduction_object_bytes
            == wide.breakdown.max_reduction_object_bytes
        )

    def test_object_size_formula(self):
        app = make_app(k=6, q=16)
        app.begin({"num_dims": 3})
        obj = app.make_local_object()
        assert app.object_nbytes(obj) == 16 * 6 * 8 * 2 + 8

    def test_flags(self):
        app = make_app()
        assert app.broadcasts_result is False
        assert app.multi_pass_hint is False


class TestKNNValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            KNNSearch(k=0)
        with pytest.raises(ConfigurationError):
            KNNSearch(num_queries=0)
