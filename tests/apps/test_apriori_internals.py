"""Unit tests for apriori's candidate generation (apriori-gen)."""

import pytest

from repro.apps.apriori import AprioriMining


def gen(survivors):
    app = AprioriMining(min_support=0.1, max_k=5)
    return app._generate_candidates(sorted(survivors))


class TestAprioriGen:
    def test_join_same_prefix_pairs(self):
        # {1,2} and {1,3} join to {1,2,3} — valid because all 2-subsets
        # ({1,2}, {1,3}, {2,3}) are frequent.
        assert gen([(1, 2), (1, 3), (2, 3)]) == [(1, 2, 3)]

    def test_prune_removes_candidates_with_infrequent_subsets(self):
        # {2,3} is missing, so {1,2,3} must be pruned.
        assert gen([(1, 2), (1, 3)]) == []

    def test_different_prefixes_do_not_join(self):
        assert gen([(1, 2), (3, 4)]) == []

    def test_singletons_join_freely(self):
        # All 1-subsets of any pair are frequent by construction.
        assert gen([(1,), (2,), (3,)]) == [(1, 2), (1, 3), (2, 3)]

    def test_empty_input(self):
        assert gen([]) == []

    def test_three_to_four(self):
        survivors = [(1, 2, 3), (1, 2, 4), (1, 3, 4), (2, 3, 4)]
        assert gen(survivors) == [(1, 2, 3, 4)]

    def test_candidates_sorted_and_unique(self):
        candidates = gen([(1,), (2,), (3,), (4,)])
        assert candidates == sorted(set(candidates))

    def test_result_tuples_are_ordered(self):
        for candidate in gen([(1,), (5,), (3,)]):
            assert list(candidate) == sorted(candidate)
