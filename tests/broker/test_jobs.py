"""Broker jobs and workload-document parsing."""

import pytest

from repro.broker.jobs import (
    BrokerJob,
    load_workload_document,
    parse_workload_document,
    sorted_jobs,
)
from repro.simgrid.errors import ConfigurationError

VALID_DOC = {
    "name": "demo",
    "allocations": [[1, 2]],
    "sites": [
        {
            "name": "repo",
            "kind": "repository",
            "cluster": "pentium-myrinet",
            "nodes": 8,
        },
        {
            "name": "hpc",
            "kind": "compute",
            "cluster": "opteron-infiniband",
            "nodes": 8,
        },
    ],
    "links": [{"a": "repo", "b": "hpc", "bw": 1.0e6}],
    "jobs": [{"id": "j0", "workload": "knn", "size": "350 MB"}],
}


class TestBrokerJob:
    def test_defaults(self):
        job = BrokerJob(job_id="j0", workload="knn")
        assert job.arrival == 0.0
        assert job.deadline is None
        assert job.priority == 0
        assert job.dataset_key == "knn"

    def test_dataset_key_includes_size(self):
        job = BrokerJob(job_id="j0", workload="knn", size="350 MB")
        assert job.dataset_key == "knn@350 MB"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BrokerJob(job_id="", workload="knn")
        with pytest.raises(ConfigurationError):
            BrokerJob(job_id="j0", workload="knn", arrival=-1.0)
        with pytest.raises(ConfigurationError):
            BrokerJob(job_id="j0", workload="knn", arrival=1.0, deadline=0.5)

    def test_sorted_jobs_orders_by_arrival_then_id(self):
        jobs = [
            BrokerJob(job_id="b", workload="knn", arrival=1.0),
            BrokerJob(job_id="a", workload="knn", arrival=1.0),
            BrokerJob(job_id="c", workload="knn", arrival=0.5),
        ]
        assert [j.job_id for j in sorted_jobs(jobs)] == ["c", "a", "b"]


class TestParseDocument:
    def test_valid_document(self):
        doc = parse_workload_document(VALID_DOC)
        assert doc.name == "demo"
        assert doc.allocations == [(1, 2)]
        assert doc.jobs[0].dataset_key == "knn@350 MB"
        topology = doc.build_topology()
        assert {s.name for s in topology.sites()} == {"repo", "hpc"}

    def test_site_requires_fields(self):
        doc = dict(VALID_DOC, sites=[{"name": "x", "kind": "compute"}])
        with pytest.raises(ConfigurationError, match="cluster"):
            parse_workload_document(doc)

    def test_unknown_site_kind(self):
        bad = dict(
            VALID_DOC,
            sites=[
                {"name": "x", "kind": "gateway", "cluster": "pentium-myrinet"}
            ],
        )
        with pytest.raises(ConfigurationError, match="unknown kind"):
            parse_workload_document(bad)

    def test_unknown_cluster_fails_at_build(self):
        doc = parse_workload_document(
            dict(
                VALID_DOC,
                sites=[
                    {"name": "x", "kind": "compute", "cluster": "cray"},
                    VALID_DOC["sites"][0],
                ],
            )
        )
        with pytest.raises(ConfigurationError, match="unknown cluster"):
            doc.build_topology()

    def test_duplicate_job_ids(self):
        bad = dict(
            VALID_DOC,
            jobs=[
                {"id": "j0", "workload": "knn"},
                {"id": "j0", "workload": "kmeans"},
            ],
        )
        with pytest.raises(ConfigurationError, match="duplicate job id"):
            parse_workload_document(bad)

    def test_needs_jobs_or_stream(self):
        bad = {k: v for k, v in VALID_DOC.items() if k != "jobs"}
        with pytest.raises(ConfigurationError, match="either 'jobs' or"):
            parse_workload_document(bad)

    def test_jobs_and_stream_are_exclusive(self):
        bad = dict(VALID_DOC, stream={"count": 5})
        with pytest.raises(ConfigurationError, match="not both"):
            parse_workload_document(bad)

    def test_missing_sites(self):
        with pytest.raises(ConfigurationError, match="'sites'"):
            parse_workload_document({"jobs": []})


class TestLoadDocument:
    def test_load_from_file(self, tmp_path):
        import json

        path = tmp_path / "workload.json"
        path.write_text(json.dumps(VALID_DOC))
        doc = load_workload_document(path)
        assert doc.name == "demo"

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no broker workload"):
            load_workload_document(tmp_path / "nope.json")
