"""Discrete-event primitives: queue ordering and busy-window accounting."""

import pytest

from repro.broker.events import (
    Event,
    EventKind,
    EventQueue,
    GridLedger,
    NodeWindow,
    SitePool,
)
from repro.simgrid.errors import ConfigurationError


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(Event(2.0, EventKind.ARRIVAL, "late"))
        q.push(Event(1.0, EventKind.ARRIVAL, "early"))
        assert q.pop().payload == "early"
        assert q.pop().payload == "late"

    def test_completion_drains_before_arrival_at_equal_time(self):
        # Nodes freed at t must be visible to a job arriving at t.
        q = EventQueue()
        q.push(Event(1.0, EventKind.ARRIVAL, "arrival"))
        q.push(Event(1.0, EventKind.COMPLETION, "completion"))
        assert q.pop().payload == "completion"
        assert q.pop().payload == "arrival"

    def test_ties_break_on_insertion_order(self):
        q = EventQueue()
        q.push(Event(1.0, EventKind.ARRIVAL, "first"))
        q.push(Event(1.0, EventKind.ARRIVAL, "second"))
        assert q.pop().payload == "first"
        assert q.pop().payload == "second"

    def test_rejects_negative_time(self):
        with pytest.raises(ConfigurationError):
            EventQueue().push(Event(-0.1, EventKind.ARRIVAL))

    def test_pop_empty_raises(self):
        with pytest.raises(ConfigurationError):
            EventQueue().pop()

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(Event(0.0, EventKind.ARRIVAL))
        assert q and len(q) == 1


class TestSitePool:
    def test_acquires_lowest_free_indices(self):
        pool = SitePool("site", 4)
        assert pool.acquire(2, "j1", 0.0, 1.0) == (0, 1)
        assert pool.acquire(1, "j2", 0.0, 1.0) == (2,)
        assert pool.free_count == 1

    def test_release_returns_nodes(self):
        pool = SitePool("site", 4)
        taken = pool.acquire(3, "j1", 0.0, 1.0)
        pool.release(taken)
        assert pool.free_count == 4
        # freed nodes are reused lowest-first
        assert pool.acquire(2, "j2", 1.0, 2.0) == (0, 1)

    def test_acquire_beyond_capacity_raises(self):
        pool = SitePool("site", 2)
        pool.acquire(2, "j1", 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            pool.acquire(1, "j2", 0.0, 1.0)

    def test_release_of_free_node_raises(self):
        pool = SitePool("site", 2)
        with pytest.raises(ConfigurationError):
            pool.release((0,))

    def test_windows_record_reservations(self):
        pool = SitePool("site", 4)
        pool.acquire(2, "j1", 0.0, 1.5)
        assert pool.windows == [
            NodeWindow("site", 0, 0.0, 1.5, "j1"),
            NodeWindow("site", 1, 0.0, 1.5, "j1"),
        ]

    def test_empty_or_zero_length_reservation_raises(self):
        pool = SitePool("site", 2)
        with pytest.raises(ConfigurationError):
            pool.acquire(0, "j1", 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            pool.acquire(1, "j1", 1.0, 1.0)

    def test_fail_and_repair_bracket_an_outage_record(self):
        pool = SitePool("site", 4)
        pool.fail(1.0)
        assert pool.down
        pool.repair(2.5)
        assert not pool.down
        (outage,) = pool.outages
        assert (outage.start, outage.end, outage.nodes) == (1.0, 2.5, None)
        with pytest.raises(ConfigurationError):
            pool.repair(3.0)

    def test_repair_closes_the_site_record_not_a_later_shrink(self):
        # A shrink during an outage appends its own record *after* the
        # open whole-site one; repair must close the site record and
        # leave the shrink record (and its node list) intact.
        pool = SitePool("site", 4)
        pool.fail(1.0)
        victims = pool.shrink(2, 1.2)
        assert victims == (3, 2)
        pool.restore(victims, 1.4)
        pool.repair(2.0)
        site_record, shrink_record = pool.outages
        assert (site_record.start, site_record.end) == (1.0, 2.0)
        assert site_record.nodes is None
        assert (shrink_record.start, shrink_record.end) == (1.2, 1.4)
        assert shrink_record.nodes == (2, 3)


class TestNodeWindow:
    def test_overlap_same_node(self):
        a = NodeWindow("s", 0, 0.0, 1.0, "j1")
        b = NodeWindow("s", 0, 0.5, 1.5, "j2")
        assert a.overlaps(b) and b.overlaps(a)

    def test_back_to_back_windows_do_not_overlap(self):
        a = NodeWindow("s", 0, 0.0, 1.0, "j1")
        b = NodeWindow("s", 0, 1.0, 2.0, "j2")
        assert not a.overlaps(b)

    def test_different_node_or_site_do_not_overlap(self):
        a = NodeWindow("s", 0, 0.0, 1.0, "j1")
        assert not a.overlaps(NodeWindow("s", 1, 0.0, 1.0, "j2"))
        assert not a.overlaps(NodeWindow("t", 0, 0.0, 1.0, "j2"))


class TestGridLedger:
    def test_fits_now_distinct_sites(self):
        ledger = GridLedger({"a": 2, "b": 4})
        assert ledger.fits_now("a", "b", 2, 4)
        assert not ledger.fits_now("a", "b", 3, 1)

    def test_fits_now_same_site_sums_demand(self):
        ledger = GridLedger({"a": 4})
        assert ledger.fits_now("a", "a", 2, 2)
        assert not ledger.fits_now("a", "a", 2, 3)

    def test_unknown_site_raises(self):
        with pytest.raises(ConfigurationError):
            GridLedger({"a": 2}).pool("b")

    def test_all_windows_aggregates_sites(self):
        ledger = GridLedger({"a": 2, "b": 2})
        ledger.pool("b").acquire(1, "j1", 0.0, 1.0)
        ledger.pool("a").acquire(1, "j1", 0.0, 1.0)
        assert [w.site for w in ledger.all_windows()] == ["a", "b"]
