"""Property suite: the indexed engine is byte-identical to the linear one.

The broker scale-up (DESIGN.md §16) swapped the linear event loop for an
indexed-heap engine.  The contract is not "close" but **identical**: for
any seeded trace, policy, and survivable grid-fault timeline, both
engines must serialize to the same :class:`BrokerReport` bytes.  Runs
are exercised through randomized trace specs (per-VO mixes, deadlines,
priorities) and randomized chaos timelines.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.broker import GridBroker
from repro.broker.report import BrokerReport
from repro.faults.chaos import ChaosSpec, chaos_timeline
from repro.workloads.streams import stream_horizon
from repro.workloads.traces import (
    DistributionSpec,
    TraceSpec,
    TraceWorkload,
    VoSpec,
)

from tests.broker.conftest import small_grid

POLICIES = ["min-completion", "min-cost", "deadline-aware", "round-robin"]

#: One shared broker: caches are read-only between runs, each run gets a
#: fresh ledger/queue, so property examples stay fast.
BROKER = GridBroker(small_grid(), [(1, 2), (2, 4)])


def make_jobs(seed, count=24, deadline_fraction=0.0):
    spec = TraceSpec(
        name="prop",
        count=count,
        seed=seed,
        vos=(
            VoSpec(
                name="alpha",
                weight=2.0,
                interarrival=DistributionSpec.weibull(0.7, 0.05),
                mix=(("kmeans", None, 2.0), ("knn", "350 MB", 1.0)),
                deadline_fraction=deadline_fraction,
                priorities=(0, 1),
                priority_weights=(3.0, 1.0),
            ),
            VoSpec(
                name="beta",
                interarrival=DistributionSpec.lognormal(-3.0, 0.8),
                mix=(("vortex", None, 1.0), ("kmeans", "700 MB", 1.0)),
            ),
        ),
    )
    return list(
        TraceWorkload.from_spec(
            spec, baselines=BROKER.baseline_estimate
        ).jobs
    )


def report_bytes(jobs, policy, tmp_path, engine, faults=None):
    run = BROKER.run(jobs, policy, faults=faults, engine=engine)
    path = BrokerReport(name="prop", runs=(run,)).save(
        tmp_path / f"{engine}.json"
    )
    return path.read_bytes()


@pytest.fixture(scope="module")
def report_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("engine-prop")


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    policy=st.sampled_from(POLICIES),
    deadline_fraction=st.sampled_from([0.0, 0.5]),
)
def test_engines_identical_fault_free(
    report_dir, seed, policy, deadline_fraction
):
    jobs = make_jobs(seed, deadline_fraction=deadline_fraction)
    assert report_bytes(jobs, policy, report_dir, "linear") == report_bytes(
        jobs, policy, report_dir, "indexed"
    )


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    chaos_seed=st.integers(0, 2**31),
    policy=st.sampled_from(POLICIES),
)
def test_engines_identical_under_grid_faults(
    report_dir, seed, chaos_seed, policy
):
    jobs = make_jobs(seed)
    faults = chaos_timeline(
        chaos_seed,
        ChaosSpec(horizon=stream_horizon(jobs), max_outages=1),
        BROKER.topology,
        [job.job_id for job in jobs],
    )
    linear = report_bytes(jobs, policy, report_dir, "linear", faults=faults)
    indexed = report_bytes(
        jobs, policy, report_dir, "indexed", faults=faults
    )
    assert linear == indexed
