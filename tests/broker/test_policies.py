"""Placement policies: choice behaviour, admission, round-robin rotation."""

import pytest

from repro.broker.jobs import BrokerJob
from repro.broker.policies import (
    POLICY_NAMES,
    DeadlineAwarePolicy,
    MinCompletionPolicy,
    MinCostPolicy,
    PlacementOption,
    PlacementPolicy,
    Rejection,
    RoundRobinPolicy,
    make_policy,
)
from repro.core.models import PredictedBreakdown
from repro.core.selection import SelectionCandidate
from repro.simgrid.errors import ConfigurationError


def option(
    compute_site: str,
    total: float,
    *,
    replica_site: str = "repo",
    data_nodes: int = 1,
    compute_nodes: int = 2,
) -> PlacementOption:
    prediction = PredictedBreakdown(
        t_disk=0.2 * total, t_network=0.3 * total, t_compute=0.5 * total
    )
    candidate = SelectionCandidate(
        replica_site=replica_site,
        compute_site=compute_site,
        data_nodes=data_nodes,
        compute_nodes=compute_nodes,
        bandwidth=1.0e6,
        prediction=prediction,
    )
    return PlacementOption(
        candidate=candidate, raw=prediction, calibrated=prediction
    )


JOB = BrokerJob(job_id="j1", workload="knn")


class TestMinCompletion:
    def test_picks_smallest_predicted_total(self):
        options = [option("slow", 2.0), option("fast", 1.0)]
        assert MinCompletionPolicy().choose(JOB, options, 0.0) is options[1]

    def test_tie_breaks_deterministically(self):
        options = [option("b", 1.0), option("a", 1.0)]
        assert MinCompletionPolicy().choose(JOB, options, 0.0) is options[1]


class TestMinCost:
    def test_prefers_fewer_node_hours(self):
        # 3 nodes x 1.2s = 3.6 node-seconds beats 6 nodes x 1.0s = 6.0.
        cheap = option("a", 1.2, data_nodes=1, compute_nodes=2)
        fast = option("b", 1.0, data_nodes=2, compute_nodes=4)
        assert MinCostPolicy().choose(JOB, [fast, cheap], 0.0) is cheap


class TestDeadlineAware:
    def test_admits_without_deadline(self):
        policy = DeadlineAwarePolicy()
        assert policy.admit(JOB, [option("a", 5.0)], 0.0) is None

    def test_rejects_unmeetable_deadline_at_admission(self):
        job = BrokerJob(job_id="j1", workload="knn", deadline=1.0)
        refusal = DeadlineAwarePolicy().admit(job, [option("a", 5.0)], 0.0)
        assert isinstance(refusal, Rejection)
        assert refusal.code == "deadline-unmeetable"

    def test_admits_meetable_deadline(self):
        job = BrokerJob(job_id="j1", workload="knn", deadline=2.0)
        assert DeadlineAwarePolicy().admit(job, [option("a", 1.5)], 0.0) is None

    def test_rejects_when_queue_wait_ate_the_slack(self):
        job = BrokerJob(job_id="j1", workload="knn", deadline=2.0)
        decision = DeadlineAwarePolicy().choose(job, [option("a", 1.5)], 1.0)
        assert isinstance(decision, Rejection)
        assert decision.code == "deadline-miss-predicted"

    def test_picks_cheapest_meeting_option(self):
        job = BrokerJob(job_id="j1", workload="knn", deadline=3.0)
        # 6 nodes x 1.0s = 6.0 node-seconds vs 3 nodes x 1.2s = 3.6;
        # the 5.0s option misses the deadline and is filtered out.
        fast_costly = option("a", 1.0, data_nodes=2, compute_nodes=4)
        slow_cheap = option("b", 1.2, data_nodes=1, compute_nodes=2)
        too_slow = option("c", 5.0, data_nodes=1, compute_nodes=2)
        decision = DeadlineAwarePolicy().choose(
            job, [fast_costly, slow_cheap, too_slow], 0.5
        )
        assert decision is slow_cheap

    def test_no_deadline_falls_back_to_min_completion(self):
        options = [option("slow", 2.0), option("fast", 1.0)]
        assert DeadlineAwarePolicy().choose(JOB, options, 0.0) is options[1]


class TestRoundRobin:
    def test_rotates_over_compute_sites(self):
        policy = RoundRobinPolicy(["a", "b"])
        options = [option("a", 1.0), option("b", 9.0)]
        assert policy.choose(JOB, options, 0.0).compute_site == "a"
        assert policy.choose(JOB, options, 0.0).compute_site == "b"
        assert policy.choose(JOB, options, 0.0).compute_site == "a"

    def test_skips_sites_without_options(self):
        policy = RoundRobinPolicy(["a", "b"])
        only_b = [option("b", 9.0)]
        assert policy.choose(JOB, only_b, 0.0).compute_site == "b"
        # pointer advanced past b; a full rotation still finds b again
        assert policy.choose(JOB, only_b, 0.0).compute_site == "b"

    def test_picks_smallest_allocation_not_fastest(self):
        policy = RoundRobinPolicy(["a"])
        fast_big = option("a", 0.5, data_nodes=2, compute_nodes=4)
        slow_small = option("a", 5.0, data_nodes=1, compute_nodes=2)
        assert policy.choose(JOB, [fast_big, slow_small], 0.0) is slow_small

    def test_needs_compute_sites(self):
        with pytest.raises(ConfigurationError):
            RoundRobinPolicy([])


class TestScalarFastPath:
    """choose_index must mirror choose exactly — same winner, same refusal.

    The indexed engine's fault-free dispatch scores candidates with bare
    calibrated totals and only materializes the winning option, so any
    drift between the two code paths would break the engines'
    byte-identity (also guarded end-to-end by the equivalence property
    suite).
    """

    def _split(self, options):
        candidates = [o.candidate for o in options]
        totals = [o.predicted_total for o in options]
        return candidates, totals

    @pytest.mark.parametrize(
        "policy_name", ["min-completion", "min-cost", "deadline-aware"]
    )
    def test_matches_choose_on_fault_free_options(self, policy_name):
        options = [
            option("b", 1.0, data_nodes=2, compute_nodes=4),
            option("a", 1.2, data_nodes=1, compute_nodes=2),
            option("c", 5.0, data_nodes=1, compute_nodes=2),
            option("a", 1.2, data_nodes=2, compute_nodes=4),
        ]
        policy = make_policy(policy_name, ["a", "b", "c"])
        assert policy.scalar_choice
        chosen = policy.choose(JOB, options, 0.5)
        candidates, totals = self._split(options)
        index = policy.choose_index(JOB, candidates, totals, 0.5)
        assert options[index] is chosen

    def test_deadline_rejection_is_identical(self):
        job = BrokerJob(job_id="j1", workload="knn", deadline=2.0)
        options = [option("a", 1.5), option("b", 1.8)]
        policy = DeadlineAwarePolicy()
        slow = policy.choose(job, options, 1.0)
        candidates, totals = self._split(options)
        fast = policy.choose_index(job, candidates, totals, 1.0)
        assert isinstance(slow, Rejection) and isinstance(fast, Rejection)
        assert fast == slow

    def test_deadline_choose_index_filters_to_meeting(self):
        job = BrokerJob(job_id="j1", workload="knn", deadline=3.0)
        fast_costly = option("a", 1.0, data_nodes=2, compute_nodes=4)
        slow_cheap = option("b", 1.2, data_nodes=1, compute_nodes=2)
        too_slow = option("c", 5.0, data_nodes=1, compute_nodes=2)
        options = [fast_costly, slow_cheap, too_slow]
        candidates, totals = self._split(options)
        index = DeadlineAwarePolicy().choose_index(
            job, candidates, totals, 0.5
        )
        assert options[index] is slow_cheap

    def test_round_robin_rotation_parity(self):
        """Two instances fed the same stream stay in lockstep."""
        slow = RoundRobinPolicy(["a", "b"])
        fast = RoundRobinPolicy(["a", "b"])
        assert not RoundRobinPolicy.needs_totals
        streams = [
            [option("a", 1.0), option("b", 9.0)],
            [option("b", 9.0)],
            [option("a", 1.0), option("b", 9.0)],
            [
                option("a", 0.5, data_nodes=2, compute_nodes=4),
                option("a", 5.0, data_nodes=1, compute_nodes=2),
            ],
        ]
        for options in streams:
            chosen = slow.choose(JOB, options, 0.0)
            candidates = [o.candidate for o in options]
            index = fast.choose_index(JOB, candidates, [], 0.0)
            assert options[index] is chosen
            assert fast._next == slow._next

    def test_base_policy_has_no_fast_path(self):
        class Custom(PlacementPolicy):
            name = "custom"

            def choose(self, job, options, now):
                return options[0]

        policy = Custom()
        assert not policy.scalar_choice
        with pytest.raises(ConfigurationError):
            policy.choose_index(JOB, [], [], 0.0)


class TestFactory:
    def test_makes_every_named_policy(self):
        for name in POLICY_NAMES:
            assert make_policy(name, ["a"]).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            make_policy("random", ["a"])
