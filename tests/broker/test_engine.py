"""The broker event loop: accounting, admission, and scheduling properties."""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.broker import BrokerJob, GridBroker, parse_workload_document
from repro.broker.engine import ActualRun
from repro.broker.report import _run_to_dict
from repro.simgrid.errors import ConfigurationError
from repro.simgrid.topology import GridTopology, SiteKind
from repro.workloads.clusters import pentium_myrinet_cluster

from tests.broker.conftest import small_grid


class TestConstruction:
    def test_needs_compute_and_repository_sites(self):
        t = GridTopology()
        t.add_site("r", SiteKind.REPOSITORY, pentium_myrinet_cluster())
        with pytest.raises(ConfigurationError):
            GridBroker(t, [(1, 2)])

    def test_needs_allocations(self, grid):
        with pytest.raises(ConfigurationError):
            GridBroker(grid, [])

    def test_run_needs_jobs(self, broker):
        with pytest.raises(ConfigurationError):
            broker.run([])


class TestEventLoop:
    def test_every_job_placed_exactly_once(self, broker):
        jobs = [
            BrokerJob(job_id=f"j{i}", workload="kmeans", arrival=0.02 * i)
            for i in range(6)
        ]
        run = broker.run(jobs, "min-completion")
        assert sorted(p.job_id for p in run.placements) == sorted(
            j.job_id for j in jobs
        )
        assert run.rejections == ()

    def test_wait_realized_when_grid_saturated(self, broker):
        # One-node compute site: the second job must wait for the first.
        t = GridTopology()
        t.add_site(
            "repo", SiteKind.REPOSITORY, pentium_myrinet_cluster(num_nodes=2)
        )
        t.add_site(
            "hpc", SiteKind.COMPUTE, pentium_myrinet_cluster(num_nodes=1)
        )
        t.connect("repo", "hpc", bw=2.0e6)
        tight = GridBroker(t, [(1, 1)])
        jobs = [
            BrokerJob(job_id="j0", workload="kmeans", arrival=0.0),
            BrokerJob(job_id="j1", workload="kmeans", arrival=0.0),
        ]
        run = tight.run(jobs, "min-completion")
        by_id = {p.job_id: p for p in run.placements}
        assert by_id["j0"].wait == 0.0
        assert by_id["j1"].start == pytest.approx(by_id["j0"].end)
        assert by_id["j1"].wait > 0.0

    def test_priority_orders_the_queue(self, broker):
        # Saturate the grid with a job at t=0; two more arrive while it
        # runs — the higher-priority one must start first despite its
        # later arrival.
        t = GridTopology()
        t.add_site(
            "repo", SiteKind.REPOSITORY, pentium_myrinet_cluster(num_nodes=2)
        )
        t.add_site(
            "hpc", SiteKind.COMPUTE, pentium_myrinet_cluster(num_nodes=1)
        )
        t.connect("repo", "hpc", bw=2.0e6)
        tight = GridBroker(t, [(1, 1)])
        jobs = [
            BrokerJob(job_id="head", workload="kmeans", arrival=0.0),
            BrokerJob(job_id="low", workload="kmeans", arrival=0.01),
            BrokerJob(
                job_id="high", workload="kmeans", arrival=0.02, priority=5
            ),
        ]
        run = tight.run(jobs, "min-completion")
        by_id = {p.job_id: p for p in run.placements}
        assert by_id["high"].start < by_id["low"].start

    def test_infeasible_job_rejected_with_selector_reasons(self, broker):
        # An allocation grid no site can satisfy at full capacity.
        t = small_grid()
        starved = GridBroker(t, [(32, 64)])
        run = starved.run(
            [BrokerJob(job_id="j0", workload="kmeans")], "min-completion"
        )
        assert run.placements == ()
        (rejection,) = run.rejections
        assert rejection.code == "no-feasible-configuration"
        # the reason carries the selector's per-candidate explanations
        assert "16 nodes, 32 requested" in rejection.reason

    def test_unknown_workload_raises(self, broker):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            broker.run(
                [BrokerJob(job_id="j0", workload="sorting")], "min-completion"
            )

    def test_deadline_admission_rejects_at_arrival(self, broker):
        baseline = broker.baseline_estimate("kmeans")
        jobs = [
            BrokerJob(
                job_id="hopeless",
                workload="kmeans",
                arrival=0.0,
                deadline=baseline * 0.01,
            )
        ]
        run = broker.run(jobs, "deadline-aware")
        (rejection,) = run.rejections
        assert rejection.code == "deadline-unmeetable"
        assert run.deadline_miss_rate == 1.0

    def test_error_series_in_completion_order(self, broker):
        jobs = [
            BrokerJob(job_id=f"j{i}", workload="kmeans", arrival=0.01 * i)
            for i in range(4)
        ]
        run = broker.run(jobs, "min-completion")
        ends = {p.job_id: p.end for p in run.placements}
        series_ids = [job_id for job_id, _ in run.error_series]
        assert series_ids == sorted(series_ids, key=lambda j: ends[j])

    def test_calibration_factors_only_when_calibrated(self, broker):
        jobs = [
            BrokerJob(job_id=f"j{i}", workload="kmeans", arrival=0.0)
            for i in range(3)
        ]
        assert broker.run(jobs, "min-completion").calibration_factors
        off = broker.run(jobs, "min-completion", calibrate=False)
        assert off.calibration_factors == {}

    def test_execution_cache_reused(self, broker):
        job = BrokerJob(job_id="j0", workload="kmeans")
        broker.run([job], "min-completion")
        cached = dict(broker._exec_cache)
        broker.run([job], "min-completion")
        assert broker._exec_cache == cached


class TestFromDocument:
    def test_document_round_trip(self):
        doc = parse_workload_document(
            {
                "name": "doc-grid",
                "allocations": [[1, 2]],
                "sites": [
                    {
                        "name": "repo",
                        "kind": "repository",
                        "cluster": "pentium-myrinet",
                        "nodes": 8,
                    },
                    {
                        "name": "hpc",
                        "kind": "compute",
                        "cluster": "pentium-myrinet",
                        "nodes": 8,
                    },
                ],
                "links": [{"a": "repo", "b": "hpc", "bw": 2.0e6}],
                "jobs": [{"id": "j0", "workload": "kmeans"}],
            }
        )
        broker = GridBroker.from_document(doc)
        run = broker.run(broker.resolve_jobs(doc), "min-completion")
        assert len(run.placements) == 1


# ----------------------------------------------------------------------
# Property: any seeded stream schedules every admitted job exactly once,
# per-node reservation windows never overlap, and replay is bit-identical.
# ----------------------------------------------------------------------

_WORKLOADS = ("kmeans", "knn", "vortex")

_job_strategy = st.builds(
    lambda i, workload, arrival, priority, slack: BrokerJob(
        job_id=f"j{i:03d}",
        workload=workload,
        arrival=round(arrival, 4),
        priority=priority,
        deadline=(
            round(arrival + slack, 4) if slack is not None else None
        ),
    ),
    i=st.integers(0, 999),
    workload=st.sampled_from(_WORKLOADS),
    arrival=st.floats(0.0, 2.0, allow_nan=False, allow_infinity=False),
    priority=st.integers(0, 2),
    slack=st.one_of(
        st.none(),
        st.floats(0.05, 5.0, allow_nan=False, allow_infinity=False),
    ),
)

# Module-level broker shared across hypothesis examples: its caches are
# append-only and runs are independent, so examples stay O(event loop).
_PROPERTY_BROKER = GridBroker(small_grid(), [(1, 2), (2, 4)])


@given(
    jobs=st.lists(
        _job_strategy, min_size=1, max_size=10, unique_by=lambda j: j.job_id
    ),
    policy=st.sampled_from(["min-completion", "deadline-aware", "round-robin"]),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_stream_scheduling_properties(jobs, policy):
    broker = _PROPERTY_BROKER
    run = broker.run(jobs, policy)

    # Every job is accounted for exactly once: placed xor rejected.
    placed = [p.job_id for p in run.placements]
    rejected = [r.job_id for r in run.rejections]
    assert sorted(placed + rejected) == sorted(j.job_id for j in jobs)
    assert len(set(placed)) == len(placed)

    # No reservation window overlaps any other on the same node.
    windows = broker.last_ledger.all_windows()
    for a_index, a in enumerate(windows):
        for b in windows[a_index + 1 :]:
            assert not a.overlaps(b), f"{a} overlaps {b}"

    # Placements start no earlier than arrival and end after start.
    for p in run.placements:
        assert p.start >= p.arrival
        assert p.end > p.start

    # Replay: a fresh broker over the same stream is bit-identical.
    replay = GridBroker(small_grid(), [(1, 2), (2, 4)]).run(jobs, policy)
    assert json.dumps(_run_to_dict(run), sort_keys=True) == json.dumps(
        _run_to_dict(replay), sort_keys=True
    )


class TestActualRun:
    def test_total_is_component_sum(self):
        run = ActualRun(t_disk=1.0, t_network=2.0, t_compute=3.0)
        assert run.total == 6.0
        assert run.components == (1.0, 2.0, 3.0)
