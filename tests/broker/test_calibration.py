"""Online calibration: EW updates, keying, clamping, convergence."""

import pytest

from repro.broker.calibration import OnlineCalibrator
from repro.core.models import PredictedBreakdown
from repro.simgrid.errors import ConfigurationError

RAW = PredictedBreakdown(t_disk=2.0, t_network=4.0, t_compute=8.0)


class TestValidation:
    def test_alpha_bounds(self):
        with pytest.raises(ConfigurationError):
            OnlineCalibrator(alpha=0.0)
        with pytest.raises(ConfigurationError):
            OnlineCalibrator(alpha=1.5)
        OnlineCalibrator(alpha=1.0)  # inclusive upper bound

    def test_clamp_bounds(self):
        with pytest.raises(ConfigurationError):
            OnlineCalibrator(clamp=(0.0, 2.0))
        with pytest.raises(ConfigurationError):
            OnlineCalibrator(clamp=(2.0, 1.0))


class TestFactors:
    def test_unobserved_factor_is_identity(self):
        cal = OnlineCalibrator()
        assert cal.factor("compute", "knn", "repo", "hpc") == 1.0
        corrected = cal.correct("knn", "repo", "hpc", RAW)
        assert corrected.total == pytest.approx(RAW.total)

    def test_unknown_component_raises(self):
        with pytest.raises(ConfigurationError):
            OnlineCalibrator().factor("gpu", "knn", "repo", "hpc")

    def test_single_observation_moves_by_alpha(self):
        cal = OnlineCalibrator(alpha=0.5)
        # actual compute is 2x the prediction -> ratio 2, f = 1 + .5*(2-1)
        cal.observe("knn", "repo", "hpc", RAW, (2.0, 4.0, 16.0))
        assert cal.factor("compute", "knn", "repo", "hpc") == pytest.approx(1.5)
        assert cal.factor("disk", "knn", "repo", "hpc") == pytest.approx(1.0)

    def test_converges_to_systematic_bias(self):
        cal = OnlineCalibrator(alpha=0.3)
        for _ in range(40):
            cal.observe("knn", "repo", "hpc", RAW, (2.0, 4.0, 12.0))
        assert cal.factor("compute", "knn", "repo", "hpc") == pytest.approx(
            1.5, rel=1e-3
        )
        corrected = cal.correct("knn", "repo", "hpc", RAW)
        assert corrected.t_compute == pytest.approx(12.0, rel=1e-3)

    def test_components_keyed_by_distinct_resources(self):
        cal = OnlineCalibrator(alpha=1.0)
        cal.observe("knn", "repo", "hpc-1", RAW, (2.0, 8.0, 8.0))
        # network factor is path-specific: a different compute site is
        # unaffected, but the shared replica's disk factor carries over.
        assert cal.factor("network", "knn", "repo", "hpc-1") == 2.0
        assert cal.factor("network", "knn", "repo", "hpc-2") == 1.0
        assert cal.factor("disk", "knn", "repo", "hpc-2") == 1.0
        cal.observe("knn", "repo", "hpc-1", RAW, (4.0, 4.0, 8.0))
        assert cal.factor("disk", "knn", "repo", "hpc-2") == 2.0

    def test_apps_are_independent(self):
        cal = OnlineCalibrator(alpha=1.0)
        cal.observe("knn", "repo", "hpc", RAW, (2.0, 4.0, 16.0))
        assert cal.factor("compute", "kmeans", "repo", "hpc") == 1.0

    def test_ratio_is_clamped(self):
        cal = OnlineCalibrator(alpha=1.0, clamp=(0.5, 2.0))
        cal.observe("knn", "repo", "hpc", RAW, (2.0, 4.0, 800.0))
        assert cal.factor("compute", "knn", "repo", "hpc") == 2.0

    def test_near_zero_prediction_skipped(self):
        cal = OnlineCalibrator(alpha=1.0)
        raw = PredictedBreakdown(t_disk=0.0, t_network=4.0, t_compute=8.0)
        cal.observe("knn", "repo", "hpc", raw, (5.0, 4.0, 8.0))
        assert cal.factor("disk", "knn", "repo", "hpc") == 1.0
        assert cal.total_observations == 2  # network + compute only

    def test_ro_and_g_ride_the_compute_factor(self):
        cal = OnlineCalibrator(alpha=1.0)
        raw = PredictedBreakdown(
            t_disk=2.0, t_network=4.0, t_compute=8.0, t_ro=1.0, t_g=0.5
        )
        cal.observe("knn", "repo", "hpc", raw, (2.0, 4.0, 16.0))
        corrected = cal.correct("knn", "repo", "hpc", raw)
        assert corrected.t_ro == pytest.approx(2.0)
        assert corrected.t_g == pytest.approx(1.0)


class TestSnapshot:
    def test_snapshot_is_sorted_and_keyed(self):
        cal = OnlineCalibrator(alpha=1.0)
        cal.observe("knn", "repo", "hpc", RAW, (2.0, 4.0, 16.0))
        snap = cal.snapshot()
        assert set(snap) == {"disk", "network", "compute"}
        assert snap["compute"] == {"knn @ hpc": 2.0}
        assert snap["network"] == {"knn @ repo->hpc": 1.0}

    def test_empty_snapshot(self):
        assert OnlineCalibrator().snapshot() == {}


class TestPersistence:
    def seeded(self):
        calibrator = OnlineCalibrator(alpha=0.5)
        raw = PredictedBreakdown(
            t_disk=10.0, t_network=20.0, t_compute=30.0, t_ro=2.0, t_g=1.0
        )
        calibrator.observe("kmeans", "repo-a", "hpc-1", raw, (5.0, 20.0, 45.0))
        calibrator.observe("kmeans", "repo-a", "hpc-1", raw, (6.0, 18.0, 42.0))
        calibrator.observe("em", "repo-a", "hpc-2", raw, (12.0, 22.0, 33.0))
        return calibrator

    def test_round_trip_preserves_factors_and_counts(self, tmp_path):
        calibrator = self.seeded()
        path = tmp_path / "calibration.json"
        calibrator.save(path)
        loaded = OnlineCalibrator.load(path)
        assert loaded.alpha == calibrator.alpha
        assert loaded.clamp == calibrator.clamp
        assert loaded.snapshot() == calibrator.snapshot()
        assert loaded.total_observations == calibrator.total_observations

    def test_reloaded_calibrator_resumes_learning_identically(self, tmp_path):
        calibrator = self.seeded()
        path = tmp_path / "calibration.json"
        calibrator.save(path)
        loaded = OnlineCalibrator.load(path)
        raw = PredictedBreakdown(t_disk=10.0, t_network=20.0, t_compute=30.0)
        calibrator.observe("kmeans", "repo-a", "hpc-1", raw, (7.0, 21.0, 40.0))
        loaded.observe("kmeans", "repo-a", "hpc-1", raw, (7.0, 21.0, 40.0))
        assert loaded.snapshot() == calibrator.snapshot()

    def test_saved_state_is_canonical_and_versioned(self, tmp_path):
        import json

        path = tmp_path / "calibration.json"
        self.seeded().save(path)
        data = json.loads(path.read_text())
        assert data["format_version"] == 1
        assert path.read_text().endswith("\n")

    def test_corrupt_state_names_remedy(self, tmp_path):
        from repro.core.durable import CorruptStoreError

        path = tmp_path / "calibration.json"
        path.write_text("{ torn")
        with pytest.raises(CorruptStoreError, match="re-learns"):
            OnlineCalibrator.load(path)

    def test_unknown_component_rejected_on_load(self, tmp_path):
        import json

        path = tmp_path / "calibration.json"
        self.seeded().save(path)
        data = json.loads(path.read_text())
        data["factors"][0]["component"] = "quantum"
        path.write_text(json.dumps(data))
        with pytest.raises(ConfigurationError):
            OnlineCalibrator.load(path)
