"""Broker report metrics and canonical serialization."""

import pytest

from repro.broker.report import (
    BrokerPlacement,
    BrokerRejection,
    BrokerReport,
    PolicyRun,
    load_report,
)
from repro.simgrid.errors import ConfigurationError


def placement(
    job_id: str,
    *,
    arrival: float = 0.0,
    start: float = 0.0,
    end: float = 1.0,
    predicted: float = 1.0,
    deadline=None,
) -> BrokerPlacement:
    return BrokerPlacement(
        job_id=job_id,
        workload="knn",
        replica_site="repo",
        compute_site="hpc",
        data_nodes=1,
        compute_nodes=2,
        data_node_ids=(0,),
        compute_node_ids=(0, 1),
        arrival=arrival,
        start=start,
        end=end,
        predicted_total=predicted,
        raw_predicted_total=predicted,
        deadline=deadline,
    )


def run_of(placements, rejections=(), **kwargs) -> PolicyRun:
    return PolicyRun(
        policy=kwargs.pop("policy", "min-completion"),
        calibrated=kwargs.pop("calibrated", True),
        placements=tuple(placements),
        rejections=tuple(rejections),
        error_series=tuple(
            (p.job_id, p.relative_error) for p in placements
        ),
        **kwargs,
    )


class TestPlacementMetrics:
    def test_wait_and_actual(self):
        p = placement("j0", arrival=1.0, start=2.5, end=4.0)
        assert p.wait == 1.5
        assert p.actual_total == 1.5

    def test_relative_error(self):
        p = placement("j0", end=2.0, predicted=1.5)
        assert p.relative_error == pytest.approx(0.25)

    def test_missed_deadline(self):
        assert placement("j0", end=2.0, deadline=1.5).missed_deadline
        assert not placement("j0", end=2.0, deadline=2.0).missed_deadline
        assert not placement("j0", end=2.0).missed_deadline


class TestRunMetrics:
    def test_makespan_and_mean_wait(self):
        run = run_of(
            [
                placement("j0", start=0.0, end=2.0),
                placement("j1", arrival=0.5, start=1.0, end=3.0),
            ]
        )
        assert run.makespan == 3.0
        assert run.mean_wait == pytest.approx(0.25)

    def test_empty_run_metrics(self):
        run = run_of([])
        assert run.makespan == 0.0
        assert run.mean_wait == 0.0
        assert run.deadline_miss_rate == 0.0
        assert run.mean_error() == 0.0

    def test_rejected_deadline_jobs_count_as_missed(self):
        run = run_of(
            [placement("j0", end=1.0, deadline=2.0)],
            rejections=[
                BrokerRejection(
                    job_id="j1",
                    workload="knn",
                    time=0.0,
                    code="deadline-unmeetable",
                    reason="too slow",
                    deadline=0.5,
                ),
                # rejections without a deadline do not enter the rate
                BrokerRejection(
                    job_id="j2",
                    workload="knn",
                    time=0.0,
                    code="no-feasible-configuration",
                    reason="island",
                ),
            ],
        )
        assert run.deadline_miss_rate == pytest.approx(0.5)

    def test_mean_error_window(self):
        run = run_of(
            [
                placement("j0", end=1.0, predicted=2.0),  # err 1.0
                placement("j1", end=1.0, predicted=1.0),  # err 0.0
                placement("j2", end=1.0, predicted=1.5),  # err 0.5
            ]
        )
        assert run.mean_error() == pytest.approx(0.5)
        assert run.mean_error(last=2) == pytest.approx(0.25)

    def test_label_marks_uncalibrated(self):
        assert run_of([]).label == "min-completion"
        assert (
            run_of([], calibrated=False).label
            == "min-completion (uncalibrated)"
        )


class TestSerialization:
    def report(self) -> BrokerReport:
        return BrokerReport(
            name="demo",
            runs=(
                run_of(
                    [placement("j0", end=2.0, deadline=1.0)],
                    calibration_factors={
                        "compute": {"knn @ hpc": 1.25}
                    },
                ),
            ),
        )

    def test_round_trip(self, tmp_path):
        report = self.report()
        path = report.save(tmp_path / "report.json")
        loaded = load_report(path)
        assert loaded == report

    def test_save_is_byte_stable(self, tmp_path):
        report = self.report()
        a = report.save(tmp_path / "a.json").read_bytes()
        b = report.save(tmp_path / "b.json").read_bytes()
        assert a == b

    def test_metrics_embedded_in_document(self):
        doc = self.report().to_dict()
        metrics = doc["runs"][0]["metrics"]
        assert metrics["completed"] == 1
        assert metrics["deadline_miss_rate"] == 1.0

    def test_rejects_unknown_format_version(self):
        doc = self.report().to_dict()
        doc["format_version"] = 99
        with pytest.raises(ConfigurationError, match="format_version"):
            BrokerReport.from_dict(doc)

    def test_run_lookup_by_label_or_policy(self):
        report = self.report()
        assert report.run("min-completion") is report.runs[0]
        with pytest.raises(ConfigurationError):
            report.run("min-cost")
