"""Broker behavior under grid faults: preemption, recovery, terminal failure."""

import pytest

from repro.broker import BrokerJob, load_report
from repro.broker.report import _run_to_dict
from repro.faults import (
    BrokerRetryPolicy,
    GridFaultSchedule,
    NodePoolShrink,
    SiteOutage,
    TransientJobFailure,
    WanDegradation,
)
from repro.simgrid.errors import ConfigurationError


def stream(count=6, workload="kmeans", spacing=0.02):
    return [
        BrokerJob(job_id=f"j{i}", workload=workload, arrival=spacing * i)
        for i in range(count)
    ]


def mid_flight(run):
    """(compute_site, time) inside the first placement's execution."""
    p = run.placements[0]
    return p.compute_site, (p.start + p.end) / 2.0


class TestFaultFreeIdentity:
    def test_unfaulted_run_serializes_without_resilience_keys(self, broker):
        run = broker.run(stream(), "min-completion")
        assert not run.faulted
        data = _run_to_dict(run)
        for key in ("recovery", "fault_events", "preemptions", "failures"):
            assert key not in data
        assert "failed" not in data["metrics"]
        assert "resilience" not in data["metrics"]
        assert run.goodput == 1.0
        assert run.wasted_time == 0.0

    def test_empty_schedule_is_fault_free(self, broker):
        baseline = broker.run(stream(), "min-completion")
        empty = broker.run(
            stream(), "min-completion", faults=GridFaultSchedule()
        )
        assert not empty.faulted
        assert _run_to_dict(empty) == _run_to_dict(baseline)

    def test_unknown_fault_site_rejected(self, broker):
        schedule = GridFaultSchedule([SiteOutage(site="atlantis", at=1.0)])
        with pytest.raises(ConfigurationError, match="atlantis"):
            broker.run(stream(), "min-completion", faults=schedule)


class TestSiteOutage:
    def test_outage_preempts_and_recovery_replaces(self, broker):
        baseline = broker.run(stream(), "min-completion")
        site, when = mid_flight(baseline)
        schedule = GridFaultSchedule(
            [SiteOutage(site=site, at=when, repair_after=20.0)]
        )
        run = broker.run(stream(), "min-completion", faults=schedule)

        assert run.faulted
        assert run.recovery == "resubmit"
        # Every job still settles exactly once, none terminally.
        assert sorted(p.job_id for p in run.placements) == sorted(
            j.job_id for j in stream()
        )
        assert run.failures == ()
        # The outage tore down at least one running attempt.
        causes = {p.cause for p in run.preemptions}
        assert "site-outage" in causes
        kinds = {e.kind for e in run.fault_events}
        assert {"site-outage", "site-repair"} <= kinds
        assert run.wasted_time > 0.0
        assert run.goodput < 1.0
        # Preempted jobs re-placed on a later attempt.
        assert max(p.attempt for p in run.placements) >= 2

    def test_no_window_overlaps_declared_outage(self, broker):
        baseline = broker.run(stream(), "min-completion")
        site, when = mid_flight(baseline)
        schedule = GridFaultSchedule(
            [SiteOutage(site=site, at=when, repair_after=20.0)]
        )
        broker.run(stream(), "min-completion", faults=schedule)
        ledger = broker.last_ledger
        outages = ledger.all_outages()
        assert outages
        for outage in outages:
            for window in ledger.all_windows():
                assert not outage.covers(window)

    def test_permanent_repository_outage_strands_jobs(self, broker):
        repo = next(iter(broker.topology.repositories())).name
        schedule = GridFaultSchedule([SiteOutage(site=repo, at=0.0)])
        run = broker.run(stream(), "min-completion", faults=schedule)
        assert run.placements == ()
        assert sorted(f.job_id for f in run.failures) == sorted(
            j.job_id for j in stream()
        )
        assert {f.code for f in run.failures} == {"stranded-no-capacity"}
        # Failed deadline-less jobs never count as deadline misses...
        assert run.deadline_miss_rate == 0.0
        # ...but they do count toward the settled-job total.
        assert run.jobs == len(stream())


class TestNodePoolShrink:
    def test_shrink_preempts_holders_and_restores(self, broker):
        baseline = broker.run(stream(), "min-completion")
        site, when = mid_flight(baseline)
        nodes = broker.topology.site(site).cluster.num_nodes
        schedule = GridFaultSchedule([
            NodePoolShrink(
                site=site, at=when, nodes=nodes, restore_after=20.0
            )
        ])
        run = broker.run(stream(), "min-completion", faults=schedule)
        kinds = {e.kind for e in run.fault_events}
        assert {"pool-shrink", "pool-restore"} <= kinds
        assert sorted(p.job_id for p in run.placements) == sorted(
            j.job_id for j in stream()
        )
        assert any(p.cause == "pool-shrink" for p in run.preemptions)


class TestRecoveryPolicies:
    def test_resubmit_restarts_from_scratch(self, broker):
        schedule = GridFaultSchedule(
            [TransientJobFailure(job_id="j0", failures=1, at_fraction=0.9)]
        )
        run = broker.run(
            stream(), "min-completion", faults=schedule, recovery="resubmit"
        )
        assert run.recovery == "resubmit"
        (preempted,) = [p for p in run.preemptions if p.job_id == "j0"]
        assert preempted.cause == "transient-failure"
        assert preempted.kept_fraction == 0.0
        (placed,) = [p for p in run.placements if p.job_id == "j0"]
        assert placed.attempt == 2
        assert placed.recovery_charge == 0.0

    def test_migrate_keeps_finished_passes_and_charges_recovery(self, broker):
        schedule = GridFaultSchedule(
            [TransientJobFailure(job_id="j0", failures=1, at_fraction=0.9)]
        )
        run = broker.run(
            stream(), "min-completion", faults=schedule, recovery="migrate"
        )
        assert run.recovery == "migrate"
        (preempted,) = [p for p in run.preemptions if p.job_id == "j0"]
        assert preempted.kept_fraction > 0.0
        (placed,) = [p for p in run.placements if p.job_id == "j0"]
        assert placed.attempt == 2
        assert placed.recovery_charge > 0.0
        assert run.recovery_charge_time == pytest.approx(
            placed.recovery_charge
        )

    def test_migrate_wastes_less_than_resubmit(self, broker):
        schedule = GridFaultSchedule(
            [TransientJobFailure(job_id="j0", failures=1, at_fraction=0.9)]
        )
        resubmit = broker.run(
            stream(), "min-completion", faults=schedule, recovery="resubmit"
        )
        migrate = broker.run(
            stream(), "min-completion", faults=schedule, recovery="migrate"
        )
        assert migrate.wasted_time < resubmit.wasted_time

    def test_unknown_recovery_name_rejected(self, broker):
        schedule = GridFaultSchedule(
            [TransientJobFailure(job_id="j0", failures=1)]
        )
        with pytest.raises(ConfigurationError, match="resubmit"):
            broker.run(
                stream(), "min-completion", faults=schedule, recovery="pray"
            )


class TestRetryBudget:
    def test_budget_exhaustion_is_terminal(self, broker):
        schedule = GridFaultSchedule(
            [TransientJobFailure(job_id="j0", failures=3, at_fraction=0.5)]
        )
        run = broker.run(
            stream(),
            "min-completion",
            faults=schedule,
            retry=BrokerRetryPolicy.with_attempts(2),
        )
        (failure,) = run.failures
        assert failure.job_id == "j0"
        assert failure.code == "retry-budget-exhausted"
        assert failure.attempts == 2
        assert all(p.job_id != "j0" for p in run.placements)
        # The other jobs are unaffected.
        assert len(run.placements) == len(stream()) - 1

    def test_failures_within_budget_still_complete(self, broker):
        schedule = GridFaultSchedule(
            [TransientJobFailure(job_id="j0", failures=2, at_fraction=0.5)]
        )
        run = broker.run(stream(), "min-completion", faults=schedule)
        assert run.failures == ()
        (placed,) = [p for p in run.placements if p.job_id == "j0"]
        assert placed.attempt == 3


class TestWanDegradation:
    def test_degraded_path_stretches_completion(self, broker):
        baseline = broker.run(stream(), "min-completion")
        repo = next(iter(broker.topology.repositories())).name
        site = baseline.placements[0].compute_site
        schedule = GridFaultSchedule(
            [WanDegradation(site_a=repo, site_b=site, factor=4.0, at=0.0)]
        )
        run = broker.run(stream(), "min-completion", faults=schedule)
        assert run.makespan > baseline.makespan
        assert any(e.kind == "wan-degradation" for e in run.fault_events)
        assert sorted(p.job_id for p in run.placements) == sorted(
            j.job_id for j in stream()
        )


class TestFaultedPersistence:
    def faulted_report(self, broker):
        baseline = broker.run(stream(), "min-completion")
        site, when = mid_flight(baseline)
        schedule = GridFaultSchedule([
            SiteOutage(site=site, at=when, repair_after=20.0),
            TransientJobFailure(job_id="j3", failures=1, at_fraction=0.4),
        ])
        return broker.compare(
            "faulted", stream(), ["min-completion"], faults=schedule,
            recovery="migrate",
        )

    def test_faulted_report_round_trips_byte_identically(self, broker, tmp_path):
        report = self.faulted_report(broker)
        first = report.save(tmp_path / "a.json")
        reloaded = load_report(first)
        second = reloaded.save(tmp_path / "b.json")
        assert first.read_bytes() == second.read_bytes()
        run = reloaded.run("min-completion")
        assert run.faulted
        assert run.preemptions
        assert run.fault_events

    def test_identical_schedule_replays_byte_identically(self, broker):
        a = self.faulted_report(broker)
        b = self.faulted_report(broker)
        assert [_run_to_dict(r) for r in a.runs] == [
            _run_to_dict(r) for r in b.runs
        ]
