"""Shared broker fixtures: a small heterogeneous grid.

One :class:`GridBroker` instance is shared per module — its caches
(datasets, profiles, selections, executions) are read-only between runs,
while every :meth:`run` gets a fresh ledger/queue/calibrator, so sharing
is safe and keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.broker import GridBroker
from repro.simgrid.topology import GridTopology, SiteKind
from repro.workloads.clusters import (
    opteron_infiniband_cluster,
    pentium_myrinet_cluster,
)


def small_grid() -> GridTopology:
    topology = GridTopology()
    topology.add_site(
        "repo-a", SiteKind.REPOSITORY, pentium_myrinet_cluster(num_nodes=16)
    )
    topology.add_site(
        "hpc-1", SiteKind.COMPUTE, pentium_myrinet_cluster(num_nodes=16)
    )
    topology.add_site(
        "hpc-2", SiteKind.COMPUTE, opteron_infiniband_cluster(num_nodes=16)
    )
    topology.connect("repo-a", "hpc-1", bw=2.0e6)
    topology.connect("repo-a", "hpc-2", bw=1.0e6)
    return topology


@pytest.fixture(scope="module")
def grid() -> GridTopology:
    return small_grid()


@pytest.fixture(scope="module")
def broker(grid: GridTopology) -> GridBroker:
    return GridBroker(grid, [(1, 2), (2, 4)])
