"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestListWorkloads:
    def test_lists_all(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        for name in ["kmeans", "em", "knn", "vortex", "defect", "apriori"]:
            assert name in out
        assert "paper eval" in out and "extension" in out


class TestRun:
    def test_run_prints_breakdown(self, capsys):
        code = main(["run", "knn", "-n", "1", "-c", "2", "--size", "350 MB"])
        assert code == 0
        out = capsys.readouterr().out
        assert "T_disk" in out and "T_network" in out and "total" in out

    def test_unknown_workload(self, capsys):
        assert main(["run", "sorting"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_invalid_configuration_reports_error(self, capsys):
        # more data nodes than compute nodes violates M >= N
        code = main(["run", "knn", "-n", "4", "-c", "2", "--size", "350 MB"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_save_profile(self, tmp_path, capsys):
        path = tmp_path / "knn.json"
        code = main(
            ["run", "knn", "-n", "1", "-c", "1", "--size", "350 MB",
             "--save-profile", str(path)]
        )
        assert code == 0
        assert path.exists()

    def test_run_with_fault_scenario(self, tmp_path, capsys):
        scenario = tmp_path / "scenario.json"
        scenario.write_text(
            '{"seed": 3, "faults": ['
            '{"type": "data-node-crash", "pass": 0, "data_node": 1,'
            ' "at_fraction": 0.5},'
            '{"type": "chunk-read-error", "rate": 0.2}]}'
        )
        code = main(["run", "knn", "-n", "2", "-c", "4", "--size", "350 MB",
                     "--faults", str(scenario)])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault/recovery event(s)" in out
        assert "data-node-failover" in out

    def test_missing_fault_scenario_reports_error(self, tmp_path, capsys):
        code = main(["run", "knn", "-n", "1", "-c", "2", "--size", "350 MB",
                     "--faults", str(tmp_path / "nope.json")])
        assert code == 1
        assert "scenario file not found" in capsys.readouterr().err


class TestPredict:
    def test_round_trip_with_run(self, tmp_path, capsys):
        path = tmp_path / "knn.json"
        main(["run", "knn", "-n", "1", "-c", "1", "--size", "350 MB",
              "--save-profile", str(path)])
        capsys.readouterr()
        code = main(["predict", str(path), "-n", "2", "-c", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "global-reduction model" in out
        assert "2-4" in out

    def test_model_choice(self, tmp_path, capsys):
        path = tmp_path / "knn.json"
        main(["run", "knn", "-n", "1", "-c", "1", "--size", "350 MB",
              "--save-profile", str(path)])
        capsys.readouterr()
        code = main(
            ["predict", str(path), "-n", "2", "-c", "4",
             "--model", "no-communication"]
        )
        assert code == 0
        assert "no-communication model" in capsys.readouterr().out

    def test_missing_profile(self, tmp_path, capsys):
        code = main(["predict", str(tmp_path / "nope.json"), "-n", "1", "-c", "1"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestFigure:
    def test_fast_figure(self, capsys):
        code = main(["figure", "fig09", "--fast"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig09" in out
        assert "global reduction" in out


class TestClassify:
    def test_classify_knn(self, capsys):
        code = main(["classify", "knn"])
        assert code == 0
        out = capsys.readouterr().out
        assert "reduction object size class: constant" in out
        assert "global reduction time class: linear-constant" in out


class TestSuite:
    def test_fast_suite_subset(self, capsys):
        code = main(["suite", "--fast", "--only", "fig09"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig09" in out
        assert "match the paper" in out


class TestShares:
    def test_shares_table(self, capsys):
        code = main(["shares", "defect"])
        assert code == 0
        out = capsys.readouterr().out
        assert "dominant" in out
        assert "8-16" in out

    def test_unknown_workload(self, capsys):
        assert main(["shares", "sorting"]) == 2


class TestWhatIf:
    def test_whatif_from_saved_profile(self, tmp_path, capsys):
        path = tmp_path / "km.json"
        main(["run", "kmeans", "-n", "1", "-c", "1", "--size", "350 MB",
              "--save-profile", str(path)])
        capsys.readouterr()
        code = main(["whatif", str(path), "--tolerance", "0.10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "marginal speedups" in out
        assert "recommended" in out
        assert "8-16" in out


class TestFigureChart:
    def test_chart_flag_renders_bars(self, capsys):
        code = main(["figure", "fig09", "--fast", "--chart"])
        assert code == 0
        out = capsys.readouterr().out
        assert "relative error" in out
        assert "█" in out


class TestSuiteJournal:
    def test_resume_requires_journal(self, capsys):
        code = main(["suite", "--fast", "--resume"])
        assert code == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_journaled_suite_and_resume(self, tmp_path, capsys):
        journal = str(tmp_path / "suite.journal.json")
        code = main(
            ["suite", "--fast", "--only", "fig09", "--journal", journal]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "completed" in out
        assert "match the paper" in out

        # A second run without --resume must refuse to clobber the journal.
        code = main(
            ["suite", "--fast", "--only", "fig09", "--journal", journal]
        )
        assert code == 1
        assert "already exists" in capsys.readouterr().err

        # --resume restores the settled entry without re-running it.
        code = main(
            [
                "suite",
                "--fast",
                "--only",
                "fig09",
                "--journal",
                journal,
                "--resume",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "resumed" in out


class TestCampaign:
    def _write_manifest(self, tmp_path):
        import json

        path = tmp_path / "campaign.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli-campaign",
                    "entries": [{"id": "fig09", "fast": True}],
                }
            )
        )
        return path

    def test_campaign_runs_manifest(self, tmp_path, capsys):
        manifest = self._write_manifest(tmp_path)
        code = main(["campaign", str(manifest)])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig09" in out
        assert "campaign 'cli-campaign': 1 completed" in out
        # Default journal path sits beside the manifest.
        assert (tmp_path / "campaign.json.journal.json").exists()

    def test_campaign_resume_and_results_dir(self, tmp_path, capsys):
        manifest = self._write_manifest(tmp_path)
        results = tmp_path / "results"
        assert main(["campaign", str(manifest), "--results-dir", str(results)]) == 0
        capsys.readouterr()
        code = main(
            ["campaign", str(manifest), "--results-dir", str(results), "--resume"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 resumed" in out
        assert (results / "fig09.json").exists()

    def test_missing_manifest_reports_error(self, tmp_path, capsys):
        code = main(["campaign", str(tmp_path / "absent.json")])
        assert code == 1
        assert "no campaign manifest" in capsys.readouterr().err


class TestBroker:
    def _write_workload(self, tmp_path, body=None):
        import json

        doc = body or {
            "name": "cli-broker",
            "allocations": [[1, 2]],
            "sites": [
                {"name": "repo", "kind": "repository",
                 "cluster": "pentium-myrinet", "nodes": 8},
                {"name": "hpc", "kind": "compute",
                 "cluster": "pentium-myrinet", "nodes": 8},
            ],
            "links": [{"a": "repo", "b": "hpc", "bw": 2.0e6}],
            "jobs": [
                {"id": "j0", "workload": "kmeans"},
                {"id": "j1", "workload": "kmeans", "arrival": 0.05},
            ],
        }
        path = tmp_path / "workload.json"
        path.write_text(json.dumps(doc))
        return path

    def test_broker_runs_all_policies(self, tmp_path, capsys):
        code = main(["broker", str(self._write_workload(tmp_path))])
        out = capsys.readouterr().out
        assert code == 0
        for policy in ["min-completion", "min-cost", "deadline-aware",
                       "round-robin"]:
            assert policy in out
        assert "(uncalibrated)" in out
        assert "makespan" in out

    def test_broker_single_policy_with_report(self, tmp_path, capsys):
        from repro.broker import load_report

        report_path = tmp_path / "report.json"
        code = main(
            ["broker", str(self._write_workload(tmp_path)),
             "--policy", "min-completion", "--no-calibration-baseline",
             "--report", str(report_path), "--schedule"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "min-cost" not in out
        assert "j0" in out  # --schedule prints the placement table
        report = load_report(report_path)
        assert [run.label for run in report.runs] == ["min-completion"]

    def test_broker_stream_workload(self, tmp_path, capsys):
        doc = {
            "name": "cli-stream",
            "allocations": [[1, 2]],
            "sites": [
                {"name": "repo", "kind": "repository",
                 "cluster": "pentium-myrinet", "nodes": 8},
                {"name": "hpc", "kind": "compute",
                 "cluster": "pentium-myrinet", "nodes": 8},
            ],
            "links": [{"a": "repo", "b": "hpc", "bw": 2.0e6}],
            "stream": {"count": 5, "seed": 3, "mix": [["kmeans"]]},
        }
        code = main(
            ["broker", str(self._write_workload(tmp_path, doc)),
             "--policy", "round-robin", "--no-calibration-baseline"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "round-robin" in out

    def test_missing_workload_reports_error(self, tmp_path, capsys):
        code = main(["broker", str(tmp_path / "absent.json")])
        assert code == 1
        assert "no broker workload" in capsys.readouterr().err

    def test_bad_alpha_reports_error(self, tmp_path, capsys):
        code = main(
            ["broker", str(self._write_workload(tmp_path)), "--alpha", "2.0"]
        )
        assert code == 1
        assert "alpha" in capsys.readouterr().err


class TestServe:
    def test_smoke_run_prints_metrics(self, capsys):
        code = main(["serve", "--requests", "60", "--rate", "400"])
        assert code == 0
        out = capsys.readouterr().out
        assert "smoke: served 60 seeded request(s)" in out
        assert "latency p50" in out
        assert "breaker opens" in out

    def test_smoke_run_is_deterministic(self, capsys):
        assert main(["serve", "--requests", "40", "--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert main(["serve", "--requests", "40", "--seed", "7"]) == 0
        assert capsys.readouterr().out == first

    def test_chaos_campaign_passes(self, capsys):
        code = main(
            ["serve", "--chaos", "--requests", "50", "--cases", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verdict: PASS" in out
        assert "replay" in out

    def test_http_round_trip(self):
        import json
        import threading
        import urllib.request

        from repro.service import (
            MonotonicClock,
            PredictionService,
            demo_profiles,
            make_server,
        )

        service = PredictionService(demo_profiles(), clock=MonotonicClock())
        server = make_server(service, port=0)
        host, port = server.server_address[:2]
        thread = threading.Thread(
            target=lambda: server.serve_forever(poll_interval=0.05),
            daemon=True,
        )
        thread.start()
        try:
            body = json.dumps(
                {"params": {"profile": "kmeans", "data_nodes": 2,
                            "compute_nodes": 4}}
            ).encode("utf-8")
            with urllib.request.urlopen(
                urllib.request.Request(
                    f"http://{host}:{port}/v1/predict", data=body
                ),
                timeout=10.0,
            ) as response:
                payload = json.loads(response.read())
            assert response.status == 200
            assert payload["outcome"] == "ok"
            assert payload["total"] > 0
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)
