"""Tests for execution-time breakdowns."""

import pytest
from hypothesis import given, strategies as st

from repro.simgrid.errors import ConfigurationError
from repro.simgrid.trace import PassRecord, TimeBreakdown

nonneg = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


def make_pass(index=0, **kw):
    defaults = dict(
        t_disk=1.0, t_network=2.0, t_local_compute=3.0, t_cache=0.5,
        t_ro=0.25, t_g=0.125,
    )
    defaults.update(kw)
    return PassRecord(index=index, **defaults)


class TestPassRecord:
    def test_compute_includes_cache_ro_g(self):
        record = make_pass()
        assert record.t_compute == pytest.approx(3.0 + 0.5 + 0.25 + 0.125)

    def test_total_is_additive(self):
        record = make_pass()
        assert record.total == pytest.approx(
            record.t_disk + record.t_network + record.t_compute
        )

    def test_negative_component_rejected(self):
        with pytest.raises(ConfigurationError):
            make_pass(t_disk=-1.0)

    @given(nonneg, nonneg, nonneg, nonneg, nonneg, nonneg)
    def test_total_nonnegative(self, d, n, lc, ca, ro, g):
        record = PassRecord(0, d, n, lc, ca, ro, g)
        assert record.total >= 0


class TestTimeBreakdown:
    def test_aggregates_over_passes(self):
        bd = TimeBreakdown()
        bd.add_pass(make_pass(0))
        bd.add_pass(make_pass(1, t_disk=0.0, t_network=0.0))
        assert bd.num_passes == 2
        assert bd.t_disk == pytest.approx(1.0)
        assert bd.t_network == pytest.approx(2.0)
        assert bd.t_ro == pytest.approx(0.5)
        assert bd.t_g == pytest.approx(0.25)
        assert bd.t_cache == pytest.approx(1.0)
        assert bd.total == pytest.approx(bd.t_disk + bd.t_network + bd.t_compute)

    def test_empty_breakdown_is_zero(self):
        bd = TimeBreakdown()
        assert bd.total == 0.0
        assert bd.num_passes == 0

    def test_to_dict_round_trip(self):
        bd = TimeBreakdown(max_reduction_object_bytes=123.0)
        bd.add_pass(make_pass())
        d = bd.to_dict()
        assert d["total"] == pytest.approx(bd.total)
        assert d["max_reduction_object_bytes"] == 123.0
        assert d["num_passes"] == 1.0

    def test_scaled(self):
        bd = TimeBreakdown()
        bd.add_pass(make_pass())
        doubled = bd.scaled(2.0)
        assert doubled.total == pytest.approx(2.0 * bd.total)
        assert doubled.t_ro == pytest.approx(2.0 * bd.t_ro)
        assert bd.total == pytest.approx(make_pass().total)  # original intact

    def test_scaled_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            TimeBreakdown().scaled(-1.0)
