"""Tests for links, fair sharing and the fitted communication cost model."""

import pytest
from hypothesis import given, strategies as st

from repro.simgrid.errors import ConfigurationError
from repro.simgrid.network import (
    CommCostModel,
    LinkModel,
    fit_linear_cost,
    maxmin_fair_share,
)

from tests.conftest import small_cluster_spec


class TestLinkModel:
    def test_message_time(self):
        link = LinkModel(latency_s=0.001, bw=1e6)
        assert link.message_time(1e6) == pytest.approx(1.001)

    def test_stream_time_sums_messages(self):
        link = LinkModel(latency_s=0.001, bw=1e6)
        sizes = [1e5, 2e5]
        assert link.stream_time(sizes) == pytest.approx(
            sum(link.message_time(s) for s in sizes)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinkModel(latency_s=-1, bw=1e6)
        with pytest.raises(ConfigurationError):
            LinkModel(latency_s=0, bw=0)
        with pytest.raises(ConfigurationError):
            LinkModel(latency_s=0, bw=1e6).message_time(-1)


class TestMaxMinFairShare:
    def test_under_capacity_everyone_satisfied(self):
        assert maxmin_fair_share([10, 10], 30) == [10, 10]

    def test_over_capacity_equal_split(self):
        assert maxmin_fair_share([50, 50, 50], 30) == [10, 10, 10]

    def test_bounded_flow_frozen_slack_redistributed(self):
        assert maxmin_fair_share([5, 50], 30) == [5, 25]

    def test_zero_demand_gets_zero(self):
        assert maxmin_fair_share([0, 50], 30) == [0, 30]

    def test_empty(self):
        assert maxmin_fair_share([], 30) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            maxmin_fair_share([1.0], 0.0)
        with pytest.raises(ConfigurationError):
            maxmin_fair_share([-1.0], 10.0)

    @given(
        st.lists(st.floats(min_value=0, max_value=1e3), max_size=20),
        st.floats(min_value=1e-3, max_value=1e3),
    )
    def test_invariants(self, demands, capacity):
        alloc = maxmin_fair_share(demands, capacity)
        assert len(alloc) == len(demands)
        # Feasibility: never above demand, total never above capacity
        for a, d in zip(alloc, demands):
            assert a <= d + 1e-9
        assert sum(alloc) <= capacity + 1e-6
        # Work conservation: either all demands met or capacity exhausted.
        if sum(demands) >= capacity:
            assert sum(alloc) == pytest.approx(capacity, rel=1e-6)
        else:
            assert alloc == pytest.approx(demands)


class TestFitLinearCost:
    def test_recovers_exact_line(self):
        w_true, l_true = 2.5e-7, 1.2e-3
        sizes = [1e3, 1e4, 1e5, 1e6]
        times = [w_true * s + l_true for s in sizes]
        w, l = fit_linear_cost(sizes, times)
        assert w == pytest.approx(w_true, rel=1e-9)
        assert l == pytest.approx(l_true, rel=1e-9)

    def test_needs_two_distinct_sizes(self):
        with pytest.raises(ConfigurationError):
            fit_linear_cost([1.0], [1.0])
        with pytest.raises(ConfigurationError):
            fit_linear_cost([1.0, 1.0], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            fit_linear_cost([1.0, 2.0], [1.0])


class TestCommCostModel:
    def test_fit_for_cluster_matches_interconnect(self):
        cluster = small_cluster_spec()
        model = CommCostModel.fit_for_cluster(cluster)
        assert model.w == pytest.approx(1.0 / cluster.intra_bw, rel=1e-6)
        assert model.l == pytest.approx(cluster.intra_latency_s, rel=1e-6)

    def test_message_time(self):
        model = CommCostModel(w=1e-7, l=1e-4)
        assert model.message_time(1e4) == pytest.approx(1e-3 + 1e-4)

    def test_gather_is_c_minus_one_messages(self):
        model = CommCostModel(w=1e-7, l=1e-4)
        assert model.gather_time(1, 1e4) == 0.0
        assert model.gather_time(5, 1e4) == pytest.approx(
            4 * model.message_time(1e4)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CommCostModel(w=-1e-7, l=0.0)
        with pytest.raises(ConfigurationError):
            CommCostModel(w=1e-7, l=1e-4).gather_time(0, 100.0)
        with pytest.raises(ConfigurationError):
            CommCostModel(w=1e-7, l=1e-4).message_time(-1.0)
