"""Tests for the disk service models."""

import pytest

from repro.simgrid.disk import DiskModel, RepositoryDiskSystem
from repro.simgrid.errors import ConfigurationError
from repro.simgrid.hardware import DiskSpec

from tests.conftest import small_cluster_spec


class TestDiskModel:
    def test_chunk_read_time(self):
        model = DiskModel(DiskSpec(seek_s=0.01, stream_bw=1e6), effective_bw=1e6)
        assert model.chunk_read_time(5e5) == pytest.approx(0.51)

    def test_batch_is_sum_of_chunks(self):
        model = DiskModel(DiskSpec(seek_s=0.01, stream_bw=1e6), effective_bw=1e6)
        sizes = [1e5, 2e5, 3e5]
        assert model.batch_read_time(sizes) == pytest.approx(
            sum(model.chunk_read_time(s) for s in sizes)
        )

    def test_contended_model_slower(self):
        spec = DiskSpec(seek_s=0.0, stream_bw=1e6)
        free = DiskModel(spec, effective_bw=1e6)
        contended = DiskModel(spec, effective_bw=5e5)
        assert contended.chunk_read_time(1e6) > free.chunk_read_time(1e6)

    def test_invalid_effective_bw(self):
        with pytest.raises(ConfigurationError):
            DiskModel(DiskSpec(seek_s=0.0, stream_bw=1e6), effective_bw=0.0)


class TestRepositoryDiskSystem:
    def test_retrieval_is_max_over_nodes(self, cluster):
        system = RepositoryDiskSystem(cluster, num_data_nodes=2)
        light = [1e4]
        heavy = [1e4] * 10
        phase = system.retrieval_time([light, heavy])
        assert phase == pytest.approx(system.node_read_time(1, heavy))
        assert phase > system.node_read_time(0, light)

    def test_empty_batch_costs_nothing(self, cluster):
        system = RepositoryDiskSystem(cluster, num_data_nodes=2)
        assert system.node_read_time(0, []) == 0.0

    def test_node_startup_charged_once_per_batch(self, cluster):
        system = RepositoryDiskSystem(cluster, num_data_nodes=1)
        one = system.node_read_time(0, [1e4])
        two = system.node_read_time(0, [1e4, 1e4])
        per_chunk = two - one
        assert one == pytest.approx(per_chunk + cluster.node_startup_s)

    def test_contention_slows_wide_configurations(self):
        cluster = small_cluster_spec()
        narrow = RepositoryDiskSystem(cluster, num_data_nodes=2)
        wide = RepositoryDiskSystem(cluster, num_data_nodes=12)
        assert wide.per_node_effective_bw < narrow.per_node_effective_bw

    def test_mismatched_batches_rejected(self, cluster):
        system = RepositoryDiskSystem(cluster, num_data_nodes=2)
        with pytest.raises(ConfigurationError):
            system.retrieval_time([[1e4]])

    def test_node_index_out_of_range(self, cluster):
        system = RepositoryDiskSystem(cluster, num_data_nodes=2)
        with pytest.raises(ConfigurationError):
            system.node_read_time(2, [1e4])

    def test_too_many_data_nodes_rejected(self):
        cluster = small_cluster_spec(num_nodes=4)
        with pytest.raises(ConfigurationError):
            RepositoryDiskSystem(cluster, num_data_nodes=5)

    def test_finish_times_one_per_node(self, cluster):
        system = RepositoryDiskSystem(cluster, num_data_nodes=3)
        times = system.node_finish_times([[1e4], [1e4, 1e4], []])
        assert len(times) == 3
        assert times[2] == 0.0
        assert times[1] > times[0] > 0.0
