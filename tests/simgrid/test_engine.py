"""Tests for the discrete-event engine and FIFO server."""

import pytest
from hypothesis import given, strategies as st

from repro.simgrid.engine import Event, FIFOServer, Simulator
from repro.simgrid.errors import EngineError


class TestSimulator:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        for tag in "abcde":
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == list("abcde")

    def test_clock_advances_to_last_event(self):
        sim = Simulator()
        sim.schedule(4.5, lambda: None)
        sim.run()
        assert sim.now == 4.5

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(("first", sim.now))
            sim.schedule(2.0, second)

        def second():
            seen.append(("second", sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == [("first", 1.0), ("second", 3.0)]

    def test_cancelled_event_is_skipped(self):
        sim = Simulator()
        hits = []
        event = sim.schedule(1.0, hits.append, "x")
        event.cancel()
        sim.run()
        assert hits == []
        assert sim.processed_events == 0

    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, hits.append, "early")
        sim.schedule(10.0, hits.append, "late")
        sim.run(until=5.0)
        assert hits == ["early"]
        assert sim.now == 5.0
        sim.run()
        assert hits == ["early", "late"]

    def test_run_until_advances_clock_even_when_idle(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_schedule_in_past_raises(self):
        sim = Simulator()
        with pytest.raises(EngineError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_in_past_raises(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(EngineError):
            sim.schedule_at(5.0, lambda: None)

    def test_run_backwards_raises(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(EngineError):
            sim.run(until=5.0)

    def test_advance(self):
        sim = Simulator()
        sim.advance(2.5)
        assert sim.now == 2.5
        with pytest.raises(EngineError):
            sim.advance(-1.0)

    def test_step_returns_false_when_idle(self):
        assert Simulator().step() is False

    def test_pending_events_counts_queue(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=40))
    def test_processed_count_matches_schedule_count(self, delays):
        sim = Simulator()
        for d in delays:
            sim.schedule(d, lambda: None)
        sim.run()
        assert sim.processed_events == len(delays)


class TestEvent:
    def test_orders_by_time_then_seq(self):
        a = Event(1.0, 0, lambda: None)
        b = Event(1.0, 1, lambda: None)
        c = Event(0.5, 2, lambda: None)
        assert c < a < b


class TestFIFOServer:
    def test_idle_server_starts_immediately(self):
        server = FIFOServer()
        assert server.serve(3.0, 2.0) == (3.0, 5.0)

    def test_busy_server_queues(self):
        server = FIFOServer()
        server.serve(0.0, 2.0)
        assert server.serve(1.0, 1.0) == (2.0, 3.0)

    def test_busy_time_accumulates(self):
        server = FIFOServer()
        server.serve(0.0, 2.0)
        server.serve(0.0, 3.0)
        assert server.busy_time == 5.0
        assert server.requests == 2

    def test_negative_duration_raises(self):
        with pytest.raises(EngineError):
            FIFOServer().serve(0.0, -1.0)

    def test_negative_arrival_raises(self):
        with pytest.raises(EngineError):
            FIFOServer().serve(-1.0, 1.0)

    def test_reset(self):
        server = FIFOServer()
        server.serve(0.0, 5.0)
        server.reset()
        assert server.free_at == 0.0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0, max_value=10),
            ),
            min_size=1,
            max_size=50,
        )
    )
    def test_fifo_invariants(self, jobs):
        """Service windows never overlap, never start before arrival, and
        preserve submission order when arrivals are sorted."""
        jobs = sorted(jobs, key=lambda j: j[0])
        server = FIFOServer()
        windows = [server.serve(a, d) for a, d in jobs]
        for (arrival, duration), (start, end) in zip(jobs, windows):
            assert start >= arrival
            assert end == pytest.approx(start + duration)
        for (_, prev_end), (next_start, _) in zip(windows, windows[1:]):
            assert next_start >= prev_end


class TestSimulatorEdgeCases:
    def test_run_until_skips_cancelled_head(self):
        sim = Simulator()
        hits = []
        head = sim.schedule(1.0, hits.append, "cancelled")
        sim.schedule(2.0, hits.append, "kept")
        head.cancel()
        sim.run(until=5.0)
        assert hits == ["kept"]
        assert sim.now == 5.0

    def test_schedule_at_exactly_now_is_allowed(self):
        sim = Simulator(start_time=3.0)
        hits = []
        sim.schedule_at(3.0, hits.append, "now")
        sim.run()
        assert hits == ["now"]
        assert sim.now == 3.0

    def test_run_until_boundary_event_executes(self):
        sim = Simulator()
        hits = []
        sim.schedule(5.0, hits.append, "boundary")
        sim.run(until=5.0)
        assert hits == ["boundary"]
