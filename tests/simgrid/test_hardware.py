"""Tests for hardware specs and the operation cost model."""

import pytest
from hypothesis import given, strategies as st

from repro.simgrid.errors import ConfigurationError
from repro.simgrid.hardware import (
    ClusterSpec,
    CPUSpec,
    DiskSpec,
    NICSpec,
    OpCategory,
    OpVector,
)

from tests.conftest import small_cluster_spec

nonneg = st.floats(min_value=0.0, max_value=1e12, allow_nan=False)


class TestOpVector:
    def test_zero_identity(self):
        v = OpVector(flop=3, mem=2, branch=1)
        assert (v + OpVector.zero()) == v

    @given(nonneg, nonneg, nonneg, nonneg, nonneg, nonneg)
    def test_addition_componentwise(self, f1, m1, b1, f2, m2, b2):
        total = OpVector(f1, m1, b1) + OpVector(f2, m2, b2)
        assert total.flop == f1 + f2
        assert total.mem == m1 + m2
        assert total.branch == b1 + b2

    @given(nonneg, nonneg, nonneg, st.floats(min_value=0, max_value=1e6))
    def test_scalar_multiplication(self, f, m, b, k):
        v = OpVector(f, m, b) * k
        assert v.flop == f * k and v.mem == m * k and v.branch == b * k

    def test_rmul(self):
        assert (2 * OpVector(flop=1)).flop == 2.0

    def test_total(self):
        assert OpVector(1, 2, 3).total == 6.0

    def test_sum(self):
        vectors = [OpVector(flop=1), OpVector(mem=2), OpVector(branch=3)]
        total = OpVector.sum(vectors)
        assert (total.flop, total.mem, total.branch) == (1, 2, 3)

    def test_as_dict(self):
        assert OpVector(1, 2, 3).as_dict() == {"flop": 1, "mem": 2, "branch": 3}

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            OpVector(flop=-1)


class TestCPUSpec:
    def make(self, flop=1e8, mem=2e8, branch=5e7):
        return CPUSpec(
            name="cpu",
            rates={
                OpCategory.FLOP: flop,
                OpCategory.MEM: mem,
                OpCategory.BRANCH: branch,
            },
        )

    def test_compute_time(self):
        cpu = self.make()
        ops = OpVector(flop=1e8, mem=2e8, branch=5e7)
        assert cpu.compute_time(ops) == pytest.approx(3.0)

    def test_compute_time_is_additive(self):
        cpu = self.make()
        a, b = OpVector(flop=5e7), OpVector(mem=1e8, branch=1e7)
        assert cpu.compute_time(a + b) == pytest.approx(
            cpu.compute_time(a) + cpu.compute_time(b)
        )

    def test_missing_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            CPUSpec(name="bad", rates={OpCategory.FLOP: 1e8})

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make(mem=0.0)

    def test_speedup_depends_on_mix(self):
        """Two machines can rank differently for different op mixes — the
        effect behind the paper's per-application scaling factors."""
        slow = self.make()
        fast_branch = self.make(flop=2e8, mem=4e8, branch=5e8)
        branchy = OpVector(branch=1e8)
        floppy = OpVector(flop=1e8)
        assert fast_branch.speedup_over(slow, branchy) == pytest.approx(10.0)
        assert fast_branch.speedup_over(slow, floppy) == pytest.approx(2.0)

    def test_speedup_empty_vector_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make().speedup_over(self.make(), OpVector.zero())


class TestDiskSpec:
    def test_read_time(self):
        disk = DiskSpec(seek_s=0.01, stream_bw=1e6)
        assert disk.read_time(1e6) == pytest.approx(1.01)

    def test_contended_read_uses_lower_bandwidth(self):
        disk = DiskSpec(seek_s=0.0, stream_bw=1e6)
        assert disk.read_time(1e6, effective_bw=5e5) == pytest.approx(2.0)

    def test_contention_never_speeds_up(self):
        disk = DiskSpec(seek_s=0.0, stream_bw=1e6)
        assert disk.read_time(1e6, effective_bw=2e6) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DiskSpec(seek_s=-1, stream_bw=1e6)
        with pytest.raises(ConfigurationError):
            DiskSpec(seek_s=0, stream_bw=0)
        with pytest.raises(ConfigurationError):
            DiskSpec(seek_s=0, stream_bw=1e6).read_time(-5)


class TestNICSpec:
    def test_send_time(self):
        nic = NICSpec(latency_s=0.001, bw=1e6)
        assert nic.send_time(1e6) == pytest.approx(1.001)

    def test_effective_bandwidth_cap(self):
        nic = NICSpec(latency_s=0.0, bw=1e7)
        assert nic.send_time(1e6, effective_bw=1e6) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NICSpec(latency_s=-1, bw=1e6)
        with pytest.raises(ConfigurationError):
            NICSpec(latency_s=0, bw=0)


class TestClusterSpec:
    def test_require_nodes(self):
        cluster = small_cluster_spec(num_nodes=4)
        cluster.require_nodes(4)
        with pytest.raises(ConfigurationError):
            cluster.require_nodes(5)
        with pytest.raises(ConfigurationError):
            cluster.require_nodes(0)

    def test_with_nodes(self):
        cluster = small_cluster_spec(num_nodes=4)
        assert cluster.with_nodes(8).num_nodes == 8
        assert cluster.num_nodes == 4  # original untouched

    def test_backplane_contention_kicks_in(self):
        cluster = small_cluster_spec()
        # disk stream is 1e6, backplane 6e6: contention above 6 nodes.
        assert cluster.effective_disk_bw(1) == pytest.approx(1e6)
        assert cluster.effective_disk_bw(6) == pytest.approx(1e6)
        assert cluster.effective_disk_bw(8) == pytest.approx(7.5e5)

    def test_effective_disk_bw_requires_positive_nodes(self):
        with pytest.raises(ConfigurationError):
            small_cluster_spec().effective_disk_bw(0)

    def test_gather_message_time(self):
        cluster = small_cluster_spec()
        expected = cluster.intra_latency_s + 1e4 / cluster.intra_bw
        assert cluster.gather_message_time(1e4) == pytest.approx(expected)
        with pytest.raises(ConfigurationError):
            cluster.gather_message_time(-1)

    def test_effective_cache_disk_falls_back_to_node_disk(self):
        cluster = small_cluster_spec()
        assert cluster.effective_cache_disk == cluster.cache_disk
        import dataclasses

        bare = dataclasses.replace(cluster, cache_disk=None)
        assert bare.effective_cache_disk == bare.node.disk

    def test_negative_overhead_rejected(self):
        import dataclasses

        with pytest.raises(ConfigurationError):
            dataclasses.replace(small_cluster_spec(), node_startup_s=-1.0)
