"""Tests for the grid topology."""

import pytest

from repro.simgrid.errors import TopologyError
from repro.simgrid.topology import GridTopology, SiteKind

from tests.conftest import small_cluster_spec


@pytest.fixture
def topo():
    cluster = small_cluster_spec()
    t = GridTopology()
    t.add_site("repo-a", SiteKind.REPOSITORY, cluster)
    t.add_site("repo-b", SiteKind.REPOSITORY, cluster)
    t.add_site("hpc-1", SiteKind.COMPUTE, cluster)
    t.add_site("hpc-2", SiteKind.COMPUTE, cluster)
    t.connect("repo-a", "hpc-1", bw=2e6, latency_s=0.01)
    t.connect("repo-a", "hpc-2", bw=5e5, latency_s=0.02)
    t.connect("repo-b", "hpc-2", bw=1e6, latency_s=0.005)
    t.connect("hpc-1", "hpc-2", bw=1e7, latency_s=0.001)
    return t


class TestGridTopology:
    def test_site_lookup(self, topo):
        assert topo.site("repo-a").kind is SiteKind.REPOSITORY
        assert topo.site("hpc-1").kind is SiteKind.COMPUTE

    def test_unknown_site(self, topo):
        with pytest.raises(TopologyError):
            topo.site("nowhere")

    def test_duplicate_site_rejected(self, topo):
        with pytest.raises(TopologyError):
            topo.add_site("repo-a", SiteKind.REPOSITORY, small_cluster_spec())

    def test_kind_filters(self, topo):
        assert {s.name for s in topo.repositories()} == {"repo-a", "repo-b"}
        assert {s.name for s in topo.compute_sites()} == {"hpc-1", "hpc-2"}

    def test_direct_bandwidth(self, topo):
        assert topo.bandwidth_between("repo-a", "hpc-1") == 2e6

    def test_multi_hop_bandwidth_is_bottleneck(self, topo):
        # repo-b -> hpc-2 direct is 1e6; repo-b -> hpc-1 must route via
        # hpc-2 and is limited by the narrowest edge.
        assert topo.bandwidth_between("repo-b", "hpc-1") == 1e6

    def test_latency_is_additive(self, topo):
        assert topo.latency_between("repo-b", "hpc-1") == pytest.approx(0.006)

    def test_latency_to_self_is_zero(self, topo):
        assert topo.latency_between("hpc-1", "hpc-1") == 0.0

    def test_bandwidth_to_self_rejected(self, topo):
        with pytest.raises(TopologyError):
            topo.bandwidth_between("hpc-1", "hpc-1")

    def test_disconnected_sites(self):
        t = GridTopology()
        t.add_site("a", SiteKind.REPOSITORY, small_cluster_spec())
        t.add_site("b", SiteKind.COMPUTE, small_cluster_spec())
        with pytest.raises(TopologyError):
            t.path("a", "b")

    def test_self_link_rejected(self, topo):
        with pytest.raises(TopologyError):
            topo.connect("hpc-1", "hpc-1", bw=1e6)

    def test_invalid_link_parameters(self, topo):
        with pytest.raises(TopologyError):
            topo.connect("repo-a", "repo-b", bw=0)
        with pytest.raises(TopologyError):
            topo.connect("repo-a", "repo-b", bw=1e6, latency_s=-1)

    def test_len_and_contains(self, topo):
        assert len(topo) == 4
        assert "repo-a" in topo
        assert "nowhere" not in topo
