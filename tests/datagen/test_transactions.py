"""Tests for the transaction generator."""

import numpy as np
import pytest

from repro.datagen.transactions import (
    default_patterns,
    generate_transactions,
    make_transaction_dataset,
)
from repro.simgrid.errors import ConfigurationError


class TestGenerateTransactions:
    def test_shape_and_values(self):
        data = generate_transactions(500, 32, [(0, 1)], seed=1)
        assert data.shape == (500, 32)
        assert set(np.unique(data)) <= {0.0, 1.0}

    def test_deterministic(self):
        a = generate_transactions(200, 16, [(0, 1)], seed=5)
        b = generate_transactions(200, 16, [(0, 1)], seed=5)
        np.testing.assert_array_equal(a, b)

    def test_pattern_support_close_to_probability(self):
        data = generate_transactions(
            4000, 32, [(3, 7, 11)], pattern_prob=0.4, noise_items=0.0, seed=2
        )
        support = float(data[:, [3, 7, 11]].all(axis=1).mean())
        assert support == pytest.approx(0.4, abs=0.05)

    def test_non_pattern_itemsets_rare(self):
        data = generate_transactions(
            4000, 32, [(3, 7)], pattern_prob=0.4, noise_items=1.0, seed=3
        )
        # a random unplanted pair should have tiny joint support
        support = float(data[:, [20, 25]].all(axis=1).mean())
        assert support < 0.05

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_transactions(0, 16, [])
        with pytest.raises(ConfigurationError):
            generate_transactions(10, 16, [(20,)])
        with pytest.raises(ConfigurationError):
            generate_transactions(10, 16, [()])
        with pytest.raises(ConfigurationError):
            generate_transactions(10, 16, [(0,)], pattern_prob=1.5)


class TestDefaultPatterns:
    def test_disjoint(self):
        patterns = default_patterns(48, seed=0)
        seen = set()
        for pattern in patterns:
            assert not (set(pattern) & seen)
            seen.update(pattern)

    def test_sorted_tuples(self):
        for pattern in default_patterns(48, seed=1):
            assert list(pattern) == sorted(pattern)


class TestTransactionDataset:
    def test_metadata_and_chunks(self):
        ds = make_transaction_dataset("tx", 640, 32, num_chunks=16, seed=4)
        assert ds.meta["kind"] == "transactions"
        assert ds.meta["num_items"] == 32
        assert len(ds.meta["true_patterns"]) >= 3
        assert ds.num_chunks == 16
        rows = sum(ds.chunk_payload(i).shape[0] for i in range(16))
        assert rows == 640
