"""Tests for the Gaussian-mixture point generators."""

import numpy as np
import pytest

from repro.datagen.points import (
    make_blobs,
    make_labeled_points,
    make_point_dataset,
    make_training_dataset,
)
from repro.simgrid.errors import ConfigurationError


class TestMakeBlobs:
    def test_shapes(self):
        points, centers, labels = make_blobs(200, 3, 5, seed=1)
        assert points.shape == (200, 3)
        assert centers.shape == (5, 3)
        assert labels.shape == (200,)
        assert points.dtype == np.float32

    def test_deterministic(self):
        a, _, _ = make_blobs(100, 2, 3, seed=42)
        b, _, _ = make_blobs(100, 2, 3, seed=42)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a, _, _ = make_blobs(100, 2, 3, seed=1)
        b, _, _ = make_blobs(100, 2, 3, seed=2)
        assert not np.array_equal(a, b)

    def test_points_cluster_near_centers(self):
        points, centers, labels = make_blobs(500, 2, 4, spread=0.1, seed=3)
        dists = np.linalg.norm(points - centers[labels], axis=1)
        assert float(dists.mean()) < 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_blobs(0, 2, 3)
        with pytest.raises(ConfigurationError):
            make_blobs(2, 2, 3)  # fewer points than centers


class TestMakeLabeledPoints:
    def test_label_column_appended(self):
        records, centers = make_labeled_points(100, 3, 4, seed=5)
        assert records.shape == (100, 4)
        labels = records[:, 3]
        assert set(np.unique(labels)) <= set(float(i) for i in range(4))


class TestDatasetBuilders:
    def test_point_dataset_metadata(self):
        ds = make_point_dataset("pts", 320, 4, 6, num_chunks=16, seed=7)
        assert ds.meta["kind"] == "points"
        assert ds.meta["num_dims"] == 4
        assert ds.meta["true_centers"].shape == (6, 4)
        assert ds.num_chunks == 16

    def test_training_dataset_metadata(self):
        ds = make_training_dataset("train", 320, 4, 8, num_chunks=16, seed=7)
        assert ds.meta["kind"] == "labeled-points"
        assert ds.meta["num_classes"] == 8
        assert ds.num_dims == 5  # features + label

    def test_explicit_nbytes(self):
        ds = make_point_dataset("pts", 320, 4, 6, num_chunks=16, nbytes=1e6)
        assert ds.nbytes == 1e6
