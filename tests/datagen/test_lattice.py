"""Tests for the silicon-lattice generator."""

import numpy as np
import pytest

from repro.datagen.lattice import (
    DEFECT_TEMPLATES,
    DETECTION_THRESHOLD,
    LatticeDataset,
    generate_lattice,
    make_lattice_dataset,
    template_signature,
)
from repro.simgrid.errors import ConfigurationError


class TestTemplates:
    def test_all_templates_have_cells(self):
        for name, cells in DEFECT_TEMPLATES.items():
            assert cells, name

    def test_signature_translation_invariant(self):
        cells = [(2, 3, 4, 0), (2, 3, 5, 0)]
        shifted = [(7, 1, 9, 0), (7, 1, 10, 0)]
        assert template_signature(cells) == template_signature(shifted)

    def test_signature_distinguishes_species(self):
        vac = template_signature([(0, 0, 0, 0)])
        dop = template_signature([(0, 0, 0, 1)])
        assert vac != dop

    def test_signatures_unique_across_templates(self):
        signatures = {
            template_signature(cells) for cells in DEFECT_TEMPLATES.values()
        }
        assert len(signatures) == len(DEFECT_TEMPLATES)

    def test_empty_signature_rejected(self):
        with pytest.raises(ConfigurationError):
            template_signature([])


class TestGenerateLattice:
    def test_shapes(self):
        disp, species, truth = generate_lattice(30, 10, 10, 5, seed=1)
        assert disp.shape == (30, 10, 10)
        assert species.shape == (30, 10, 10)
        assert len(truth) == 5

    def test_deterministic(self):
        a = generate_lattice(20, 10, 10, 4, seed=3)
        b = generate_lattice(20, 10, 10, 4, seed=3)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])
        assert a[2] == b[2]

    def test_thermal_noise_below_threshold(self):
        disp, _, truth = generate_lattice(20, 10, 10, 0, seed=2)
        assert disp.max() < DETECTION_THRESHOLD

    def test_defect_sites_above_threshold(self):
        disp, _, truth = generate_lattice(30, 12, 12, 6, seed=4)
        for defect in truth:
            z, y, x = defect["anchor"]
            assert disp[z, y, x] > DETECTION_THRESHOLD

    def test_detected_component_count_matches_truth(self):
        from scipy import ndimage

        disp, _, truth = generate_lattice(40, 12, 12, 8, seed=5)
        _, num = ndimage.label(disp > DETECTION_THRESHOLD)
        assert num == len(truth)

    def test_impossible_placement_raises(self):
        with pytest.raises(ConfigurationError):
            generate_lattice(6, 6, 6, 100, seed=6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_lattice(2, 10, 10, 1)
        with pytest.raises(ConfigurationError):
            generate_lattice(10, 10, 10, -1)


class TestLatticeDataset:
    def test_chunks_partition_layers(self):
        ds = make_lattice_dataset("l", 48, 10, 10, num_chunks=16, seed=7)
        covered = 0
        for i in range(len(ds)):
            payload = ds.chunk_payload(i)
            covered += (
                payload["displacement"].shape[0]
                - payload["halo_lo"]
                - payload["halo_hi"]
            )
        assert covered == 48

    def test_chunk_nbytes_sums_to_total(self):
        ds = make_lattice_dataset("l", 48, 10, 10, num_chunks=16, nbytes=2e5, seed=7)
        assert sum(ds.chunk_nbytes(i) for i in range(16)) == pytest.approx(2e5)

    def test_metadata(self):
        ds = make_lattice_dataset("l", 48, 10, 10, num_chunks=16, seed=7)
        assert ds.meta["kind"] == "si-lattice"
        assert ds.meta["detection_threshold"] == DETECTION_THRESHOLD
        assert len(ds.meta["true_defects"]) > 0

    def test_defect_density_scales_with_volume(self):
        small = make_lattice_dataset("s", 32, 12, 12, num_chunks=8, seed=8)
        large = make_lattice_dataset("l", 128, 12, 12, num_chunks=8, seed=8)
        assert len(large.meta["true_defects"]) > len(small.meta["true_defects"])

    def test_shape_mismatch_rejected(self):
        disp, species, _ = generate_lattice(20, 10, 10, 2, seed=9)
        with pytest.raises(ConfigurationError):
            LatticeDataset("bad", disp, species[:10], num_chunks=4)
