"""Tests for the synthetic CFD velocity-field generator."""

import numpy as np
import pytest

from repro.datagen.cfd import FieldDataset, generate_velocity_field, make_field_dataset
from repro.simgrid.errors import ConfigurationError


class TestGenerateVelocityField:
    def test_shapes_and_truth(self):
        u, v, truth = generate_velocity_field(100, 120, 4, seed=1)
        assert u.shape == (100, 120)
        assert v.shape == (100, 120)
        assert len(truth) == 4
        assert u.dtype == np.float32

    def test_deterministic(self):
        u1, v1, t1 = generate_velocity_field(64, 64, 3, seed=9)
        u2, v2, t2 = generate_velocity_field(64, 64, 3, seed=9)
        np.testing.assert_array_equal(u1, u2)
        np.testing.assert_array_equal(v1, v2)
        assert t1 == t2

    def test_vortices_have_high_vorticity_cores(self):
        u, v, truth = generate_velocity_field(128, 128, 3, seed=2)
        dvdx = np.gradient(v.astype(np.float64), axis=1)
        dudy = np.gradient(u.astype(np.float64), axis=0)
        vorticity = dvdx - dudy
        for vortex in truth:
            cy, cx = int(round(vortex["cy"])), int(round(vortex["cx"]))
            core = np.abs(vorticity[cy - 1 : cy + 2, cx - 1 : cx + 2])
            assert core.max() > 0.3  # well above the detection threshold

    def test_background_is_calm(self):
        u, v, _ = generate_velocity_field(64, 64, 0, seed=3)
        dvdx = np.gradient(v.astype(np.float64), axis=1)
        dudy = np.gradient(u.astype(np.float64), axis=0)
        assert np.abs(dvdx - dudy).max() < 0.01

    def test_min_separation_enforced(self):
        _, _, truth = generate_velocity_field(200, 200, 6, seed=4)
        for i, a in enumerate(truth):
            for b in truth[i + 1 :]:
                dist = np.hypot(a["cy"] - b["cy"], a["cx"] - b["cx"])
                assert dist >= 4.0 * a["core_radius"] - 1e-9

    def test_impossible_placement_raises(self):
        with pytest.raises(ConfigurationError):
            generate_velocity_field(32, 32, 50, seed=5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_velocity_field(4, 64, 1)
        with pytest.raises(ConfigurationError):
            generate_velocity_field(64, 64, -1)


class TestFieldDataset:
    def test_chunks_partition_rows(self):
        ds = make_field_dataset("f", 96, 64, num_chunks=12, seed=6)
        covered = 0
        for i in range(len(ds)):
            payload = ds.chunk_payload(i)
            interior_rows = (
                payload["u"].shape[0] - payload["halo_lo"] - payload["halo_hi"]
            )
            covered += interior_rows
        assert covered == 96

    def test_halo_present_in_middle_chunks(self):
        ds = make_field_dataset("f", 96, 64, num_chunks=12, seed=6)
        first = ds.chunk_payload(0)
        middle = ds.chunk_payload(5)
        last = ds.chunk_payload(11)
        assert first["halo_lo"] == 0 and first["halo_hi"] == 1
        assert middle["halo_lo"] == 1 and middle["halo_hi"] == 1
        assert last["halo_lo"] == 1 and last["halo_hi"] == 0

    def test_chunk_nbytes_sums_to_total(self):
        ds = make_field_dataset("f", 96, 64, num_chunks=12, nbytes=1e5, seed=6)
        assert sum(ds.chunk_nbytes(i) for i in range(12)) == pytest.approx(1e5)

    def test_default_vortex_density_scales_with_area(self):
        small = make_field_dataset("s", 80, 100, num_chunks=8, seed=7)
        large = make_field_dataset("l", 320, 100, num_chunks=8, seed=7)
        assert len(large.meta["true_vortices"]) > len(small.meta["true_vortices"])

    def test_shape_mismatch_rejected(self):
        u, v, _ = generate_velocity_field(64, 64, 2, seed=8)
        with pytest.raises(ConfigurationError):
            FieldDataset("bad", u, v[:32], num_chunks=4)

    def test_too_many_chunks_rejected(self):
        u, v, _ = generate_velocity_field(64, 64, 2, seed=8)
        with pytest.raises(ConfigurationError):
            FieldDataset("bad", u, v, num_chunks=65)
