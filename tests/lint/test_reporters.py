"""Golden outputs for the text / JSON / GitHub reporters."""

from __future__ import annotations

import json

import pytest

from repro.lint import (
    Baseline,
    Finding,
    Fix,
    LintError,
    LintReport,
    render,
    render_github,
    render_json,
    render_text,
)


def make_report():
    fixable = Finding(
        code="REP003",
        message="json.dumps() without sort_keys=True is not canonical",
        path="src/repro/a.py",
        line=3,
        col=5,
        snippet="json.dumps(x)",
        fix=Fix(3, 4, 3, 17, "json.dumps(x, sort_keys=True)"),
    )
    plain = Finding(
        code="REP005",
        message="raise of builtin ValueError escapes the hierarchy",
        path="src/repro/b.py",
        line=9,
        col=1,
        snippet="raise ValueError('no')",
    )
    baselined = Finding(
        code="REP006",
        message="float equality",
        path="src/repro/c.py",
        line=2,
        col=1,
        snippet="x == 0.0",
    )
    baseline = Baseline.from_findings([baselined])
    partition = baseline.partition([fixable, plain, baselined])
    return LintReport(partition=partition, files_scanned=3)


GOLDEN_TEXT = """\
src/repro/a.py:3:5 REP003 [fixable] json.dumps() without sort_keys=True is not canonical
src/repro/b.py:9:1 REP005 raise of builtin ValueError escapes the hierarchy
2 new finding(s), 1 baselined, 3 file(s) scanned"""

GOLDEN_GITHUB = """\
::error file=src/repro/a.py,line=3,col=5,title=REP003::json.dumps() without sort_keys=True is not canonical [REP003]
::error file=src/repro/b.py,line=9,col=1,title=REP005::raise of builtin ValueError escapes the hierarchy [REP005]
::notice title=repro.lint::2 new, 1 baselined, 3 files"""


def test_text_golden():
    assert render_text(make_report()) == GOLDEN_TEXT


def test_github_golden():
    assert render_github(make_report()) == GOLDEN_GITHUB


def test_json_is_canonical_and_complete():
    output = render_json(make_report())
    # canonical: sorted keys, so re-dumping the parse is a fixed point
    parsed = json.loads(output)
    assert json.dumps(parsed, indent=2, sort_keys=True) == output
    assert parsed["summary"] == {
        "new": 2,
        "suppressed": 1,
        "stale_baseline_entries": 0,
        "files_scanned": 3,
        "fixed": 0,
        "ok": False,
    }
    codes = [f["code"] for f in parsed["findings"]]
    assert codes == ["REP003", "REP005"]
    assert parsed["findings"][0]["fixable"] is True
    assert parsed["suppressed"][0]["code"] == "REP006"


def test_stale_entries_render_in_text():
    baseline = Baseline.from_findings(
        [
            Finding(
                code="REP005",
                message="m",
                path="src/repro/gone.py",
                line=1,
                col=1,
                snippet="raise ValueError",
            )
        ]
    )
    report = LintReport(
        partition=baseline.partition([]), files_scanned=1
    )
    text = render_text(report)
    assert "stale baseline entry: REP005" in text
    assert report.ok  # stale entries alone never fail the gate


def test_github_escapes_newlines():
    finding = Finding(
        code="REP001",
        message="bad\nclock 100%",
        path="src/repro/a.py",
        line=1,
        col=1,
        snippet="time.time()",
    )
    report = LintReport(
        partition=Baseline.empty().partition([finding]), files_scanned=1
    )
    out = render_github(report)
    assert "%0A" in out and "100%25" in out
    assert "\nclock" not in out.split("\n")[0]


def test_render_dispatch_and_unknown_format():
    report = make_report()
    assert render(report, "text") == render_text(report)
    assert render(report, "json") == render_json(report)
    assert render(report, "github") == render_github(report)
    with pytest.raises(LintError, match="unknown report format"):
        render(report, "xml")


def test_exit_code_tracks_new_findings():
    dirty = make_report()
    assert dirty.exit_code == 1
    clean = LintReport(
        partition=Baseline.empty().partition([]), files_scanned=0
    )
    assert clean.exit_code == 0
