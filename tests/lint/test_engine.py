"""Engine and registry invariants: stable codes, dispatch, parse errors."""

from __future__ import annotations

import re

import pytest

from repro.lint import (
    PARSE_ERROR_CODE,
    LintError,
    RULES,
    all_rules,
    iter_python_files,
    lint_paths,
    lint_source,
)

EXPECTED_CODES = [f"REP00{i}" for i in range(1, 10)]


def test_all_nine_rules_registered_with_stable_codes():
    rules = all_rules()
    assert [r.code for r in rules] == EXPECTED_CODES
    assert sorted(RULES) == EXPECTED_CODES


def test_rule_metadata_is_complete():
    for rule in all_rules():
        assert re.match(r"^REP\d{3}$", rule.code)
        assert rule.name and rule.summary and rule.rationale
        assert rule.node_types, f"{rule.code} declares no node interest"


def test_codes_never_collide_with_the_parse_error_code():
    assert PARSE_ERROR_CODE not in RULES


def test_syntax_error_becomes_a_rep000_finding():
    findings = lint_source("def broken(:\n", "src/repro/broken.py")
    assert len(findings) == 1
    assert findings[0].code == PARSE_ERROR_CODE
    assert "does not parse" in findings[0].message


def test_findings_are_sorted_and_deterministic(fixtures_dir):
    source = (fixtures_dir / "rep001_bad.py").read_text()
    first = lint_source(source, "src/repro/a.py")
    second = lint_source(source, "src/repro/a.py")
    assert first == second
    assert first == sorted(first, key=lambda f: f.sort_key())


def test_iter_python_files_deduplicates_and_sorts(tmp_path):
    (tmp_path / "b.py").write_text("x = 1\n")
    (tmp_path / "a.py").write_text("y = 2\n")
    sub = tmp_path / "pkg"
    sub.mkdir()
    (sub / "c.py").write_text("z = 3\n")
    (sub / "__pycache__").mkdir()
    (sub / "__pycache__" / "junk.py").write_text("bad(\n")
    files = iter_python_files([tmp_path, tmp_path / "a.py"])
    names = [f.name for f in files]
    assert names == ["a.py", "b.py", "c.py"]


def test_missing_path_is_a_lint_error(tmp_path):
    with pytest.raises(LintError, match="no such file"):
        lint_paths([tmp_path / "nope"], root=tmp_path)


def test_lint_paths_reports_relative_posix_paths(tmp_path, fixtures_dir):
    target = tmp_path / "src" / "repro" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text((fixtures_dir / "rep005_bad.py").read_text())
    findings = lint_paths([tmp_path], root=tmp_path)
    assert {f.path for f in findings} == {"src/repro/mod.py"}


def test_single_rule_subset_runs_only_that_rule(fixtures_dir):
    from repro.lint.rules.rep001_wall_clock import WallClockRule

    source = (fixtures_dir / "rep002_bad.py").read_text()
    assert lint_source(source, "src/repro/a.py", [WallClockRule()]) == []
