"""REP001 bad: model code reading the host clock."""

import time
from datetime import datetime


def stamp_run(record):
    record["started"] = time.time()
    record["tick"] = time.monotonic()
    record["when"] = datetime.now().isoformat()
    return record
