"""REP002 good: every generator takes an explicit seed."""

import random

import numpy as np


def jitter(values, seed):
    rng = random.Random(f"{seed}:jitter")
    rng.shuffle(values)
    noise = np.random.default_rng(seed)
    return rng, noise
