"""REP005 bad: builtin exceptions escaping the error model."""


def check(job_id, count):
    if not job_id:
        raise ValueError("jobs need a non-empty id")
    if count < 0:
        raise RuntimeError
    return job_id, count
