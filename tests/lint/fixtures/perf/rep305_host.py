"""REP305 host: ``popular`` is statically locatable but undeclared.

The test pairs this module with a profile document in which ``popular``
dominates the call counts; it is reachable from no ``@hot`` entry, so
the undeclared-hot direction of the cross-validation must flag it.
"""

from repro.hotpath import hot


@hot
def declared_entry(xs):
    return [helper(x) for x in xs]


def helper(x):
    return x + 1


def popular(x):
    return x - 1
