"""REP301 bad: a hot loop constructs a dict-backed record per event."""

from repro.hotpath import hot


class Sample:
    def __init__(self, t, v):
        self.t = t
        self.v = v


@hot
def drain(pairs):
    out = []
    for t, v in pairs:
        out.append(Sample(t, v))  # REP301: per-iteration dict allocation
    return out
