"""REP304 good: the per-iteration callee is itself declared hot."""

from repro.hotpath import hot


@hot
def mystery(x):
    return x * 2


@hot
def drive(events):
    out = []
    for event in events:
        out.append(mystery(event))
    return out
