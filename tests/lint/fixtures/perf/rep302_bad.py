"""REP302 bad: the planted pool-safe quadratic scan.

``survivors`` is pure by the effect layer's lights — no IO, no shared
state, no parameter mutation — and the pool would happily run it.  The
membership test against a list-built collection is still O(n) per job:
quadratic over the stream, invisible at test scale.  Purity and
asymptotics are independent axes; this fixture is the proof.
"""

from repro.hotpath import hot


@hot
def survivors(jobs, done_ids):
    done = list(done_ids)
    kept = []
    for job in jobs:
        if job in done:  # REP302: linear membership per iteration
            kept.append(job)
    return kept
