"""REP302 good: hashed membership — the scan is O(1) per iteration."""

from repro.hotpath import hot


@hot
def survivors(jobs, done_ids):
    done = set(done_ids)
    kept = []
    for job in jobs:
        if job in done:
            kept.append(job)
    return kept
