"""REP304 bad: a hot loop calls a project function nobody vouched for.

``mystery`` is absent from the determinism certificate and carries no
``@hot`` declaration: unknown-cost code on the hottest path.
"""

from repro.hotpath import hot


def mystery(x):
    return x * 2


@hot
def drive(events):
    out = []
    for event in events:
        out.append(mystery(event))  # REP304: uncertified, undeclared
    return out
