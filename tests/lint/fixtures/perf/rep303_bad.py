"""REP303 bad: a certified-pure call repeated with invariant arguments.

``unit_cost`` must appear as tier 'pure' in the determinism certificate
the test supplies; purity is the licence to hoist.
"""

from repro.hotpath import hot


def unit_cost(alpha, beta):
    return alpha * beta + 1.0


@hot
def total(events, alpha, beta):
    acc = 0.0
    for event in events:
        acc += event * unit_cost(alpha, beta)  # REP303: invariant inputs
    return acc
