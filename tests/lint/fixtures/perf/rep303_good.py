"""REP303 good: the invariant pure call is hoisted above the loop."""

from repro.hotpath import hot


def unit_cost(alpha, beta):
    return alpha * beta + 1.0


@hot
def total(events, alpha, beta):
    cost = unit_cost(alpha, beta)
    acc = 0.0
    for event in events:
        acc += event * cost
    return acc
