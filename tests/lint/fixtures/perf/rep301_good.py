"""REP301 good: the per-event record is slotted — fixed-size struct."""

from repro.hotpath import hot


class Sample:
    __slots__ = ("t", "v")

    def __init__(self, t, v):
        self.t = t
        self.v = v


@hot
def drain(pairs):
    out = []
    for t, v in pairs:
        out.append(Sample(t, v))
    return out
