"""REP006 bad: exact equality against float literals in model math."""


def needs_transfer(t_network, factor):
    if t_network == 0.0:
        return False
    return factor != 1.0
