"""REP004 good: persistence through the atomic durable layer."""

import pathlib

from repro.core.durable import atomic_write_text


def persist(path: pathlib.Path, text: str) -> None:
    atomic_write_text(path, text)
    with open(path) as fh:  # read-mode open is fine
        fh.read()
