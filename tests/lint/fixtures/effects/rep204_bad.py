"""REP204: mutable default, and mutate-and-return parameter aliasing."""


def accumulate(row, bucket=[]):
    bucket.append(row)
    return bucket


def normalize(rows):
    rows.append("sentinel")
    return rows
