"""REP205 counterexample: only certified-pure work crosses the pool."""

from concurrent.futures import ProcessPoolExecutor


def scaled(item, factor):
    return item * factor


def run_all(items):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(scaled, item, 2.0) for item in items]
        return [future.result() for future in futures]
