"""REP204 counterexamples: fresh state per call; fluent self-return."""


def accumulate(row, bucket=None):
    out = list(bucket or [])
    out.append(row)
    return out


class Builder:
    def __init__(self):
        self.rows = []

    def with_row(self, row):
        # Mutate-and-return of *self* is the fluent-builder idiom, exempt.
        self.rows.append(row)
        return self
