"""REP203: set-iteration order reaches a serialized artifact.

``collect_ids`` leaks the iteration order of a set as a list; the list
crosses a function boundary and lands in a durable JSON artifact.
"""

from repro.core.durable import atomic_write_json


def collect_ids(rows):
    seen = set()
    for row in rows:
        seen.add(row.entry_id)
    return [entry_id for entry_id in seen]


def write_report(path, rows):
    atomic_write_json(path, {"ids": collect_ids(rows)})
