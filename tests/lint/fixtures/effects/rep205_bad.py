"""REP205: submitting functions the analysis cannot certify pool-safe."""

import time
from concurrent.futures import ProcessPoolExecutor


def stamped(item):
    # Ambient nondeterminism: wall-clock read makes this uncertifiable.
    return (item, time.time())


def run_all(items, jobs):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(stamped, item) for item in items]
        # Dynamic callable: not statically analyzable, cannot certify.
        futures += [pool.submit(job) for job in jobs]
        return [future.result() for future in futures]
