"""REP202: closures capture enclosing state across the pool boundary.

This is the planted fixture the intraprocedural rules (REP001-REP009)
and the flow family (REP101-REP104) both miss: no clock, no RNG, no
serialization sink — just a lambda smuggling a local across a process
boundary, where fork-vs-spawn start methods make the captured value's
visibility platform-dependent.
"""

from concurrent.futures import ProcessPoolExecutor


def run_all(items):
    scale = 2.5

    def job(item):
        return item * scale

    with ProcessPoolExecutor() as pool:
        lambdas = [pool.submit(lambda item: item * scale, item) for item in items]
        named = [pool.submit(job, item) for item in items]
        return [f.result() for f in lambdas + named]
