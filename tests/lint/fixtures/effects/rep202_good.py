"""REP202 counterexample: submitted functions take state as arguments."""

from concurrent.futures import ProcessPoolExecutor


def job(item, scale):
    return item * scale


def run_all(items):
    scale = 2.5
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(job, item, scale) for item in items]
        return [future.result() for future in futures]
