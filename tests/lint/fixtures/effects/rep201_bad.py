"""REP201: a pool-reachable function writes shared module state."""

from concurrent.futures import ProcessPoolExecutor

CACHE = {}
COUNTER = 0


def remember(entry_id, value):
    # Direct shared-state write in a function submitted to the pool.
    CACHE[entry_id] = value
    return value


def bump():
    global COUNTER
    COUNTER += 1
    return COUNTER


def work(entry_id, value):
    # Reaches a shared-state write transitively.
    bump()
    return remember(entry_id, value)


def run_all(items):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(work, key, value) for key, value in items]
        return [future.result() for future in futures]
