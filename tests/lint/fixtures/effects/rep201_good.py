"""REP201 counterexample: pool-reachable functions keep state local."""

from concurrent.futures import ProcessPoolExecutor


def work(entry_id, value):
    local = {}
    local[entry_id] = value
    return local


def run_all(items):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(work, key, value) for key, value in items]
        return [future.result() for future in futures]
