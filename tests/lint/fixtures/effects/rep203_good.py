"""REP203 counterexample: ``sorted()`` launders the unordered mark."""

from repro.core.durable import atomic_write_json


def collect_ids(rows):
    seen = set()
    for row in rows:
        seen.add(row.entry_id)
    return sorted(seen)


def write_report(path, rows):
    atomic_write_json(path, {"ids": collect_ids(rows)})
