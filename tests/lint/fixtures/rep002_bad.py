"""REP002 bad: unseeded and process-global randomness."""

import random

import numpy as np


def jitter(values):
    rng = random.Random()
    random.shuffle(values)
    noise = np.random.default_rng()
    legacy = np.random.rand(3)
    return rng, noise, legacy
