"""REP007 bad: raw set iteration while serializing (hash-order bytes)."""


def serialize_sites(placements):
    lines = []
    for site in {p.site for p in placements}:
        lines.append(site)
    names = [n for n in set(p.node for p in placements)]
    return lines, names
