"""REP003 good: canonical sorted-key JSON."""

import json


def render(payload, fh):
    text = json.dumps(payload, indent=2, sort_keys=True)
    json.dump(payload, fh, sort_keys=True)
    return text
