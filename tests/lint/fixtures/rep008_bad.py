"""REP008 bad: grabbing ledger nodes outside the broker event loop."""


def greedy_grab(ledger, site, n, now, eta):
    ids = ledger.pool(site).acquire(n, now, eta)
    ledger.pool(site).release(ids)
    return ids
