"""GOOD: the same model, dimensionally coherent."""

from repro.core.units import Bytes, Seconds


def _payload(chunks, chunk_bytes) -> Bytes:
    return chunks * chunk_bytes


def stage_time(base_s, chunks, chunk_bytes, bandwidth) -> Seconds:
    return base_s + _payload(chunks, chunk_bytes) / bandwidth


def predict(dataset_bytes, bandwidth, t_ro, t_g, overlap_fraction):
    t_disk = dataset_bytes / bandwidth
    overlap = (t_ro + t_g) * overlap_fraction
    return t_disk + overlap
