"""BAD: three dimensional bugs, one hidden behind an annotated helper."""

from repro.core.units import Bytes, Seconds


def _payload(chunks, chunk_bytes) -> Bytes:
    return chunks * chunk_bytes


def stage_time(base_s, chunks, chunk_bytes) -> Seconds:
    # seconds + bytes: the helper's Bytes annotation crosses functions
    return base_s + _payload(chunks, chunk_bytes)


def predict(dataset_bytes, bandwidth, t_ro, t_g):
    t_disk = dataset_bytes  # bytes assigned to a t_* name
    overlap = t_ro * t_g  # product of two durations
    return t_disk + overlap
