"""GOOD: the generator is seeded, so draws are replayable."""

import numpy as np


def _jitter(seed):
    rng = np.random.default_rng(seed)
    return rng.normal()
