"""GOOD: same serialization path as rep102_bad, seeded draws only."""

from repro.core.durable import canonical_json
from repro.middleware.noise import _jitter


def render(values, seed):
    return canonical_json([v + _jitter(seed) for v in values])
