"""GOOD: sanctioned wall-clock read in an allowlisted module.

The campaign watchdog legitimately journals operator-facing wall
durations; reads originating here carry no taint (mirrors the REP001
allowlist).
"""

import time

from repro.core.durable import atomic_write_json


def journal_heartbeat(path):
    atomic_write_json(path, {"elapsed_s": time.monotonic()})
