"""GOOD: the same shape as rep101_bad, but the stamp is logical time."""

from repro.core.durable import atomic_write_json


def _stamp(step):
    return step


def flush(path, step):
    record = {"written_at": _stamp(step)}
    atomic_write_json(path, record)
