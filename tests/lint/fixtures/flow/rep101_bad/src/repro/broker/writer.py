"""BAD: serializes the laundered clock value (REP101 fires here)."""

from repro.broker.timeutil import _stamp
from repro.core.durable import atomic_write_json


def flush(path):
    record = {"written_at": _stamp()}
    atomic_write_json(path, record)
