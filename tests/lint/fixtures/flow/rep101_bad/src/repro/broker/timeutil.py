"""BAD: an aliased wall-clock read, laundered through two helpers.

``ticks`` defeats REP001's surface-name match; only symbol resolution
plus interprocedural taint sees ``flush`` writing a clock value.
"""

from time import time as ticks


def _now():
    return ticks()


def _stamp():
    return _now()
