"""GOOD: every builtin is caught at the public boundary.

``route`` catches ``LookupError``, the *parent* of the raised
``KeyError`` — the catch filter understands the builtin hierarchy.
"""

from repro.broker.codec import _decode, _lookup


def submit(blob):
    try:
        return _decode(blob)
    except ValueError:
        return None


def route(table, key):
    try:
        return _lookup(table, key)
    except LookupError:
        return None
