"""BAD: public broker API leaks the helper's builtins (REP103 ×2)."""

from repro.broker.codec import _decode, _lookup


def submit(blob):
    return _decode(blob)


def route(table, key):
    return _lookup(table, key)
