"""BAD (helper): raises builtins its public callers never catch."""


def _decode(blob):
    if not blob:
        raise ValueError("empty blob")
    return blob


def _lookup(table, key):
    if key not in table:
        raise KeyError(key)
    return table[key]
