"""BAD: serializes values perturbed by the unseeded draw (REP102)."""

from repro.core.durable import canonical_json
from repro.middleware.noise import _jitter


def render(values):
    return canonical_json([v + _jitter() for v in values])
