"""BAD: an unseeded generator hidden behind a helper."""

import numpy as np


def _jitter():
    rng = np.random.default_rng()
    return rng.normal()
