"""REP005 good: classified ReproError subclasses (and the exemptions)."""

from repro.errors import ReproError


class JobError(ReproError):
    pass


def check(job_id, count):
    if not job_id:
        raise JobError("jobs need a non-empty id")
    try:
        return 1 / count
    except ZeroDivisionError:
        raise  # bare re-raise is exempt


def abstract_hook():
    raise NotImplementedError("subclasses override")  # idiom is exempt
