"""REP003 bad: JSON rendered without canonical key order."""

import json


def render(payload, fh):
    text = json.dumps(payload, indent=2)
    json.dump(payload, fh, sort_keys=False)
    return text
