"""REP008 good: placement is requested from the broker engine."""


def place_via_engine(broker, jobs, policy):
    # only GridBroker.run touches the ledger, at event-queue time
    return broker.run(jobs, policy)


def unrelated_release(lock):
    lock.release()  # not a ledger/pool: fine
