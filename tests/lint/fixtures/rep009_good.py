"""REP009 good: every blocking call carries an explicit bound."""
import socket
import subprocess


def run_probe(cmd, queue, lock, sock, parts, table):
    proc = subprocess.run(cmd, timeout=60.0)
    sock.settimeout(10.0)
    conn = socket.create_connection(("repo-a", 9000), timeout=10.0)
    acquired = lock.acquire(timeout=5.0)
    item = queue.get(timeout=5.0)
    label = ", ".join(parts)  # arguments present: never flagged
    value = table.get("key")  # dict.get(key): never flagged
    return proc, conn, acquired, item, label, value
