"""REP007 good: sets are sorted before they become output."""


def serialize_sites(placements):
    lines = []
    for site in sorted({p.site for p in placements}):
        lines.append(site)
    names = [n for n in sorted(set(p.node for p in placements))]
    return lines, names
