"""REP006 good: tolerance comparisons (integer equality is untouched)."""

import math

EPS = 1e-12


def needs_transfer(t_network, factor, retries):
    if t_network <= EPS:
        return False
    if retries == 0:  # integer comparison: fine
        return True
    return not math.isclose(factor, 1.0, rel_tol=1e-9)
