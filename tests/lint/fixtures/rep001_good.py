"""REP001 good: time comes from the simulated clock."""


def stamp_run(record, engine):
    record["started"] = engine.now
    record["tick"] = engine.now
    return record
