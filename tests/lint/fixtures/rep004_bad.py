"""REP004 bad: raw, tearable writes of persistent state."""

import pathlib


def persist(path: pathlib.Path, text: str) -> None:
    with open(path, "w") as fh:
        fh.write(text)
    path.with_suffix(".copy").write_text(text)
