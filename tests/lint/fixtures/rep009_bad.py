"""REP009 bad: unbounded blocking calls in a long-running layer."""
import socket
import subprocess


def run_probe(cmd, queue, lock, sock):
    proc = subprocess.run(cmd)  # no timeout: can hang forever
    sock.settimeout(None)  # removes the bound
    conn = socket.create_connection(("repo-a", 9000))  # blocks until peer
    lock.acquire()  # unbounded
    item = queue.get()  # unbounded
    return proc, conn, item
