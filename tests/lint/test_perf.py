"""The performance-contract layer (REP301-REP305) and ``repro profile``.

Covers the hot-region closure, every cost rule's positive and negative
fixture (including the planted pool-safe quadratic scan — certified
pure by the effect layer, caught by REP302), the deterministic call
profiler and its artifact, cross-validation in both directions, the
content-hash cache, the ``--perf`` CLI surface, and the ``repro
profile`` exit-code contract.
"""

from __future__ import annotations

import pathlib
import shutil

import pytest

from repro.cli import main as repro_main
from repro.core.durable import atomic_write_json, canonical_json
from repro.lint import LintError
from repro.lint.cli import main as lint_main
from repro.lint.effects import TIER_POOL_SAFE, TIER_RANK, analyze_effects
from repro.lint.perf import (
    PERF_CODES,
    PERF_RULES,
    analyze_perf,
    build_profile_document,
    cross_validate,
    load_profile,
    measured_hot,
)
from repro.lint.perf.profile import (
    collect_call_counts,
    write_profile,
)

PERF_FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "perf"


def copy_fixture(tmp_path: pathlib.Path, name: str) -> pathlib.Path:
    target = tmp_path / name
    shutil.copy(PERF_FIXTURES / name, target)
    return target


def write_certificate_stub(tmp_path, functions):
    """A minimal determinism certificate the perf layer can judge by."""
    path = tmp_path / ".repro-effects.json"
    atomic_write_json(
        path,
        {"format_version": 1, "modules": {}, "functions": functions},
    )
    return path


def analyze_fixture(tmp_path, name, *, certificate=None, **kwargs):
    target = copy_fixture(tmp_path, name)
    if certificate is not None:
        kwargs["certificate_path"] = write_certificate_stub(
            tmp_path, certificate
        )
    return analyze_perf([target], root=tmp_path, **kwargs)


def analyze_source(tmp_path, source, **kwargs):
    target = tmp_path / "mod.py"
    target.write_text(source)
    return analyze_perf([target], root=tmp_path, **kwargs)


def codes_of(result):
    return sorted({f.code for f in result.findings})


# ----------------------------------------------------------------------
# Hot region
# ----------------------------------------------------------------------


class TestHotRegion:
    def test_region_is_callgraph_closure_of_declared_entries(
        self, tmp_path
    ):
        result = analyze_fixture(tmp_path, "rep304_bad.py")
        analysis = result.analysis
        assert analysis.hot_entries == frozenset({"rep304_bad.drive"})
        # mystery carries no decorator but is reachable from drive
        assert "rep304_bad.mystery" in analysis.hot_region

    def test_cold_code_may_allocate_freely(self, tmp_path):
        result = analyze_source(
            tmp_path,
            "class Sample:\n"
            "    def __init__(self, t):\n"
            "        self.t = t\n"
            "\n"
            "\n"
            "def drain(pairs):\n"
            "    return [Sample(t) for t in pairs]\n",
        )
        assert result.findings == []
        assert result.analysis.hot_region == frozenset()

    def test_aliased_decorator_still_declares(self, tmp_path):
        result = analyze_source(
            tmp_path,
            "from repro.hotpath import hot as fast\n"
            "\n"
            "\n"
            "@fast\n"
            "def drain(pairs):\n"
            "    return list(pairs)\n",
        )
        assert result.analysis.hot_entries == frozenset({"mod.drain"})


# ----------------------------------------------------------------------
# REP301-REP304 fixtures
# ----------------------------------------------------------------------


class TestCostRules:
    def test_rep301_fires_on_unslotted_loop_construction(self, tmp_path):
        result = analyze_fixture(tmp_path, "rep301_bad.py")
        assert codes_of(result) == ["REP301"]
        (finding,) = result.findings
        assert "rep301_bad.Sample" in finding.message
        assert finding.path == "rep301_bad.py"

    def test_rep301_slotted_record_is_clean(self, tmp_path):
        assert analyze_fixture(tmp_path, "rep301_good.py").findings == []

    def test_rep302_fires_on_list_membership_in_loop(self, tmp_path):
        result = analyze_fixture(tmp_path, "rep302_bad.py")
        assert codes_of(result) == ["REP302"]
        (finding,) = result.findings
        assert "'done'" in finding.message

    def test_rep302_hashed_membership_is_clean(self, tmp_path):
        assert analyze_fixture(tmp_path, "rep302_good.py").findings == []

    def test_planted_quadratic_scan_is_pool_safe_yet_flagged(
        self, tmp_path
    ):
        """Purity and asymptotics are independent axes (DESIGN.md §18)."""
        target = copy_fixture(tmp_path, "rep302_bad.py")
        effects = analyze_effects([target], root=tmp_path)
        tier = effects.analysis.tiers["rep302_bad.survivors"]
        assert TIER_RANK[tier] >= TIER_RANK[TIER_POOL_SAFE]
        perf = analyze_perf([target], root=tmp_path)
        assert codes_of(perf) == ["REP302"]

    def test_rep303_fires_on_invariant_certified_pure_call(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            "rep303_bad.py",
            certificate={"rep303_bad.unit_cost": "pure"},
        )
        assert codes_of(result) == ["REP303"]

    def test_rep303_hoisted_call_is_clean(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            "rep303_good.py",
            certificate={"rep303_good.unit_cost": "pure"},
        )
        assert result.findings == []

    def test_rep303_and_304_stay_silent_without_certificate(self, tmp_path):
        # The perf layer refuses to guess about effects.
        assert analyze_fixture(tmp_path, "rep303_bad.py").findings == []
        assert analyze_fixture(tmp_path, "rep304_bad.py").findings == []

    def test_rep304_fires_on_uncertified_undeclared_callee(self, tmp_path):
        result = analyze_fixture(
            tmp_path, "rep304_bad.py", certificate={}
        )
        assert codes_of(result) == ["REP304"]
        (finding,) = result.findings
        assert "rep304_bad.mystery" in finding.message

    def test_rep304_declared_hot_callee_is_clean(self, tmp_path):
        result = analyze_fixture(
            tmp_path, "rep304_good.py", certificate={}
        )
        assert result.findings == []

    def test_rep304_any_certified_tier_suffices(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            "rep304_bad.py",
            certificate={"rep304_bad.mystery": "deterministic"},
        )
        assert result.findings == []


# ----------------------------------------------------------------------
# The deterministic call profiler
# ----------------------------------------------------------------------


def _leaf(x):
    return x + 1


def _outer(y):
    def inner(z):
        return _leaf(z)

    return inner(y)


class TestCollector:
    def test_counts_are_exact(self):
        def workload():
            for i in range(3):
                _leaf(i)

        counts = collect_call_counts(workload, prefix=__name__)
        assert counts[f"{__name__}._leaf"] == 3

    def test_nested_qualnames_match_static_spelling(self):
        # co_qualname says ``_outer.<locals>.inner``; the extractor says
        # ``_outer.inner`` — the tracer must normalize to the latter.
        counts = collect_call_counts(lambda: _outer(1), prefix=__name__)
        assert f"{__name__}._outer.inner" in counts
        assert not any("<locals>" in k for k in counts)

    def test_prefix_filters_foreign_modules(self):
        def workload():
            import json

            json.dumps({"a": 1})
            _leaf(0)

        counts = collect_call_counts(workload, prefix=__name__)
        assert all(k.startswith(__name__) for k in counts)

    def test_counting_is_deterministic(self):
        def workload():
            for i in range(5):
                _outer(i)

        first = collect_call_counts(workload, prefix=__name__)
        second = collect_call_counts(workload, prefix=__name__)
        assert first == second


# ----------------------------------------------------------------------
# Profile artifact
# ----------------------------------------------------------------------


class TestProfileArtifact:
    COUNTS = {"m.hotfn": 90, "m.coldfn": 5, "m.entry": 5}

    def test_document_shares_sum_to_one(self):
        doc = build_profile_document(self.COUNTS, workload="w")
        assert doc["total_calls"] == 100
        assert sum(f["share"] for f in doc["functions"].values()) == (
            pytest.approx(1.0)
        )

    def test_document_is_byte_stable(self):
        a = build_profile_document(dict(self.COUNTS), workload="w")
        b = build_profile_document(
            dict(reversed(list(self.COUNTS.items()))), workload="w"
        )
        assert canonical_json(a) == canonical_json(b)

    def test_round_trip(self, tmp_path):
        doc = build_profile_document(self.COUNTS, workload="w")
        path = tmp_path / "profile.json"
        write_profile(path, doc)
        assert load_profile(path) == doc

    def test_missing_profile_is_none(self, tmp_path):
        assert load_profile(tmp_path / "absent.json") is None

    def test_corrupt_profile_is_an_error(self, tmp_path):
        path = tmp_path / "profile.json"
        path.write_text("{not json")
        with pytest.raises(LintError):
            load_profile(path)

    def test_malformed_functions_map_is_an_error(self, tmp_path):
        path = tmp_path / "profile.json"
        atomic_write_json(
            path,
            {
                "format_version": 1,
                "workload": "w",
                "threshold": 0.01,
                "total_calls": 1,
                "functions": {"m.f": {"share": 1.0}},  # calls missing
            },
        )
        with pytest.raises(LintError):
            load_profile(path)

    def test_measured_hot_respects_threshold(self):
        doc = build_profile_document(
            self.COUNTS, workload="w", threshold=0.5
        )
        assert measured_hot(doc) == {"m.hotfn": pytest.approx(0.9)}
        assert set(measured_hot(doc, threshold=0.01)) == set(self.COUNTS)


# ----------------------------------------------------------------------
# Cross-validation
# ----------------------------------------------------------------------


class TestCrossValidate:
    DOC = build_profile_document(
        {"m.entry": 10, "m.popular": 90}, workload="w"
    )

    def test_undeclared_hot_direction(self):
        agreement = cross_validate(
            self.DOC,
            hot_region=frozenset({"m.entry"}),
            declared=frozenset({"m.entry"}),
            known=frozenset({"m.entry", "m.popular"}),
        )
        assert agreement.undeclared_hot == [
            ("m.popular", pytest.approx(0.9))
        ]
        assert not agreement.agrees

    def test_known_filter_excludes_generated_identities(self):
        # A dataclass __init__ or genexpr can never carry a decorator;
        # outside ``known`` it must not fail the contract.
        agreement = cross_validate(
            self.DOC,
            hot_region=frozenset({"m.entry"}),
            declared=frozenset({"m.entry"}),
            known=frozenset({"m.entry"}),
        )
        assert agreement.undeclared_hot == []
        assert agreement.agrees

    def test_unreached_declared_direction(self):
        agreement = cross_validate(
            self.DOC,
            hot_region=frozenset({"m.entry", "m.popular", "m.stale"}),
            declared=frozenset({"m.entry", "m.stale"}),
            known=frozenset({"m.entry", "m.popular", "m.stale"}),
        )
        assert agreement.unreached_declared == ["m.stale"]
        assert not agreement.agrees

    def test_agreement(self):
        agreement = cross_validate(
            self.DOC,
            hot_region=frozenset({"m.entry", "m.popular"}),
            declared=frozenset({"m.entry"}),
            known=frozenset({"m.entry", "m.popular"}),
        )
        assert agreement.agrees
        assert agreement.total_calls == 100


# ----------------------------------------------------------------------
# REP305
# ----------------------------------------------------------------------


class TestRep305:
    def _profile_for(self, tmp_path, counts):
        path = tmp_path / ".repro-profile.json"
        write_profile(
            path, build_profile_document(counts, workload="test")
        )
        return path

    def test_fires_on_planted_undeclared_hot_function(self, tmp_path):
        target = copy_fixture(tmp_path, "rep305_host.py")
        profile = self._profile_for(
            tmp_path,
            {
                "rep305_host.declared_entry": 5,
                "rep305_host.helper": 5,
                "rep305_host.popular": 90,
            },
        )
        result = analyze_perf(
            [target], root=tmp_path, profile_path=profile
        )
        assert codes_of(result) == ["REP305"]
        (finding,) = result.findings
        assert "rep305_host.popular" in finding.message
        assert finding.path == "rep305_host.py"

    def test_silent_when_profile_agrees(self, tmp_path):
        target = copy_fixture(tmp_path, "rep305_host.py")
        profile = self._profile_for(
            tmp_path,
            {
                "rep305_host.declared_entry": 50,
                "rep305_host.helper": 50,
            },
        )
        result = analyze_perf(
            [target], root=tmp_path, profile_path=profile
        )
        assert result.findings == []

    def test_silent_without_a_profile(self, tmp_path):
        target = copy_fixture(tmp_path, "rep305_host.py")
        assert analyze_perf([target], root=tmp_path).findings == []


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------


class TestCache:
    def test_second_run_hits_for_every_module(self, tmp_path):
        target = copy_fixture(tmp_path, "rep301_bad.py")
        cache = tmp_path / "perf-cache.json"
        first = analyze_perf([target], root=tmp_path, cache_path=cache)
        assert (first.cache_hits, first.cache_misses) == (0, 1)
        second = analyze_perf([target], root=tmp_path, cache_path=cache)
        assert (second.cache_hits, second.cache_misses) == (1, 0)
        assert codes_of(second) == codes_of(first) == ["REP301"]

    def test_source_edit_invalidates_the_entry(self, tmp_path):
        target = copy_fixture(tmp_path, "rep301_bad.py")
        cache = tmp_path / "perf-cache.json"
        analyze_perf([target], root=tmp_path, cache_path=cache)
        target.write_text(
            target.read_text().replace("class Sample:", "class Sample2:")
        )
        result = analyze_perf([target], root=tmp_path, cache_path=cache)
        assert (result.cache_hits, result.cache_misses) == (0, 1)

    def test_corrupt_cache_degrades_to_full_reextract(self, tmp_path):
        target = copy_fixture(tmp_path, "rep301_bad.py")
        cache = tmp_path / "perf-cache.json"
        analyze_perf([target], root=tmp_path, cache_path=cache)
        cache.write_text("{definitely not json")
        result = analyze_perf([target], root=tmp_path, cache_path=cache)
        assert (result.cache_hits, result.cache_misses) == (0, 1)
        assert codes_of(result) == ["REP301"]


# ----------------------------------------------------------------------
# CLI: repro lint --perf
# ----------------------------------------------------------------------


class TestLintCli:
    def test_perf_flag_enables_the_layer(self, tmp_path, capsys):
        target = copy_fixture(tmp_path, "rep301_bad.py")
        code = lint_main(
            [str(target), "--root", str(tmp_path), "--perf"]
        )
        assert code == 1
        assert "REP301" in capsys.readouterr().out

    def test_perf_is_off_by_default(self, tmp_path):
        target = copy_fixture(tmp_path, "rep301_good.py")
        # The good fixture is clean under every layer; the bad one only
        # differs by the perf finding, so a default run must pass both.
        assert lint_main([str(target), "--root", str(tmp_path)]) == 0

    def test_selecting_a_perf_code_auto_enables(self, tmp_path, capsys):
        target = copy_fixture(tmp_path, "rep301_bad.py")
        code = lint_main(
            [
                str(target),
                "--root",
                str(tmp_path),
                "--select",
                "REP301",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REP301" in out

    def test_clear_cache_removes_the_perf_cache(self, tmp_path):
        target = copy_fixture(tmp_path, "rep301_good.py")
        cache = tmp_path / ".repro-perf-cache.json"
        assert (
            lint_main([str(target), "--root", str(tmp_path), "--perf"])
            == 0
        )
        assert cache.exists()
        assert (
            lint_main(
                [
                    str(target),
                    "--root",
                    str(tmp_path),
                    "--clear-cache",
                ]
            )
            == 0
        )
        assert not cache.exists()

    def test_rules_table_lists_the_perf_family(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in PERF_RULES:
            assert rule.code in out
        assert sorted(PERF_CODES) == [
            "REP301",
            "REP302",
            "REP303",
            "REP304",
            "REP305",
        ]


# ----------------------------------------------------------------------
# The profiler-agreement golden and the exit-code contract
# ----------------------------------------------------------------------


class TestProfileCommand:
    def test_committed_profile_agrees_with_static_hot_region(
        self, repo_root
    ):
        """The reviewed artifact must match the shipped source tree."""
        profile = load_profile(repo_root / ".repro-profile.json")
        assert profile is not None
        result = analyze_perf(
            [repo_root / "src" / "repro"], root=repo_root
        )
        agreement = cross_validate(
            profile,
            hot_region=result.analysis.hot_region,
            declared=result.analysis.hot_entries,
            known=frozenset(result.analysis.locations),
        )
        assert agreement.agrees, (
            agreement.undeclared_hot,
            agreement.unreached_declared,
        )

    def test_exit_zero_on_agreement(self, repo_root, capsys):
        code = repro_main(
            [
                "profile",
                str(repo_root / "src" / "repro"),
                "--root",
                str(repo_root),
                "--check",
                "--count",
                "8",
            ]
        )
        assert code == 0
        assert "agree in both directions" in capsys.readouterr().out

    def test_exit_one_on_disagreement(self, repo_root, capsys):
        # An absurdly low threshold turns every cold-but-called project
        # function into a measured-hot claim the static set cannot meet.
        code = repro_main(
            [
                "profile",
                str(repo_root / "src" / "repro"),
                "--root",
                str(repo_root),
                "--check",
                "--count",
                "2",
                "--threshold",
                "0.000001",
            ]
        )
        assert code == 1
        assert "MEASURED-NOT-DECLARED" in capsys.readouterr().out

    def test_exit_two_on_bad_count(self, repo_root, capsys):
        code = repro_main(
            [
                "profile",
                str(repo_root / "src" / "repro"),
                "--root",
                str(repo_root),
                "--check",
                "--count",
                "0",
            ]
        )
        assert code == 2

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        code = repro_main(
            [
                "profile",
                str(tmp_path / "no-such-dir"),
                "--root",
                str(tmp_path),
                "--check",
                "--count",
                "1",
            ]
        )
        assert code == 2
