"""The interprocedural effect-and-determinism layer (REP201-REP205).

Covers the analysis itself (effect extraction, bottom-up propagation,
tier assignment), every rule's positive and negative fixture, the
determinism certificate (round-trip, shrink-only refusal, demotion
findings, corruption), the content-hash cache, and the ``--effects``
CLI surface.
"""

from __future__ import annotations

import json
import pathlib
import shutil

import pytest

from repro.lint import Baseline, LintError, lint_source
from repro.lint.effects import (
    CERTIFIED_ROOTS,
    TIER_DETERMINISTIC,
    TIER_EFFECTFUL,
    TIER_POOL_SAFE,
    TIER_PURE,
    TIER_RANK,
    analyze_effects,
    build_certificate,
    certificate_demotions,
    load_certificate,
    write_certificate,
)
from repro.lint.cli import main as lint_main

EFFECT_FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "effects"


def analyze_fixture(tmp_path: pathlib.Path, name: str, **kwargs):
    """Copy one effects fixture into a scratch root and analyze it."""
    target = tmp_path / name
    shutil.copy(EFFECT_FIXTURES / name, target)
    return analyze_effects([target], root=tmp_path, **kwargs)


def analyze_source(tmp_path: pathlib.Path, source: str, **kwargs):
    target = tmp_path / "mod.py"
    target.write_text(source)
    return analyze_effects([target], root=tmp_path, **kwargs)


def codes_of(result):
    return sorted({f.code for f in result.findings})


# ----------------------------------------------------------------------
# Tier assignment
# ----------------------------------------------------------------------


class TestTiers:
    def test_pure_function(self, tmp_path):
        result = analyze_source(
            tmp_path, "def f(x):\n    return x + 1\n"
        )
        assert result.analysis.tiers["mod.f"] == TIER_PURE

    def test_io_keeps_pool_safety_but_not_purity(self, tmp_path):
        result = analyze_source(
            tmp_path,
            "from repro.core.durable import atomic_write_json\n\n\n"
            "def f(path, x):\n"
            "    atomic_write_json(path, {'x': x})\n",
        )
        assert result.analysis.tiers["mod.f"] == TIER_POOL_SAFE

    def test_global_write_demotes_to_deterministic(self, tmp_path):
        result = analyze_source(
            tmp_path,
            "STATE = {}\n\n\ndef f(k, v):\n    STATE[k] = v\n",
        )
        assert result.analysis.tiers["mod.f"] == TIER_DETERMINISTIC

    def test_ambient_read_is_effectful(self, tmp_path):
        result = analyze_source(
            tmp_path,
            "import time\n\n\ndef f():\n    return time.time()\n",
        )
        assert result.analysis.tiers["mod.f"] == TIER_EFFECTFUL

    def test_effects_propagate_transitively(self, tmp_path):
        result = analyze_source(
            tmp_path,
            "import time\n\n\n"
            "def leaf():\n    return time.time()\n\n\n"
            "def mid():\n    return leaf()\n\n\n"
            "def top():\n    return mid()\n",
        )
        tiers = result.analysis.tiers
        assert tiers["mod.leaf"] == TIER_EFFECTFUL
        assert tiers["mod.mid"] == TIER_EFFECTFUL
        assert tiers["mod.top"] == TIER_EFFECTFUL

    def test_param_mutation_propagates_through_forwarding(self, tmp_path):
        result = analyze_source(
            tmp_path,
            "def append_to(rows, row):\n    rows.append(row)\n\n\n"
            "def forward(items, row):\n    append_to(items, row)\n",
        )
        analysis = result.analysis
        assert "rows" in analysis.mutated_params["mod.append_to"]
        assert "items" in analysis.mutated_params["mod.forward"]
        assert analysis.tiers["mod.forward"] == TIER_DETERMINISTIC

    def test_effect_words_are_deterministic(self, tmp_path):
        result = analyze_source(
            tmp_path,
            "STATE = {}\n\n\n"
            "def f(rows, k):\n"
            "    rows.append(k)\n"
            "    STATE[k] = rows\n",
        )
        words = result.analysis.effect_words("mod.f")
        assert "global-write" in words
        assert "mutates(rows)" in words


# ----------------------------------------------------------------------
# The five rules, fixture by fixture
# ----------------------------------------------------------------------


class TestRules:
    def test_rep201_shared_state_write(self, tmp_path):
        result = analyze_fixture(tmp_path, "rep201_bad.py")
        lines = {f.line for f in result.findings if f.code == "REP201"}
        # Both the direct subscript write and the ``global`` rebind.
        assert len(lines) == 2

    def test_rep201_clean_counterpart(self, tmp_path):
        result = analyze_fixture(tmp_path, "rep201_good.py")
        assert result.findings == []

    def test_rep201_requires_pool_reachability(self, tmp_path):
        # The same shared-state write without any executor submit is
        # ordinary (serial) module state — not a REP201 finding.
        result = analyze_source(
            tmp_path,
            "STATE = {}\n\n\ndef f(k, v):\n    STATE[k] = v\n",
        )
        assert codes_of(result) == []

    def test_rep202_closure_capture(self, tmp_path):
        result = analyze_fixture(tmp_path, "rep202_bad.py")
        rep202 = [f for f in result.findings if f.code == "REP202"]
        # Both the lambda and the named nested def capture ``scale``.
        assert len(rep202) == 2
        assert all("scale" in f.message for f in rep202)

    def test_rep202_clean_counterpart(self, tmp_path):
        result = analyze_fixture(tmp_path, "rep202_good.py")
        assert result.findings == []

    def test_rep202_is_missed_by_plain_lint_and_flow(self, tmp_path):
        """Acceptance: the planted fixture only the effect layer catches."""
        from repro.lint import analyze_paths

        source = (EFFECT_FIXTURES / "rep202_bad.py").read_text()
        assert lint_source(source, "src/repro/injected/rep202_bad.py") == []

        target = tmp_path / "rep202_bad.py"
        target.write_text(source)
        flow = analyze_paths([target], root=tmp_path)
        assert flow.findings == []

        effects = analyze_fixture(tmp_path, "rep202_bad.py")
        assert "REP202" in codes_of(effects)

    def test_rep203_unordered_to_sink(self, tmp_path):
        result = analyze_fixture(tmp_path, "rep203_bad.py")
        assert codes_of(result) == ["REP203"]

    def test_rep203_sorted_launders(self, tmp_path):
        result = analyze_fixture(tmp_path, "rep203_good.py")
        assert result.findings == []

    def test_rep204_mutable_default_and_alias(self, tmp_path):
        result = analyze_fixture(tmp_path, "rep204_bad.py")
        rep204 = [f for f in result.findings if f.code == "REP204"]
        assert len(rep204) == 3  # default bucket=[], its mutation+return,
        # and normalize's mutate-and-return aliasing

    def test_rep204_fluent_builder_is_exempt(self, tmp_path):
        result = analyze_fixture(tmp_path, "rep204_good.py")
        assert result.findings == []

    def test_rep205_uncertified_and_dynamic_submits(self, tmp_path):
        result = analyze_fixture(tmp_path, "rep205_bad.py")
        rep205 = [f for f in result.findings if f.code == "REP205"]
        assert len(rep205) == 2
        messages = " | ".join(f.message for f in rep205)
        assert "not statically analyzable" in messages

    def test_rep205_pure_submit_is_clean(self, tmp_path):
        result = analyze_fixture(tmp_path, "rep205_good.py")
        assert result.findings == []


# ----------------------------------------------------------------------
# Certificate
# ----------------------------------------------------------------------

CLEAN = (
    "def f(x):\n    return x + 1\n\n\ndef g(x):\n    return f(x) * 2\n"
)

DEMOTED = (
    "import time\n\n\n"
    "def f(x):\n    return time.time()\n\n\ndef g(x):\n    return f(x) * 2\n"
)


class TestCertificate:
    def test_round_trip(self, tmp_path):
        result = analyze_source(tmp_path, CLEAN)
        cert_path = tmp_path / "cert.json"
        write_certificate(cert_path, result.analysis, result.module_digests)
        cert = load_certificate(cert_path)
        assert cert["functions"] == {"mod.f": TIER_PURE, "mod.g": TIER_PURE}
        assert cert["modules"] == result.module_digests

    def test_effectful_functions_are_not_certified(self, tmp_path):
        result = analyze_source(tmp_path, DEMOTED)
        cert = build_certificate(result.analysis, result.module_digests)
        assert "mod.f" not in cert["functions"]
        assert "mod.g" not in cert["functions"]

    def test_shrink_only_refuses_demotions(self, tmp_path):
        result = analyze_source(tmp_path, CLEAN)
        cert_path = tmp_path / "cert.json"
        write_certificate(cert_path, result.analysis, result.module_digests)

        demoted = analyze_source(tmp_path, DEMOTED)
        with pytest.raises(LintError, match="refusing to demote"):
            write_certificate(
                cert_path, demoted.analysis, demoted.module_digests
            )
        # Explicit override is the reviewed escape hatch.
        write_certificate(
            cert_path,
            demoted.analysis,
            demoted.module_digests,
            allow_demotions=True,
        )
        assert load_certificate(cert_path)["functions"] == {}

    def test_demotion_surfaces_as_rep205_finding(self, tmp_path):
        result = analyze_source(tmp_path, CLEAN)
        cert_path = tmp_path / "cert.json"
        write_certificate(cert_path, result.analysis, result.module_digests)

        demoted = analyze_source(
            tmp_path, DEMOTED, certificate_path=cert_path
        )
        rep205 = [f for f in demoted.findings if f.code == "REP205"]
        assert len(rep205) == 2  # both f and g lost their tier
        assert any("certified 'pure'" in f.message for f in rep205)

    def test_demotions_list_names_and_tiers(self, tmp_path):
        result = analyze_source(tmp_path, CLEAN)
        cert = build_certificate(result.analysis, result.module_digests)
        demoted = analyze_source(tmp_path, DEMOTED)
        drops = certificate_demotions(cert, demoted.analysis)
        assert ("mod.f", TIER_PURE, TIER_EFFECTFUL) in drops

    def test_corrupt_certificate_is_a_lint_error(self, tmp_path):
        cert_path = tmp_path / "cert.json"
        cert_path.write_text("{not json")
        with pytest.raises(LintError):
            load_certificate(cert_path)

    def test_malformed_functions_map_is_a_lint_error(self, tmp_path):
        cert_path = tmp_path / "cert.json"
        cert_path.write_text(
            json.dumps({"format_version": 1, "modules": {}, "functions": []})
        )
        with pytest.raises(LintError, match="regenerate"):
            load_certificate(cert_path)

    def test_missing_certificate_is_none(self, tmp_path):
        assert load_certificate(tmp_path / "absent.json") is None


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------


class TestCache:
    def test_warm_run_hits_every_module(self, tmp_path):
        cache = tmp_path / "effects-cache.json"
        cold = analyze_source(tmp_path, CLEAN, cache_path=cache)
        assert cold.cache_misses == 1 and cold.cache_hits == 0
        warm = analyze_source(tmp_path, CLEAN, cache_path=cache)
        assert warm.cache_hits == 1 and warm.cache_misses == 0
        assert [f.code for f in warm.findings] == [
            f.code for f in cold.findings
        ]

    def test_corrupt_cache_degrades_to_full_extract(self, tmp_path):
        cache = tmp_path / "effects-cache.json"
        cache.write_text("{definitely not json")
        result = analyze_source(tmp_path, CLEAN, cache_path=cache)
        assert result.cache_misses == 1
        # And the save repaired the file for the next run.
        warm = analyze_source(tmp_path, CLEAN, cache_path=cache)
        assert warm.cache_hits == 1

    def test_stale_analyzer_version_discards_cache(self, tmp_path):
        cache = tmp_path / "effects-cache.json"
        analyze_source(tmp_path, CLEAN, cache_path=cache)
        data = json.loads(cache.read_text())
        data["analysis_version"] = -1
        cache.write_text(json.dumps(data, sort_keys=True))
        result = analyze_source(tmp_path, CLEAN, cache_path=cache)
        assert result.cache_hits == 0 and result.cache_misses == 1


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


class TestEffectsCli:
    def test_effects_flag_reports_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        shutil.copy(EFFECT_FIXTURES / "rep204_bad.py", bad)
        code = lint_main([str(bad), "--effects", "--root", str(tmp_path)])
        assert code == 1
        assert "REP204" in capsys.readouterr().out

    def test_effects_off_by_default_for_plain_runs(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        shutil.copy(EFFECT_FIXTURES / "rep204_bad.py", bad)
        code = lint_main([str(bad), "--root", str(tmp_path)])
        assert code == 0

    def test_selecting_an_effect_code_enables_the_layer(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "bad.py"
        shutil.copy(EFFECT_FIXTURES / "rep204_bad.py", bad)
        code = lint_main(
            [str(bad), "--select", "REP204", "--root", str(tmp_path)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REP204" in out

    def test_write_then_verify_certificate(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text(CLEAN)
        cert = tmp_path / "cert.json"
        assert (
            lint_main(
                [
                    str(mod),
                    "--write-certificate",
                    "--certificate",
                    str(cert),
                    "--root",
                    str(tmp_path),
                ]
            )
            == 0
        )
        assert "2 certified function(s)" in capsys.readouterr().out
        assert (
            lint_main(
                [
                    str(mod),
                    "--effects",
                    "--certificate",
                    str(cert),
                    "--root",
                    str(tmp_path),
                ]
            )
            == 0
        )

    def test_demotion_fails_the_gate(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text(CLEAN)
        cert = tmp_path / "cert.json"
        lint_main(
            [
                str(mod),
                "--write-certificate",
                "--certificate",
                str(cert),
                "--root",
                str(tmp_path),
            ]
        )
        capsys.readouterr()
        mod.write_text(DEMOTED)
        code = lint_main(
            [
                str(mod),
                "--effects",
                "--certificate",
                str(cert),
                "--root",
                str(tmp_path),
            ]
        )
        assert code == 1
        assert "REP205" in capsys.readouterr().out

    def test_clear_cache_removes_both_caches(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(CLEAN)
        flow_cache = tmp_path / ".repro-flow-cache.json"
        effects_cache = tmp_path / ".repro-effects-cache.json"
        lint_main(
            [
                str(mod),
                "--effects",
                "--flow",
                "--root",
                str(tmp_path),
                "--flow-cache",
                str(flow_cache),
                "--effects-cache",
                str(effects_cache),
            ]
        )
        assert flow_cache.exists() and effects_cache.exists()
        lint_main(
            [
                str(mod),
                "--root",
                str(tmp_path),
                "--flow-cache",
                str(flow_cache),
                "--effects-cache",
                str(effects_cache),
                "--no-flow",
                "--clear-cache",
            ]
        )
        assert not flow_cache.exists()
        assert not effects_cache.exists()


# ----------------------------------------------------------------------
# Gate acceptance: every bad effects fixture fails a baselined gate
# ----------------------------------------------------------------------


def test_every_bad_effects_fixture_would_fail_the_gate(tmp_path, repo_root):
    baseline = Baseline.load(repo_root / "lint-baseline.json")
    for fixture in sorted(EFFECT_FIXTURES.glob("rep*_bad.py")):
        scratch = tmp_path / fixture.stem
        scratch.mkdir()
        result = analyze_fixture(scratch, fixture.name)
        partition = baseline.partition(result.findings)
        assert partition.new, (
            f"{fixture.name} produced no non-baselined effect finding — "
            "the gate would miss it"
        )
