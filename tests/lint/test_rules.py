"""One good/bad fixture pair per rule: bad fires, good is silent.

Each fixture is linted with *all* rules active, under a synthetic
relpath chosen to be in the target rule's scope, so the tests also catch
cross-contamination (a bad example for one rule tripping another).
"""

from __future__ import annotations

import pytest

from repro.lint import lint_source

# (rule code, fixture stem, synthetic relpath, expected bad findings)
CASES = [
    ("REP001", "rep001", "src/repro/simgrid/clocked.py", 3),
    ("REP002", "rep002", "src/repro/workloads/drawn.py", 4),
    ("REP003", "rep003", "src/repro/broker/encode.py", 2),
    ("REP004", "rep004", "src/repro/campaign/persist.py", 2),
    ("REP005", "rep005", "src/repro/broker/validate.py", 2),
    ("REP006", "rep006", "src/repro/core/modelmath.py", 2),
    ("REP007", "rep007", "src/repro/broker/report_helpers.py", 2),
    ("REP008", "rep008", "src/repro/broker/shortcut.py", 2),
    ("REP009", "rep009", "src/repro/service/pool.py", 5),
]


@pytest.mark.parametrize(
    "code,stem,relpath,expected", CASES, ids=[c[0] for c in CASES]
)
def test_bad_fixture_fires_exactly_its_rule(
    fixtures_dir, code, stem, relpath, expected
):
    source = (fixtures_dir / f"{stem}_bad.py").read_text()
    findings = lint_source(source, relpath)
    assert {f.code for f in findings} == {code}
    assert len(findings) == expected
    for finding in findings:
        assert finding.path == relpath
        assert finding.line >= 1 and finding.col >= 1
        assert finding.snippet  # baselines need a non-empty identity
        assert finding.message


@pytest.mark.parametrize(
    "code,stem,relpath,expected", CASES, ids=[c[0] for c in CASES]
)
def test_good_fixture_is_silent(fixtures_dir, code, stem, relpath, expected):
    source = (fixtures_dir / f"{stem}_good.py").read_text()
    assert lint_source(source, relpath) == []


def test_rep001_allowlists_the_watchdog(fixtures_dir):
    source = (fixtures_dir / "rep001_bad.py").read_text()
    findings = lint_source(source, "src/repro/campaign/watchdog.py")
    assert [f for f in findings if f.code == "REP001"] == []


def test_rep003_and_rep004_allowlist_the_durable_layer(fixtures_dir):
    for stem in ("rep003_bad", "rep004_bad"):
        source = (fixtures_dir / f"{stem}.py").read_text()
        findings = lint_source(source, "src/repro/core/durable.py")
        assert findings == []


def test_rep007_only_applies_to_serialization_modules(fixtures_dir):
    source = (fixtures_dir / "rep007_bad.py").read_text()
    # Same code in a non-serialization module is in-memory logic: fine.
    assert lint_source(source, "src/repro/broker/policies.py") == []


def test_rep008_allowlists_the_engine(fixtures_dir):
    source = (fixtures_dir / "rep008_bad.py").read_text()
    assert lint_source(source, "src/repro/broker/engine.py") == []


def test_rep003_marks_only_the_missing_kwarg_fixable(fixtures_dir):
    source = (fixtures_dir / "rep003_bad.py").read_text()
    findings = lint_source(source, "src/repro/broker/encode.py")
    by_fixable = {f.fixable for f in findings}
    # dumps-without-sort_keys is fixable; explicit sort_keys=False is not
    assert by_fixable == {True, False}
