"""Shared fixtures for the lint test suite."""

from __future__ import annotations

import pathlib

import pytest

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture
def fixtures_dir() -> pathlib.Path:
    return FIXTURES


@pytest.fixture
def repo_root() -> pathlib.Path:
    return REPO_ROOT
