"""Baseline semantics: round trip, line-shift invariance, shrink-only."""

from __future__ import annotations

import pytest

from repro.core.durable import CorruptStoreError, FormatVersionError
from repro.lint import Baseline, Finding, LintError


def make_finding(code="REP006", path="src/repro/m.py", line=5,
                 snippet="if x == 0.0:"):
    return Finding(
        code=code,
        message="test finding",
        path=path,
        line=line,
        col=1,
        snippet=snippet,
    )


def test_round_trip_through_disk(tmp_path):
    findings = [
        make_finding(line=5),
        make_finding(line=9),  # same identity, second occurrence
        make_finding(code="REP005", snippet="raise ValueError(...)"),
    ]
    baseline = Baseline.from_findings(findings)
    path = baseline.save(tmp_path / "baseline.json")
    reloaded = Baseline.load(path)
    assert reloaded.entries == baseline.entries
    assert reloaded.total == 3
    assert reloaded.count_for_code("REP006") == 2
    assert reloaded.count_for_code("REP005") == 1


def test_save_is_byte_deterministic(tmp_path):
    findings = [make_finding(), make_finding(code="REP005")]
    a = Baseline.from_findings(findings).save(tmp_path / "a.json")
    b = Baseline.from_findings(list(reversed(findings))).save(
        tmp_path / "b.json"
    )
    assert a.read_bytes() == b.read_bytes()


def test_line_shift_does_not_invalidate_the_baseline():
    baseline = Baseline.from_findings([make_finding(line=5)])
    moved = [make_finding(line=50)]  # same code/path/snippet, new line
    partition = baseline.partition(moved)
    assert partition.new == ()
    assert len(partition.suppressed) == 1
    assert partition.stale == ()


def test_extra_occurrence_beyond_the_count_is_new():
    baseline = Baseline.from_findings([make_finding(line=5)])
    partition = baseline.partition(
        [make_finding(line=5), make_finding(line=9)]
    )
    assert len(partition.suppressed) == 1
    assert len(partition.new) == 1
    # the earliest occurrence is the suppressed one
    assert partition.suppressed[0].line == 5
    assert partition.new[0].line == 9


def test_fixed_violations_surface_as_stale_entries():
    baseline = Baseline.from_findings([make_finding(), make_finding(
        code="REP005", snippet="raise ValueError(...)")])
    partition = baseline.partition([make_finding()])
    assert partition.new == ()
    assert len(partition.stale) == 1
    (identity, count), = partition.stale
    assert identity[0] == "REP005" and count == 1


def test_partial_scan_limits_staleness_to_scanned_files():
    """--changed runs lint a subset: entries for unscanned files are not
    stale (they were never given a chance to match), but an entry for a
    scanned file with no matching finding still is."""
    baseline = Baseline.from_findings([
        make_finding(path="src/repro/scanned.py"),
        make_finding(path="src/repro/elsewhere.py"),
    ])
    partition = baseline.partition(
        [], scanned_paths={"src/repro/scanned.py"}
    )
    assert partition.new == ()
    (identity, count), = partition.stale
    assert identity[1] == "src/repro/scanned.py" and count == 1


def test_shrink_round_trip(tmp_path):
    """Fix a violation, rewrite the baseline: it records strictly less."""
    first = [make_finding(line=5), make_finding(line=9)]
    baseline = Baseline.from_findings(first)
    baseline.save(tmp_path / "baseline.json")
    after_fix = [make_finding(line=5)]
    shrunk = Baseline.from_findings(after_fix)
    shrunk.save(tmp_path / "baseline.json")
    reloaded = Baseline.load(tmp_path / "baseline.json")
    assert reloaded.total == 1 < baseline.total


def test_empty_baseline_suppresses_nothing():
    partition = Baseline.empty().partition([make_finding()])
    assert len(partition.new) == 1
    assert partition.suppressed == ()


def test_corrupt_baseline_is_reported_with_remedy(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"format_version": 1, "entries": [')
    with pytest.raises(CorruptStoreError, match="write-baseline"):
        Baseline.load(path)


def test_unknown_format_version_is_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"format_version": 99, "entries": []}')
    with pytest.raises(FormatVersionError):
        Baseline.load(path)


def test_malformed_entries_are_lint_errors(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"format_version": 1, "entries": [{"code": "X"}]}')
    with pytest.raises(LintError, match="entry missing"):
        Baseline.load(path)
    path.write_text('{"format_version": 1, "entries": 7}')
    with pytest.raises(LintError, match="entries"):
        Baseline.load(path)
