"""The whole-program layer: REP101-REP104 on fixture mini-trees.

Each fixture under ``fixtures/flow/<case>/`` is a miniature source tree
(``src/repro/...``) so path-scoped behavior — public-API modules for
REP103, the prediction core for REP104, the source allowlist — applies
exactly as it does on the real repository.
"""

from __future__ import annotations

import pathlib
import shutil

import pytest

from repro.lint import analyze_paths, lint_paths
from repro.lint.flow.cache import SummaryCache

FLOW_FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "flow"


def analyze_tree(tree: pathlib.Path, cache_path=None):
    return analyze_paths(
        [tree / "src"], root=tree, cache_path=cache_path
    )


def codes_of(result):
    return sorted({f.code for f in result.findings})


# ---------------------------------------------------------------------------
# Good/bad fixture pairs
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "case, expected_codes",
    [
        ("rep101_bad", ["REP101"]),
        ("rep102_bad", ["REP102"]),
        ("rep103_bad", ["REP103"]),
        ("rep104_bad", ["REP104"]),
    ],
)
def test_bad_fixture_trees_are_detected(case, expected_codes):
    result = analyze_tree(FLOW_FIXTURES / case)
    assert codes_of(result) == expected_codes, [
        f"{f.path}:{f.line} {f.code} {f.message}" for f in result.findings
    ]


@pytest.mark.parametrize(
    "case",
    ["rep101_good", "rep102_good", "rep103_good", "rep104_good"],
)
def test_good_fixture_trees_are_clean(case):
    result = analyze_tree(FLOW_FIXTURES / case)
    assert result.findings == [], [
        f"{f.path}:{f.line} {f.code} {f.message}" for f in result.findings
    ]


def test_two_hop_clock_laundering_is_followed_to_the_sink():
    """rep101_bad routes ticks() → _now → _stamp → dict → writer."""
    result = analyze_tree(FLOW_FIXTURES / "rep101_bad")
    (finding,) = result.findings
    assert finding.code == "REP101"
    assert finding.path == "src/repro/broker/writer.py"
    assert "clock-tainted" in finding.message
    assert "atomic_write_json" in finding.message


def test_rep103_reports_the_leaking_call_site_and_origin():
    result = analyze_tree(FLOW_FIXTURES / "rep103_bad")
    by_message = sorted(f.message for f in result.findings)
    assert len(by_message) == 2
    assert "public API 'submit' can leak builtin ValueError" in by_message[1]
    assert "repro.broker.codec._decode" in by_message[1]
    assert "public API 'route' can leak builtin KeyError" in by_message[0]


def test_rep104_units_bug_behind_annotated_helper():
    result = analyze_tree(FLOW_FIXTURES / "rep104_bad")
    messages = sorted(f.message for f in result.findings)
    assert any("adds s to B" in m for m in messages)
    assert any("assigns B to 't_disk'" in m for m in messages)
    assert any("multiplies two durations" in m for m in messages)


# ---------------------------------------------------------------------------
# Call graph and purity summaries
# ---------------------------------------------------------------------------


def test_callgraph_golden_for_rep101_bad():
    result = analyze_tree(FLOW_FIXTURES / "rep101_bad")
    edges = result.callgraph.to_dict()
    assert edges["repro.broker.writer.flush"] == [
        "repro.broker.timeutil._stamp"
    ]
    assert edges["repro.broker.timeutil._stamp"] == [
        "repro.broker.timeutil._now"
    ]
    assert edges["repro.broker.timeutil._now"] == []


def test_purity_summaries_propagate_bottom_up():
    analysis = analyze_tree(FLOW_FIXTURES / "rep101_bad").analysis
    assert analysis.purity("repro.broker.timeutil._now") == "clock"
    assert analysis.purity("repro.broker.timeutil._stamp") == "clock"
    assert analysis.purity("repro.broker.writer.flush") == "clock+io"


def test_good_tree_functions_are_deterministic():
    analysis = analyze_tree(FLOW_FIXTURES / "rep101_good").analysis
    assert analysis.purity("repro.broker.writer._stamp") == "deterministic"
    # The allowlisted watchdog still reports honest effects — only its
    # *taint* is suppressed, not its purity summary.
    assert (
        analysis.purity("repro.campaign.watchdog.journal_heartbeat")
        == "clock+io"
    )


def test_sccs_handle_mutual_recursion(tmp_path):
    pkg = tmp_path / "src" / "repro" / "broker"
    pkg.mkdir(parents=True)
    (pkg / "loop.py").write_text(
        "from time import time as ticks\n"
        "from repro.core.durable import canonical_json\n\n\n"
        "def _ping(n):\n"
        "    if n <= 0:\n"
        "        return ticks()\n"
        "    return _pong(n - 1)\n\n\n"
        "def _pong(n):\n"
        "    return _ping(n - 1)\n\n\n"
        "def render(n):\n"
        "    return canonical_json({'v': _ping(n)})\n"
    )
    result = analyze_tree(tmp_path)
    assert codes_of(result) == ["REP101"]
    # _ping and _pong share one SCC
    comp = [
        c
        for c in result.callgraph.order
        if "repro.broker.loop._ping" in c
    ]
    assert comp and "repro.broker.loop._pong" in comp[0]


def test_container_mutation_carries_taint(tmp_path):
    """`payload['at'] = stamp()` taints `payload`, so writing the dict
    afterwards is a clock leak even though the tainted value never flows
    through a plain name assignment."""
    pkg = tmp_path / "src" / "repro" / "broker"
    pkg.mkdir(parents=True)
    (pkg / "tmod.py").write_text(
        "from time import monotonic as ticks\n\n\n"
        "def _now():\n"
        "    return ticks()\n\n\n"
        "def stamp():\n"
        "    return _now()\n"
    )
    (pkg / "writer.py").write_text(
        "from repro.core.durable import atomic_write_json\n\n"
        "from repro.broker.tmod import stamp\n\n\n"
        "def flush(path, payload):\n"
        "    payload['at'] = stamp()\n"
        "    atomic_write_json(path, payload)\n"
    )
    result = analyze_tree(tmp_path)
    assert codes_of(result) == ["REP101"]
    (finding,) = result.findings
    assert finding.path == "src/repro/broker/writer.py"


# ---------------------------------------------------------------------------
# Summary cache
# ---------------------------------------------------------------------------


def _copy_tree(case: str, tmp_path: pathlib.Path) -> pathlib.Path:
    dest = tmp_path / case
    shutil.copytree(FLOW_FIXTURES / case, dest)
    return dest


def test_cache_hits_and_invalidation(tmp_path):
    tree = _copy_tree("rep101_bad", tmp_path)
    cache = tmp_path / "cache.json"

    cold = analyze_tree(tree, cache_path=cache)
    assert cold.cache_hits == 0
    assert cold.cache_misses == cold.files_analyzed > 0

    warm = analyze_tree(tree, cache_path=cache)
    assert warm.cache_misses == 0
    assert warm.cache_hits == cold.files_analyzed
    assert [f.message for f in warm.findings] == [
        f.message for f in cold.findings
    ]

    # Editing one module invalidates exactly that module's entry.
    target = tree / "src" / "repro" / "broker" / "timeutil.py"
    target.write_text(target.read_text() + "\n# touched\n")
    edited = analyze_tree(tree, cache_path=cache)
    assert edited.cache_misses == 1
    assert edited.cache_hits == cold.files_analyzed - 1
    assert codes_of(edited) == ["REP101"]


def test_corrupt_cache_degrades_to_full_reextract(tmp_path):
    tree = _copy_tree("rep101_bad", tmp_path)
    cache = tmp_path / "cache.json"
    cache.write_text("{ not json")
    result = analyze_tree(tree, cache_path=cache)
    assert result.cache_hits == 0
    assert codes_of(result) == ["REP101"]
    # ... and the save repaired the file for the next run.
    assert SummaryCache.load(cache)._modules


# ---------------------------------------------------------------------------
# Acceptance: a planted aliased leak in repro.analysis
# ---------------------------------------------------------------------------


PLANTED = '''\
"""Throwaway scratch module with an aliased interprocedural leak."""

from time import monotonic as ticks

from repro.core.durable import atomic_write_json


def _elapsed():
    return ticks()


def snapshot(path):
    atomic_write_json(path, {"wall": _elapsed()})
'''


def test_planted_leak_in_analysis_caught_by_flow_not_plain_lint(
    tmp_path, repo_root
):
    dest = tmp_path / "src" / "repro" / "analysis"
    shutil.copytree(repo_root / "src" / "repro" / "analysis", dest)
    planted = dest / "_scratch.py"
    planted.write_text(PLANTED)

    plain = lint_paths([tmp_path / "src"], root=tmp_path)
    assert [f for f in plain if f.path.endswith("_scratch.py")] == []

    flow = analyze_paths([tmp_path / "src"], root=tmp_path)
    leaks = [f for f in flow.findings if f.code == "REP101"]
    assert len(leaks) == 1
    assert leaks[0].path == "src/repro/analysis/_scratch.py"
    assert "clock-tainted" in leaks[0].message
