"""--fix for REP003: produces the canonical form, and is idempotent."""

from __future__ import annotations

import shutil

from repro.lint import apply_fixes, lint_paths, lint_source


def stage(tmp_path, fixtures_dir):
    target = tmp_path / "src" / "repro" / "encode.py"
    target.parent.mkdir(parents=True)
    shutil.copy(fixtures_dir / "rep003_bad.py", target)
    return target


def test_fix_inserts_sort_keys_and_lints_clean(tmp_path, fixtures_dir):
    target = stage(tmp_path, fixtures_dir)
    findings = lint_paths([target], root=tmp_path)
    fixable = [f for f in findings if f.fixable]
    assert len(fixable) == 1
    applied = apply_fixes(findings, tmp_path)
    assert applied == {"src/repro/encode.py": 1}

    rewritten = target.read_text()
    assert "json.dumps(payload, indent=2, sort_keys=True)" in rewritten
    # The explicit sort_keys=False call is NOT auto-rewritten.
    assert "sort_keys=False" in rewritten

    after = lint_paths([target], root=tmp_path)
    assert [f for f in after if f.fixable] == []


def test_fix_is_idempotent(tmp_path, fixtures_dir):
    target = stage(tmp_path, fixtures_dir)
    apply_fixes(lint_paths([target], root=tmp_path), tmp_path)
    first_pass = target.read_bytes()
    # Second run: no fixable findings remain, file bytes untouched.
    applied = apply_fixes(lint_paths([target], root=tmp_path), tmp_path)
    assert applied == {}
    assert target.read_bytes() == first_pass


def test_fix_preserves_surrounding_code(tmp_path, fixtures_dir):
    target = stage(tmp_path, fixtures_dir)
    before = target.read_text()
    apply_fixes(lint_paths([target], root=tmp_path), tmp_path)
    after = target.read_text()
    # Only the one call changed; everything else is byte-identical.
    diffs = [
        (a, b)
        for a, b in zip(before.splitlines(), after.splitlines())
        if a != b
    ]
    assert diffs == [
        (
            "    text = json.dumps(payload, indent=2)",
            "    text = json.dumps(payload, indent=2, sort_keys=True)",
        )
    ]


def test_fix_handles_empty_and_trailing_comma_calls():
    source = (
        "import json\n"
        "a = json.dumps({})\n"
        "b = json.dumps(\n"
        "    {'k': 1},\n"
        ")\n"
    )
    findings = lint_source(source, "src/repro/x.py")
    assert all(f.fixable for f in findings) and len(findings) == 2
    from repro.lint.fixes import _apply_to_source

    fixed = _apply_to_source(
        source, [f.fix for f in findings], "src/repro/x.py"
    )
    assert "json.dumps({}, sort_keys=True)" in fixed
    assert "{'k': 1}, sort_keys=True)" in fixed
    assert lint_source(fixed, "src/repro/x.py") == []
