"""The ``repro lint`` subcommand and ``python -m repro.lint`` entry."""

from __future__ import annotations

import json
import shutil

import pytest

from repro.cli import main as repro_main
from repro.lint.cli import main as lint_main


def test_repro_lint_gate_passes_on_the_shipped_tree(repo_root):
    code = repro_main(
        [
            "lint",
            str(repo_root / "src" / "repro"),
            "--baseline",
            str(repo_root / "lint-baseline.json"),
            "--root",
            str(repo_root),
        ]
    )
    assert code == 0


def test_bad_file_fails_with_text_findings(tmp_path, fixtures_dir, capsys):
    target = tmp_path / "bad.py"
    shutil.copy(fixtures_dir / "rep005_bad.py", target)
    code = lint_main([str(target), "--root", str(tmp_path)])
    assert code == 1
    out = capsys.readouterr().out
    assert "REP005" in out
    assert "2 new finding(s)" in out


def test_json_format_is_machine_readable(tmp_path, fixtures_dir, capsys):
    target = tmp_path / "bad.py"
    shutil.copy(fixtures_dir / "rep003_bad.py", target)
    code = lint_main(
        [str(target), "--root", str(tmp_path), "--format", "json"]
    )
    assert code == 1
    parsed = json.loads(capsys.readouterr().out)
    assert parsed["summary"]["new"] == 2
    assert {f["code"] for f in parsed["findings"]} == {"REP003"}


def test_github_format_emits_error_annotations(
    tmp_path, fixtures_dir, capsys
):
    target = tmp_path / "bad.py"
    shutil.copy(fixtures_dir / "rep001_bad.py", target)
    code = lint_main(
        [str(target), "--root", str(tmp_path), "--format", "github"]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert out.count("::error file=bad.py") == 3
    assert "::notice title=repro.lint" in out


def test_write_baseline_then_gate_passes(tmp_path, fixtures_dir, capsys):
    target = tmp_path / "bad.py"
    shutil.copy(fixtures_dir / "rep006_bad.py", target)
    baseline = tmp_path / "baseline.json"
    assert (
        lint_main(
            [
                str(target),
                "--root",
                str(tmp_path),
                "--baseline",
                str(baseline),
                "--write-baseline",
            ]
        )
        == 0
    )
    assert baseline.exists()
    assert (
        lint_main(
            [
                str(target),
                "--root",
                str(tmp_path),
                "--baseline",
                str(baseline),
            ]
        )
        == 0
    )


def test_fix_flag_round_trip(tmp_path, fixtures_dir, capsys):
    target = tmp_path / "bad.py"
    shutil.copy(fixtures_dir / "rep003_bad.py", target)
    first = lint_main([str(target), "--root", str(tmp_path), "--fix"])
    # the sort_keys=False finding remains (not auto-rewritable)
    assert first == 1
    assert "1 fixed" in capsys.readouterr().out
    assert "sort_keys=True" in target.read_text()


def test_write_baseline_requires_baseline_path(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n")
    code = lint_main(
        [str(tmp_path / "ok.py"), "--root", str(tmp_path),
         "--write-baseline"]
    )
    assert code == 2
    assert "requires --baseline" in capsys.readouterr().err


def test_missing_path_is_a_usage_error(tmp_path, capsys):
    code = lint_main([str(tmp_path / "missing.py")])
    assert code == 2
    assert "no such file" in capsys.readouterr().err


def test_select_scopes_the_rule_set(tmp_path, fixtures_dir, capsys):
    target = tmp_path / "bad.py"
    shutil.copy(fixtures_dir / "rep001_bad.py", target)
    # REP001 fires unscoped, but a REP003/REP004-only run ignores it.
    assert lint_main([str(target), "--root", str(tmp_path)]) == 1
    capsys.readouterr()
    assert (
        lint_main(
            [str(target), "--root", str(tmp_path), "--select",
             "REP003,REP004"]
        )
        == 0
    )


def test_select_rejects_unknown_codes(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n")
    code = lint_main(
        [str(tmp_path / "ok.py"), "--root", str(tmp_path), "--select",
         "REP999"]
    )
    assert code == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_list_rules_prints_the_table(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in [f"REP00{i}" for i in range(1, 9)]:
        assert code in out
    assert "allowlist" in out
    assert "(autofix)" in out


def test_clean_file_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n")
    assert lint_main([str(tmp_path / "ok.py"), "--root",
                      str(tmp_path)]) == 0
    assert "0 new finding(s)" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Whole-program (flow) integration
# ---------------------------------------------------------------------------


def _flow_tree(case, tmp_path):
    import pathlib

    src = pathlib.Path(__file__).parent / "fixtures" / "flow" / case
    dest = tmp_path / case
    shutil.copytree(src, dest)
    return dest


def test_flow_defaults_on_for_directory_runs(tmp_path, capsys):
    tree = _flow_tree("rep101_bad", tmp_path)
    code = lint_main([str(tree / "src"), "--root", str(tree)])
    assert code == 1
    assert "REP101" in capsys.readouterr().out


def test_no_flow_suppresses_whole_program_findings(tmp_path, capsys):
    tree = _flow_tree("rep101_bad", tmp_path)
    code = lint_main(
        [str(tree / "src"), "--root", str(tree), "--no-flow"]
    )
    assert code == 0


def test_select_flow_code_forces_flow_and_scopes_output(
    tmp_path, capsys
):
    tree = _flow_tree("rep104_bad", tmp_path)
    code = lint_main(
        [str(tree / "src"), "--root", str(tree), "--select", "REP104"]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "REP104" in out
    assert "dimensional inconsistency" in out


def test_flow_findings_render_as_github_annotations(tmp_path, capsys):
    tree = _flow_tree("rep102_bad", tmp_path)
    code = lint_main(
        [str(tree / "src"), "--root", str(tree), "--format", "github"]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "::error file=src/repro/middleware/emit.py" in out
    assert "REP102" in out


def test_flow_baseline_suppresses_known_findings(tmp_path, capsys):
    tree = _flow_tree("rep101_bad", tmp_path)
    baseline = tree / "baseline.json"
    assert (
        lint_main(
            [str(tree / "src"), "--root", str(tree), "--baseline",
             str(baseline), "--write-baseline"]
        )
        == 0
    )
    capsys.readouterr()
    assert (
        lint_main(
            [str(tree / "src"), "--root", str(tree), "--baseline",
             str(baseline)]
        )
        == 0
    )


def test_list_rules_includes_flow_family(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("REP101", "REP102", "REP103", "REP104"):
        assert code in out
    assert "(flow)" in out


def test_changed_outside_git_is_a_usage_error(
    tmp_path, capsys, monkeypatch
):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "ok.py").write_text("x = 1\n")
    code = lint_main(["--changed", str(tmp_path)])
    assert code == 2
    assert "--changed" in capsys.readouterr().err


def test_changed_in_fresh_repo_lints_only_changed_files(
    tmp_path, capsys, monkeypatch
):
    import subprocess

    monkeypatch.chdir(tmp_path)
    subprocess.run(["git", "init", "-q"], check=True)
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t",
         "commit", "-q", "--allow-empty", "-m", "seed"],
        check=True,
    )
    (tmp_path / "clean.py").write_text("x = 1\n")
    (tmp_path / "bad.py").write_text(
        "import json\n\n\n"
        "def dump(x):\n"
        "    return json.dumps(x)\n"
    )
    code = lint_main(["--changed", str(tmp_path), "--root",
                      str(tmp_path)])
    assert code == 1
    out = capsys.readouterr().out
    assert "REP003" in out
    assert "2 file(s) scanned" in out


# ----------------------------------------------------------------------
# Exit-code contract: 0 = clean, 1 = findings, 2 = usage/internal error
# ----------------------------------------------------------------------


class TestExitCodeContract:
    """``repro lint`` promises 0/1/2 across every report format."""

    CLEAN = "def f(x):\n    return x + 1\n"

    @pytest.fixture
    def clean_file(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text(self.CLEAN)
        return target

    @pytest.fixture
    def bad_file(self, tmp_path, fixtures_dir):
        target = tmp_path / "bad.py"
        shutil.copy(fixtures_dir / "rep003_bad.py", target)
        return target

    @pytest.mark.parametrize("fmt", ["text", "json", "github"])
    def test_clean_exits_zero(self, clean_file, tmp_path, fmt, capsys):
        code = repro_main(
            ["lint", str(clean_file), "--format", fmt,
             "--root", str(tmp_path)]
        )
        assert code == 0
        capsys.readouterr()

    @pytest.mark.parametrize("fmt", ["text", "json", "github"])
    def test_findings_exit_one(self, bad_file, tmp_path, fmt, capsys):
        code = repro_main(
            ["lint", str(bad_file), "--format", fmt,
             "--root", str(tmp_path)]
        )
        assert code == 1
        capsys.readouterr()

    @pytest.mark.parametrize("fmt", ["text", "json", "github"])
    def test_usage_error_exits_two(self, clean_file, tmp_path, fmt, capsys):
        code = repro_main(
            ["lint", str(clean_file), "--format", fmt,
             "--select", "REP999", "--root", str(tmp_path)]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        code = repro_main(["lint", str(tmp_path / "absent.py")])
        assert code == 2
        capsys.readouterr()

    def test_corrupt_baseline_exits_two(self, bad_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{torn write")
        code = repro_main(
            ["lint", str(bad_file), "--baseline", str(baseline),
             "--root", str(tmp_path)]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_certificate_exits_two(
        self, clean_file, tmp_path, capsys
    ):
        certificate = tmp_path / "cert.json"
        certificate.write_text("{torn write")
        code = repro_main(
            ["lint", str(clean_file), "--effects",
             "--certificate", str(certificate), "--root", str(tmp_path)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "regenerate" in err
