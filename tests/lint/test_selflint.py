"""The shipped tree honors its own contracts.

These tests are the lint gate in test form: ``src/repro`` has zero
non-baselined findings — intraprocedural *and* whole-program (flow) —
the checked-in baseline is empty — the REP006 exact-compare debt was
burned down to zero by rewriting the fault-factor sentinels in
``middleware/runtime.py`` as inequalities — and introducing any bad
fixture into the tree would fail the gate.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.lint import Baseline, lint_paths, lint_source

BASELINE_NAME = "lint-baseline.json"

# The tracked-debt budget per rule code.  Shrink-only: lowering a count
# after fixing a site is expected; raising one is a contract regression
# and must instead fix the new violation.
TRACKED_DEBT = {
    "REP001": 0,
    "REP002": 0,
    "REP003": 0,
    "REP004": 0,
    "REP005": 0,  # the burn-down left no bare builtin raises
    "REP006": 0,  # the != 1.0 sentinels were rewritten as inequalities
    "REP007": 0,
    "REP008": 0,
    "REP009": 0,  # service/broker/campaign shipped with every wait bounded
    # The flow family ships clean: no baselined whole-program findings.
    "REP101": 0,
    "REP102": 0,
    "REP103": 0,
    "REP104": 0,
    # The effect family ships clean: the tree certifies with zero
    # baselined effect findings.
    "REP201": 0,
    "REP202": 0,
    "REP203": 0,
    "REP204": 0,
    "REP205": 0,
}


def test_src_repro_is_clean_modulo_baseline(repo_root):
    findings = lint_paths([repo_root / "src" / "repro"], root=repo_root)
    baseline = Baseline.load(repo_root / BASELINE_NAME)
    partition = baseline.partition(findings)
    assert partition.new == (), [
        f"{f.path}:{f.line} {f.code} {f.message}" for f in partition.new
    ]
    # No stale entries either: the baseline matches the tree exactly.
    assert partition.stale == ()


def test_baseline_counts_can_only_shrink(repo_root):
    baseline = Baseline.load(repo_root / BASELINE_NAME)
    for code, budget in TRACKED_DEBT.items():
        assert baseline.count_for_code(code) <= budget, (
            f"{code} baseline grew past its budget of {budget}; fix the "
            "new violation instead of baselining it"
        )
    assert baseline.total == sum(TRACKED_DEBT.values())


def test_every_bad_fixture_would_fail_the_gate(repo_root, fixtures_dir):
    """Acceptance: introducing any bad example into src/repro is caught."""
    baseline = Baseline.load(repo_root / BASELINE_NAME)
    scoped_relpath = {
        # REP007 is scoped to serialization/report modules and REP009 to
        # the long-running layers; everything else fires anywhere under
        # src/repro.
        "rep007_bad.py": "src/repro/broker/report_injected.py",
        "rep009_bad.py": "src/repro/service/pool_injected.py",
    }
    for fixture in sorted(fixtures_dir.glob("rep*_bad.py")):
        relpath = scoped_relpath.get(
            fixture.name, f"src/repro/injected/{fixture.stem}.py"
        )
        findings = lint_source(fixture.read_text(), relpath)
        partition = baseline.partition(findings)
        assert partition.new, (
            f"{fixture.name} under {relpath} produced no non-baselined "
            "finding — the gate would miss it"
        )


def test_src_repro_flow_is_clean(repo_root, tmp_path):
    """The whole-program pass finds nothing to baseline on the tree."""
    from repro.lint import analyze_paths

    result = analyze_paths(
        [repo_root / "src" / "repro"],
        root=repo_root,
        cache_path=tmp_path / "flow-cache.json",
    )
    assert result.findings == [], [
        f"{f.path}:{f.line} {f.code} {f.message}" for f in result.findings
    ]


def test_src_repro_effects_is_clean(repo_root, tmp_path):
    """The effect pass finds nothing on the tree, and the committed
    certificate matches the current analysis (no demotions)."""
    from repro.lint import analyze_effects

    result = analyze_effects(
        [repo_root / "src" / "repro"],
        root=repo_root,
        cache_path=tmp_path / "effects-cache.json",
        certificate_path=repo_root / ".repro-effects.json",
    )
    assert result.findings == [], [
        f"{f.path}:{f.line} {f.code} {f.message}" for f in result.findings
    ]


def test_certificate_covers_every_pool_reachable_function(
    repo_root, tmp_path
):
    """Acceptance: every function reachable from the campaign entry
    points appears in the committed certificate at a non-effectful tier
    — so ``repro campaign --workers N`` runs only proven code."""
    from repro.lint import analyze_effects, load_certificate
    from repro.lint.effects import CERTIFIED_ROOTS

    result = analyze_effects(
        [repo_root / "src" / "repro"],
        root=repo_root,
        cache_path=tmp_path / "effects-cache.json",
    )
    certified = load_certificate(repo_root / ".repro-effects.json")[
        "functions"
    ]

    edges = result.analysis.graph.edges
    reachable = set(CERTIFIED_ROOTS)
    frontier = list(CERTIFIED_ROOTS)
    while frontier:
        for callee in edges.get(frontier.pop(), ()):
            if callee not in reachable:
                reachable.add(callee)
                frontier.append(callee)
    assert reachable >= set(CERTIFIED_ROOTS)  # roots exist in the graph

    missing = sorted(q for q in reachable if q not in certified)
    assert missing == [], (
        "functions reachable from the campaign entry points are absent "
        f"from .repro-effects.json: {missing[:10]}"
    )


def test_certificate_file_is_canonical_json(repo_root):
    from repro.core.durable import canonical_json, read_json_document

    path = repo_root / ".repro-effects.json"
    data = read_json_document(
        path, "determinism certificate", expected_version=1
    )
    assert path.read_text() == canonical_json(data)


def test_lint_package_lints_itself(repo_root):
    """The checker's own modules satisfy every contract, unbaselined."""
    findings = lint_paths([repo_root / "src" / "repro" / "lint"],
                          root=repo_root)
    assert findings == [], [
        f"{f.path}:{f.line} {f.code}" for f in findings
    ]


def test_benchmarks_and_scripts_writers_are_durable(repo_root):
    """Satellite audit: result writers route through repro.core.durable."""
    findings = lint_paths(
        [repo_root / "benchmarks", repo_root / "scripts"], root=repo_root
    )
    rep004 = [f for f in findings if f.code == "REP004"]
    rep003 = [f for f in findings if f.code == "REP003"]
    assert rep004 == [], [f"{f.path}:{f.line}" for f in rep004]
    assert rep003 == [], [f"{f.path}:{f.line}" for f in rep003]


def test_baseline_file_is_canonical_json(repo_root):
    from repro.core.durable import canonical_json, read_json_document

    path = repo_root / BASELINE_NAME
    data = read_json_document(path, "lint baseline", expected_version=1)
    assert path.read_text() == canonical_json(data)
