"""Tests for the durable campaign journal."""

import json

import pytest

from repro.campaign import CampaignJournal, JournalRecord
from repro.core.durable import CorruptStoreError, FormatVersionError
from repro.errors import CampaignError

from tests.campaign.conftest import fake_result
from repro.analysis.results_io import result_to_dict


def record(entry_id, status="completed", attempts=1):
    payload = None if status == "timed-out" else result_to_dict(
        fake_result(entry_id)
    )
    return JournalRecord(
        entry_id=entry_id,
        status=status,
        attempts=attempts,
        elapsed_s=0.5,
        payload=payload,
        violations=[] if status != "timed-out" else ["deadline"],
    )


class TestRoundTrip:
    def test_commit_and_load(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.json")
        journal.initialize("camp", "fp-1")
        journal.commit(record("fig02"))
        journal.commit(record("fig03", status="timed-out", attempts=2))

        fresh = CampaignJournal(tmp_path / "j.json")
        records = fresh.load(expected_fingerprint="fp-1")
        assert list(records) == ["fig02", "fig03"]
        assert records["fig02"].status == "completed"
        assert records["fig02"].payload["experiment_id"] == "fig02"
        assert records["fig03"].status == "timed-out"
        assert records["fig03"].payload is None
        assert records["fig03"].attempts == 2

    def test_no_temp_files_left_behind(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.json")
        journal.initialize("camp", "fp-1")
        journal.commit(record("fig02"))
        assert [p.name for p in tmp_path.iterdir()] == ["j.json"]


class TestMisuse:
    def test_commit_before_initialize(self, tmp_path):
        with pytest.raises(CampaignError):
            CampaignJournal(tmp_path / "j.json").commit(record("fig02"))

    def test_initialize_refuses_existing(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.json")
        journal.initialize("camp", "fp-1")
        with pytest.raises(CampaignError, match="already exists"):
            CampaignJournal(tmp_path / "j.json").initialize("camp", "fp-1")

    def test_duplicate_commit_rejected(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.json")
        journal.initialize("camp", "fp-1")
        journal.commit(record("fig02"))
        with pytest.raises(CampaignError, match="already journaled"):
            journal.commit(record("fig02"))

    def test_unsettled_status_rejected(self):
        with pytest.raises(CampaignError):
            record("fig02", status="skipped")


class TestCorruptionDetection:
    def _journal_with_one_entry(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.json")
        journal.initialize("camp", "fp-1")
        journal.commit(record("fig02"))
        return tmp_path / "j.json"

    def test_truncated_file(self, tmp_path):
        path = self._journal_with_one_entry(tmp_path)
        path.write_text(path.read_text()[:40])
        with pytest.raises(CorruptStoreError, match=str(path)):
            CampaignJournal(path).load()

    def test_tampered_payload_fails_checksum(self, tmp_path):
        path = self._journal_with_one_entry(tmp_path)
        data = json.loads(path.read_text())
        data["entries"][0]["payload"]["rows"][0]["actual"] = 99.0
        path.write_text(json.dumps(data))
        with pytest.raises(CorruptStoreError, match="checksum"):
            CampaignJournal(path).load()

    def test_unknown_format_version(self, tmp_path):
        path = self._journal_with_one_entry(tmp_path)
        data = json.loads(path.read_text())
        data["format_version"] = 999
        path.write_text(json.dumps(data))
        with pytest.raises(FormatVersionError, match="newer version"):
            CampaignJournal(path).load()

    def test_fingerprint_mismatch(self, tmp_path):
        path = self._journal_with_one_entry(tmp_path)
        with pytest.raises(CampaignError, match="different manifest"):
            CampaignJournal(path).load(expected_fingerprint="other-fp")

    def test_missing_key(self, tmp_path):
        path = self._journal_with_one_entry(tmp_path)
        data = json.loads(path.read_text())
        del data["manifest_sha256"]
        path.write_text(json.dumps(data))
        with pytest.raises(CorruptStoreError):
            CampaignJournal(path).load()


class TestCommitAtomicity:
    def test_failed_replace_preserves_old_journal(self, tmp_path, monkeypatch):
        journal = CampaignJournal(tmp_path / "j.json")
        journal.initialize("camp", "fp-1")
        journal.commit(record("fig02"))
        before = (tmp_path / "j.json").read_bytes()

        import repro.core.durable as durable

        def explode(*_args, **_kwargs):
            raise OSError("disk pulled mid-rename")

        monkeypatch.setattr(durable.os, "replace", explode)
        with pytest.raises(OSError):
            journal.commit(record("fig03"))
        monkeypatch.undo()

        # The on-disk journal is the complete previous document and no
        # temp file survived the failed commit.
        assert (tmp_path / "j.json").read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["j.json"]
        records = CampaignJournal(tmp_path / "j.json").load()
        assert list(records) == ["fig02"]
