"""Property: resume after an interrupt at *any* journal position
converges to the same SuiteReport as an uninterrupted run.

Hypothesis drives the crash position (and a double-crash variant); the
reports are compared on everything observable — entry ids, results
(canonical serialized form), violations — not on wall-clock timings.
"""

import pathlib
import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.results_io import result_to_dict
from repro.campaign import CampaignRunner
from repro.workloads.suite import suite_report_from_campaign

from tests.campaign.conftest import FAKE_IDS, fake_registry, make_manifest


def run_to_report(root, crash_at=None):
    """One campaign run; returns the report (None if it crashed)."""
    runner = CampaignRunner(
        make_manifest(),
        root / "journal.json",
        registry=fake_registry(FAKE_IDS, crash_at=crash_at),
        results_dir=root / "results",
        check_claims=False,
        handle_signals=False,
    )
    try:
        return runner.run(resume=(root / "journal.json").exists())
    except RuntimeError:
        return None  # injected crash — journal checkpoint stands


def comparable(suite_report):
    """The timing-independent content of a SuiteReport."""
    return {
        "interrupted": suite_report.interrupted,
        "entries": [
            (
                e.experiment_id,
                result_to_dict(e.result),
                tuple(e.violations),
            )
            for e in suite_report.entries
        ],
    }


def reference():
    root = pathlib.Path(tempfile.mkdtemp(prefix="campaign-ref-"))
    try:
        return comparable(suite_report_from_campaign(run_to_report(root)))
    finally:
        shutil.rmtree(root)


REFERENCE = reference()


@settings(max_examples=20, deadline=None)
@given(crash_at=st.integers(min_value=0, max_value=len(FAKE_IDS) - 1))
def test_resume_after_crash_at_any_position_converges(crash_at):
    # tmp_path is function-scoped, not example-scoped — use a fresh
    # directory per hypothesis example instead.
    root = pathlib.Path(tempfile.mkdtemp(prefix="campaign-prop-"))
    try:
        assert run_to_report(root, crash_at=crash_at) is None
        report = run_to_report(root)
        assert report is not None
        suite = suite_report_from_campaign(report)
        assert comparable(suite) == REFERENCE
        # Entry provenance: everything before the crash was restored
        # from the journal, the rest ran live.
        statuses = [suite.entry(i).status for i in FAKE_IDS]
        assert statuses == ["resumed"] * crash_at + ["completed"] * (
            len(FAKE_IDS) - crash_at
        )
    finally:
        shutil.rmtree(root)


@settings(max_examples=10, deadline=None)
@given(
    first=st.integers(min_value=0, max_value=len(FAKE_IDS) - 1),
    second=st.integers(min_value=0, max_value=len(FAKE_IDS) - 1),
)
def test_repeated_crashes_still_converge(first, second):
    root = pathlib.Path(tempfile.mkdtemp(prefix="campaign-prop2-"))
    try:
        assert run_to_report(root, crash_at=first) is None
        # The second crash position indexes the original entry list; a
        # position the journal already settled cannot crash again, so
        # the resume may complete cleanly on the first try.
        maybe = run_to_report(root, crash_at=second)
        if maybe is None:
            maybe = run_to_report(root)
        assert maybe is not None
        assert comparable(suite_report_from_campaign(maybe)) == REFERENCE
    finally:
        shutil.rmtree(root)
