"""Tests for the crash-safe campaign runner.

The fakes are instant and instrumented (see conftest), so crash/resume
behavior is asserted precisely: which entries re-ran, what the journal
holds, and that a resumed campaign's result artifacts are byte-identical
to an uninterrupted run's.
"""

import hashlib
import time

import pytest

from repro.campaign import (
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_PROBLEMS,
    CampaignRunner,
)
from repro.errors import CampaignError
from repro.faults.retry import RetryPolicy

from tests.campaign.conftest import (
    FAKE_IDS,
    fake_registry,
    fake_result,
    make_manifest,
)


def run_campaign(tmp_path, subdir, *, crash_at=None, log=None, **kwargs):
    manifest = make_manifest()
    root = tmp_path / subdir
    runner = CampaignRunner(
        manifest,
        root / "journal.json",
        registry=fake_registry(FAKE_IDS, log=log, crash_at=crash_at),
        results_dir=root / "results",
        check_claims=False,
        handle_signals=False,
        **kwargs,
    )
    return runner


def results_digest(results_dir):
    """Map of result-file name -> sha256 of its bytes."""
    return {
        p.name: hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(results_dir.iterdir())
    }


class TestCleanRun:
    def test_all_entries_complete(self, tmp_path):
        log = []
        runner = run_campaign(tmp_path, "clean", log=log)
        report = runner.run()
        assert report.ok
        assert report.exit_code == EXIT_OK
        assert not report.interrupted
        assert [o.status for o in report.outcomes] == ["completed"] * 6
        assert log == FAKE_IDS
        assert sorted(report.results()) == sorted(FAKE_IDS)
        names = sorted(p.name for p in (tmp_path / "clean/results").iterdir())
        assert names == sorted(f"{i}.json" for i in FAKE_IDS)

    def test_rerun_without_resume_refused(self, tmp_path):
        run_campaign(tmp_path, "c").run()
        with pytest.raises(CampaignError, match="already exists"):
            run_campaign(tmp_path, "c").run()

    def test_resume_of_missing_journal_starts_fresh(self, tmp_path):
        report = run_campaign(tmp_path, "c").run(resume=True)
        assert report.ok


class TestCrashAndResume:
    @pytest.mark.parametrize("crash_at", [0, 2, 5])
    def test_resume_reruns_only_unsettled_entries(self, tmp_path, crash_at):
        # Uninterrupted reference run.
        ref = run_campaign(tmp_path, "ref")
        assert ref.run().ok
        ref_digest = results_digest(tmp_path / "ref/results")

        # Crashed run: the injected exception escapes the runner, like a
        # process dying mid-entry.  Settled entries are already durable.
        crash_log = []
        with pytest.raises(RuntimeError, match="injected crash"):
            run_campaign(tmp_path, "crashed", crash_at=crash_at,
                         log=crash_log).run()
        assert crash_log == FAKE_IDS[: crash_at + 1]

        # Resume re-runs only the crashed entry and everything after it.
        resume_log = []
        report = run_campaign(tmp_path, "crashed", log=resume_log).run(
            resume=True
        )
        assert resume_log == FAKE_IDS[crash_at:]
        assert report.ok
        statuses = [report.outcome(i).status for i in FAKE_IDS]
        assert statuses == ["resumed"] * crash_at + ["completed"] * (
            6 - crash_at
        )

        # The combined artifacts are byte-identical to the clean run's.
        assert results_digest(tmp_path / "crashed/results") == ref_digest

    def test_resume_against_changed_manifest_refused(self, tmp_path):
        run_campaign(tmp_path, "c").run()
        manifest = make_manifest(ids=FAKE_IDS[:3])
        runner = CampaignRunner(
            manifest,
            tmp_path / "c/journal.json",
            registry=fake_registry(FAKE_IDS[:3]),
            check_claims=False,
            handle_signals=False,
        )
        with pytest.raises(CampaignError, match="different manifest"):
            runner.run(resume=True)

    def test_resume_of_complete_journal_reruns_nothing(self, tmp_path):
        run_campaign(tmp_path, "c").run()
        log = []
        report = run_campaign(tmp_path, "c", log=log).run(resume=True)
        assert log == []
        assert [o.status for o in report.outcomes] == ["resumed"] * 6


class TestWatchdog:
    def _hang(self):
        time.sleep(10.0)

    def test_timeout_classified_and_campaign_continues(self, tmp_path):
        manifest = make_manifest(ids=["fig02", "fig03"], deadline_s=0.05)
        registry = fake_registry(["fig02", "fig03"])
        registry["fig02"] = self._hang
        slept = []
        runner = CampaignRunner(
            manifest,
            tmp_path / "journal.json",
            registry=registry,
            check_claims=False,
            handle_signals=False,
            sleep=slept.append,
            poll_interval_s=0.01,
        )
        report = runner.run()
        timed_out = report.outcome("fig02")
        assert timed_out.status == "timed-out"
        assert timed_out.attempts == 2  # WATCHDOG_RETRY_POLICY default
        assert timed_out.result is None
        assert any("deadline" in v for v in timed_out.violations)
        # The rest of the campaign still ran.
        assert report.outcome("fig03").status == "completed"
        assert not report.ok
        assert report.exit_code == EXIT_PROBLEMS
        # The timed-out classification is durable: a resume restores it
        # without re-running the hung entry.
        resumed = CampaignRunner(
            manifest,
            tmp_path / "journal.json",
            registry=registry,
            check_claims=False,
            handle_signals=False,
        ).run(resume=True)
        assert resumed.outcome("fig02").status == "timed-out"
        assert resumed.outcome("fig03").status == "resumed"

    def test_retry_after_timeout_succeeds(self, tmp_path):
        manifest = make_manifest(ids=["fig02"], deadline_s=0.05)
        calls = []

        def flaky():
            calls.append("x")
            if len(calls) == 1:
                time.sleep(10.0)  # first attempt hangs past the deadline
            return fake_result("fig02")

        slept = []
        runner = CampaignRunner(
            manifest,
            tmp_path / "journal.json",
            registry={"fig02": flaky},
            retry_policy=RetryPolicy(
                max_attempts=3,
                base_backoff_s=0.25,
                backoff_factor=2.0,
                max_backoff_s=10.0,
            ),
            check_claims=False,
            handle_signals=False,
            sleep=slept.append,
            poll_interval_s=0.01,
        )
        report = runner.run()
        outcome = report.outcome("fig02")
        assert outcome.status == "retried"
        assert outcome.attempts == 2
        assert outcome.result is not None
        assert report.ok
        # Real backoff with RetryPolicy semantics: one sleep, base delay.
        assert slept == [0.25]


class TestInterruption:
    def test_stop_mid_campaign_checkpoints_and_skips(self, tmp_path):
        manifest = make_manifest()
        runner = run_campaign(tmp_path, "c")

        # Trip the stop flag from inside the third entry, as a signal
        # handler would; the entry then lingers long enough for the
        # watchdog poll loop to abandon it.
        def stopping_fig04():
            runner._stop.set()
            time.sleep(5.0)
            return fake_result("fig04")

        runner.registry["fig04"] = stopping_fig04
        report = runner.run()
        assert report.interrupted
        assert report.exit_code == EXIT_INTERRUPTED
        statuses = [report.outcome(i).status for i in FAKE_IDS]
        # fig04's attempt was abandoned (not journaled) and everything
        # after it was skipped without running.
        assert statuses == ["completed", "completed", "skipped", "skipped",
                            "skipped", "skipped"]
        skipped = report.outcome("fig04")
        assert skipped.attempts == 0

        # Resume finishes the remaining entries.
        log = []
        resumed = run_campaign(tmp_path, "c", log=log).run(resume=True)
        assert resumed.ok
        assert log == FAKE_IDS[2:]
        assert [resumed.outcome(i).status for i in FAKE_IDS] == (
            ["resumed"] * 2 + ["completed"] * 4
        )


class TestClaimChecking:
    def test_violations_flagged_without_aborting(self, tmp_path):
        manifest = make_manifest(ids=["fig02"])
        runner = CampaignRunner(
            manifest,
            tmp_path / "journal.json",
            registry=fake_registry(["fig02"]),
            check_claims=True,
            handle_signals=False,
        )
        report = runner.run()
        outcome = report.outcome("fig02")
        # The fake result's errors don't satisfy fig02's recorded claims.
        assert outcome.status == "completed"
        assert outcome.violations
        assert not report.ok
        assert report.exit_code == EXIT_PROBLEMS
