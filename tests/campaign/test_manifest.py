"""Tests for campaign manifests."""

import json

import pytest

from repro.campaign import (
    CampaignEntry,
    CampaignManifest,
    load_manifest,
    manifest_from_dict,
    manifest_to_dict,
    paper_suite_manifest,
)
from repro.core.durable import CorruptStoreError
from repro.errors import CampaignError
from repro.simgrid.errors import ConfigurationError
from repro.workloads.experiments import EXPERIMENTS

SCENARIO = {"seed": 7, "faults": [{"type": "chunk-read-error", "rate": 0.05}]}


def sample_dict():
    return {
        "name": "nightly",
        "default_deadline_s": 120.0,
        "entries": [
            {"id": "fig02", "fast": True},
            {"id": "fig04", "deadline_s": 30.0},
            {
                "id": "em-under-faults",
                "kind": "fault-scenario",
                "workload": "em",
                "fast": True,
                "scenario": SCENARIO,
            },
        ],
    }


class TestRoundTrip:
    def test_from_dict_to_dict(self):
        manifest = manifest_from_dict(sample_dict())
        assert manifest.name == "nightly"
        assert [e.entry_id for e in manifest.entries] == [
            "fig02",
            "fig04",
            "em-under-faults",
        ]
        assert manifest.entries[0].fast
        assert manifest.entries[1].deadline_s == 30.0
        assert manifest.entries[2].kind == "fault-scenario"
        assert manifest.entries[2].scenario == SCENARIO
        assert manifest_from_dict(manifest_to_dict(manifest)) == manifest

    def test_fingerprint_is_stable_and_content_sensitive(self):
        a = manifest_from_dict(sample_dict())
        b = manifest_from_dict(sample_dict())
        assert a.fingerprint() == b.fingerprint()
        changed = sample_dict()
        changed["entries"][0]["fast"] = False
        assert manifest_from_dict(changed).fingerprint() != a.fingerprint()

    def test_effective_deadline_applies_default(self):
        manifest = manifest_from_dict(sample_dict())
        assert manifest.entries[0].effective_deadline_s(
            manifest.default_deadline_s
        ) == 120.0
        assert manifest.entries[1].effective_deadline_s(
            manifest.default_deadline_s
        ) == 30.0

    def test_load_manifest(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(sample_dict()))
        assert load_manifest(path) == manifest_from_dict(sample_dict())


class TestValidation:
    def test_unknown_manifest_key(self):
        data = sample_dict()
        data["deadline"] = 3  # typo for default_deadline_s
        with pytest.raises(CampaignError, match="unknown key"):
            manifest_from_dict(data)

    def test_unknown_entry_key(self):
        data = sample_dict()
        data["entries"][0]["deadline"] = 3
        with pytest.raises(CampaignError, match="unknown key"):
            manifest_from_dict(data)

    def test_duplicate_entry_ids(self):
        data = sample_dict()
        data["entries"].append({"id": "fig02"})
        with pytest.raises(CampaignError, match="duplicate"):
            manifest_from_dict(data)

    def test_unknown_experiment(self):
        with pytest.raises(CampaignError, match="unknown experiment"):
            CampaignEntry(entry_id="fig99")

    def test_fault_scenario_requires_workload_and_scenario(self):
        with pytest.raises(CampaignError, match="workload"):
            CampaignEntry(entry_id="x", kind="fault-scenario", scenario=SCENARIO)
        with pytest.raises(CampaignError, match="scenario"):
            CampaignEntry(entry_id="x", kind="fault-scenario", workload="em")

    def test_unknown_kind(self):
        with pytest.raises(CampaignError, match="kind"):
            CampaignEntry(entry_id="fig02", kind="mystery")

    def test_empty_manifest(self):
        with pytest.raises(CampaignError, match="no entries"):
            CampaignManifest(name="empty", entries=())

    def test_non_positive_deadline(self):
        with pytest.raises(CampaignError, match="positive"):
            CampaignEntry(entry_id="fig02", deadline_s=0.0)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no campaign manifest"):
            load_manifest(tmp_path / "absent.json")

    def test_load_corrupt_file(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{not json")
        with pytest.raises(CorruptStoreError, match=str(path)):
            load_manifest(path)


class TestPaperSuiteManifest:
    def test_covers_all_experiments(self):
        manifest = paper_suite_manifest(fast=True)
        assert manifest.name == "paper-suite-fast"
        assert [e.entry_id for e in manifest.entries] == sorted(EXPERIMENTS)
        assert all(e.fast for e in manifest.entries)

    def test_subset_and_deadline(self):
        manifest = paper_suite_manifest(
            fast=False, experiment_ids=["fig04", "fig02"], deadline_s=60.0
        )
        assert manifest.name == "paper-suite"
        assert [e.entry_id for e in manifest.entries] == ["fig04", "fig02"]
        assert manifest.default_deadline_s == 60.0

    def test_unknown_ids_rejected(self):
        with pytest.raises(CampaignError, match="unknown experiments"):
            paper_suite_manifest(experiment_ids=["fig99"])

    def test_fast_changes_fingerprint(self):
        assert (
            paper_suite_manifest(fast=True).fingerprint()
            != paper_suite_manifest(fast=False).fingerprint()
        )
