"""Shared fixtures for the campaign-engine tests.

The runner tests use *fake* experiment callables injected through the
runner's ``registry`` seam: deterministic, instant, and instrumented
(every invocation is logged), so crash/resume behavior can be asserted
precisely without waiting on real figure reproductions.  Entry ids must
still be registered experiment ids (the manifest validates them), so
the fakes borrow real figure ids.
"""

from typing import Callable, Dict, List, Optional, Sequence

from repro.campaign import CampaignEntry, CampaignManifest
from repro.workloads.experiments import ExperimentResult, ExperimentRow

#: Real experiment ids the fake campaigns borrow (manifest-valid).
FAKE_IDS = ["fig02", "fig03", "fig04", "fig05", "fig06", "fig07"]


def fake_result(entry_id: str, rows: int = 3) -> ExperimentResult:
    """A deterministic stand-in for a figure reproduction."""
    result = ExperimentResult(
        experiment_id=entry_id,
        title=f"Fake reproduction of {entry_id}",
        workload="kmeans",
    )
    result.metadata = {"base_profile": "1-1", "dataset_bytes": 1400.0}
    for i in range(rows):
        result.rows.append(
            ExperimentRow(
                data_nodes=1,
                compute_nodes=2**i,
                model="global reduction",
                actual=1.0 + i,
                predicted=1.05 + i,
            )
        )
        result.rows.append(
            ExperimentRow(
                data_nodes=1,
                compute_nodes=2**i,
                model="no communication",
                actual=1.0 + i,
                predicted=1.5 + i,
            )
        )
    return result


def fake_registry(
    ids: Sequence[str],
    log: Optional[List[str]] = None,
    crash_at: Optional[int] = None,
) -> Dict[str, Callable[[], ExperimentResult]]:
    """Instant deterministic callables, optionally crashing at index
    ``crash_at`` (simulating the process dying mid-campaign)."""

    def make(index: int, entry_id: str):
        def run() -> ExperimentResult:
            if log is not None:
                log.append(entry_id)
            if crash_at is not None and index == crash_at:
                raise RuntimeError(f"injected crash at '{entry_id}'")
            return fake_result(entry_id)

        return run

    return {e: make(i, e) for i, e in enumerate(ids)}


def make_manifest(
    ids: Sequence[str] = FAKE_IDS,
    deadline_s: Optional[float] = None,
    name: str = "fake-campaign",
) -> CampaignManifest:
    return CampaignManifest(
        name=name,
        entries=tuple(CampaignEntry(entry_id=i) for i in ids),
        default_deadline_s=deadline_s,
    )
