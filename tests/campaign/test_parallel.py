"""The certificate-gated process-pool campaign executor.

The contract under test: ``ParallelCampaignRunner`` produces journals,
result artifacts, and reports *byte-identical* to the serial
``CampaignRunner`` (modulo the wall-clock ``elapsed_s`` fields, which
differ between any two runs), refuses to start without a
process-pool-safety proof, and keeps the serial runner's durability and
interruption semantics.

Registry callables cross the process boundary by pickle reference, so
every fake driver here is a module-level function wrapped in
``functools.partial`` — closures (like ``conftest.fake_registry``'s)
are serial-only.
"""

from __future__ import annotations

import functools
import json
import pathlib
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import (
    CampaignRunner,
    ParallelCampaignRunner,
    PoolSafetyError,
    verify_pool_safety,
)
from repro.errors import CampaignError
from repro.faults import RetryPolicy

from .conftest import FAKE_IDS, fake_result, make_manifest

NO_RETRY = RetryPolicy(
    max_attempts=1, base_backoff_s=0.0, backoff_factor=1.0, max_backoff_s=0.0
)


# ----------------------------------------------------------------------
# Module-level (picklable) fake drivers
# ----------------------------------------------------------------------


def _fake_driver(entry_id: str):
    return fake_result(entry_id)


def _slow_driver(entry_id: str, duration_s: float):
    time.sleep(duration_s)
    return fake_result(entry_id)


def _boom_driver(entry_id: str):
    raise RuntimeError(f"driver for '{entry_id}' must not run")


def _rendezvous_driver(entry_id: str, dirpath: str):
    """Signal the test that work started, then block until released."""
    directory = pathlib.Path(dirpath)
    (directory / f"{entry_id}.started").write_text(entry_id)
    while not (directory / "go").exists():
        time.sleep(0.01)
    return fake_result(entry_id)


def picklable_registry(ids, driver=_fake_driver, *extra):
    return {
        entry_id: functools.partial(driver, entry_id, *extra)
        for entry_id in ids
    }


def journal_projection(path: pathlib.Path):
    """The journal minus its wall-clock fields (the determinism view)."""
    document = json.loads(path.read_text())
    for entry in document["entries"]:
        del entry["elapsed_s"]
    return document


# ----------------------------------------------------------------------
# Byte-identity with the serial runner
# ----------------------------------------------------------------------


def run_both(tmp_path, ids, workers=2):
    manifest = make_manifest(ids)
    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"
    serial = CampaignRunner(
        manifest,
        tmp_path / "serial.journal.json",
        registry=picklable_registry(ids),
        results_dir=serial_dir,
        check_claims=False,
    ).run()
    parallel = ParallelCampaignRunner(
        manifest,
        tmp_path / "parallel.journal.json",
        workers=workers,
        certify=False,
        registry=picklable_registry(ids),
        results_dir=parallel_dir,
        check_claims=False,
    ).run()
    return serial, parallel, serial_dir, parallel_dir


def assert_identical(tmp_path, serial, parallel, serial_dir, parallel_dir):
    assert journal_projection(
        tmp_path / "serial.journal.json"
    ) == journal_projection(tmp_path / "parallel.journal.json")
    serial_artifacts = sorted(p.name for p in serial_dir.iterdir())
    parallel_artifacts = sorted(p.name for p in parallel_dir.iterdir())
    assert serial_artifacts == parallel_artifacts
    for name in serial_artifacts:
        assert (serial_dir / name).read_bytes() == (
            parallel_dir / name
        ).read_bytes(), f"artifact '{name}' differs between serial and pool"
    assert [o.status for o in serial.outcomes] == [
        o.status for o in parallel.outcomes
    ]
    assert [o.entry_id for o in serial.outcomes] == [
        o.entry_id for o in parallel.outcomes
    ]
    assert serial.exit_code == parallel.exit_code


def test_parallel_matches_serial_byte_for_byte(tmp_path):
    serial, parallel, serial_dir, parallel_dir = run_both(
        tmp_path, FAKE_IDS, workers=3
    )
    assert parallel.ok
    assert_identical(tmp_path, serial, parallel, serial_dir, parallel_dir)


@settings(max_examples=6, deadline=None)
@given(
    ids=st.lists(
        st.sampled_from(FAKE_IDS), min_size=1, max_size=len(FAKE_IDS),
        unique=True,
    ),
    workers=st.integers(min_value=1, max_value=4),
)
def test_parallel_is_byte_identical_for_any_manifest(
    tmp_path_factory, ids, workers
):
    """Property: any manifest subset, any worker count — same bytes."""
    tmp_path = tmp_path_factory.mktemp("parallel-property")
    serial, parallel, serial_dir, parallel_dir = run_both(
        tmp_path, ids, workers=workers
    )
    assert_identical(tmp_path, serial, parallel, serial_dir, parallel_dir)


# ----------------------------------------------------------------------
# Deadlines, failures, resume
# ----------------------------------------------------------------------


def test_timed_out_entry_is_classified_not_fatal(tmp_path):
    ids = FAKE_IDS[:3]
    manifest = make_manifest(ids, deadline_s=0.15)
    registry = picklable_registry(ids)
    registry[ids[1]] = functools.partial(_slow_driver, ids[1], 10.0)
    report = ParallelCampaignRunner(
        manifest,
        tmp_path / "journal.json",
        workers=2,
        certify=False,
        registry=registry,
        retry_policy=NO_RETRY,
        check_claims=False,
    ).run()
    statuses = {o.entry_id: o.status for o in report.outcomes}
    assert statuses == {
        ids[0]: "completed",
        ids[1]: "timed-out",
        ids[2]: "completed",
    }
    assert report.exit_code == 1
    journaled = journal_projection(tmp_path / "journal.json")["entries"]
    timed_out = [e for e in journaled if e["entry_id"] == ids[1]]
    assert timed_out[0]["payload"] is None


def test_worker_exception_propagates(tmp_path):
    ids = FAKE_IDS[:2]
    registry = picklable_registry(ids)
    registry[ids[0]] = functools.partial(_boom_driver, ids[0])
    runner = ParallelCampaignRunner(
        make_manifest(ids),
        tmp_path / "journal.json",
        workers=2,
        certify=False,
        registry=registry,
        check_claims=False,
    )
    with pytest.raises(RuntimeError, match="must not run"):
        runner.run()


def test_resume_restores_settled_entries_without_rerunning(tmp_path):
    ids = FAKE_IDS[:4]
    manifest = make_manifest(ids)
    journal = tmp_path / "journal.json"
    CampaignRunner(
        manifest,
        journal,
        registry=picklable_registry(ids),
        check_claims=False,
    ).run()
    # Every entry is settled; a resumed parallel run must invoke nothing
    # (the registry would raise if any worker actually ran).
    report = ParallelCampaignRunner(
        manifest,
        journal,
        workers=2,
        certify=False,
        registry=picklable_registry(ids, _boom_driver),
        check_claims=False,
    ).run(resume=True)
    assert [o.status for o in report.outcomes] == ["resumed"] * len(ids)
    assert report.exit_code == 0


def test_fresh_run_refuses_existing_journal(tmp_path):
    ids = FAKE_IDS[:2]
    manifest = make_manifest(ids)
    journal = tmp_path / "journal.json"
    runner = ParallelCampaignRunner(
        manifest,
        journal,
        workers=2,
        certify=False,
        registry=picklable_registry(ids),
        check_claims=False,
    )
    runner.run()
    with pytest.raises(CampaignError, match="already exists"):
        runner.run()


# ----------------------------------------------------------------------
# Interruption: drain the running worker, skip the pending queue
# ----------------------------------------------------------------------


def test_interrupt_drains_running_entry_and_skips_pending(tmp_path):
    # workers=1 gives a submission window of 2: when the interrupt
    # lands while entry 0 is executing, entry 1 is submitted (and may
    # be uncancellable in the pool's call queue — drained either way),
    # and entries 2..3 were never submitted, so they *must* be skipped.
    ids = FAKE_IDS[:4]
    manifest = make_manifest(ids)
    rendezvous = tmp_path / "rendezvous"
    rendezvous.mkdir()
    registry = picklable_registry(ids, _rendezvous_driver, str(rendezvous))
    runner = ParallelCampaignRunner(
        manifest,
        tmp_path / "journal.json",
        workers=1,  # one worker => entries 2..n are still queued
        certify=False,
        registry=registry,
        check_claims=False,
        handle_signals=False,
    )

    def interrupt_once_started():
        deadline = time.monotonic() + 30.0
        while not (rendezvous / f"{ids[0]}.started").exists():
            if time.monotonic() > deadline:  # pragma: no cover
                break
            time.sleep(0.01)
        runner._stop.set()
        (rendezvous / "go").write_text("go")

    thread = threading.Thread(target=interrupt_once_started)
    thread.start()
    report = runner.run()
    thread.join()

    assert report.interrupted
    assert report.exit_code == 75
    statuses = [o.status for o in report.outcomes]
    assert statuses[0] == "completed"  # drained, not discarded
    # Entry 1 was in the submission window: drained if the pool's
    # queue-feeder got to it first, cleanly cancelled otherwise.
    assert statuses[1] in ("completed", "skipped")
    assert statuses[2:] == ["skipped"] * (len(ids) - 2)

    journaled = {
        e["entry_id"]
        for e in journal_projection(tmp_path / "journal.json")["entries"]
    }
    expected = {ids[0]} | (
        {ids[1]} if statuses[1] == "completed" else set()
    )
    assert journaled == expected

    # Resume finishes the skipped tail and converges on the same journal
    # a never-interrupted run would have produced.
    (rendezvous / "go").write_text("go")  # keep the gate open
    resumed = ParallelCampaignRunner(
        manifest,
        tmp_path / "journal.json",
        workers=2,
        certify=False,
        registry=registry,
        check_claims=False,
    ).run(resume=True)
    resumed_statuses = [o.status for o in resumed.outcomes]
    assert resumed_statuses[0] == "resumed"
    assert set(resumed_statuses[1:]) <= {"resumed", "completed"}

    uninterrupted = tmp_path / "uninterrupted.journal.json"
    CampaignRunner(
        manifest,
        uninterrupted,
        registry=picklable_registry(ids),
        check_claims=False,
    ).run()
    assert journal_projection(
        tmp_path / "journal.json"
    ) == journal_projection(uninterrupted)


# ----------------------------------------------------------------------
# The certificate gate
# ----------------------------------------------------------------------


def test_gate_rejects_registry_outside_the_analyzed_tree(tmp_path):
    ids = FAKE_IDS[:2]
    runner = ParallelCampaignRunner(
        make_manifest(ids),
        tmp_path / "journal.json",
        workers=2,
        registry=picklable_registry(ids),  # test module: uncertifiable
        check_claims=False,
    )
    with pytest.raises(PoolSafetyError, match="cannot be certified"):
        runner.run()
    # The gate fires before any durable state is touched.
    assert not (tmp_path / "journal.json").exists()


def test_gate_proves_the_real_entry_points(tmp_path):
    from repro.lint.effects import CERTIFIED_ROOTS, TIER_POOL_SAFE, TIER_RANK

    proven = verify_pool_safety(
        cache_path=tmp_path / "effects-cache.json"
    )
    floor = TIER_RANK[TIER_POOL_SAFE]
    for qualname in CERTIFIED_ROOTS:
        assert TIER_RANK[proven[qualname]] >= floor, (
            f"{qualname} lost its process-pool-safety proof"
        )


def test_workers_must_be_positive(tmp_path):
    with pytest.raises(CampaignError, match="workers"):
        ParallelCampaignRunner(
            make_manifest(FAKE_IDS[:2]),
            tmp_path / "journal.json",
            workers=0,
        )
