"""SIGTERM a live campaign subprocess and resume it.

This is the end-to-end crash-safety check the in-process tests cannot
give: a *real* signal delivered to a *real* process mid-campaign, the
distinct resumable exit code, and a resume whose result artifacts are
byte-identical to an uninterrupted run's.
"""

import hashlib
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import EXIT_INTERRUPTED

#: Campaign driver executed as a subprocess.  Fake entries sleep so the
#: parent has time to deliver the signal mid-entry; the sleep happens
#: *before* the deterministic result is built, so artifacts do not
#: depend on timing.
DRIVER = """\
import pathlib, sys, time

from repro.campaign import CampaignEntry, CampaignManifest, CampaignRunner
from repro.workloads.experiments import ExperimentResult, ExperimentRow

IDS = ["fig02", "fig03", "fig04", "fig05"]
root = pathlib.Path(sys.argv[1])
sleep_s = float(sys.argv[2])
resume = "--resume" in sys.argv


def fake_result(entry_id):
    result = ExperimentResult(
        experiment_id=entry_id,
        title=f"Fake reproduction of {entry_id}",
        workload="kmeans",
    )
    result.metadata = {"base_profile": "1-1", "dataset_bytes": 1400.0}
    for i in range(3):
        result.rows.append(
            ExperimentRow(
                data_nodes=1,
                compute_nodes=2 ** i,
                model="global reduction",
                actual=1.0 + i,
                predicted=1.05 + i,
            )
        )
    return result


def make(entry_id):
    def run():
        time.sleep(sleep_s)
        return fake_result(entry_id)

    return run


manifest = CampaignManifest(
    name="signal-campaign",
    entries=tuple(CampaignEntry(entry_id=i) for i in IDS),
)
runner = CampaignRunner(
    manifest,
    root / "journal.json",
    registry={i: make(i) for i in IDS},
    results_dir=root / "results",
    check_claims=False,
    progress=lambda line: print(line, flush=True),
)
report = runner.run(resume=resume)
sys.exit(report.exit_code)
"""


def run_driver(root, sleep_s, *extra):
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-c", DRIVER, str(root), str(sleep_s), *extra],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def results_digest(results_dir):
    return {
        p.name: hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(results_dir.iterdir())
    }


@pytest.mark.slow
def test_sigterm_then_resume_is_byte_identical(tmp_path):
    # Reference: the same campaign, uninterrupted.
    ref = run_driver(tmp_path / "ref", 0.0)
    assert ref.wait(timeout=60) == 0, ref.stderr.read()

    # Victim: slow entries; SIGTERM once the first entry has settled
    # (its progress line proves a journal commit happened).
    victim = run_driver(tmp_path / "victim", 0.4)
    first_line = victim.stdout.readline()
    assert "fig02 completed" in first_line
    victim.send_signal(signal.SIGTERM)
    assert victim.wait(timeout=60) == EXIT_INTERRUPTED

    # The journal survived the kill and at least one entry is missing.
    journal = tmp_path / "victim" / "journal.json"
    assert journal.exists()
    done_before = set(results_digest(tmp_path / "victim" / "results"))
    assert "fig02.json" in done_before
    assert len(done_before) < 4

    # Resume finishes the rest; only unsettled entries re-run.
    resumed = run_driver(tmp_path / "victim", 0.0, "--resume")
    out, err = resumed.communicate(timeout=60)
    assert resumed.returncode == 0, err
    assert "fig02 resumed" in out

    assert results_digest(tmp_path / "victim" / "results") == results_digest(
        tmp_path / "ref" / "results"
    )


@pytest.mark.slow
def test_sigint_also_exits_resumable(tmp_path):
    victim = run_driver(tmp_path / "v", 0.4)
    assert "completed" in victim.stdout.readline()
    victim.send_signal(signal.SIGINT)
    assert victim.wait(timeout=60) == EXIT_INTERRUPTED
    assert (tmp_path / "v" / "journal.json").exists()


def test_interrupt_between_commits_loses_at_most_one_entry(tmp_path):
    # SIGKILL — no handler, no cleanup: the hardest crash.  The journal
    # must still be a valid checkpoint of every settled entry.
    victim = run_driver(tmp_path / "v", 0.4)
    assert "fig02 completed" in victim.stdout.readline()
    victim.kill()
    victim.wait(timeout=60)

    from repro.campaign import CampaignJournal

    deadline = time.monotonic() + 10.0
    while not (tmp_path / "v" / "journal.json").exists():
        assert time.monotonic() < deadline
        time.sleep(0.05)
    records = CampaignJournal(tmp_path / "v" / "journal.json").load()
    assert "fig02" in records
    assert all(r.status == "completed" for r in records.values())
