"""Tests for wall-clock deadline enforcement."""

import threading
import time

import pytest

from repro.campaign import (
    CampaignInterruptedError,
    DeadlineExceededError,
    run_with_deadline,
)
from repro.errors import CampaignError


class TestPassthrough:
    def test_value_without_supervision(self):
        assert run_with_deadline(lambda: 42, None) == 42

    def test_value_under_deadline(self):
        assert run_with_deadline(lambda: "ok", 5.0) == "ok"

    def test_exception_reraised_unchanged(self):
        boom = ValueError("boom")

        def fn():
            raise boom

        with pytest.raises(ValueError) as excinfo:
            run_with_deadline(fn, 5.0)
        assert excinfo.value is boom

    def test_exception_reraised_inline(self):
        with pytest.raises(ValueError):
            run_with_deadline(lambda: (_ for _ in ()).throw(ValueError()), None)


class TestDeadline:
    def test_slow_entry_times_out(self):
        with pytest.raises(DeadlineExceededError) as excinfo:
            run_with_deadline(
                lambda: time.sleep(5.0),
                0.05,
                label="fig99",
                poll_interval_s=0.01,
            )
        assert excinfo.value.label == "fig99"
        assert excinfo.value.deadline_s == 0.05
        assert "wall-clock deadline" in str(excinfo.value)

    def test_non_positive_deadline_rejected(self):
        with pytest.raises(CampaignError):
            run_with_deadline(lambda: 1, 0.0)
        with pytest.raises(CampaignError):
            run_with_deadline(lambda: 1, -1.0)


class TestStopEvent:
    def test_preset_stop_interrupts(self):
        stop = threading.Event()
        stop.set()
        with pytest.raises(CampaignInterruptedError):
            run_with_deadline(
                lambda: time.sleep(5.0), None, stop=stop, poll_interval_s=0.01
            )

    def test_stop_set_mid_run_interrupts(self):
        stop = threading.Event()

        def fn():
            stop.set()
            time.sleep(5.0)

        start = time.monotonic()
        with pytest.raises(CampaignInterruptedError):
            run_with_deadline(fn, None, stop=stop, poll_interval_s=0.01)
        assert time.monotonic() - start < 2.0

    def test_fast_entry_beats_stop(self):
        stop = threading.Event()
        assert run_with_deadline(lambda: 7, 5.0, stop=stop) == 7
