"""Tests for the serial vs tree gather topologies."""

import pytest

from repro.middleware.runtime import FreerideGRuntime
from repro.middleware.scheduler import GatherTopology, RunConfig

from tests.conftest import SumApp, make_tiny_points, small_cluster_spec


def make_config(topology=GatherTopology.SERIAL, n=2, c=8):
    cluster = small_cluster_spec()
    return RunConfig(
        storage_cluster=cluster,
        compute_cluster=cluster,
        data_nodes=n,
        compute_nodes=c,
        bandwidth=5e5,
        gather_topology=topology,
    )


class TestGatherTopology:
    def test_default_is_serial(self):
        assert make_config().gather_topology is GatherTopology.SERIAL

    def test_with_gather_topology_accepts_strings(self):
        config = make_config().with_gather_topology("tree")
        assert config.gather_topology is GatherTopology.TREE

    def test_result_identical_across_topologies(self):
        dataset = make_tiny_points()
        serial = FreerideGRuntime(make_config(GatherTopology.SERIAL)).execute(
            SumApp(passes=2), dataset
        )
        tree = FreerideGRuntime(make_config(GatherTopology.TREE)).execute(
            SumApp(passes=2), dataset
        )
        assert serial.result == pytest.approx(tree.result)

    def test_tree_gather_faster_at_scale(self):
        dataset = make_tiny_points()
        serial = FreerideGRuntime(make_config(GatherTopology.SERIAL, 2, 16)).execute(
            SumApp(), dataset
        )
        tree = FreerideGRuntime(make_config(GatherTopology.TREE, 2, 16)).execute(
            SumApp(), dataset
        )
        # 15 serial messages vs 4 parallel rounds
        assert tree.breakdown.t_ro < serial.breakdown.t_ro

    def test_single_node_unaffected(self):
        dataset = make_tiny_points()
        tree = FreerideGRuntime(make_config(GatherTopology.TREE, 1, 1)).execute(
            SumApp(), dataset
        )
        assert tree.breakdown.t_ro == 0.0

    def test_real_application_on_tree(self):
        """The vortex pipeline (merge_local + deferred join) must produce
        identical features under both gather topologies."""
        from repro.apps.vortex import VortexDetection
        from repro.datagen.cfd import make_field_dataset

        dataset = make_field_dataset(
            "tree-vx", ny=96, nx=96, num_chunks=16, num_vortices=3, seed=51
        )
        serial = FreerideGRuntime(make_config(GatherTopology.SERIAL, 2, 8)).execute(
            VortexDetection(), dataset
        )
        tree = FreerideGRuntime(make_config(GatherTopology.TREE, 2, 8)).execute(
            VortexDetection(), dataset
        )
        key = lambda r: [  # noqa: E731
            (v["ymin"], v["xmin"], v["area"]) for v in r["vortices"]
        ]
        assert key(serial.result) == key(tree.result)


class TestTreeGatherPredictor:
    def test_tree_rounds_formula(self):
        from repro.simgrid.network import CommCostModel

        model = CommCostModel(w=1e-6, l=1e-4)
        msg = model.message_time(1000.0)
        assert model.tree_gather_time(1, 1000.0) == 0.0
        assert model.tree_gather_time(2, 1000.0) == pytest.approx(msg)
        assert model.tree_gather_time(16, 1000.0) == pytest.approx(4 * msg)
        assert model.tree_gather_time(9, 1000.0) == pytest.approx(4 * msg)
