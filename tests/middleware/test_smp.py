"""Tests for cluster-of-SMPs execution (processes per node)."""

import numpy as np
import pytest

from repro.middleware.runtime import FreerideGRuntime
from repro.middleware.scheduler import RunConfig
from repro.simgrid.errors import ConfigurationError

from tests.conftest import SumApp, make_tiny_points, small_cluster_spec


def make_config(n=2, c=4, ppn=1):
    cluster = small_cluster_spec()  # smp_width=4, contention=0.1
    return RunConfig(
        storage_cluster=cluster,
        compute_cluster=cluster,
        data_nodes=n,
        compute_nodes=c,
        bandwidth=5e5,
        processes_per_node=ppn,
    )


class TestSMPConfig:
    def test_compute_slots(self):
        assert make_config(2, 4, ppn=2).compute_slots == 8
        assert make_config(2, 4, ppn=1).compute_slots == 4

    def test_ppn_bounded_by_cluster_width(self):
        with pytest.raises(ConfigurationError):
            make_config(2, 4, ppn=5)
        with pytest.raises(ConfigurationError):
            make_config(2, 4, ppn=0)

    def test_with_processes_per_node(self):
        config = make_config(2, 4).with_processes_per_node(2)
        assert config.processes_per_node == 2


class TestSMPExecution:
    def test_result_invariant_under_smp(self):
        dataset = make_tiny_points()
        results = []
        for ppn in (1, 2, 4):
            run = FreerideGRuntime(make_config(2, 4, ppn)).execute(
                SumApp(), dataset
            )
            results.append(run.result)
        assert all(
            r == pytest.approx(results[0], rel=1e-9) for r in results
        )

    def test_smp_speeds_up_compute(self):
        dataset = make_tiny_points(num_points=4096, num_chunks=64)
        single = FreerideGRuntime(make_config(2, 4, 1)).execute(
            SumApp(), dataset
        )
        double = FreerideGRuntime(make_config(2, 4, 2)).execute(
            SumApp(), dataset
        )
        assert double.breakdown.t_compute < single.breakdown.t_compute

    def test_contention_makes_speedup_sublinear(self):
        """4 nodes x 1 ppn beats 1 node x 4 ppn on kernel time (contention),
        while both beat 1 node x 1 ppn."""
        dataset = make_tiny_points(num_points=4096, num_chunks=64)

        def kernel_time(c, ppn):
            run = FreerideGRuntime(make_config(1, c, ppn)).execute(
                SumApp(), dataset
            )
            bd = run.breakdown
            return bd.t_compute - bd.t_ro - bd.t_g

        serial = kernel_time(1, 1)
        smp = kernel_time(1, 4)
        distributed = kernel_time(4, 1)
        assert smp < serial
        assert distributed < smp  # no memory-bus contention across nodes

    def test_gather_counts_nodes_not_threads(self):
        """Only one object per NODE is communicated: t_ro must not grow
        with processes per node."""
        dataset = make_tiny_points()
        single = FreerideGRuntime(make_config(2, 4, 1)).execute(
            SumApp(), dataset
        )
        quad = FreerideGRuntime(make_config(2, 4, 4)).execute(
            SumApp(), dataset
        )
        assert quad.breakdown.t_ro == pytest.approx(single.breakdown.t_ro)

    def test_metadata_records_ppn(self):
        dataset = make_tiny_points()
        run = FreerideGRuntime(make_config(2, 4, 2)).execute(SumApp(), dataset)
        assert run.breakdown.metadata["processes_per_node"] == 2


class TestSMPApplications:
    """The real applications run correctly on SMP nodes."""

    @pytest.mark.parametrize(
        "make_app, make_dataset",
        [
            (
                lambda: __import__(
                    "repro.apps.kmeans", fromlist=["KMeansClustering"]
                ).KMeansClustering(k=4, num_iterations=4, seed=5),
                lambda: __import__(
                    "repro.datagen.points", fromlist=["make_point_dataset"]
                ).make_point_dataset("smp-km", 1000, 3, 4, 16, seed=9),
            ),
            (
                lambda: __import__(
                    "repro.apps.knn", fromlist=["KNNSearch"]
                ).KNNSearch(k=4, num_queries=8, seed=9),
                lambda: __import__(
                    "repro.datagen.points", fromlist=["make_training_dataset"]
                ).make_training_dataset("smp-knn", 1000, 3, 4, 16, seed=9),
            ),
            (
                lambda: __import__(
                    "repro.apps.vortex", fromlist=["VortexDetection"]
                ).VortexDetection(),
                lambda: __import__(
                    "repro.datagen.cfd", fromlist=["make_field_dataset"]
                ).make_field_dataset("smp-vx", 96, 96, 16, num_vortices=3, seed=9),
            ),
        ],
    )
    def test_smp_matches_distributed_result(self, make_app, make_dataset):
        dataset = make_dataset()
        flat = FreerideGRuntime(make_config(1, 4, 1)).execute(
            make_app(), dataset
        )
        smp = FreerideGRuntime(make_config(1, 2, 2)).execute(
            make_app(), dataset
        )

        def canonical(result):
            if isinstance(result, dict) and "centers" in result:
                return np.round(result["centers"], 9).tolist()
            if isinstance(result, dict) and "neighbors_dists" in result:
                return np.round(result["neighbors_dists"], 9).tolist()
            if isinstance(result, dict) and "vortices" in result:
                return [
                    (v["ymin"], v["xmin"], v["area"]) for v in result["vortices"]
                ]
            raise AssertionError("unknown result shape")

        assert canonical(smp.result) == canonical(flat.result)


class TestSMPPrediction:
    def test_slots_drive_compute_prediction(self):
        from repro.core import (
            NoCommunicationModel,
            PredictionTarget,
            Profile,
        )

        dataset = make_tiny_points(num_points=4096, num_chunks=64)
        profile_config = make_config(1, 1, 1)
        run = FreerideGRuntime(profile_config).execute(SumApp(), dataset)
        profile = Profile.from_run(profile_config, run.breakdown)

        target_config = make_config(1, 2, 2)  # 4 slots
        target = PredictionTarget(
            config=target_config, dataset_bytes=dataset.nbytes
        )
        predicted = NoCommunicationModel().predict(profile, target)
        assert predicted.t_compute == pytest.approx(profile.t_compute / 4.0)
