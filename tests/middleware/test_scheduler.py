"""Tests for run configurations."""

import pytest

from repro.middleware.scheduler import RunConfig
from repro.simgrid.errors import ConfigurationError

from tests.conftest import small_cluster_spec


class TestRunConfig:
    def make(self, n=2, c=4, bw=1e6, nodes=16):
        cluster = small_cluster_spec(num_nodes=nodes)
        return RunConfig(
            storage_cluster=cluster,
            compute_cluster=cluster,
            data_nodes=n,
            compute_nodes=c,
            bandwidth=bw,
        )

    def test_label(self):
        assert self.make(8, 16).label == "8-16"

    def test_homogeneous(self):
        assert self.make().homogeneous
        other = small_cluster_spec(name="other")
        config = RunConfig(
            storage_cluster=small_cluster_spec(),
            compute_cluster=other,
            data_nodes=1,
            compute_nodes=1,
            bandwidth=1e6,
        )
        assert not config.homogeneous

    def test_m_ge_n_enforced(self):
        with pytest.raises(ConfigurationError):
            self.make(n=4, c=2)

    def test_equal_counts_allowed(self):
        assert self.make(n=4, c=4).label == "4-4"

    def test_cluster_capacity_enforced(self):
        with pytest.raises(ConfigurationError):
            self.make(n=2, c=32, nodes=16)

    def test_positive_bandwidth_required(self):
        with pytest.raises(ConfigurationError):
            self.make(bw=0.0)

    def test_positive_node_counts_required(self):
        with pytest.raises(ConfigurationError):
            self.make(n=0, c=0)

    def test_with_nodes(self):
        config = self.make(2, 4).with_nodes(4, 8)
        assert (config.data_nodes, config.compute_nodes) == (4, 8)

    def test_with_bandwidth(self):
        assert self.make().with_bandwidth(5e5).bandwidth == 5e5

    def test_with_clusters(self):
        other = small_cluster_spec(name="other")
        config = self.make().with_clusters(other, other)
        assert config.storage_cluster.name == "other"
        assert config.compute_cluster.name == "other"
