"""Tests for reduction-object helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.middleware.reduction import (
    ArrayReductionObject,
    FeatureListReductionObject,
)
from repro.simgrid.errors import ConfigurationError


class TestArrayReductionObject:
    def test_zeros(self):
        obj = ArrayReductionObject.zeros((3, 4))
        assert obj.values.shape == (3, 4)
        assert obj.count == 0.0
        assert np.all(obj.values == 0.0)

    def test_accumulate(self):
        obj = ArrayReductionObject.zeros(4)
        obj.accumulate(np.ones(4), count=2.0)
        obj.accumulate(np.full(4, 3.0), count=1.0)
        np.testing.assert_allclose(obj.values, np.full(4, 4.0))
        assert obj.count == 3.0

    def test_merge_equals_accumulate(self):
        a = ArrayReductionObject.zeros(3)
        a.accumulate(np.array([1.0, 2.0, 3.0]), count=5.0)
        b = ArrayReductionObject.zeros(3)
        b.accumulate(np.array([10.0, 20.0, 30.0]), count=7.0)
        a.merge(b)
        np.testing.assert_allclose(a.values, [11.0, 22.0, 33.0])
        assert a.count == 12.0

    def test_shape_mismatch_rejected(self):
        obj = ArrayReductionObject.zeros(3)
        with pytest.raises(ConfigurationError):
            obj.accumulate(np.ones(4))

    def test_copy_is_independent(self):
        obj = ArrayReductionObject.zeros(2)
        clone = obj.copy()
        clone.accumulate(np.ones(2), count=1.0)
        assert np.all(obj.values == 0.0)
        assert obj.count == 0.0

    def test_nbytes_constant_under_accumulation(self):
        obj = ArrayReductionObject.zeros((5, 5))
        before = obj.nbytes
        obj.accumulate(np.ones((5, 5)), count=100.0)
        assert obj.nbytes == before  # the constant-size class property

    @given(st.lists(st.floats(-1e6, 1e6), min_size=3, max_size=3), st.integers(1, 5))
    def test_merge_is_commutative(self, values, copies):
        contribution = np.asarray(values)
        a = ArrayReductionObject.zeros(3)
        b = ArrayReductionObject.zeros(3)
        b.accumulate(contribution, count=1.0)
        merged_ab = a.copy()
        merged_ab.merge(b)
        merged_ba = b.copy()
        merged_ba.merge(a)
        np.testing.assert_allclose(merged_ab.values, merged_ba.values)


class TestFeatureListReductionObject:
    def test_add_and_len(self):
        obj = FeatureListReductionObject(bytes_per_feature=32.0)
        obj.add({"area": 5})
        obj.extend([{"area": 6}, {"area": 7}])
        assert len(obj) == 3

    def test_nbytes_linear_in_features(self):
        obj = FeatureListReductionObject(bytes_per_feature=32.0)
        empty = obj.nbytes
        obj.add({"a": 1})
        obj.add({"b": 2})
        assert obj.nbytes == pytest.approx(empty + 64.0)

    def test_merge_concatenates(self):
        a = FeatureListReductionObject(bytes_per_feature=16.0)
        a.add({"id": 1})
        b = FeatureListReductionObject(bytes_per_feature=16.0)
        b.add({"id": 2})
        a.merge(b)
        assert [f["id"] for f in a.features] == [1, 2]

    def test_merge_width_mismatch_rejected(self):
        a = FeatureListReductionObject(bytes_per_feature=16.0)
        b = FeatureListReductionObject(bytes_per_feature=32.0)
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_invalid_width_rejected(self):
        with pytest.raises(ConfigurationError):
            FeatureListReductionObject(bytes_per_feature=0.0)
