"""Tests for non-local (remote) chunk caching."""

import pytest

from repro.middleware.runtime import FreerideGRuntime
from repro.middleware.scheduler import RunConfig
from repro.simgrid.errors import ConfigurationError

from tests.conftest import SumApp, make_tiny_points, small_cluster_spec


def make_config(remote_bw=None, n=2, c=4):
    cluster = small_cluster_spec()
    return RunConfig(
        storage_cluster=cluster,
        compute_cluster=cluster,
        data_nodes=n,
        compute_nodes=c,
        bandwidth=5e5,
        remote_cache_bandwidth=remote_bw,
    )


class TestRemoteCacheConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_config(remote_bw=0.0)
        with pytest.raises(ConfigurationError):
            make_config(remote_bw=-1.0)

    def test_with_remote_cache(self):
        config = make_config().with_remote_cache(1e6)
        assert config.remote_cache_bandwidth == 1e6
        assert config.with_remote_cache(None).remote_cache_bandwidth is None


class TestRemoteCacheExecution:
    def test_result_unaffected_by_cache_location(self):
        dataset = make_tiny_points()
        local = FreerideGRuntime(make_config()).execute(
            SumApp(passes=3, cache=True), dataset
        )
        remote = FreerideGRuntime(make_config(remote_bw=1e6)).execute(
            SumApp(passes=3, cache=True), dataset
        )
        assert local.result == pytest.approx(remote.result)

    def test_slow_remote_cache_is_slower_than_local(self):
        dataset = make_tiny_points()
        local = FreerideGRuntime(make_config()).execute(
            SumApp(passes=4, cache=True), dataset
        )
        remote = FreerideGRuntime(make_config(remote_bw=2e5)).execute(
            SumApp(passes=4, cache=True), dataset
        )
        assert remote.breakdown.t_cache > local.breakdown.t_cache
        assert remote.breakdown.total > local.breakdown.total

    def test_fast_remote_cache_can_beat_slow_local_disk(self):
        import dataclasses

        from repro.simgrid.hardware import DiskSpec

        dataset = make_tiny_points()
        # A compute cluster with a miserable local disk (no buffer cache).
        slow_disk_cluster = dataclasses.replace(
            small_cluster_spec(), cache_disk=DiskSpec(seek_s=5e-4, stream_bw=2e5)
        )
        local_config = RunConfig(
            storage_cluster=slow_disk_cluster,
            compute_cluster=slow_disk_cluster,
            data_nodes=2,
            compute_nodes=4,
            bandwidth=5e5,
        )
        remote_config = local_config.with_remote_cache(5e6)
        app = lambda: SumApp(passes=4, cache=True)  # noqa: E731
        local = FreerideGRuntime(local_config).execute(app(), dataset)
        remote = FreerideGRuntime(remote_config).execute(app(), dataset)
        assert remote.breakdown.total < local.breakdown.total

    def test_remote_cache_still_skips_repository(self):
        """Later passes must not touch the origin repository's disks or
        the repository-to-compute network."""
        dataset = make_tiny_points()
        run = FreerideGRuntime(make_config(remote_bw=1e6)).execute(
            SumApp(passes=3, cache=True), dataset
        )
        for later in run.breakdown.passes[1:]:
            assert later.t_disk == 0.0
            assert later.t_network == 0.0
            assert later.t_cache > 0.0

    def test_single_pass_apps_never_pay_cache_traffic(self):
        dataset = make_tiny_points()
        run = FreerideGRuntime(make_config(remote_bw=1e6)).execute(
            SumApp(passes=1, cache=False), dataset
        )
        assert run.breakdown.t_cache == 0.0
