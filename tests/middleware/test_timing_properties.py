"""Property-based timing invariants of the middleware runtime."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.middleware.runtime import FreerideGRuntime
from repro.middleware.scheduler import RunConfig

from tests.conftest import SumApp, make_tiny_points, small_cluster_spec

#: Valid (data nodes, compute nodes) pairs within the 16-chunk dataset.
config_pairs = st.sampled_from(
    [(n, c) for n in (1, 2, 4, 8) for c in (1, 2, 4, 8, 16) if c >= n]
)


def run(n, c, passes=1, cache=False, bandwidth=5e5, dataset=None):
    cluster = small_cluster_spec()
    config = RunConfig(
        storage_cluster=cluster,
        compute_cluster=cluster,
        data_nodes=n,
        compute_nodes=c,
        bandwidth=bandwidth,
    )
    dataset = dataset or make_tiny_points()
    return FreerideGRuntime(config).execute(
        SumApp(passes=passes, cache=cache), dataset
    )


class TestBreakdownInvariants:
    @settings(max_examples=15, deadline=None)
    @given(config_pairs, st.integers(1, 3))
    def test_total_is_sum_of_pass_totals(self, pair, passes):
        n, c = pair
        result = run(n, c, passes=passes, cache=True)
        bd = result.breakdown
        assert bd.total == pytest.approx(sum(p.total for p in bd.passes))
        assert bd.num_passes == passes

    @settings(max_examples=15, deadline=None)
    @given(config_pairs)
    def test_all_components_nonnegative(self, pair):
        n, c = pair
        bd = run(n, c).breakdown
        assert bd.t_disk >= 0 and bd.t_network >= 0 and bd.t_compute >= 0
        assert bd.t_ro >= 0 and bd.t_g >= 0 and bd.t_cache >= 0

    @settings(max_examples=15, deadline=None)
    @given(config_pairs)
    def test_serial_terms_inside_compute(self, pair):
        n, c = pair
        bd = run(n, c, passes=2, cache=True).breakdown
        assert bd.t_ro + bd.t_g + bd.t_cache <= bd.t_compute + 1e-12

    @settings(max_examples=10, deadline=None)
    @given(config_pairs)
    def test_result_independent_of_configuration(self, pair):
        n, c = pair
        dataset = make_tiny_points()
        reference = run(1, 1, dataset=dataset).result
        assert run(n, c, dataset=dataset).result == pytest.approx(reference)


class TestTimingMonotonicity:
    @settings(max_examples=10, deadline=None)
    @given(st.sampled_from([1, 2, 4]))
    def test_more_data_nodes_never_slow_retrieval(self, n):
        dataset = make_tiny_points()
        narrow = run(n, 16, dataset=dataset).breakdown
        wide = run(n * 2, 16, dataset=dataset).breakdown
        assert wide.t_disk <= narrow.t_disk + 1e-12
        assert wide.t_network <= narrow.t_network + 1e-12

    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=1e5, max_value=5e6))
    def test_network_time_decreases_with_bandwidth(self, bandwidth):
        dataset = make_tiny_points()
        slow = run(1, 2, bandwidth=bandwidth, dataset=dataset).breakdown
        fast = run(1, 2, bandwidth=bandwidth * 2, dataset=dataset).breakdown
        assert fast.t_network < slow.t_network

    def test_larger_dataset_costs_more_everywhere(self):
        small = make_tiny_points(num_points=640, num_chunks=16)
        large = make_tiny_points(num_points=2560, num_chunks=64)
        bd_small = run(2, 4, dataset=small).breakdown
        bd_large = run(2, 4, dataset=large).breakdown
        assert bd_large.t_disk > bd_small.t_disk
        assert bd_large.t_network > bd_small.t_network
        assert bd_large.t_compute > bd_small.t_compute
