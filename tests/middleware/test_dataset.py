"""Tests for the chunked dataset abstraction."""

import numpy as np
import pytest

from repro.middleware.dataset import ArrayDataset
from repro.simgrid.errors import ConfigurationError


class TestArrayDataset:
    def make(self, rows=100, dims=3, chunks=7, nbytes=None):
        records = np.arange(rows * dims, dtype=np.float32).reshape(rows, dims)
        return ArrayDataset("d", records, num_chunks=chunks, nbytes=nbytes)

    def test_basic_properties(self):
        ds = self.make()
        assert ds.num_records == 100
        assert ds.num_dims == 3
        assert len(ds) == 7

    def test_chunks_cover_all_rows_in_order(self):
        ds = self.make()
        rows = np.concatenate([ds.chunk_payload(i) for i in range(len(ds))])
        np.testing.assert_array_equal(rows, ds.records)

    def test_chunk_nbytes_sums_to_total(self):
        ds = self.make(nbytes=1e6)
        total = sum(ds.chunk_nbytes(i) for i in range(len(ds)))
        assert total == pytest.approx(1e6)

    def test_default_nbytes_is_array_size(self):
        ds = self.make()
        assert ds.nbytes == ds.records.nbytes

    def test_payloads_are_views(self):
        ds = self.make()
        payload = ds.chunk_payload(0)
        assert np.shares_memory(payload, ds.records)

    def test_chunk_index_bounds(self):
        ds = self.make()
        with pytest.raises(ConfigurationError):
            ds.chunk_payload(7)
        with pytest.raises(ConfigurationError):
            ds.chunk_nbytes(-1)

    def test_more_chunks_than_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make(rows=5, chunks=6)

    def test_one_dimensional_records_rejected(self):
        with pytest.raises(ConfigurationError):
            ArrayDataset("bad", np.arange(10, dtype=np.float32), num_chunks=2)

    def test_nonpositive_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make(nbytes=0)
        records = np.ones((4, 2), dtype=np.float32)
        with pytest.raises(ConfigurationError):
            ArrayDataset("bad", records, num_chunks=0)
