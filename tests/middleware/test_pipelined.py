"""Tests for the pipelined (chunk-streaming) execution mode."""

import pytest

from repro.middleware.pipelined import PipelinedRuntime
from repro.middleware.runtime import FreerideGRuntime
from repro.middleware.scheduler import RunConfig
from repro.simgrid.errors import ConfigurationError

from tests.conftest import SumApp, make_tiny_points, small_cluster_spec


def make_config(n=2, c=4, ppn=1):
    cluster = small_cluster_spec()
    return RunConfig(
        storage_cluster=cluster,
        compute_cluster=cluster,
        data_nodes=n,
        compute_nodes=c,
        bandwidth=5e5,
        processes_per_node=ppn,
    )


class TestPipelinedRuntime:
    def test_result_matches_phased_runtime(self):
        dataset = make_tiny_points()
        phased = FreerideGRuntime(make_config()).execute(SumApp(), dataset)
        piped = PipelinedRuntime(make_config()).execute(SumApp(), dataset)
        assert piped.result == pytest.approx(phased.result)

    def test_pipelining_beats_phased_execution(self):
        """Overlapping retrieval, shipping and compute must not be slower
        than running them as strict phases."""
        dataset = make_tiny_points(num_points=4096, num_chunks=64)
        phased = FreerideGRuntime(make_config()).execute(SumApp(), dataset)
        piped = PipelinedRuntime(make_config()).execute(SumApp(), dataset)
        assert piped.makespan < phased.breakdown.total

    def test_makespan_bounded_below_by_bottleneck(self):
        """The pipeline can never beat its busiest single resource."""
        dataset = make_tiny_points(num_points=4096, num_chunks=64)
        piped = PipelinedRuntime(make_config()).execute(SumApp(), dataset)
        bottleneck = max(piped.resource_busy.values())
        assert piped.makespan >= bottleneck

    def test_multi_pass_with_caching(self):
        dataset = make_tiny_points()
        piped = PipelinedRuntime(make_config()).execute(
            SumApp(passes=3, cache=True), dataset
        )
        assert piped.num_passes == 3
        phased = FreerideGRuntime(make_config()).execute(
            SumApp(passes=3, cache=True), dataset
        )
        assert piped.result == pytest.approx(phased.result)

    def test_serial_tail_positive_with_multiple_nodes(self):
        dataset = make_tiny_points()
        piped = PipelinedRuntime(make_config(2, 4)).execute(SumApp(), dataset)
        assert piped.serial_tail > 0.0

    def test_smp_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelinedRuntime(make_config(ppn=2))

    def test_remote_cache_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelinedRuntime(make_config().with_remote_cache(1e6))

    def test_deterministic(self):
        dataset = make_tiny_points()
        a = PipelinedRuntime(make_config()).execute(SumApp(), dataset)
        b = PipelinedRuntime(make_config()).execute(SumApp(), dataset)
        assert a.makespan == b.makespan

    def test_real_application_matches_phased(self):
        from repro.apps.kmeans import KMeansClustering
        from repro.datagen.points import make_point_dataset
        import numpy as np

        dataset = make_point_dataset("pipe-km", 1000, 3, 4, 16, seed=61)
        app_factory = lambda: KMeansClustering(  # noqa: E731
            k=4, num_iterations=3, seed=5
        )
        phased = FreerideGRuntime(make_config()).execute(
            app_factory(), dataset
        )
        piped = PipelinedRuntime(make_config()).execute(app_factory(), dataset)
        np.testing.assert_allclose(
            piped.result["centers"], phased.result["centers"], rtol=1e-9
        )
