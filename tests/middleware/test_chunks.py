"""Tests for chunk-to-node assignment."""

import pytest
from hypothesis import given, strategies as st

from repro.middleware.chunks import (
    assign_chunks,
    map_roles_to_survivors,
    split_evenly,
    unshipped_chunks,
)
from repro.simgrid.errors import ConfigurationError


class TestSplitEvenly:
    def test_even_split(self):
        assert split_evenly(8, 4) == [2, 2, 2, 2]

    def test_remainder_goes_to_front(self):
        assert split_evenly(10, 3) == [4, 3, 3]

    def test_zero_total(self):
        assert split_evenly(0, 3) == [0, 0, 0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            split_evenly(5, 0)
        with pytest.raises(ConfigurationError):
            split_evenly(-1, 2)

    @given(st.integers(0, 500), st.integers(1, 50))
    def test_partition_properties(self, total, parts):
        sizes = split_evenly(total, parts)
        assert sum(sizes) == total
        assert len(sizes) == parts
        assert max(sizes) - min(sizes) <= 1


class TestAssignChunks:
    def test_rejects_more_data_than_compute_nodes(self):
        with pytest.raises(ConfigurationError):
            assign_chunks(32, data_nodes=4, compute_nodes=2)

    def test_rejects_too_few_chunks(self):
        with pytest.raises(ConfigurationError):
            assign_chunks(8, data_nodes=2, compute_nodes=16)

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ConfigurationError):
            assign_chunks(32, 0, 4)
        with pytest.raises(ConfigurationError):
            assign_chunks(32, 2, 0)

    def test_data_node_striping(self):
        plan = assign_chunks(8, data_nodes=2, compute_nodes=2)
        assert plan.data_node_chunks[0] == [0, 2, 4, 6]
        assert plan.data_node_chunks[1] == [1, 3, 5, 7]

    def test_each_compute_node_has_one_source(self):
        plan = assign_chunks(64, data_nodes=4, compute_nodes=16)
        assert len(plan.compute_source) == 16
        # contiguous blocks of 4 compute nodes per data node
        assert plan.compute_source == [0] * 4 + [1] * 4 + [2] * 4 + [3] * 4

    def test_served_compute_nodes(self):
        plan = assign_chunks(64, data_nodes=4, compute_nodes=16)
        assert plan.served_compute_nodes(1) == [4, 5, 6, 7]

    def test_served_compute_nodes_rejects_out_of_range(self):
        plan = assign_chunks(64, data_nodes=4, compute_nodes=16)
        with pytest.raises(ConfigurationError):
            plan.served_compute_nodes(4)
        with pytest.raises(ConfigurationError):
            plan.served_compute_nodes(-1)

    def test_compute_chunks_come_from_the_node_source(self):
        plan = assign_chunks(64, data_nodes=4, compute_nodes=8)
        for j, chunks in enumerate(plan.compute_node_chunks):
            source = plan.compute_source[j]
            stored = set(plan.data_node_chunks[source])
            assert set(chunks) <= stored

    @given(
        st.integers(1, 8).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.integers(n, 24),
            )
        ),
        st.integers(0, 200),
    )
    def test_every_chunk_processed_exactly_once(self, nodes, extra):
        data_nodes, compute_nodes = nodes
        num_chunks = compute_nodes + extra
        plan = assign_chunks(num_chunks, data_nodes, compute_nodes)
        processed = sorted(
            chunk for chunks in plan.compute_node_chunks for chunk in chunks
        )
        assert processed == list(range(num_chunks))
        stored = sorted(
            chunk for chunks in plan.data_node_chunks for chunk in chunks
        )
        assert stored == list(range(num_chunks))

    @given(st.integers(1, 8), st.integers(0, 100))
    def test_balanced_within_one_chunk_when_counts_align(self, data_nodes, extra):
        compute_nodes = data_nodes * 2
        num_chunks = compute_nodes * 3 + extra
        plan = assign_chunks(num_chunks, data_nodes, compute_nodes)
        counts = [len(c) for c in plan.compute_node_chunks]
        assert max(counts) - min(counts) <= 2


class TestStripeBalance:
    @given(st.integers(1, 8), st.integers(0, 300))
    def test_data_node_stripes_balanced(self, data_nodes, extra):
        num_chunks = data_nodes + extra
        plan = assign_chunks(num_chunks, data_nodes, max(data_nodes, 1))
        counts = [len(c) for c in plan.data_node_chunks]
        assert max(counts) - min(counts) <= 1

    @given(st.integers(1, 8), st.integers(0, 100))
    def test_stripes_interleave(self, data_nodes, extra):
        """Chunk i always lands on data node i mod n."""
        num_chunks = data_nodes * 2 + extra
        plan = assign_chunks(num_chunks, data_nodes, data_nodes)
        for node, chunks in enumerate(plan.data_node_chunks):
            assert all(c % data_nodes == node for c in chunks)


class TestRoleMigration:
    def test_survivors_keep_their_roles_and_share_crashed_ones(self):
        assert map_roles_to_survivors(4, [2]) == {0: [0, 2], 1: [1], 3: [3]}
        assert map_roles_to_survivors(4, []) == {0: [0], 1: [1], 2: [2], 3: [3]}
        assert map_roles_to_survivors(4, [1, 3]) == {0: [0, 1], 2: [2, 3]}

    def test_round_robin_over_survivors(self):
        roles = map_roles_to_survivors(5, [0, 1, 2])
        assert roles == {3: [3, 0, 2], 4: [4, 1]}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            map_roles_to_survivors(0, [])
        with pytest.raises(ConfigurationError):
            map_roles_to_survivors(4, [4])
        with pytest.raises(ConfigurationError):
            map_roles_to_survivors(2, [0, 1])  # nobody left

    @given(st.integers(1, 12), st.data())
    def test_every_role_assigned_exactly_once(self, nodes, data):
        crashed = data.draw(
            st.lists(st.integers(0, nodes - 1), unique=True,
                     max_size=nodes - 1)
        )
        roles = map_roles_to_survivors(nodes, crashed)
        assigned = sorted(r for rs in roles.values() for r in rs)
        assert assigned == list(range(nodes))
        assert all(e not in crashed for e in roles)


class TestUnshippedChunks:
    def test_tail_after_shipped_fraction(self):
        plan = assign_chunks(16, data_nodes=2, compute_nodes=4)
        batch = plan.data_node_chunks[1]
        assert unshipped_chunks(plan, 1, 0.0) == batch
        assert unshipped_chunks(plan, 1, 0.5) == batch[4:]
        assert unshipped_chunks(plan, 1, 1.0) == []

    def test_validation(self):
        plan = assign_chunks(16, data_nodes=2, compute_nodes=4)
        with pytest.raises(ConfigurationError):
            unshipped_chunks(plan, 2, 0.5)
        with pytest.raises(ConfigurationError):
            unshipped_chunks(plan, 0, 1.5)
