"""Tests for the generalized-reduction API surface."""

import numpy as np
import pytest

from repro.middleware.api import GeneralizedReduction

from tests.conftest import SumApp


class TestGeneralizedReduction:
    def test_cannot_instantiate_abstract_base(self):
        with pytest.raises(TypeError):
            GeneralizedReduction()

    def test_run_serial_reference(self):
        app = SumApp(passes=2)
        app.begin({})
        payloads = [np.ones((4, 2)), np.full((2, 2), 3.0)]
        result = app.run_serial(payloads)
        assert result == pytest.approx(8.0 + 12.0)

    def test_default_broadcast_nbytes_is_object_size(self):
        app = SumApp()
        assert app.broadcast_nbytes([1.0]) == app.object_nbytes([1.0])

    def test_class_defaults(self):
        class Minimal(SumApp):
            pass

        app = Minimal()
        assert app.broadcasts_result is False
        assert app.multi_pass_hint is False
