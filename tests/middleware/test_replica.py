"""Tests for the replica catalog."""

import pytest

from repro.middleware.replica import ReplicaCatalog
from repro.simgrid.errors import TopologyError
from repro.simgrid.topology import GridTopology, SiteKind

from tests.conftest import small_cluster_spec


@pytest.fixture
def topology():
    t = GridTopology()
    t.add_site("repo-a", SiteKind.REPOSITORY, small_cluster_spec())
    t.add_site("repo-b", SiteKind.REPOSITORY, small_cluster_spec())
    t.add_site("hpc", SiteKind.COMPUTE, small_cluster_spec())
    return t


class TestReplicaCatalog:
    def test_add_and_lookup(self, topology):
        catalog = ReplicaCatalog(topology)
        catalog.add("points", "repo-a")
        catalog.add("points", "repo-b")
        sites = [r.site for r in catalog.replicas_of("points")]
        assert sites == ["repo-a", "repo-b"]

    def test_missing_dataset(self, topology):
        catalog = ReplicaCatalog(topology)
        with pytest.raises(TopologyError):
            catalog.replicas_of("missing")

    def test_replica_must_live_at_repository(self, topology):
        catalog = ReplicaCatalog(topology)
        with pytest.raises(TopologyError):
            catalog.add("points", "hpc")

    def test_duplicate_replica_rejected(self, topology):
        catalog = ReplicaCatalog(topology)
        catalog.add("points", "repo-a")
        with pytest.raises(TopologyError):
            catalog.add("points", "repo-a")

    def test_unvalidated_catalog_accepts_any_site(self):
        catalog = ReplicaCatalog()
        catalog.add("points", "anywhere")
        assert catalog.replicas_of("points")[0].site == "anywhere"

    def test_datasets_and_dunders(self, topology):
        catalog = ReplicaCatalog(topology)
        catalog.add("b-set", "repo-a")
        catalog.add("a-set", "repo-b")
        assert catalog.datasets() == ["a-set", "b-set"]
        assert "a-set" in catalog
        assert "c-set" not in catalog
        assert len(catalog) == 2
