"""Tests for the FREERIDE-G execution engine."""

import numpy as np
import pytest

from repro.middleware.chunks import assign_chunks
from repro.middleware.runtime import FreerideGRuntime
from repro.middleware.scheduler import RunConfig
from repro.simgrid.errors import ConfigurationError

from tests.conftest import SumApp, make_tiny_points, small_cluster_spec


def make_config(n=2, c=4, bw=5e5):
    cluster = small_cluster_spec()
    return RunConfig(
        storage_cluster=cluster,
        compute_cluster=cluster,
        data_nodes=n,
        compute_nodes=c,
        bandwidth=bw,
    )


class TestFreerideGRuntime:
    def test_result_matches_direct_sum(self):
        dataset = make_tiny_points()
        run = FreerideGRuntime(make_config()).execute(SumApp(), dataset)
        assert run.result == pytest.approx(float(dataset.records.sum()), rel=1e-6)

    def test_result_invariant_across_configurations(self):
        dataset = make_tiny_points()
        results = []
        for n, c in [(1, 1), (1, 4), (2, 4), (4, 8), (8, 16)]:
            run = FreerideGRuntime(make_config(n, c)).execute(SumApp(), dataset)
            results.append(run.result)
        assert all(r == pytest.approx(results[0], rel=1e-6) for r in results)

    def test_breakdown_has_expected_pass_count(self):
        dataset = make_tiny_points()
        run = FreerideGRuntime(make_config()).execute(SumApp(passes=3), dataset)
        assert run.breakdown.num_passes == 3

    def test_deterministic_timing(self):
        dataset = make_tiny_points()
        t1 = FreerideGRuntime(make_config()).execute(SumApp(), dataset)
        t2 = FreerideGRuntime(make_config()).execute(SumApp(), dataset)
        assert t1.breakdown.total == t2.breakdown.total

    def test_disk_and_network_only_on_first_pass_when_cached(self):
        dataset = make_tiny_points()
        run = FreerideGRuntime(make_config()).execute(
            SumApp(passes=3, cache=True), dataset
        )
        passes = run.breakdown.passes
        assert passes[0].t_disk > 0 and passes[0].t_network > 0
        for later in passes[1:]:
            assert later.t_disk == 0.0 and later.t_network == 0.0
            assert later.t_cache > 0.0  # read from local cache instead

    def test_uncached_multi_pass_refetches(self):
        dataset = make_tiny_points()
        run = FreerideGRuntime(make_config()).execute(
            SumApp(passes=2, cache=False), dataset
        )
        passes = run.breakdown.passes
        assert passes[1].t_disk > 0 and passes[1].t_network > 0

    def test_caching_pays_write_on_first_pass(self):
        dataset = make_tiny_points()
        cached = FreerideGRuntime(make_config()).execute(
            SumApp(passes=2, cache=True), dataset
        )
        uncached = FreerideGRuntime(make_config()).execute(
            SumApp(passes=1, cache=False), dataset
        )
        assert cached.breakdown.passes[0].t_cache > 0.0
        assert uncached.breakdown.passes[0].t_cache == 0.0

    def test_single_node_has_no_gather_time(self):
        dataset = make_tiny_points()
        run = FreerideGRuntime(make_config(1, 1)).execute(SumApp(), dataset)
        assert run.breakdown.t_ro == 0.0

    def test_gather_time_grows_with_compute_nodes(self):
        dataset = make_tiny_points()
        t4 = FreerideGRuntime(make_config(2, 4)).execute(SumApp(), dataset)
        t8 = FreerideGRuntime(make_config(2, 8)).execute(SumApp(), dataset)
        assert t8.breakdown.t_ro > t4.breakdown.t_ro

    def test_broadcast_adds_communication(self):
        dataset = make_tiny_points()
        plain = FreerideGRuntime(make_config(2, 4)).execute(SumApp(), dataset)
        bcast = FreerideGRuntime(make_config(2, 4)).execute(
            SumApp(broadcasts=True), dataset
        )
        assert bcast.breakdown.t_ro > plain.breakdown.t_ro
        assert bcast.breakdown.metadata["broadcast_nbytes"] == 64.0

    def test_metadata_recorded(self):
        dataset = make_tiny_points()
        run = FreerideGRuntime(make_config(2, 4)).execute(SumApp(passes=2), dataset)
        meta = run.breakdown.metadata
        assert meta["app"] == "sum-app"
        assert meta["config"] == "2-4"
        assert meta["dataset_nbytes"] == dataset.nbytes
        assert meta["gather_rounds"] == 2
        assert meta["broadcasts_result"] is False

    def test_local_compute_faster_with_more_nodes(self):
        dataset = make_tiny_points()
        slow = FreerideGRuntime(make_config(2, 2)).execute(SumApp(), dataset)
        fast = FreerideGRuntime(make_config(2, 16)).execute(SumApp(), dataset)
        # The parallelizable share shrinks; the serialized gather grows, so
        # compare the local-reduction component, not t_compute as a whole.
        slow_local = slow.breakdown.t_compute - slow.breakdown.t_ro - slow.breakdown.t_g
        fast_local = fast.breakdown.t_compute - fast.breakdown.t_ro - fast.breakdown.t_g
        assert fast_local < slow_local

    def test_retrieval_faster_with_more_data_nodes(self):
        dataset = make_tiny_points()
        narrow = FreerideGRuntime(make_config(1, 4)).execute(SumApp(), dataset)
        wide = FreerideGRuntime(make_config(4, 4)).execute(SumApp(), dataset)
        assert wide.breakdown.t_disk < narrow.breakdown.t_disk

    def test_lower_bandwidth_slows_network(self):
        dataset = make_tiny_points()
        fast = FreerideGRuntime(make_config(bw=1e6)).execute(SumApp(), dataset)
        slow = FreerideGRuntime(make_config(bw=2e5)).execute(SumApp(), dataset)
        assert slow.breakdown.t_network > fast.breakdown.t_network

    def test_assignment_exposed(self):
        dataset = make_tiny_points()
        run = FreerideGRuntime(make_config(2, 4)).execute(SumApp(), dataset)
        expected = assign_chunks(dataset.num_chunks, 2, 4)
        assert run.assignment.data_node_chunks == expected.data_node_chunks

    def test_nonterminating_app_rejected(self):
        class Forever(SumApp):
            def update(self, combined, ops):
                return True

        with pytest.raises(ConfigurationError):
            FreerideGRuntime(make_config()).execute(Forever(), make_tiny_points())

    def test_max_reduction_object_bytes_recorded(self):
        dataset = make_tiny_points()
        run = FreerideGRuntime(make_config()).execute(SumApp(), dataset)
        assert run.breakdown.max_reduction_object_bytes == 64.0

    def test_total_time_property(self):
        dataset = make_tiny_points()
        run = FreerideGRuntime(make_config()).execute(SumApp(), dataset)
        assert run.total_time == run.breakdown.total
