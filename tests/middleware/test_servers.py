"""Tests for the data-server and compute-server timing models."""

import pytest

from repro.middleware.caching import CacheModel
from repro.middleware.chunks import assign_chunks
from repro.middleware.compute_server import ComputeServer
from repro.middleware.data_server import DataServer
from repro.middleware.scheduler import RunConfig
from repro.simgrid.errors import ConfigurationError
from repro.simgrid.hardware import DiskSpec, OpVector

from tests.conftest import make_tiny_points, small_cluster_spec


def make_config(n=2, c=4, bw=5e5):
    cluster = small_cluster_spec()
    return RunConfig(
        storage_cluster=cluster,
        compute_cluster=cluster,
        data_nodes=n,
        compute_nodes=c,
        bandwidth=bw,
    )


class TestDataServer:
    def make(self, n=2, c=4, bw=5e5):
        config = make_config(n, c, bw)
        dataset = make_tiny_points()
        plan = assign_chunks(dataset.num_chunks, n, c)
        return DataServer(config, dataset, plan), config, dataset

    def test_retrieval_positive(self):
        server, _, _ = self.make()
        assert server.retrieval_time() > 0.0

    def test_retrieval_shrinks_with_more_data_nodes(self):
        one, _, _ = self.make(n=1)
        four, _, _ = self.make(n=4)
        assert four.retrieval_time() < one.retrieval_time()

    def test_communication_bandwidth_cap(self):
        fast, _, _ = self.make(bw=1e7)
        slow, _, _ = self.make(bw=1e5)
        assert slow.communication_time() > fast.communication_time()

    def test_communication_capped_by_nic(self):
        config = make_config(bw=1e12)  # absurd bandwidth; NIC is the cap
        dataset = make_tiny_points()
        plan = assign_chunks(dataset.num_chunks, 2, 4)
        server = DataServer(config, dataset, plan)
        nic_bw = config.storage_cluster.node.nic.bw
        per_node_bytes = sum(
            dataset.chunk_nbytes(i) for i in plan.data_node_chunks[0]
        )
        assert server.communication_time() >= per_node_bytes / nic_bw

    def test_per_node_chunk_sizes_align_with_plan(self):
        server, _, dataset = self.make()
        sizes = server.per_node_chunk_sizes
        assert len(sizes) == 2
        total = sum(sum(s) for s in sizes)
        assert total == pytest.approx(dataset.nbytes)

    def test_effective_disk_bw_reported(self):
        server, config, _ = self.make(n=2)
        assert server.effective_disk_bw() == config.storage_cluster.effective_disk_bw(2)

    def test_rejects_assignment_without_data_nodes(self):
        from repro.middleware.chunks import ChunkAssignment

        empty = ChunkAssignment(
            data_node_chunks=[], compute_node_chunks=[], compute_source=[]
        )
        with pytest.raises(ConfigurationError, match="at least one"):
            DataServer(make_config(), make_tiny_points(), empty)

    def test_communication_time_error_names_the_problem(self):
        server, _, _ = self.make()
        # Bypass the constructor guard to hit the method's own check.
        object.__setattr__(
            server.assignment, "data_node_chunks", []
        )
        with pytest.raises(ConfigurationError, match="no data-node chunk"):
            server.communication_time()

    def test_per_node_times_compose_the_phase_maxima(self):
        server, _, _ = self.make()
        assert max(server.node_retrieval_times()) == pytest.approx(
            server.retrieval_time()
        )
        assert max(server.node_stream_times()) == pytest.approx(
            server.communication_time()
        )

    def test_link_factors_stretch_one_node_stream(self):
        server, _, _ = self.make()
        healthy = server.node_stream_times()
        degraded = server.node_stream_times([2.0, 1.0])
        assert degraded[0] == pytest.approx(2.0 * healthy[0])
        assert degraded[1] == healthy[1]
        with pytest.raises(ConfigurationError):
            server.node_stream_times([2.0])  # wrong length

    def test_refetch_cost_charges_startup_reads_and_stream(self):
        server, config, dataset = self.make()
        disk, network = server.refetch_cost([0, 2])
        spec = config.storage_cluster.node.disk
        expected_disk = config.storage_cluster.node_startup_s + sum(
            spec.read_time(dataset.chunk_nbytes(c), effective_bw=spec.stream_bw)
            for c in (0, 2)
        )
        assert disk == pytest.approx(expected_disk)
        assert network > 0.0
        assert server.refetch_cost([]) == (0.0, 0.0)
        _, slow_net = server.refetch_cost([0, 2], link_factor=2.0)
        assert slow_net == pytest.approx(2.0 * network)
        with pytest.raises(ConfigurationError):
            server.refetch_cost([0], link_factor=0.5)


class TestComputeServer:
    def test_compute_time_includes_pass_startup(self):
        config = make_config()
        server = ComputeServer(config, 0)
        empty = server.compute_time([])
        assert empty == pytest.approx(config.compute_cluster.compute_pass_startup_s)

    def test_compute_time_scales_with_ops(self):
        config = make_config()
        server = ComputeServer(config, 0)
        small = server.compute_time([OpVector(flop=1e6)])
        large = server.compute_time([OpVector(flop=2e6)])
        assert large > small

    def test_dispatch_overhead_per_chunk(self):
        config = make_config()
        server = ComputeServer(config, 0)
        one = server.compute_time([OpVector.zero()])
        two = server.compute_time([OpVector.zero(), OpVector.zero()])
        assert two - one == pytest.approx(
            config.compute_cluster.chunk_dispatch_overhead_s
        )

    def test_receive_overhead_scales_with_saturation(self):
        saturated = ComputeServer(make_config(4, 4), 0)
        relaxed = ComputeServer(make_config(4, 16), 0)
        assert saturated.receive_overhead(10) == pytest.approx(
            4.0 * relaxed.receive_overhead(10)
        )

    def test_cache_round_trip_times(self):
        server = ComputeServer(make_config(), 0)
        sizes = [1e4, 2e4]
        assert server.cache_write_time(sizes) > 0.0
        # reads pay seeks, writes stream
        assert server.cache_read_time(sizes) > server.cache_write_time(sizes)


class TestCacheModel:
    def test_write_streams_without_seek(self):
        cache = CacheModel(DiskSpec(seek_s=0.01, stream_bw=1e6))
        assert cache.write_time([1e6]) == pytest.approx(1.0)

    def test_read_pays_seek_per_chunk(self):
        cache = CacheModel(DiskSpec(seek_s=0.01, stream_bw=1e6))
        assert cache.read_time([1e6, 1e6]) == pytest.approx(2.02)

    def test_negative_sizes_rejected(self):
        cache = CacheModel(DiskSpec(seek_s=0.01, stream_bw=1e6))
        with pytest.raises(ConfigurationError):
            cache.write_time([-1.0])
        with pytest.raises(ConfigurationError):
            cache.read_time([-1.0])
