"""Cross-feature combinations: SMP x tree gather x caching interact safely."""

import pytest

from repro.middleware.runtime import FreerideGRuntime
from repro.middleware.scheduler import GatherTopology, RunConfig

from tests.conftest import SumApp, make_tiny_points, small_cluster_spec


def make_config(**kw):
    cluster = small_cluster_spec()
    defaults = dict(
        storage_cluster=cluster,
        compute_cluster=cluster,
        data_nodes=2,
        compute_nodes=4,
        bandwidth=5e5,
    )
    defaults.update(kw)
    return RunConfig(**defaults)


ALL_FEATURE_CONFIGS = [
    dict(),
    dict(processes_per_node=2),
    dict(gather_topology=GatherTopology.TREE),
    dict(processes_per_node=2, gather_topology=GatherTopology.TREE),
    dict(remote_cache_bandwidth=1e6),
    dict(
        processes_per_node=2,
        gather_topology=GatherTopology.TREE,
        remote_cache_bandwidth=1e6,
    ),
]


class TestFeatureCombinations:
    @pytest.mark.parametrize(
        "overrides",
        ALL_FEATURE_CONFIGS,
        ids=[",".join(sorted(c)) or "baseline" for c in ALL_FEATURE_CONFIGS],
    )
    def test_result_invariant_across_feature_combinations(self, overrides):
        dataset = make_tiny_points()
        baseline = FreerideGRuntime(make_config()).execute(
            SumApp(passes=2, cache=True), dataset
        )
        combo = FreerideGRuntime(make_config(**overrides)).execute(
            SumApp(passes=2, cache=True), dataset
        )
        assert combo.result == pytest.approx(baseline.result)
        assert combo.breakdown.num_passes == 2

    def test_smp_tree_gather_counts_nodes(self):
        """Under SMP + tree, the gather tree spans nodes (not threads)."""
        dataset = make_tiny_points()
        tree_flat = FreerideGRuntime(
            make_config(compute_nodes=8, gather_topology=GatherTopology.TREE)
        ).execute(SumApp(), dataset)
        tree_smp = FreerideGRuntime(
            make_config(
                compute_nodes=4,
                processes_per_node=2,
                gather_topology=GatherTopology.TREE,
            )
        ).execute(SumApp(), dataset)
        # 4 nodes -> 2 tree rounds; 8 nodes -> 3 rounds.
        assert tree_smp.breakdown.t_ro < tree_flat.breakdown.t_ro

    def test_remote_cache_with_smp(self):
        dataset = make_tiny_points()
        run = FreerideGRuntime(
            make_config(processes_per_node=2, remote_cache_bandwidth=2e5)
        ).execute(SumApp(passes=3, cache=True), dataset)
        assert run.breakdown.t_cache > 0
        for later in run.breakdown.passes[1:]:
            assert later.t_disk == 0.0 and later.t_network == 0.0
