"""Tests for the paper's testbed cluster specs."""

import pytest

from repro.simgrid.hardware import OpCategory, OpVector
from repro.workloads.clusters import (
    DEFAULT_BANDWIDTH,
    HALF_LOW_BANDWIDTH,
    LOW_BANDWIDTH,
    opteron_infiniband_cluster,
    pentium_myrinet_cluster,
)


class TestClusterSpecs:
    def test_names(self):
        assert pentium_myrinet_cluster().name == "pentium-myrinet"
        assert opteron_infiniband_cluster().name == "opteron-infiniband"

    def test_opteron_faster_everywhere(self):
        pentium = pentium_myrinet_cluster()
        opteron = opteron_infiniband_cluster()
        for cat in OpCategory:
            assert opteron.node.cpu.rates[cat] > pentium.node.cpu.rates[cat]
        assert opteron.node.disk.stream_bw > pentium.node.disk.stream_bw
        assert opteron.node.nic.bw > pentium.node.nic.bw

    def test_speedups_differ_by_op_mix(self):
        """The core requirement behind Section 5.4: the two clusters'
        relative speed depends on the application's operation mix."""
        pentium = pentium_myrinet_cluster().node.cpu
        opteron = opteron_infiniband_cluster().node.cpu
        branchy = OpVector(branch=1e9)
        floppy = OpVector(flop=1e9)
        branchy_speedup = opteron.speedup_over(pentium, branchy)
        floppy_speedup = opteron.speedup_over(pentium, floppy)
        # wait: speedup_over(self=opteron, other=pentium) = t_pentium/t_opteron
        assert branchy_speedup != pytest.approx(floppy_speedup, rel=0.05)
        assert branchy_speedup > floppy_speedup  # branches gained the most

    def test_pentium_backplane_contends_at_eight_nodes(self):
        pentium = pentium_myrinet_cluster()
        free = pentium.effective_disk_bw(4)
        contended = pentium.effective_disk_bw(8)
        assert free == pentium.node.disk.stream_bw
        assert contended < free

    def test_custom_node_count(self):
        assert pentium_myrinet_cluster(num_nodes=8).num_nodes == 8

    def test_bandwidth_constants_ordered(self):
        assert HALF_LOW_BANDWIDTH < LOW_BANDWIDTH < DEFAULT_BANDWIDTH
        assert HALF_LOW_BANDWIDTH == pytest.approx(LOW_BANDWIDTH / 2)
