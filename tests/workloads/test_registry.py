"""Tests for the workload registry."""

import pytest

from repro.middleware.api import GeneralizedReduction
from repro.simgrid.errors import ConfigurationError
from repro.workloads.registry import (
    MODEL_BYTES_PER_GB,
    WORKLOADS,
    make_app,
    make_dataset,
    nominal_to_model_bytes,
)

ALL_WORKLOADS = sorted(WORKLOADS)


class TestRegistryContents:
    def test_five_paper_workloads_plus_two_extensions(self):
        paper = sorted(n for n, s in WORKLOADS.items() if s.in_paper_evaluation)
        extensions = sorted(
            n for n, s in WORKLOADS.items() if not s.in_paper_evaluation
        )
        assert paper == ["defect", "em", "kmeans", "knn", "vortex"]
        assert extensions == ["apriori", "neuralnet"]

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_app_factories(self, name):
        app = make_app(name)
        assert isinstance(app, GeneralizedReduction)
        assert app.name == name

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_fresh_instances(self, name):
        assert make_app(name) is not make_app(name)

    def test_unknown_workload(self):
        with pytest.raises(ConfigurationError):
            make_app("sorting")
        with pytest.raises(ConfigurationError):
            make_dataset("sorting")

    def test_unknown_size(self):
        with pytest.raises(ConfigurationError):
            make_dataset("kmeans", "9 TB")

    def test_class_labels_parse(self):
        from repro.core.classes import ModelClasses

        for spec in WORKLOADS.values():
            ModelClasses.parse(spec.natural_object_class, spec.natural_global_class)
            ModelClasses.parse(spec.paper_object_class, spec.paper_global_class)


class TestDatasets:
    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_default_dataset_builds(self, name):
        ds = make_dataset(name)
        assert ds.nbytes > 0
        assert ds.num_chunks >= 16
        assert ds.num_chunks % 16 == 0

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_chunk_sizes_uniform(self, name):
        ds = make_dataset(name)
        sizes = [ds.chunk_nbytes(i) for i in range(ds.num_chunks)]
        assert max(sizes) - min(sizes) < 1e-9 * max(sizes) + 1e-9

    def test_sizes_scale_with_labels(self):
        small = make_dataset("em", "350 MB")
        large = make_dataset("em", "1.4 GB")
        assert large.nbytes / small.nbytes == pytest.approx(4.0, rel=0.05)

    def test_nominal_to_model_bytes(self):
        assert nominal_to_model_bytes(1.4) == pytest.approx(1.4 * MODEL_BYTES_PER_GB)
        with pytest.raises(ConfigurationError):
            nominal_to_model_bytes(0.0)

    def test_dataset_names_include_size(self):
        ds = make_dataset("defect", "1.8 GB")
        assert "1.8GB" in ds.name

    def test_deterministic_datasets(self):
        a = make_dataset("vortex")
        b = make_dataset("vortex")
        import numpy as np

        np.testing.assert_array_equal(a.u, b.u)
