"""Tests for the configuration grid."""

import pytest

from repro.simgrid.errors import ConfigurationError
from repro.workloads.clusters import opteron_infiniband_cluster
from repro.workloads.configs import PAPER_CONFIG_GRID, config_grid, make_run_config


class TestConfigGrid:
    def test_paper_grid_has_fourteen_configs(self):
        assert len(PAPER_CONFIG_GRID) == 14

    def test_paper_grid_contents(self):
        assert (1, 1) in PAPER_CONFIG_GRID
        assert (8, 16) in PAPER_CONFIG_GRID
        assert (8, 8) in PAPER_CONFIG_GRID
        assert (4, 2) not in PAPER_CONFIG_GRID  # M >= N always

    def test_all_configs_satisfy_m_ge_n(self):
        assert all(c >= n for n, c in PAPER_CONFIG_GRID)

    def test_compute_counts_are_doublings(self):
        for n, c in PAPER_CONFIG_GRID:
            ratio = c // n
            assert n * ratio == c
            assert ratio & (ratio - 1) == 0  # power of two

    def test_custom_grid(self):
        grid = config_grid(data_node_counts=(1, 2), max_compute_nodes=4)
        assert grid == [(1, 1), (1, 2), (1, 4), (2, 2), (2, 4)]

    def test_invalid_grid(self):
        with pytest.raises(ConfigurationError):
            config_grid(data_node_counts=(32,), max_compute_nodes=16)


class TestMakeRunConfig:
    def test_defaults_to_pentium(self):
        config = make_run_config(2, 4)
        assert config.storage_cluster.name == "pentium-myrinet"
        assert config.compute_cluster.name == "pentium-myrinet"

    def test_storage_cluster_used_for_compute_when_unspecified(self):
        opteron = opteron_infiniband_cluster()
        config = make_run_config(2, 4, storage_cluster=opteron)
        assert config.compute_cluster.name == "opteron-infiniband"

    def test_explicit_compute_cluster(self):
        opteron = opteron_infiniband_cluster()
        config = make_run_config(2, 4, compute_cluster=opteron)
        assert config.storage_cluster.name == "pentium-myrinet"
        assert config.compute_cluster.name == "opteron-infiniband"
