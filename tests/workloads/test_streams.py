"""Seeded job-stream generation: determinism, mixes, deadlines."""

import pytest

from repro.simgrid.errors import ConfigurationError
from repro.workloads.streams import StreamSpec, generate_stream


class TestStreamSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StreamSpec(count=0)
        with pytest.raises(ConfigurationError):
            StreamSpec(count=5, mean_interarrival=0.0)
        with pytest.raises(ConfigurationError):
            StreamSpec(count=5, mix=())
        with pytest.raises(ConfigurationError):
            StreamSpec(count=5, mix=(("knn", None, 0.0),))
        with pytest.raises(ConfigurationError):
            StreamSpec(count=5, deadline_fraction=1.5)
        with pytest.raises(ConfigurationError):
            StreamSpec(count=5, deadline_slack=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            StreamSpec(count=5, priorities=())
        with pytest.raises(ConfigurationError):
            StreamSpec(count=5, priorities=(0, 1), priority_weights=(1.0,))

    def test_from_dict_defaults(self):
        spec = StreamSpec.from_dict({"count": 10})
        assert spec.count == 10
        assert spec.seed == 0
        assert spec.deadline_fraction == 0.0

    def test_from_dict_full(self):
        spec = StreamSpec.from_dict(
            {
                "count": 5,
                "seed": 3,
                "mean_interarrival": 0.2,
                "mix": [["knn", "350 MB", 2.0], ["kmeans"]],
                "deadline_fraction": 0.5,
                "deadline_slack": [1.2, 2.5],
                "priorities": [0, 1],
                "priority_weights": [3.0, 1.0],
            }
        )
        assert spec.mix == (("knn", "350 MB", 2.0), ("kmeans", None, 1.0))
        assert spec.deadline_slack == (1.2, 2.5)
        assert spec.priorities == (0, 1)

    def test_from_dict_requires_count(self):
        with pytest.raises(ConfigurationError, match="count"):
            StreamSpec.from_dict({})


class TestGenerateStream:
    def test_same_seed_same_stream(self):
        spec = StreamSpec(count=20, seed=5, deadline_fraction=0.5)
        a = generate_stream(spec, baselines=lambda w, s: 1.0)
        b = generate_stream(spec, baselines=lambda w, s: 1.0)
        assert a == b

    def test_different_seed_different_stream(self):
        a = generate_stream(StreamSpec(count=20, seed=1))
        b = generate_stream(StreamSpec(count=20, seed=2))
        assert a != b

    def test_arrivals_sorted_and_positive(self):
        jobs = generate_stream(StreamSpec(count=30, seed=0))
        arrivals = [j.arrival for j in jobs]
        assert arrivals == sorted(arrivals)
        assert all(a > 0 for a in arrivals)

    def test_mix_respected(self):
        spec = StreamSpec(
            count=25, seed=0, mix=(("knn", "350 MB", 1.0),)
        )
        jobs = generate_stream(spec)
        assert {j.workload for j in jobs} == {"knn"}
        assert {j.size for j in jobs} == {"350 MB"}

    def test_deadlines_use_baselines(self):
        spec = StreamSpec(
            count=20, seed=0, deadline_fraction=1.0,
            deadline_slack=(2.0, 3.0),
        )
        jobs = generate_stream(spec, baselines={"kmeans": 1.0, "knn": 1.0,
                                                "vortex": 1.0})
        for job in jobs:
            slack = job.deadline - job.arrival
            assert 2.0 <= slack <= 3.0

    def test_no_deadlines_without_fraction(self):
        jobs = generate_stream(StreamSpec(count=10, seed=0))
        assert all(j.deadline is None for j in jobs)

    def test_deadlines_need_baselines(self):
        spec = StreamSpec(count=10, seed=0, deadline_fraction=1.0)
        with pytest.raises(ConfigurationError, match="baselines"):
            generate_stream(spec)

    def test_missing_baseline_key(self):
        spec = StreamSpec(
            count=5, seed=0, deadline_fraction=1.0,
            mix=(("knn", None, 1.0),),
        )
        with pytest.raises(ConfigurationError, match="no baseline"):
            generate_stream(spec, baselines={"kmeans": 1.0})

    def test_priorities_drawn_from_spec(self):
        spec = StreamSpec(count=40, seed=0, priorities=(0, 7))
        jobs = generate_stream(spec)
        assert set(j.priority for j in jobs) == {0, 7}

    def test_job_ids_unique(self):
        jobs = generate_stream(StreamSpec(count=50, seed=0))
        assert len({j.job_id for j in jobs}) == 50
