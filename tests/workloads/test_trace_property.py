"""Property suites for the trace layer (DESIGN.md §16).

Two replay invariants, checked over randomized specs rather than the
handful of presets:

- **determinism** — a ``(seed, spec)`` pair fully determines the
  generated jobs and hence the artifact fingerprint; serializing the
  spec and regenerating from the round-tripped copy changes nothing;
- **GWF round trip** — any generated trace survives
  ``trace_to_gwf`` -> ``parse_gwf`` with every job field intact, and
  the serialization is idempotent.
"""

from hypothesis import given, settings, strategies as st

from repro.workloads.registry import WORKLOADS
from repro.workloads.traces import (
    DistributionSpec,
    DiurnalSpec,
    TraceSpec,
    TraceWorkload,
    VoSpec,
    parse_gwf,
    trace_to_gwf,
)


def flat_baseline(workload, size):
    return 2.0


_MIX_ENTRIES = sorted(
    ((name, size) for name, spec in WORKLOADS.items()
     for size in (None, *spec.dataset_sizes_gb)),
    key=lambda entry: (entry[0], entry[1] or ""),
)

distributions = st.one_of(
    st.builds(
        DistributionSpec.exponential, st.floats(0.01, 1.0, allow_nan=False)
    ),
    st.builds(
        DistributionSpec.weibull,
        st.floats(0.4, 3.0, allow_nan=False),
        st.floats(0.01, 1.0, allow_nan=False),
    ),
    st.builds(
        DistributionSpec.lognormal,
        st.floats(-4.0, 0.0, allow_nan=False),
        st.floats(0.1, 1.5, allow_nan=False),
    ),
    st.builds(
        DistributionSpec.pareto,
        st.floats(1.1, 3.0, allow_nan=False),
        st.floats(0.01, 0.5, allow_nan=False),
    ),
    st.builds(DistributionSpec.constant, st.floats(0.01, 1.0)),
)

mixes = st.lists(
    st.tuples(
        st.sampled_from(_MIX_ENTRIES), st.floats(0.5, 4.0, allow_nan=False)
    ),
    min_size=1,
    max_size=4,
    unique_by=lambda entry: entry[0],
).map(
    lambda entries: tuple(
        (name, size, weight) for (name, size), weight in entries
    )
)


@st.composite
def vo_specs(draw, name):
    priorities = tuple(draw(st.sets(st.integers(0, 5), min_size=1)))
    return VoSpec(
        name=name,
        weight=draw(st.floats(0.5, 5.0, allow_nan=False)),
        interarrival=draw(distributions),
        mix=draw(mixes),
        deadline_fraction=draw(st.sampled_from([0.0, 0.5, 1.0])),
        deadline_slack=(1.5, 3.0),
        priorities=priorities,
        priority_weights=tuple(
            draw(
                st.lists(
                    st.floats(0.5, 4.0, allow_nan=False),
                    min_size=len(priorities),
                    max_size=len(priorities),
                )
            )
        ),
    )


@st.composite
def trace_specs(draw):
    vo_count = draw(st.integers(1, 3))
    modulation = draw(
        st.one_of(
            st.none(),
            st.builds(
                DiurnalSpec,
                day_seconds=st.floats(1.0, 100.0, allow_nan=False),
                amplitude=st.floats(0.0, 0.9, allow_nan=False),
                phase=st.floats(0.0, 10.0, allow_nan=False),
                week_amplitude=st.floats(0.0, 0.5, allow_nan=False),
            ),
        )
    )
    return TraceSpec(
        name="prop",
        count=draw(st.integers(1, 60)),
        seed=draw(st.integers(0, 2**31)),
        vos=tuple(
            draw(vo_specs(f"vo-{index}")) for index in range(vo_count)
        ),
        modulation=modulation,
    )


@settings(max_examples=25, deadline=None)
@given(spec=trace_specs())
def test_spec_and_seed_determine_fingerprint(spec):
    first = TraceWorkload.from_spec(spec, baselines=flat_baseline)
    again = TraceWorkload.from_spec(
        TraceSpec.from_dict(spec.to_dict()), baselines=flat_baseline
    )
    assert again.jobs == first.jobs
    assert again.fingerprint == first.fingerprint
    assert len(first.jobs) == spec.count


@settings(max_examples=25, deadline=None)
@given(spec=trace_specs())
def test_gwf_round_trip_preserves_every_job(spec):
    trace = TraceWorkload.from_spec(spec, baselines=flat_baseline)
    text = trace_to_gwf(trace)
    back = parse_gwf(text, name=trace.name)
    assert back.jobs == trace.jobs
    assert trace_to_gwf(back) == text
