"""Tests for the per-figure experiment drivers (fast grid)."""

import pytest

from repro.simgrid.errors import ConfigurationError
from repro.workloads.experiments import (
    EXPERIMENTS,
    FAST_CONFIG_GRID,
    ExperimentResult,
    ExperimentRow,
    run_cross_cluster,
    run_experiment,
)


class TestExperimentRow:
    def test_error_and_label(self):
        row = ExperimentRow(2, 4, "m", actual=10.0, predicted=9.0)
        assert row.label == "2-4"
        assert row.error == pytest.approx(0.1)


class TestExperimentResult:
    def make(self):
        result = ExperimentResult("figX", "title", "kmeans")
        result.rows = [
            ExperimentRow(1, 1, "a", 10.0, 10.0),
            ExperimentRow(1, 2, "a", 10.0, 9.0),
            ExperimentRow(1, 1, "b", 10.0, 8.0),
        ]
        return result

    def test_models_in_order(self):
        assert self.make().models == ["a", "b"]

    def test_errors_for_model(self):
        assert self.make().errors_for_model("a") == pytest.approx([0.0, 0.1])

    def test_max_and_mean(self):
        result = self.make()
        assert result.max_error("a") == pytest.approx(0.1)
        assert result.mean_error("a") == pytest.approx(0.05)

    def test_missing_model_raises(self):
        with pytest.raises(ConfigurationError):
            self.make().max_error("zzz")


class TestRegistry:
    def test_all_paper_figures_and_extensions_present(self):
        expected = [f"fig{i:02d}" for i in range(2, 14)]
        expected += ["ext-apriori", "ext-neuralnet"]
        assert sorted(EXPERIMENTS) == sorted(expected)

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")


@pytest.mark.slow
class TestFigureShapes:
    """Fast-grid sanity runs of one experiment per family."""

    def test_model_comparison_family(self):
        result = run_experiment("fig02", fast=True)
        assert len(result.rows) == 3 * len(FAST_CONFIG_GRID)
        assert result.models == [
            "no communication",
            "reduction communication",
            "global reduction",
        ]
        # global reduction is the most accurate on average
        means = [result.mean_error(m) for m in result.models]
        assert means[2] <= means[1] <= means[0]
        assert result.max_error("global reduction") < 0.05

    def test_dataset_scaling_family(self):
        result = run_experiment("fig07", fast=True)
        assert result.models == ["global reduction"]
        assert result.max_error("global reduction") < 0.05
        assert result.metadata["profile_dataset"] == "350 MB"

    def test_bandwidth_family(self):
        result = run_experiment("fig10", fast=True)
        assert result.max_error("global reduction") < 0.05
        assert result.metadata["target_bandwidth"] < result.metadata[
            "profile_bandwidth"
        ]

    def test_cross_cluster_family(self):
        result = run_experiment("fig13", fast=True)
        assert result.models == ["cross-cluster"]
        assert result.max_error("cross-cluster") < 0.12
        assert set(result.metadata["representatives"]) == {"kmeans", "knn", "em"}
        assert 0 < result.metadata["sc"] < 1  # the target cluster is faster

    def test_representative_exclusion_enforced(self):
        with pytest.raises(ConfigurationError):
            run_cross_cluster(
                "em",
                "figX",
                "bad",
                profile_size="350 MB",
                target_size="700 MB",
                profile_nodes=(1, 1),
                representatives=("em", "knn"),
                fast=True,
            )
