"""Tests for the one-call reproduction suite."""

import pytest

from repro.simgrid.errors import ConfigurationError
from repro.workloads.suite import SuiteReport, run_paper_suite


class TestRunPaperSuite:
    @pytest.mark.slow
    def test_fast_subset_runs_and_checks(self):
        seen = []
        report = run_paper_suite(
            fast=True,
            experiment_ids=["fig04", "fig09"],
            progress=seen.append,
        )
        assert len(report.entries) == 2
        assert report.ok
        assert report.failures == []
        assert len(seen) == 2
        assert all("ok" in line for line in seen)
        entry = report.entry("fig04")
        assert entry.result.workload == "defect"
        assert entry.elapsed_s > 0

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            run_paper_suite(experiment_ids=["fig99"])

    def test_missing_entry_lookup(self):
        report = SuiteReport()
        with pytest.raises(ConfigurationError):
            report.entry("fig02")

    @pytest.mark.slow
    def test_summary_lines_report_status(self):
        report = run_paper_suite(fast=True, experiment_ids=["fig10"])
        lines = report.summary_lines()
        assert len(lines) == 1
        assert "fig10" in lines[0]
        assert "ok" in lines[0]
