"""Unit tests for the trace workload layer (DESIGN.md §16)."""

import json
import pathlib

import numpy as np
import pytest

from repro.core.durable import CorruptStoreError
from repro.simgrid.errors import ConfigurationError
from repro.workloads.traces import (
    DEFAULT_GWF_MAPPING,
    DistributionSpec,
    DiurnalSpec,
    GwfMapping,
    TraceSpec,
    TraceWorkload,
    VoSpec,
    generate_trace,
    make_preset,
    modulated_arrivals,
    parse_gwf,
    split_counts,
    trace_to_gwf,
)

BASELINES = {"": 2.0}


def flat_baseline(workload, size):
    return 2.0


# ----------------------------------------------------------------------
# Distributions
# ----------------------------------------------------------------------


class TestDistributions:
    def test_exponential_matches_legacy_poisson_draw(self):
        spec = DistributionSpec.exponential(0.08)
        a = spec.sample(np.random.default_rng(42), 50)
        b = np.random.default_rng(42).exponential(0.08, 50)
        assert a.tolist() == b.tolist()

    @pytest.mark.parametrize(
        "spec",
        [
            DistributionSpec.exponential(0.5),
            DistributionSpec.weibull(0.64, 1.0),
            DistributionSpec.lognormal(-1.0, 0.9),
            DistributionSpec.gamma(2.0, 0.25),
            DistributionSpec.pareto(1.8, 0.1),
            DistributionSpec.uniform(0.0, 2.0),
            DistributionSpec.constant(0.3),
        ],
    )
    def test_round_trip_and_positive_samples(self, spec):
        assert DistributionSpec.from_dict(spec.to_dict()) == spec
        draws = spec.sample(np.random.default_rng(7), 200)
        assert len(draws) == 200
        assert (draws >= 0).all()

    def test_sample_mean_tracks_analytic_mean(self):
        for spec in (
            DistributionSpec.exponential(0.5),
            DistributionSpec.weibull(1.5, 1.0),
            DistributionSpec.lognormal(-1.0, 0.5),
            DistributionSpec.gamma(2.0, 0.25),
            DistributionSpec.uniform(0.0, 2.0),
        ):
            draws = spec.sample(np.random.default_rng(11), 20000)
            assert draws.mean() == pytest.approx(spec.mean(), rel=0.05)

    def test_pareto_minimum_is_scale(self):
        spec = DistributionSpec.pareto(1.8, 0.25)
        draws = spec.sample(np.random.default_rng(3), 1000)
        assert draws.min() >= 0.25

    def test_constant_draws_no_randomness(self):
        rng = np.random.default_rng(5)
        before = rng.bit_generator.state
        DistributionSpec.constant(1.0).sample(rng, 10)
        assert rng.bit_generator.state == before

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            DistributionSpec("nope", ())
        with pytest.raises(ConfigurationError):
            DistributionSpec.exponential(-1.0)
        with pytest.raises(ConfigurationError):
            DistributionSpec.uniform(2.0, 1.0)
        with pytest.raises(ConfigurationError):
            DistributionSpec.from_dict({"kind": "exponential", "params": {}})
        with pytest.raises(ConfigurationError):
            DistributionSpec.from_dict(
                {"kind": "exponential", "params": {"mean": 1.0, "x": 2.0}}
            )


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------


class TestSpecs:
    def test_diurnal_factor_positive_and_periodic(self):
        mod = DiurnalSpec(
            day_seconds=10.0, amplitude=0.9, week_amplitude=0.5
        )
        ts = [0.1 * k for k in range(1400)]
        factors = [mod.rate_factor(t) for t in ts]
        assert min(factors) > 0.0
        assert mod.rate_factor(3.0) == pytest.approx(
            mod.rate_factor(3.0 + 70.0)
        )

    def test_diurnal_validation(self):
        with pytest.raises(ConfigurationError):
            DiurnalSpec(amplitude=1.0)
        with pytest.raises(ConfigurationError):
            DiurnalSpec(day_seconds=0.0)

    def test_trace_spec_round_trip(self):
        spec = make_preset("gwa-mixed", 500, seed=4)
        assert TraceSpec.from_dict(spec.to_dict()) == spec

    def test_duplicate_vo_names_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceSpec(
                name="t", count=10,
                vos=(VoSpec("a"), VoSpec("a")),
            )

    def test_vo_validation(self):
        with pytest.raises(ConfigurationError):
            VoSpec("a", weight=0.0)
        with pytest.raises(ConfigurationError):
            VoSpec("a", priorities=())
        with pytest.raises(ConfigurationError):
            VoSpec("a", priorities=(0, 1), priority_weights=(1.0,))


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------


class TestGeneration:
    def test_split_counts_exact_and_deterministic(self):
        assert split_counts(10, [1.0, 1.0, 1.0]) == [4, 3, 3]
        assert split_counts(7, [5.0, 3.0, 1.0]) == [4, 2, 1]
        assert sum(split_counts(100001, [3.1, 2.2, 7.7])) == 100001

    def test_modulated_arrivals_monotone(self):
        gaps = np.random.default_rng(1).exponential(0.1, 500)
        mod = DiurnalSpec(day_seconds=5.0, amplitude=0.8)
        arrivals = modulated_arrivals(gaps, mod)
        assert (np.diff(arrivals) > 0).all()
        plain = modulated_arrivals(gaps, None)
        assert plain.tolist() == np.cumsum(gaps).tolist()

    def test_generate_trace_is_deterministic(self):
        spec = make_preset("gwa-mixed", 300, seed=8)
        a = generate_trace(spec, baselines=flat_baseline)
        b = generate_trace(spec, baselines=flat_baseline)
        assert a == b

    def test_arrival_index_is_merged_order(self):
        spec = make_preset("gwa-mixed", 200, seed=8)
        jobs = generate_trace(spec, baselines=flat_baseline)
        assert [j.arrival_index for j in jobs] == list(range(len(jobs)))
        assert jobs == sorted(jobs, key=lambda j: (j.arrival, j.job_id))

    def test_vo_streams_are_independent(self):
        """Editing one VO leaves every other VO's jobs untouched."""
        spec = make_preset("gwa-mixed", 300, seed=8)
        jobs = generate_trace(spec, baselines=flat_baseline)
        # Rescale the *last* VO; atlas/cms draws must not move.
        vos = list(spec.vos)
        vos[-1] = VoSpec(
            name=vos[-1].name,
            weight=vos[-1].weight,
            interarrival=DistributionSpec.exponential(0.5),
            mix=vos[-1].mix,
            priorities=vos[-1].priorities,
            priority_weights=vos[-1].priority_weights,
        )
        edited = TraceSpec(
            name=spec.name, count=spec.count, seed=spec.seed,
            vos=tuple(vos), modulation=spec.modulation,
        )
        jobs2 = generate_trace(edited, baselines=flat_baseline)

        def key(js, vo):
            return [
                (j.job_id, j.arrival, j.workload, j.priority)
                for j in js
                if j.vo == vo
            ]

        for vo in ("atlas", "cms"):
            assert key(jobs, vo) == key(jobs2, vo)

    def test_every_job_tagged_with_vo(self):
        jobs = generate_trace(
            make_preset("gwa-mixed", 120, seed=1), baselines=flat_baseline
        )
        assert all(j.vo in {"atlas", "cms", "biomed"} for j in jobs)


# ----------------------------------------------------------------------
# Artifact
# ----------------------------------------------------------------------


class TestArtifact:
    def make(self, count=150, seed=6):
        return TraceWorkload.from_spec(
            make_preset("gwa-mixed", count, seed=seed),
            baselines=flat_baseline,
        )

    def test_fingerprint_is_replay_identity(self):
        assert self.make().fingerprint == self.make().fingerprint
        assert (
            self.make(seed=6).fingerprint != self.make(seed=7).fingerprint
        )

    def test_save_load_round_trip(self, tmp_path):
        trace = self.make()
        path = trace.save(tmp_path / "t.trace.json")
        loaded = TraceWorkload.load(path)
        assert loaded.fingerprint == trace.fingerprint
        assert loaded.jobs == trace.jobs

    def test_save_is_byte_deterministic(self, tmp_path):
        a = self.make().save(tmp_path / "a.json")
        b = self.make().save(tmp_path / "b.json")
        assert a.read_bytes() == b.read_bytes()

    def test_tampered_artifact_rejected(self, tmp_path):
        trace = self.make()
        path = trace.save(tmp_path / "t.trace.json")
        doc = json.loads(path.read_text())
        doc["jobs"][0]["priority"] += 1
        pathlib.Path(path).write_text(json.dumps(doc))
        with pytest.raises(CorruptStoreError):
            TraceWorkload.load(path)

    def test_wrong_job_count_rejected(self, tmp_path):
        trace = self.make()
        doc = trace.to_dict()
        doc["job_count"] = 3
        del doc["fingerprint"]
        with pytest.raises(CorruptStoreError):
            TraceWorkload.from_dict(doc)

    def test_out_of_order_stamping_rejected(self):
        trace = self.make(count=10)
        jobs = list(trace.jobs)
        jobs[0], jobs[1] = jobs[1], jobs[0]
        with pytest.raises(ConfigurationError):
            TraceWorkload(name="bad", jobs=tuple(jobs))


# ----------------------------------------------------------------------
# GWF
# ----------------------------------------------------------------------


class TestGwf:
    def test_round_trip_preserves_jobs_exactly(self):
        trace = TraceWorkload.from_spec(
            make_preset("gwa-mixed", 200, seed=12), baselines=flat_baseline
        )
        back = parse_gwf(trace_to_gwf(trace), name=trace.name)
        assert back.jobs == trace.jobs

    def test_serialize_is_idempotent(self):
        trace = TraceWorkload.from_spec(
            make_preset("poisson", 80, seed=2), baselines=flat_baseline
        )
        text = trace_to_gwf(trace)
        again = trace_to_gwf(parse_gwf(text, name=trace.name))
        assert again == text

    def test_foreign_trace_parses_with_mapping(self):
        text = (
            "# comment line\n"
            "1 1000 3 45 1 -1 -1 1 -1 -1 1 12 3 -1 0 -1 -1 -1 -1 -1 "
            "-1 -1 -1 -1 -1 -1 -1 2 -1\n"
            "2 1010 -1 700 2 -1 -1 -1 3600 -1 1 12 3\n"
            "3 1020 5 90000 4\n"
        )
        trace = parse_gwf(text, name="foreign")
        by_id = {j.job_id: j for j in trace.jobs}
        # Runtime bins: 45s -> kmeans, 700s -> em@350 MB, 90000s -> tail.
        assert by_id["1"].workload == "kmeans"
        assert (by_id["2"].workload, by_id["2"].size) == ("em", "350 MB")
        assert by_id["3"].workload == "vortex"
        # Arrivals shift to the trace origin.
        assert by_id["1"].arrival == 0.0
        assert by_id["3"].arrival == 20.0
        # ReqTime becomes a relative deadline; VOID/GroupID become VO tags.
        assert by_id["2"].deadline == pytest.approx(10.0 + 3600.0)
        assert by_id["1"].vo == "vo2"
        assert by_id["2"].vo == "group3"
        assert by_id["3"].vo is None

    def test_short_row_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_gwf("1 1000 3\n", name="bad")

    def test_duplicate_job_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_gwf("1 1000 3 45\n1 1001 3 45\n", name="dup")

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_gwf("# only comments\n", name="empty")

    def test_mapping_validation(self):
        with pytest.raises(ConfigurationError):
            GwfMapping(bins=(), overflow=("kmeans", None))
        with pytest.raises(ConfigurationError):
            GwfMapping(
                bins=((60.0, "a", None), (60.0, "b", None)),
                overflow=("kmeans", None),
            )

    def test_default_mapping_covers_unknown_runtime(self):
        workload, size = DEFAULT_GWF_MAPPING.classify(None)
        assert workload == "kmeans" and size is None


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------


class TestPresets:
    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            make_preset("nope", 10)

    @pytest.mark.parametrize("name", ["poisson", "gwa-mixed", "heavy-tail"])
    def test_presets_generate_expected_count(self, name):
        spec = make_preset(name, 123, seed=5)
        jobs = generate_trace(spec, baselines=flat_baseline)
        assert len(jobs) == 123
