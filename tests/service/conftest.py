"""Shared fixtures for the prediction-service suite."""

from __future__ import annotations

import pytest

from repro.service import PredictionService, demo_profiles


@pytest.fixture()
def profiles():
    return demo_profiles()


@pytest.fixture()
def service(profiles):
    return PredictionService(profiles)
