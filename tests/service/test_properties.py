"""Hypothesis property suite for the resilience primitives.

Three laws the pipeline's correctness rests on, fuzzed rather than
example-tested:

1. Deadline budgets only ever shrink as they propagate down the stack.
2. A token bucket never admits more than ``burst + rate * elapsed``
   requests over any observation window starting from full.
3. The circuit breaker state machine never records an illegal or lost
   transition, for any seeded interleaving of successes, failures, and
   probe attempts.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.faults.retry import RetryPolicy
from repro.service import (
    AdmissionError,
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineBudget,
    TokenBucket,
)

_LEGAL_EDGES = {
    (BreakerState.CLOSED, BreakerState.OPEN),
    (BreakerState.OPEN, BreakerState.HALF_OPEN),
    (BreakerState.HALF_OPEN, BreakerState.CLOSED),
    (BreakerState.HALF_OPEN, BreakerState.OPEN),
}

times = st.floats(0.0, 1.0e4, allow_nan=False, allow_infinity=False)
budgets = st.floats(1.0e-6, 1.0e3, allow_nan=False, allow_infinity=False)
shares = st.none() | st.floats(
    1.0e-9, 1.0e3, allow_nan=False, allow_infinity=False
)


class TestBudgetsOnlyShrink:
    @given(
        start=times,
        budget_s=budgets,
        steps=st.lists(
            st.tuples(st.floats(0.0, 10.0, allow_nan=False), shares),
            max_size=8,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_child_chain_never_extends_deadline(
        self, start, budget_s, steps
    ):
        budget = DeadlineBudget.begin(start, budget_s)
        now = start
        for advance, share in steps:
            now += advance
            if budget.expired(now):
                break
            child = budget.child(now, max_share_s=share)
            assert child.deadline_s <= budget.deadline_s
            assert child.start_s == now
            # Remaining time is monotone in the derivation too.
            assert child.remaining_s(now) <= budget.remaining_s(now)
            budget = child

    @given(start=times, budget_s=budgets, probe=times)
    @settings(max_examples=200, deadline=None)
    def test_remaining_never_negative_never_above_budget(
        self, start, budget_s, probe
    ):
        budget = DeadlineBudget.begin(start, budget_s)
        remaining = budget.remaining_s(start + probe)
        # (start + budget_s) - start can round a hair above budget_s.
        assert 0.0 <= remaining <= budget_s * (1.0 + 1.0e-12) + 1.0e-9


class TestTokenBucketRateBound:
    @given(
        rate=st.floats(0.5, 1000.0, allow_nan=False),
        burst=st.floats(1.0, 64.0, allow_nan=False),
        seed=st.integers(0, 2**32 - 1),
        attempts=st.integers(1, 300),
    )
    @settings(max_examples=100, deadline=None)
    def test_admissions_never_exceed_burst_plus_rate_times_elapsed(
        self, rate, burst, seed, attempts
    ):
        bucket = TokenBucket(rate=rate, burst=burst)
        rng = random.Random(seed)
        now = 0.0
        admitted = 0
        for _ in range(attempts):
            now += rng.uniform(0.0, 0.01)
            try:
                bucket.admit(now)
                admitted += 1
            except AdmissionError as exc:
                assert exc.retry_after_s > 0.0
            # The law, checked at every step: tokens spent can never
            # outrun the refill plus the initial burst.
            assert admitted <= burst + rate * now + 1.0e-6
        assert bucket.admitted == admitted
        assert bucket.admitted + bucket.shed == attempts


class TestBreakerTransitionsUnderFuzz:
    @given(
        seed=st.integers(0, 2**32 - 1),
        threshold=st.integers(1, 5),
        events=st.integers(1, 400),
    )
    @settings(max_examples=100, deadline=None)
    def test_no_transition_is_lost_or_illegal(self, seed, threshold, events):
        cooldown = RetryPolicy(
            max_attempts=4,
            base_backoff_s=0.1,
            backoff_factor=2.0,
            max_backoff_s=1.0,
        )
        breaker = CircuitBreaker(threshold, cooldown)
        rng = random.Random(seed)
        now = 0.0
        for _ in range(events):
            now += rng.uniform(0.0, 0.3)
            choice = rng.random()
            try:
                breaker.allow(now)
                admitted = True
            except CircuitOpenError:
                admitted = False
            if admitted:
                if choice < 0.5:
                    breaker.record_failure(now)
                else:
                    breaker.record_success(now)

        # Audit the recorded history: it must replay from CLOSED to the
        # live state through legal, time-ordered edges only.
        state = BreakerState.CLOSED
        last_at = float("-inf")
        for transition in breaker.transitions:
            assert transition.source is state, "lost transition"
            assert (transition.source, transition.target) in _LEGAL_EDGES
            assert transition.at_s >= last_at
            state = transition.target
            last_at = transition.at_s
        assert breaker.state is state
        assert breaker.opens == sum(
            1
            for t in breaker.transitions
            if t.target is BreakerState.OPEN
        )
