"""End-to-end pipeline tests for :class:`PredictionService`."""

from __future__ import annotations

import pytest

from repro.errors import InternalError
from repro.service import (
    BackendFaultSpec,
    PredictionService,
    RequestRecord,
    ResilienceConfig,
    ServiceBackend,
    ServiceFaultInjector,
    ServiceRequest,
    serve_sequence,
)
from repro.service.resilience import BreakerState
from repro.simgrid.errors import ConfigurationError


def predict_request(request_id, arrival_s, profile="kmeans", **extra):
    params = {"profile": profile, "data_nodes": 2, "compute_nodes": 4}
    params.update(extra.pop("params", {}))
    return ServiceRequest(
        request_id=request_id,
        endpoint="predict",
        params=params,
        arrival_s=arrival_s,
        **extra,
    )


def always_crash_backend():
    return ServiceBackend(
        injector=ServiceFaultInjector(
            0, BackendFaultSpec(crash_probability=1.0)
        )
    )


class TestHappyPath:
    def test_predict_returns_breakdown(self, service):
        response = service.handle(predict_request("r1", 0.0))
        assert response.status == 200
        assert response.outcome == "ok"
        assert not response.stale
        assert response.body["total"] > 0.0
        assert response.body["fingerprint"]
        assert response.latency_s == pytest.approx(
            service.backend.cost_model.predict_s
        )

    def test_whatif_recommends_a_configuration(self, service):
        response = service.handle(
            ServiceRequest(
                "r1",
                "what-if",
                {"profile": "kmeans", "pairs": [[1, 2], [4, 8]]},
                arrival_s=0.0,
            )
        )
        assert response.status == 200
        assert len(response.body["forecasts"]) == 2
        assert response.body["recommended"] in {"1-2", "4-8"}

    def test_campaign_status_without_journal(self, profiles, tmp_path):
        service = PredictionService(
            profiles,
            campaign_journals={"demo": str(tmp_path / "missing.journal")},
        )
        response = service.handle(
            ServiceRequest(
                "r1", "campaign-status", {"campaign": "demo"}, arrival_s=0.0
            )
        )
        assert response.status == 200
        assert response.body["exists"] is False

    def test_unknown_endpoint_and_profile_reject(self, service):
        nope = service.handle(
            ServiceRequest("r1", "nope", {}, arrival_s=0.0)
        )
        assert nope.status == 404
        missing = service.handle(predict_request("r2", 0.0, profile="ghost"))
        assert missing.status == 400
        assert missing.outcome == "rejected"

    def test_broker_submit_without_broker_is_501(self, service):
        response = service.handle(
            ServiceRequest(
                "r1",
                "broker-submit",
                {"jobs": [{"job_id": "j1", "workload": "kmeans"}]},
                arrival_s=0.0,
            )
        )
        assert response.status == 501
        assert response.outcome == "unconfigured"


class TestResiliencePaths:
    def test_overload_sheds_with_retry_after(self, profiles):
        config = ResilienceConfig(admission_rate=10.0, admission_burst=2.0)
        service = PredictionService(profiles, config=config)
        responses = [
            service.handle(predict_request(f"r{i}", 0.0)) for i in range(4)
        ]
        shed = [r for r in responses if r.outcome == "shed"]
        assert len(shed) == 2
        assert all(r.status == 429 for r in shed)
        assert all(r.retry_after_s > 0.0 for r in shed)
        assert all(r.body["retry_after_s"] > 0.0 for r in shed)

    def test_unmeetable_deadline_is_504_when_cache_cold(self, service):
        response = service.handle(
            predict_request("r1", 0.0, deadline_s=1.0e-6)
        )
        assert response.status == 504
        assert response.outcome == "deadline"

    def test_unmeetable_deadline_serves_stale_after_warmup(self, service):
        warm = service.handle(predict_request("r1", 0.0))
        assert warm.outcome == "ok"
        response = service.handle(
            predict_request("r2", 1.0, deadline_s=1.0e-6)
        )
        assert response.status == 200
        assert response.outcome == "stale"
        assert response.body["stale"] is True
        assert response.body["stale_age_s"] > 0.0
        assert response.body["degraded_reason"] == "deadline"
        assert response.body["total"] == pytest.approx(warm.body["total"])

    def test_latency_never_exceeds_deadline_plus_epsilon(self, service):
        requests = [
            predict_request(f"r{i}", i * 0.001, deadline_s=0.002)
            for i in range(50)
        ]
        responses = serve_sequence(service, requests)
        bound = 0.002 + service.config.deadline_epsilon_s
        assert all(r.latency_s <= bound for r in responses)

    def test_crashing_backend_opens_breaker_then_serves_stale(
        self, profiles
    ):
        service = PredictionService(profiles)
        warm = service.handle(predict_request("warm", 0.0))
        assert warm.outcome == "ok"
        service.backend = always_crash_backend()
        threshold = service.config.breaker_failure_threshold
        responses = [
            service.handle(predict_request(f"r{i}", 1.0 + i * 0.1))
            for i in range(threshold + 2)
        ]
        breaker = service.breakers.breaker("kmeans", "pentium-myrinet")
        assert breaker.opens >= 1
        # Once open, requests degrade to the cached prediction.
        tail = responses[-1]
        assert tail.outcome == "stale"
        assert tail.body["degraded_reason"] == "breaker-open"

    def test_breaker_probe_recovers_after_cooldown(self, profiles):
        service = PredictionService(profiles)
        service.handle(predict_request("warm", 0.0))
        service.backend = always_crash_backend()
        t = 1.0
        breaker = service.breakers.breaker("kmeans", "pentium-myrinet")
        i = 0
        while breaker.state is not BreakerState.OPEN:
            service.handle(predict_request(f"fail{i}", t))
            t += 0.01
            i += 1
        service.backend = ServiceBackend()  # backend heals
        probe_at = breaker.open_until_s + 0.001
        probe = service.handle(predict_request("probe", probe_at))
        assert probe.outcome == "ok"
        assert breaker.state is BreakerState.CLOSED

    def test_bulkhead_refusal_isolated_per_endpoint(self, profiles):
        from repro.service.resilience import BulkheadConfig

        config = ResilienceConfig(
            bulkheads=(
                ("predict", BulkheadConfig(workers=1, queue_depth=0)),
            ),
            default_deadline_s=10.0,
        )
        service = PredictionService(profiles, config=config)
        first = service.handle(predict_request("r1", 0.0))
        assert first.outcome == "ok"
        # Arrives while the first is still occupying the only worker.
        second = service.handle(predict_request("r2", 0.001))
        assert second.outcome in {"stale", "bulkhead-full"}
        # Other endpoint classes keep their own pools.
        status = service.handle(
            ServiceRequest(
                "r3", "campaign-status", {"campaign": "x"}, arrival_s=0.001
            )
        )
        assert status.status == 400  # rejected (unknown), not bulkhead-full

    def test_corrupt_response_never_served_or_cached(self, profiles):
        service = PredictionService(
            profiles,
            backend=ServiceBackend(
                injector=ServiceFaultInjector(
                    0, BackendFaultSpec(corrupt_probability=1.0)
                )
            ),
        )
        response = service.handle(predict_request("r1", 0.0))
        assert response.status == 500
        assert response.outcome == "backend-error"
        assert len(service.cache) == 0

    def test_transient_crash_retried_within_budget(self, profiles):
        # Crash on the first draw only: seed 0's first uniform is below
        # 0.5 for crash, later draws recover.
        injector = ServiceFaultInjector(
            3, BackendFaultSpec(crash_probability=0.5)
        )
        service = PredictionService(
            profiles,
            backend=ServiceBackend(injector=injector),
            config=ResilienceConfig(default_deadline_s=5.0),
        )
        responses = [
            service.handle(predict_request(f"r{i}", i * 1.0))
            for i in range(6)
        ]
        retried_ok = [
            r for r in responses if r.outcome == "ok" and r.retries > 0
        ]
        assert retried_ok, "expected at least one retried success"
        for response in retried_ok:
            assert response.latency_s > service.backend.cost_model.predict_s


class TestExactlyOnce:
    def test_every_request_settles_exactly_once(self, service):
        requests = [predict_request(f"r{i}", i * 0.01) for i in range(20)]
        serve_sequence(service, requests)
        assert len(service.log) == 20
        assert sorted(r.request_id for r in service.log.records) == sorted(
            r.request_id for r in requests
        )

    def test_duplicate_id_answered_without_resettling(self, service):
        service.handle(predict_request("r1", 0.0))
        duplicate = service.handle(predict_request("r1", 1.0))
        assert duplicate.status == 409
        assert duplicate.outcome == "duplicate"
        assert len(service.log) == 1

    def test_log_refuses_double_settlement(self):
        from repro.service import RequestLog

        log = RequestLog()
        record = RequestRecord(
            request_id="r1",
            endpoint="predict",
            arrival_s=0.0,
            settled_s=0.1,
            status=200,
            outcome="ok",
            stale=False,
            retries=0,
        )
        log.settle(record)
        with pytest.raises(InternalError):
            log.settle(record)


class TestServeSequence:
    def test_requires_virtual_clock(self, profiles):
        from repro.service import MonotonicClock

        service = PredictionService(profiles, clock=MonotonicClock())
        with pytest.raises(ConfigurationError):
            serve_sequence(service, [predict_request("r1", 0.0)])

    def test_requires_arrival_times(self, service):
        request = ServiceRequest("r1", "predict", {})
        with pytest.raises(ConfigurationError):
            serve_sequence(service, [request])

    def test_metrics_rollup_is_consistent(self, service):
        requests = [predict_request(f"r{i}", i * 0.01) for i in range(10)]
        serve_sequence(service, requests)
        metrics = service.metrics()
        assert metrics["requests"] == 10
        assert metrics["admission"]["admitted"] == 10
        assert metrics["served"] == metrics["by_outcome"].get("ok", 0)
        assert metrics["p99_latency_s"] >= metrics["p50_latency_s"] > 0.0


class TestCalibrationIntegration:
    def test_calibrated_predictions_round_trip_service_restart(
        self, profiles, tmp_path
    ):
        from repro.broker.calibration import OnlineCalibrator
        from repro.core.models import PredictedBreakdown

        calibrator = OnlineCalibrator(alpha=1.0)
        raw = PredictedBreakdown(
            t_disk=10.0, t_network=10.0, t_compute=10.0, t_ro=1.0, t_g=1.0
        )
        service = PredictionService(profiles, calibrator=calibrator)
        service.observe_actual(
            "kmeans", "pentium-myrinet", raw, (5.0, 10.0, 10.0)
        )
        before = service.handle(predict_request("r1", 0.0))
        assert before.body["calibrated"] is True

        path = tmp_path / "calibration.json"
        service.save_calibration(str(path))
        restarted = PredictionService(
            profiles, calibrator=OnlineCalibrator.load(str(path))
        )
        after = restarted.handle(predict_request("r1", 0.0))
        assert after.body["t_disk"] == pytest.approx(before.body["t_disk"])
        assert after.body["t_disk"] < after.body["t_network"]

    def test_uncalibrated_service_reports_it(self, service):
        response = service.handle(predict_request("r1", 0.0))
        assert response.body["calibrated"] is False
