"""Unit tests for the resilience primitives (deterministic paths)."""

from __future__ import annotations

import pytest

from repro.faults.retry import RetryPolicy
from repro.service import (
    AdmissionError,
    Bulkhead,
    BulkheadConfig,
    BulkheadFullError,
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineBudget,
    DeadlineExceededError,
    MonotonicClock,
    ResilienceConfig,
    TokenBucket,
    VirtualClock,
)
from repro.simgrid.errors import ConfigurationError


class TestDeadlineBudget:
    def test_begin_and_remaining(self):
        budget = DeadlineBudget.begin(10.0, 0.5)
        assert budget.deadline_s == pytest.approx(10.5)
        assert budget.remaining_s(10.2) == pytest.approx(0.3)
        assert budget.remaining_s(11.0) == 0.0
        assert not budget.expired(10.4)
        assert budget.expired(10.5)

    def test_allows_exact_fit(self):
        budget = DeadlineBudget.begin(0.0, 1.0)
        assert budget.allows(0.0, 1.0)
        assert not budget.allows(0.0, 1.0001)

    def test_child_only_shrinks(self):
        parent = DeadlineBudget.begin(0.0, 1.0)
        child = parent.child(0.4)
        assert child.deadline_s == parent.deadline_s
        capped = parent.child(0.4, max_share_s=0.1)
        assert capped.deadline_s == pytest.approx(0.5)
        generous = parent.child(0.4, max_share_s=10.0)
        assert generous.deadline_s == parent.deadline_s

    def test_child_after_expiry_raises(self):
        parent = DeadlineBudget.begin(0.0, 1.0)
        with pytest.raises(DeadlineExceededError):
            parent.child(1.0)

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            DeadlineBudget.begin(0.0, 0.0)


class TestTokenBucket:
    def test_burst_then_shed(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        bucket.admit(0.0)
        bucket.admit(0.0)
        with pytest.raises(AdmissionError) as excinfo:
            bucket.admit(0.0)
        assert excinfo.value.retry_after_s == pytest.approx(0.1)
        assert bucket.admitted == 2
        assert bucket.shed == 1

    def test_refill_is_lazy_and_capped(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        bucket.admit(0.0)
        bucket.admit(0.0)
        # After a long idle stretch, refill caps at burst.
        bucket.admit(100.0)
        bucket.admit(100.0)
        with pytest.raises(AdmissionError):
            bucket.admit(100.0)

    def test_retry_after_is_honest(self):
        bucket = TokenBucket(rate=4.0, burst=1.0)
        bucket.admit(0.0)
        with pytest.raises(AdmissionError) as excinfo:
            bucket.admit(0.0)
        # Waiting exactly the advertised hint earns admission.
        bucket.admit(0.0 + excinfo.value.retry_after_s)


class TestBulkhead:
    def test_free_worker_starts_now(self):
        bulkhead = Bulkhead(BulkheadConfig(workers=2, queue_depth=2))
        assert bulkhead.reserve(1.0) == 1.0
        bulkhead.commit(2.0)
        assert bulkhead.reserve(1.0) == 1.0

    def test_fifo_queueing_behind_busy_workers(self):
        bulkhead = Bulkhead(BulkheadConfig(workers=1, queue_depth=2))
        bulkhead.commit(5.0)  # worker busy until t=5
        start = bulkhead.reserve(1.0)
        assert start == 5.0
        bulkhead.commit(7.0)
        assert bulkhead.reserve(1.0) == 7.0

    def test_full_pool_refuses(self):
        bulkhead = Bulkhead(BulkheadConfig(workers=1, queue_depth=1))
        bulkhead.commit(5.0)
        bulkhead.commit(6.0)  # one queued
        with pytest.raises(BulkheadFullError):
            bulkhead.reserve(0.0)
        assert bulkhead.refused == 1

    def test_finished_work_frees_slots(self):
        bulkhead = Bulkhead(BulkheadConfig(workers=1, queue_depth=0))
        bulkhead.commit(5.0)
        with pytest.raises(BulkheadFullError):
            bulkhead.reserve(4.9)
        assert bulkhead.reserve(5.1) == 5.1


class TestCircuitBreaker:
    def policy(self):
        return RetryPolicy(
            max_attempts=4, base_backoff_s=1.0, backoff_factor=2.0,
            max_backoff_s=8.0,
        )

    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(2, self.policy())
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(0.1)
        assert breaker.state is BreakerState.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.allow(0.5)

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(2, self.policy())
        breaker.record_failure(0.0)
        breaker.record_success(0.1)
        breaker.record_failure(0.2)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_closes_on_success(self):
        breaker = CircuitBreaker(1, self.policy())
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.OPEN
        breaker.allow(breaker.open_until_s)
        assert breaker.state is BreakerState.HALF_OPEN
        # Only one probe while the outcome is pending.
        with pytest.raises(CircuitOpenError):
            breaker.allow(breaker.open_until_s)
        breaker.record_success(breaker.open_until_s + 0.01)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.consecutive_opens == 0

    def test_failed_probe_reopens_with_longer_cooldown(self):
        breaker = CircuitBreaker(1, self.policy())
        breaker.record_failure(0.0)
        first_cooldown = breaker.open_until_s - 0.0
        probe_at = breaker.open_until_s
        breaker.allow(probe_at)
        breaker.record_failure(probe_at)
        assert breaker.state is BreakerState.OPEN
        assert breaker.open_until_s - probe_at > first_cooldown
        assert breaker.opens == 2

    def test_transitions_are_recorded_in_order(self):
        breaker = CircuitBreaker(1, self.policy())
        breaker.record_failure(0.0)
        breaker.allow(breaker.open_until_s)
        breaker.record_success(breaker.open_until_s)
        edges = [(t.source, t.target) for t in breaker.transitions]
        assert edges == [
            (BreakerState.CLOSED, BreakerState.OPEN),
            (BreakerState.OPEN, BreakerState.HALF_OPEN),
            (BreakerState.HALF_OPEN, BreakerState.CLOSED),
        ]


class TestClocks:
    def test_virtual_clock_rejects_rewind(self):
        clock = VirtualClock()
        clock.advance(1.0)
        with pytest.raises(ConfigurationError):
            clock.advance(-0.5)
        with pytest.raises(ConfigurationError):
            clock.advance_to(0.5)

    def test_monotonic_clock_is_rebased_and_monotone(self):
        clock = MonotonicClock()
        first = clock.now()
        assert first >= 0.0
        assert clock.now() >= first


class TestResilienceConfig:
    def test_bulkhead_lookup_falls_back_to_default(self):
        config = ResilienceConfig()
        assert config.bulkhead_config("predict").workers == 4
        assert config.bulkhead_config("unknown") == BulkheadConfig()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(admission_rate=0.0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(default_deadline_s=-1.0)
