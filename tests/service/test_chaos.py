"""Service chaos campaigns: invariants + byte-identical replay."""

from __future__ import annotations

import pytest

from repro.core.durable import canonical_json
from repro.faults.chaos import (
    ServiceChaosSpec,
    run_service_campaign,
    verify_service_log,
)
from repro.service import (
    PredictionService,
    ServiceRequest,
    demo_profiles,
    generate_requests,
    serve_sequence,
)
from repro.simgrid.errors import ConfigurationError


class TestWorkloadGeneration:
    def test_same_seed_same_requests(self):
        a = generate_requests(5, 50, 100.0, ["kmeans", "apriori"])
        b = generate_requests(5, 50, 100.0, ["kmeans", "apriori"])
        assert a == b

    def test_different_seed_differs(self):
        a = generate_requests(5, 50, 100.0, ["kmeans"])
        b = generate_requests(6, 50, 100.0, ["kmeans"])
        assert a != b

    def test_arrivals_are_sorted_and_ids_unique(self):
        requests = generate_requests(1, 200, 500.0, ["kmeans"])
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)
        assert len({r.request_id for r in requests}) == len(requests)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_requests(1, -1, 100.0, ["kmeans"])
        with pytest.raises(ConfigurationError):
            generate_requests(1, 10, 0.0, ["kmeans"])
        with pytest.raises(ConfigurationError):
            generate_requests(1, 10, 100.0, [])


class TestCampaign:
    def test_default_campaign_passes_all_invariants(self):
        spec = ServiceChaosSpec(requests=150, rate_hz=500.0)
        report = run_service_campaign([11, 12], spec)
        assert report.ok, report.violations
        for case in report.cases:
            assert case.replay_identical
            assert case.requests == 150
            # Chaos actually happened: faults were injected and some
            # requests were served from the stale cache.
            assert sum(count for _, count in case.injected) > 0

    def test_overload_campaign_sheds_but_never_drops(self):
        spec = ServiceChaosSpec(
            requests=200,
            rate_hz=5000.0,  # 10x the admission rate
            slow_probability=0.0,
            crash_probability=0.0,
            corrupt_probability=0.0,
        )
        report = run_service_campaign([21], spec)
        assert report.ok, report.violations
        case = report.cases[0]
        assert case.shed > 0
        # Shed + served + everything else still equals the workload.
        assert case.requests == 200

    def test_report_serializes_canonically(self):
        report = run_service_campaign(
            [31], ServiceChaosSpec(requests=40, rate_hz=200.0)
        )
        data = report.to_dict()
        assert data["kind"] == "service-chaos-report"
        assert canonical_json(data) == canonical_json(report.to_dict())

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ConfigurationError):
            run_service_campaign([])


class TestVerifier:
    def test_flags_missing_settlement(self):
        profiles = demo_profiles()
        service = PredictionService(profiles)
        requests = generate_requests(1, 10, 100.0, sorted(profiles))
        serve_sequence(service, requests)
        ghost = ServiceRequest("ghost", "predict", {}, arrival_s=99.0)
        violations = verify_service_log(service, list(requests) + [ghost])
        assert any("ghost" in v for v in violations)

    def test_clean_run_has_no_violations(self):
        profiles = demo_profiles()
        service = PredictionService(profiles)
        requests = generate_requests(2, 30, 100.0, sorted(profiles))
        serve_sequence(service, requests)
        assert verify_service_log(service, requests) == []
