"""HTTP-layer tests: ASGI protocol in-process, threaded server on loopback."""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.request

import pytest

from repro.service import MonotonicClock, PredictionService, demo_profiles
from repro.service.http import asgi_app, make_server


def run_asgi(app, method, path, body=b""):
    """Drive one request through the ASGI protocol without a server."""
    sent = []
    received = [
        {"type": "http.request", "body": body, "more_body": False}
    ]

    async def receive():
        return received.pop(0)

    async def send(message):
        sent.append(message)

    scope = {"type": "http", "method": method, "path": path}
    asyncio.run(app(scope, receive, send))
    start = next(m for m in sent if m["type"] == "http.response.start")
    payload = b"".join(
        m.get("body", b"") for m in sent if m["type"] == "http.response.body"
    )
    headers = {
        name.decode(): value.decode() for name, value in start["headers"]
    }
    return start["status"], headers, json.loads(payload)


@pytest.fixture()
def app():
    return asgi_app(PredictionService(demo_profiles()))


class TestAsgi:
    def test_healthz(self, app):
        status, _, body = run_asgi(app, "GET", "/v1/healthz")
        assert status == 200
        assert body == {"status": "ok"}

    def test_predict_round_trip(self, app):
        payload = json.dumps(
            {
                "params": {
                    "profile": "kmeans",
                    "data_nodes": 2,
                    "compute_nodes": 4,
                }
            }
        ).encode()
        status, headers, body = run_asgi(
            app, "POST", "/v1/predict", payload
        )
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert body["outcome"] == "ok"
        assert body["total"] > 0.0
        assert body["request_id"] == "http-1"

    def test_request_ids_are_counter_based(self, app):
        payload = json.dumps(
            {"params": {"profile": "kmeans", "data_nodes": 1,
                        "compute_nodes": 1}}
        ).encode()
        ids = [
            run_asgi(app, "POST", "/v1/predict", payload)[2]["request_id"]
            for _ in range(3)
        ]
        assert ids == ["http-1", "http-2", "http-3"]

    def test_shed_request_carries_retry_after_header(self):
        from repro.service import ResilienceConfig

        service = PredictionService(
            demo_profiles(),
            config=ResilienceConfig(admission_rate=1.0, admission_burst=1.0),
        )
        app = asgi_app(service)
        payload = json.dumps(
            {"params": {"profile": "kmeans", "data_nodes": 1,
                        "compute_nodes": 1}}
        ).encode()
        run_asgi(app, "POST", "/v1/predict", payload)
        status, headers, body = run_asgi(
            app, "POST", "/v1/predict", payload
        )
        assert status == 429
        assert float(headers["retry-after"]) > 0.0
        assert body["outcome"] == "shed"

    def test_bad_json_is_400(self, app):
        status, _, body = run_asgi(app, "POST", "/v1/predict", b"{ torn")
        assert status == 400
        assert "not JSON" in body["error"]

    def test_unknown_route_is_404(self, app):
        status, _, _ = run_asgi(app, "POST", "/v1/forecast", b"{}")
        assert status == 404
        status, _, _ = run_asgi(app, "GET", "/nope")
        assert status == 404

    def test_metrics_route(self, app):
        status, _, body = run_asgi(app, "GET", "/v1/metrics")
        assert status == 200
        assert "admission" in body

    def test_lifespan_protocol(self, app):
        sent = []
        received = [
            {"type": "lifespan.startup"},
            {"type": "lifespan.shutdown"},
        ]

        async def receive():
            return received.pop(0)

        async def send(message):
            sent.append(message)

        asyncio.run(app({"type": "lifespan"}, receive, send))
        assert [m["type"] for m in sent] == [
            "lifespan.startup.complete",
            "lifespan.shutdown.complete",
        ]


class TestThreadedServer:
    @pytest.fixture()
    def server_url(self):
        service = PredictionService(
            demo_profiles(), clock=MonotonicClock()
        )
        server = make_server(service, "127.0.0.1", 0)
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)

    def test_live_predict_over_loopback(self, server_url):
        request = urllib.request.Request(
            f"{server_url}/v1/predict",
            data=json.dumps(
                {
                    "params": {
                        "profile": "apriori",
                        "data_nodes": 2,
                        "compute_nodes": 4,
                    }
                }
            ).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10.0) as response:
            assert response.status == 200
            body = json.loads(response.read())
        assert body["outcome"] == "ok"
        assert body["total"] > 0.0

    def test_live_metrics_and_health(self, server_url):
        with urllib.request.urlopen(
            f"{server_url}/v1/healthz", timeout=10.0
        ) as response:
            assert json.loads(response.read()) == {"status": "ok"}
        with urllib.request.urlopen(
            f"{server_url}/v1/metrics", timeout=10.0
        ) as response:
            assert response.status == 200
