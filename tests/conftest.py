"""Shared fixtures: small clusters, datasets and configurations.

Everything here is deliberately tiny so the unit suite stays fast; the
paper-scale datasets are only touched by the integration tests and the
benchmark harness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.middleware.dataset import ArrayDataset
from repro.middleware.scheduler import RunConfig
from repro.simgrid.hardware import (
    ClusterSpec,
    CPUSpec,
    DiskSpec,
    NICSpec,
    NodeSpec,
    OpCategory,
)


def small_cluster_spec(name: str = "test-cluster", num_nodes: int = 16) -> ClusterSpec:
    """A small, fully featured cluster used across the unit tests."""
    cpu = CPUSpec(
        name=f"{name}-cpu",
        rates={
            OpCategory.FLOP: 1.0e8,
            OpCategory.MEM: 2.0e8,
            OpCategory.BRANCH: 5.0e7,
        },
    )
    node = NodeSpec(
        cpu=cpu,
        disk=DiskSpec(seek_s=1.0e-4, stream_bw=1.0e6),
        nic=NICSpec(latency_s=5.0e-5, bw=1.0e7),
    )
    return ClusterSpec(
        name=name,
        node=node,
        num_nodes=num_nodes,
        repository_backplane_bw=6.0e6,
        node_startup_s=1.0e-4,
        compute_pass_startup_s=5.0e-5,
        chunk_dispatch_overhead_s=1.0e-5,
        chunk_receive_overhead_s=2.0e-5,
        intra_latency_s=1.0e-5,
        intra_bw=2.0e7,
        gather_deserialize_s=1.0e-5,
        cache_disk=DiskSpec(seek_s=2.0e-5, stream_bw=2.0e7),
        smp_width=4,
        smp_memory_contention=0.1,
    )


@pytest.fixture
def cluster() -> ClusterSpec:
    return small_cluster_spec()


@pytest.fixture
def run_config(cluster: ClusterSpec) -> RunConfig:
    return RunConfig(
        storage_cluster=cluster,
        compute_cluster=cluster,
        data_nodes=2,
        compute_nodes=4,
        bandwidth=5.0e5,
    )


def make_tiny_points(
    num_points: int = 640, num_dims: int = 3, num_chunks: int = 16, seed: int = 7
) -> ArrayDataset:
    """A tiny deterministic point dataset for middleware tests."""
    rng = np.random.default_rng(seed)
    records = rng.normal(size=(num_points, num_dims)).astype(np.float32)
    return ArrayDataset(
        name="tiny-points",
        records=records,
        num_chunks=num_chunks,
        meta={"kind": "points", "num_dims": num_dims},
    )


@pytest.fixture
def tiny_points() -> ArrayDataset:
    return make_tiny_points()


from repro.middleware.api import GeneralizedReduction


class SumApp(GeneralizedReduction):
    """Minimal test application: sums record coordinates over N passes.

    Charges one flop per element so compute time is deterministic and
    proportional to data volume.  Used by middleware and core tests.
    """

    name = "sum-app"
    broadcasts_result = False
    multi_pass_hint = False

    def __init__(self, passes: int = 1, broadcasts: bool = False, cache: bool = False):
        self.passes = passes
        self.broadcasts_result = broadcasts
        self.multi_pass_hint = cache
        self._done = 0
        self.total = None

    def begin(self, meta):
        self._done = 0
        self.total = None

    def make_local_object(self):
        return [0.0]

    def process_chunk(self, obj, payload, ops):
        obj[0] += float(np.sum(payload))
        ops.charge(flop=float(np.size(payload)))

    def object_nbytes(self, obj):
        return 64.0

    def combine(self, objs, ops):
        ops.charge(flop=float(len(objs)))
        return [sum(o[0] for o in objs)]

    def merge_local(self, objs, ops):
        ops.charge(flop=float(len(objs)))
        return [sum(o[0] for o in objs)]

    def broadcast_nbytes(self, combined):
        return 64.0

    def update(self, combined, ops):
        self.total = combined[0]
        self._done += 1
        ops.charge(flop=1.0)
        return self._done < self.passes

    def result(self):
        return self.total
