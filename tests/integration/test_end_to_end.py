"""End-to-end integration tests: middleware + applications + prediction.

These use the paper's real workloads (at their smaller dataset sizes where
available) and assert the reproduction's headline properties:

- the global-reduction model predicts unseen configurations to within a
  few percent from a single 1-1 profile;
- the class auto-detector recovers each application's natural classes from
  profile runs alone;
- resource selection ranks (replica, configuration) pairs consistently
  with actual execution times.
"""

import pytest

from repro.core import (
    GlobalReductionModel,
    ModelClasses,
    PredictionTarget,
    Profile,
    classify_global_reduction,
    classify_object_size,
    relative_error,
)
from repro.core.selection import ResourceSelector
from repro.middleware import FreerideGRuntime, ReplicaCatalog
from repro.middleware.scheduler import RunConfig
from repro.simgrid.topology import GridTopology, SiteKind
from repro.workloads.clusters import pentium_myrinet_cluster
from repro.workloads.configs import make_run_config
from repro.workloads.registry import WORKLOADS

SMALL_SIZE = {
    "kmeans": "350 MB",
    "em": "350 MB",
    "knn": "350 MB",
    "vortex": "710 MB",
    "defect": "130 MB",
    "apriori": "250 MB",
    "neuralnet": "250 MB",
}

ALL_WORKLOADS = sorted(WORKLOADS)


def run(name, n, c, size=None, bandwidth=2.0e6):
    spec = WORKLOADS[name]
    dataset = spec.make_dataset(size or SMALL_SIZE[name])
    config = make_run_config(n, c, bandwidth=bandwidth)
    result = FreerideGRuntime(config).execute(spec.make_app(), dataset)
    return config, dataset, result


@pytest.mark.slow
class TestProfileBasedPrediction:
    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_one_profile_predicts_other_configs(self, name):
        spec = WORKLOADS[name]
        config, dataset, profile_run = run(name, 1, 1)
        profile = Profile.from_run(config, profile_run.breakdown)
        model = GlobalReductionModel(
            ModelClasses.parse(
                spec.natural_object_class, spec.natural_global_class
            )
        )
        for n, c in [(1, 8), (2, 4), (4, 8)]:
            target_config, _, actual = run(name, n, c)
            target = PredictionTarget(
                config=target_config, dataset_bytes=dataset.nbytes
            )
            predicted = model.predict(profile, target)
            error = relative_error(actual.breakdown.total, predicted.total)
            assert error < 0.06, (
                f"{name} {n}-{c}: actual={actual.breakdown.total:.4f} "
                f"predicted={predicted.total:.4f} error={error:.2%}"
            )


@pytest.mark.slow
class TestClassAutoDetection:
    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_detected_classes_match_registry(self, name):
        spec = WORKLOADS[name]
        sizes = sorted(spec.dataset_sizes_gb, key=spec.dataset_sizes_gb.get)
        small, larger = sizes[0], sizes[1]
        profiles = []
        for n, c, size in [(1, 1, small), (1, 4, small), (1, 1, larger)]:
            config, _, result = run(name, n, c, size=size)
            profiles.append(Profile.from_run(config, result.breakdown))

        assert (
            classify_object_size(profiles).value == spec.natural_object_class
        )
        assert (
            classify_global_reduction(profiles).value
            == spec.natural_global_class
        )


@pytest.mark.slow
class TestResourceSelection:
    def test_selection_agrees_with_actual_execution(self):
        """The selector's predicted best candidate should actually be
        (near-)fastest when every candidate is executed for real."""
        name = "kmeans"
        spec = WORKLOADS[name]
        dataset = spec.make_dataset(SMALL_SIZE[name])

        cluster = pentium_myrinet_cluster()
        topo = GridTopology()
        topo.add_site("repo-near", SiteKind.REPOSITORY, cluster)
        topo.add_site("repo-far", SiteKind.REPOSITORY, cluster)
        topo.add_site("hpc", SiteKind.COMPUTE, cluster)
        topo.connect("repo-near", "hpc", bw=2.0e6)
        topo.connect("repo-far", "hpc", bw=2.0e5)
        catalog = ReplicaCatalog(topo)
        catalog.add(dataset.name, "repo-near")
        catalog.add(dataset.name, "repo-far")

        profile_config = make_run_config(1, 1)
        profile_run = FreerideGRuntime(profile_config).execute(
            spec.make_app(), dataset
        )
        profile = Profile.from_run(profile_config, profile_run.breakdown)
        model = GlobalReductionModel(
            ModelClasses.parse(
                spec.natural_object_class, spec.natural_global_class
            )
        )
        allocations = [(1, 1), (2, 4), (4, 8)]
        outcome = ResourceSelector(topo, catalog, model, allocations).select(
            dataset.name, dataset.nbytes, profile
        )

        # Execute every candidate for real and compare rankings.
        actual = {}
        for cand in outcome:
            config = RunConfig(
                storage_cluster=cluster,
                compute_cluster=cluster,
                data_nodes=cand.data_nodes,
                compute_nodes=cand.compute_nodes,
                bandwidth=cand.bandwidth,
            )
            result = FreerideGRuntime(config).execute(spec.make_app(), dataset)
            actual[cand.label] = result.breakdown.total

        best_actual = min(actual.values())
        assert actual[outcome.best.label] <= best_actual * 1.02
        # The fat-link replica must win.
        assert outcome.best.replica_site == "repo-near"
