"""Integration: resource selection across heterogeneous compute sites.

Combines Section 3.4 (cross-cluster scaling factors) with the resource
selector: candidates on the profile's own cluster are predicted directly,
candidates on the Opteron cluster through a
:class:`~repro.core.heterogeneous.CrossClusterPredictor` — dispatched per
site, exactly how a deployed FREERIDE-G resource-selection service would
be wired.
"""

import pytest

from repro.core import (
    CrossClusterPredictor,
    GlobalReductionModel,
    ModelClasses,
    Profile,
    measure_scaling_factors,
)
from repro.core.selection import ResourceSelector
from repro.middleware import FreerideGRuntime, ReplicaCatalog
from repro.middleware.scheduler import RunConfig
from repro.simgrid.topology import GridTopology, SiteKind
from repro.workloads.clusters import (
    opteron_infiniband_cluster,
    pentium_myrinet_cluster,
)
from repro.workloads.configs import make_run_config
from repro.workloads.registry import WORKLOADS


@pytest.mark.slow
class TestCrossClusterSelection:
    def test_selector_routes_models_per_site_and_ranks_correctly(self):
        pentium = pentium_myrinet_cluster()
        opteron = opteron_infiniband_cluster()

        topo = GridTopology()
        topo.add_site("repo", SiteKind.REPOSITORY, pentium)
        topo.add_site("hpc-pentium", SiteKind.COMPUTE, pentium)
        topo.add_site("hpc-opteron", SiteKind.COMPUTE, opteron)
        topo.connect("repo", "hpc-pentium", bw=2.0e6)
        topo.connect("repo", "hpc-opteron", bw=2.0e6)

        spec = WORKLOADS["em"]
        dataset = spec.make_dataset("350 MB")
        catalog = ReplicaCatalog(topo)
        catalog.add(dataset.name, "repo")

        # Profile EM on the Pentium cluster only.
        profile_config = make_run_config(1, 1, storage_cluster=pentium)
        profile_run = FreerideGRuntime(profile_config).execute(
            spec.make_app(), dataset
        )
        profile = Profile.from_run(profile_config, profile_run.breakdown)
        classes = ModelClasses.parse(
            spec.natural_object_class, spec.natural_global_class
        )
        base_model = GlobalReductionModel(classes)

        # Scaling factors from the representative applications.
        pairs = []
        for rep_name in ("kmeans", "knn", "vortex"):
            rep = WORKLOADS[rep_name]
            rep_dataset = rep.make_dataset()
            config_a = make_run_config(2, 4, storage_cluster=pentium)
            run_a = FreerideGRuntime(config_a).execute(
                rep.make_app(), rep_dataset
            )
            config_b = make_run_config(2, 4, storage_cluster=opteron)
            run_b = FreerideGRuntime(config_b).execute(
                rep.make_app(), rep_dataset
            )
            pairs.append(
                (
                    Profile.from_run(config_a, run_a.breakdown),
                    Profile.from_run(config_b, run_b.breakdown),
                )
            )
        factors = measure_scaling_factors(pairs)
        # The replica stays on the Pentium repository; only the compute
        # side moves to the Opteron cluster, so only s_c applies.
        cross_model = CrossClusterPredictor(
            base_model, factors, apply=("compute",)
        )

        def model_for(site: str):
            return cross_model if site == "hpc-opteron" else base_model

        selector = ResourceSelector(
            topology=topo,
            catalog=catalog,
            model_for_site=model_for,
            allocations=[(1, 2), (2, 4), (4, 8)],
        )
        outcome = selector.select(dataset.name, dataset.nbytes, profile)

        # The Opteron site is strictly faster hardware at equal bandwidth:
        # the best candidate must land there.
        assert outcome.best.compute_site == "hpc-opteron"

        # Every candidate's prediction must be within 12% of an actual
        # simulated execution — including the cross-cluster ones.
        for cand in outcome:
            storage = topo.site(cand.replica_site).cluster
            compute = topo.site(cand.compute_site).cluster
            config = RunConfig(
                storage_cluster=storage,
                compute_cluster=compute,
                data_nodes=cand.data_nodes,
                compute_nodes=cand.compute_nodes,
                bandwidth=cand.bandwidth,
            )
            actual = FreerideGRuntime(config).execute(
                spec.make_app(), dataset
            )
            error = abs(actual.breakdown.total - cand.predicted_total) / (
                actual.breakdown.total
            )
            assert error < 0.12, f"{cand.label}: {error:.2%}"

        # Rankings must agree between prediction and actual execution for
        # the head of the list (the decision that matters).
        actual_best = min(
            outcome,
            key=lambda c: FreerideGRuntime(
                RunConfig(
                    storage_cluster=topo.site(c.replica_site).cluster,
                    compute_cluster=topo.site(c.compute_site).cluster,
                    data_nodes=c.data_nodes,
                    compute_nodes=c.compute_nodes,
                    bandwidth=c.bandwidth,
                )
            )
            .execute(spec.make_app(), dataset)
            .breakdown.total,
        )
        assert actual_best.compute_site == outcome.best.compute_site
        assert actual_best.compute_nodes == outcome.best.compute_nodes
