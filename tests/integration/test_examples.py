"""Smoke tests: every shipped example must run to completion.

Examples are deliverables, not decoration — each one is executed as a
subprocess (fresh interpreter, as a user would run it) and its headline
output is checked.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", ["global reduction", "predictions vs actual"]),
    ("resource_selection.py", ["selected: replica at", "rank"]),
    ("cross_cluster_prediction.py", ["scaling factors", "EM on the Opteron"]),
    ("scientific_mining.py", ["planted vortices", "defect catalog"]),
    ("advanced_middleware.py", ["cluster-of-SMPs", "gather topology"]),
    ("bandwidth_forecasting.py", ["forecast accuracy", "T_network"]),
    ("grid_scheduling.py", ["policy comparison", "predicted best"]),
    ("broker_workload.py", ["broker workload", "calibration win",
                            "deadline-aware"]),
    ("service_requests.py", ["breaker opens", "admission sheds",
                             "verdict: PASS"]),
    ("trace_workload.py", ["fingerprint", "parsed back exactly",
                           "queue pressure"]),
]


def run_example(name: str) -> str:
    path = EXAMPLES_DIR / name
    assert path.exists(), f"missing example {name}"
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{name} failed:\n{proc.stdout}\n{proc.stderr}"
    )
    return proc.stdout


@pytest.mark.slow
@pytest.mark.parametrize("name, needles", CASES, ids=[c[0] for c in CASES])
def test_example_runs(name, needles):
    out = run_example(name)
    for needle in needles:
        assert needle in out, f"{name}: expected '{needle}' in output"


@pytest.mark.slow
def test_reproduce_figure_cli_example():
    path = EXAMPLES_DIR / "reproduce_figure.py"
    proc = subprocess.run(
        [sys.executable, str(path), "fig09", "--fast"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0
    assert "fig09" in proc.stdout
    listing = subprocess.run(
        [sys.executable, str(path), "--list"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert "fig02" in listing.stdout
