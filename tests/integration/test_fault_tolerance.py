"""End-to-end fault tolerance over the paper's five applications.

The acceptance bar for the fault subsystem:

1. with faults injected under a fixed seed, every application completes
   and produces a result **identical** to its fault-free run;
2. the degraded-mode predictor lands within 15% of the faulted run on a
   crash scenario for every application;
3. fault-free executions are byte-for-byte unchanged by the subsystem's
   presence (no schedule installed -> zero overhead).
"""

import pytest

from repro.core import (
    DegradedModePredictor,
    GlobalReductionModel,
    ModelClasses,
    PredictionTarget,
    Profile,
    relative_error,
)
from repro.faults import (
    ChunkReadError,
    ComputeNodeCrash,
    DataNodeCrash,
    FaultInjector,
    FaultSchedule,
    LinkDegradation,
    results_equal,
)
from repro.middleware import FreerideGRuntime
from repro.workloads.configs import make_run_config
from repro.workloads.registry import WORKLOADS

SMALL_SIZE = {
    "kmeans": "350 MB",
    "em": "350 MB",
    "knn": "350 MB",
    "vortex": "710 MB",
    "defect": "130 MB",
}

PAPER_APPS = sorted(SMALL_SIZE)

#: One crash scenario per paper application (the acceptance criterion):
#: a data-node crash at 50% of retrieval and a compute-node crash, plus
#: transient noise so the retry path runs everywhere.
SCENARIO = FaultSchedule([
    DataNodeCrash(0, 1, at_fraction=0.5),
    ComputeNodeCrash(0, 2, at_fraction=0.4),
    ChunkReadError(rate=0.1, pass_index=0),
    LinkDegradation(0, factor=1.5),
])


def execute(name, faults=None):
    spec = WORKLOADS[name]
    dataset = spec.make_dataset(SMALL_SIZE[name])
    config = make_run_config(2, 4)
    run = FreerideGRuntime(config, faults=faults).execute(
        spec.make_app(), dataset
    )
    return config, dataset, run


@pytest.mark.parametrize("name", PAPER_APPS)
class TestRecoveryPreservesResults:
    def test_faulted_run_matches_fault_free_bitwise(self, name):
        _, _, baseline = execute(name)
        _, _, faulted = execute(
            name, faults=FaultInjector(SCENARIO, seed=5)
        )
        assert results_equal(faulted.result, baseline.result)
        assert faulted.breakdown.total > baseline.breakdown.total
        kinds = {e["kind"] for e in faulted.breakdown.fault_events}
        assert "data-node-failover" in kinds
        assert "compute-node-recovery" in kinds
        assert faulted.breakdown.t_ckpt > 0.0

    def test_empty_schedule_is_byte_for_byte_fault_free(self, name):
        _, _, baseline = execute(name)
        _, _, armed = execute(
            name, faults=FaultInjector(FaultSchedule())
        )
        assert armed.breakdown.to_dict() == baseline.breakdown.to_dict()
        assert results_equal(armed.result, baseline.result)


@pytest.mark.parametrize("name", PAPER_APPS)
class TestDegradedModePrediction:
    def predictor_for(self, name):
        spec = WORKLOADS[name]
        return DegradedModePredictor(
            GlobalReductionModel(
                ModelClasses.parse(
                    spec.natural_object_class, spec.natural_global_class
                )
            )
        )

    def test_crash_scenarios_predicted_within_15_percent(self, name):
        config, dataset, baseline = execute(name)
        profile = Profile.from_run(config, baseline.breakdown)
        target = PredictionTarget(config=config, dataset_bytes=dataset.nbytes)
        predictor = self.predictor_for(name)

        for schedule in (
            FaultSchedule([DataNodeCrash(0, 1, at_fraction=0.5)]),
            FaultSchedule([ComputeNodeCrash(0, 2, at_fraction=0.4)]),
        ):
            _, _, faulted = execute(
                name, faults=FaultInjector(schedule, seed=5)
            )
            predicted = predictor.predict(profile, target, schedule)
            error = relative_error(predicted.total, faulted.breakdown.total)
            assert error < 0.15, (
                f"{name}: predicted {predicted.total:.5f}s vs actual "
                f"{faulted.breakdown.total:.5f}s ({100 * error:.1f}%)"
            )
            assert predicted.t_recover > 0.0

    def test_what_if_query_matches_schedule_form(self, name):
        config, dataset, baseline = execute(name)
        profile = Profile.from_run(config, baseline.breakdown)
        target = PredictionTarget(config=config, dataset_bytes=dataset.nbytes)
        predictor = self.predictor_for(name)

        via_query = predictor.predict_data_node_crash(
            profile, target, data_node=1, at_fraction=0.5
        )
        via_schedule = predictor.predict(
            profile, target,
            FaultSchedule([DataNodeCrash(0, 1, at_fraction=0.5)]),
        )
        assert via_query.total == via_schedule.total
        # The what-if total always exceeds the healthy prediction.
        assert via_query.total > via_query.base.total
