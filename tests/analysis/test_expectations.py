"""Tests for the paper-expectation checker."""

import pytest

from repro.analysis.expectations import (
    EXPECTATIONS,
    FigureExpectation,
    check_expectation,
)
from repro.simgrid.errors import ConfigurationError
from repro.workloads.experiments import EXPERIMENTS, ExperimentResult, ExperimentRow


def make_result(errors_by_model, figure="fig02"):
    """errors_by_model: {model: [(n, c, error), ...]}"""
    result = ExperimentResult(figure, "t", "kmeans")
    for model, cells in errors_by_model.items():
        for n, c, err in cells:
            result.rows.append(
                ExperimentRow(n, c, model, actual=1.0, predicted=1.0 - err)
            )
    return result


GOOD = {
    "no communication": [(1, 1, 0.0), (4, 4, 0.03), (8, 16, 0.08)],
    "reduction communication": [(1, 1, 0.0), (4, 4, 0.02), (8, 16, 0.04)],
    "global reduction": [(1, 1, 0.0), (4, 4, 0.01), (8, 16, 0.02)],
}


class TestRegistry:
    def test_every_experiment_has_an_expectation(self):
        assert set(EXPECTATIONS) == set(EXPERIMENTS)


class TestCheckExpectation:
    def test_clean_result_passes(self):
        assert check_expectation(make_result(GOOD)) == []

    def test_bound_violation_detected(self):
        bad = dict(GOOD)
        bad["global reduction"] = [(1, 1, 0.0), (8, 16, 0.30)]
        violations = check_expectation(make_result(bad))
        assert any("exceeds bound" in v for v in violations)

    def test_ordering_violation_detected(self):
        bad = {
            "no communication": [(1, 1, 0.01)],
            "reduction communication": [(1, 1, 0.02)],
            "global reduction": [(1, 1, 0.03)],
        }
        violations = check_expectation(make_result(bad))
        assert any("ordering" in v for v in violations)

    def test_missing_model_detected(self):
        bad = {"no communication": [(1, 1, 0.0)]}
        expectation = FigureExpectation(
            "figX", max_error_bounds={"global reduction": 0.05}
        )
        violations = check_expectation(make_result(bad, "figX"), expectation)
        assert any("missing" in v for v in violations)

    def test_scale_up_claim_checked(self):
        bad = dict(GOOD)
        bad["no communication"] = [(1, 1, 0.09), (8, 16, 0.01)]
        violations = check_expectation(make_result(bad))
        assert any("scale-up" in v for v in violations)

    def test_scale_up_claim_skipped_on_reduced_grid(self):
        small = {
            model: [(1, 1, 0.01), (2, 4, 0.02)] for model in GOOD
        }
        # no >= 8-compute-node rows: the claim cannot be expressed
        assert check_expectation(make_result(small)) == []

    def test_equal_nodes_claim(self):
        expectation = FigureExpectation(
            "figY", equal_nodes_hardest="cross-cluster"
        )
        good = {
            "cross-cluster": [(4, 4, 0.05), (4, 16, 0.01), (8, 8, 0.04)]
        }
        assert check_expectation(make_result(good, "figY"), expectation) == []
        bad = {
            "cross-cluster": [(4, 4, 0.01), (4, 16, 0.05), (8, 8, 0.01)]
        }
        violations = check_expectation(make_result(bad, "figY"), expectation)
        assert any("hardest" in v for v in violations)

    def test_unknown_figure_rejected(self):
        with pytest.raises(ConfigurationError):
            check_expectation(make_result(GOOD, "fig99"))

    @pytest.mark.slow
    def test_fast_experiment_against_expectation(self):
        from repro.workloads.experiments import run_experiment

        result = run_experiment("fig06", fast=True)
        assert check_expectation(result) == []
