"""Tests for component-share analysis."""

import pytest

from repro.analysis.breakdown import (
    ComponentShares,
    format_shares,
    shares_of,
    sweep_shares,
)
from repro.simgrid.errors import ConfigurationError
from repro.simgrid.trace import PassRecord, TimeBreakdown

from tests.conftest import SumApp, make_tiny_points, small_cluster_spec
from repro.middleware.scheduler import RunConfig


def make_breakdown(disk=1.0, net=2.0, compute=1.0):
    bd = TimeBreakdown()
    bd.add_pass(
        PassRecord(0, t_disk=disk, t_network=net, t_local_compute=compute)
    )
    return bd


class TestSharesOf:
    def test_fractions_sum_to_one(self):
        shares = shares_of(make_breakdown(), label="x")
        assert shares.disk + shares.network + shares.compute == pytest.approx(1.0)
        assert shares.label == "x"

    def test_dominant_component(self):
        assert shares_of(make_breakdown(net=5.0)).dominant == "network"
        assert shares_of(make_breakdown(disk=9.0)).dominant == "disk"
        assert shares_of(make_breakdown(compute=9.0)).dominant == "compute"

    def test_tie_breaks_deterministically(self):
        shares = shares_of(make_breakdown(disk=1.0, net=1.0, compute=1.0))
        assert shares.dominant in {"disk", "network", "compute"}

    def test_zero_run_rejected(self):
        with pytest.raises(ConfigurationError):
            shares_of(TimeBreakdown())

    def test_invalid_total_rejected(self):
        with pytest.raises(ConfigurationError):
            ComponentShares("x", total=0.0, disk=0, network=0, compute=0)


class TestSweepShares:
    def test_sweep_runs_each_config(self):
        cluster = small_cluster_spec()
        configs = [
            RunConfig(
                storage_cluster=cluster,
                compute_cluster=cluster,
                data_nodes=n,
                compute_nodes=c,
                bandwidth=5e5,
            )
            for n, c in [(1, 1), (2, 4)]
        ]
        dataset = make_tiny_points()
        shares = sweep_shares(SumApp, dataset, configs)
        assert [s.label for s in shares] == ["1-1", "2-4"]
        for s in shares:
            assert 0 <= s.disk <= 1 and 0 <= s.compute <= 1

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_shares(SumApp, make_tiny_points(), [])


class TestFormatShares:
    def test_table_contains_rows(self):
        text = format_shares([shares_of(make_breakdown(), label="1-1")])
        assert "1-1" in text
        assert "dominant" in text
        assert "%" in text

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            format_shares([])
