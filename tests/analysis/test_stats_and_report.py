"""Tests for analysis statistics and report formatting."""

import pytest

from repro.analysis.report import format_experiment, format_summary
from repro.analysis.stats import (
    error_summary,
    mean,
    model_ordering_holds,
    worst_configuration,
)
from repro.simgrid.errors import ConfigurationError
from repro.workloads.experiments import ExperimentResult, ExperimentRow


def make_result():
    result = ExperimentResult("fig99", "Synthetic Figure", "kmeans")
    result.rows = [
        ExperimentRow(1, 1, "no communication", 10.0, 9.0),
        ExperimentRow(1, 2, "no communication", 10.0, 8.0),
        ExperimentRow(1, 1, "global reduction", 10.0, 9.9),
        ExperimentRow(1, 2, "global reduction", 10.0, 9.8),
    ]
    return result


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ConfigurationError):
            mean([])

    def test_error_summary(self):
        summary = error_summary(make_result())
        assert summary["no communication"]["max"] == pytest.approx(0.2)
        assert summary["global reduction"]["mean"] == pytest.approx(0.015)
        assert summary["global reduction"]["min"] == pytest.approx(0.01)

    def test_model_ordering_holds(self):
        assert model_ordering_holds(make_result())

    def test_model_ordering_violation_detected(self):
        result = make_result()
        result.rows = list(reversed(result.rows))  # global first, worse last
        # reversed order: first model listed is 'global reduction', then
        # 'no communication' with larger errors -> ordering violated
        assert not model_ordering_holds(result)

    def test_model_ordering_needs_two_models(self):
        result = ExperimentResult("x", "t", "w")
        result.rows = [ExperimentRow(1, 1, "only", 1.0, 1.0)]
        with pytest.raises(ConfigurationError):
            model_ordering_holds(result)

    def test_worst_configuration(self):
        worst = worst_configuration(make_result(), "no communication")
        assert worst.label == "1-2"
        with pytest.raises(ConfigurationError):
            worst_configuration(make_result(), "nope")


class TestReport:
    def test_format_contains_configs_and_models(self):
        text = format_experiment(make_result())
        assert "fig99" in text
        assert "1-1" in text and "1-2" in text
        assert "no communication" in text
        assert "global reduction" in text
        assert "10.00%" in text  # the 1-1 no-comm error
        assert "20.00%" in text

    def test_summary_line(self):
        line = format_summary(make_result())
        assert "mean" in line and "max" in line
        assert "no communication" in line
