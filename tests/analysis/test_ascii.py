"""Tests for ASCII bar-chart rendering."""

import pytest

from repro.analysis.ascii import error_bar_chart, horizontal_bar
from repro.simgrid.errors import ConfigurationError
from repro.workloads.experiments import ExperimentResult, ExperimentRow


class TestHorizontalBar:
    def test_full_bar(self):
        assert horizontal_bar(2.0, 2.0, width=10) == "█" * 10

    def test_half_bar(self):
        assert horizontal_bar(1.0, 2.0, width=4) == "██"

    def test_zero_value(self):
        assert horizontal_bar(0.0, 2.0, width=10) == ""

    def test_zero_max(self):
        assert horizontal_bar(0.0, 0.0, width=10) == ""

    def test_value_clamped_to_max(self):
        assert horizontal_bar(5.0, 2.0, width=4) == "████"

    def test_partial_block(self):
        bar = horizontal_bar(1.0, 8.0, width=4)  # half a cell
        assert len(bar) == 1
        assert bar != "█"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            horizontal_bar(1.0, 2.0, width=0)
        with pytest.raises(ConfigurationError):
            horizontal_bar(-1.0, 2.0)


class TestErrorBarChart:
    def make_result(self):
        result = ExperimentResult("figX", "t", "kmeans")
        result.rows = [
            ExperimentRow(1, 1, "m", 10.0, 10.0),
            ExperimentRow(1, 2, "m", 10.0, 9.0),
            ExperimentRow(2, 2, "m", 10.0, 8.0),
        ]
        return result

    def test_groups_by_data_nodes(self):
        chart = error_bar_chart(self.make_result())
        assert "1 data node(s):" in chart
        assert "2 data node(s):" in chart

    def test_percentages_rendered(self):
        chart = error_bar_chart(self.make_result())
        assert "10.00%" in chart
        assert "20.00%" in chart

    def test_peak_normalization(self):
        chart = error_bar_chart(self.make_result(), width=10)
        # the 20% row carries the full-width bar
        worst_line = [
            l for l in chart.splitlines() if "20.00%" in l and "cn" in l
        ][0]
        assert "█" * 10 in worst_line

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            error_bar_chart(self.make_result(), model="nope")

    def test_empty_result_rejected(self):
        with pytest.raises(ConfigurationError):
            error_bar_chart(ExperimentResult("figX", "t", "w"))
