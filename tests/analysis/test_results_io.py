"""Tests for experiment-result persistence and comparison."""

import pytest

from repro.analysis.results_io import (
    compare_results,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.simgrid.errors import ConfigurationError
from repro.workloads.experiments import ExperimentResult, ExperimentRow


def make_result(errors=(0.01, 0.02), figure="fig02"):
    result = ExperimentResult(figure, "title", "kmeans")
    result.metadata = {"base_profile": "1-1", "dataset_bytes": 1.4e6}
    for (n, c), err in zip([(1, 1), (2, 4)], errors):
        result.rows.append(
            ExperimentRow(n, c, "global reduction", 1.0, 1.0 - err)
        )
    return result


class TestRoundTrip:
    def test_dict_round_trip(self):
        original = make_result()
        rebuilt = result_from_dict(result_to_dict(original))
        assert rebuilt.experiment_id == original.experiment_id
        assert rebuilt.metadata["base_profile"] == "1-1"
        assert [r.error for r in rebuilt.rows] == pytest.approx(
            [r.error for r in original.rows]
        )

    def test_non_json_metadata_becomes_repr(self):
        result = make_result()
        result.metadata["cluster"] = object()
        data = result_to_dict(result)
        assert isinstance(data["metadata"]["cluster"], str)

    def test_file_round_trip(self, tmp_path):
        path = save_result(make_result(), tmp_path / "r.json")
        loaded = load_result(path)
        assert loaded.title == "title"

    def test_missing_and_malformed(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_result(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("[1,2")
        with pytest.raises(ConfigurationError):
            load_result(bad)
        data = result_to_dict(make_result())
        data["format_version"] = 99
        with pytest.raises(ConfigurationError):
            result_from_dict(data)


class TestCompareResults:
    def test_no_change_below_threshold(self):
        deltas = compare_results(make_result(), make_result(), threshold=1e-9)
        assert deltas == []

    def test_regression_detected(self):
        baseline = make_result(errors=(0.01, 0.02))
        current = make_result(errors=(0.01, 0.10))
        deltas = compare_results(baseline, current, threshold=0.01)
        assert len(deltas) == 1
        assert deltas[0].label == "2-4"
        assert deltas[0].delta == pytest.approx(0.08)

    def test_improvement_also_reported(self):
        baseline = make_result(errors=(0.05, 0.02))
        current = make_result(errors=(0.01, 0.02))
        deltas = compare_results(baseline, current, threshold=0.01)
        assert deltas[0].delta < 0

    def test_different_experiments_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_results(make_result(), make_result(figure="fig03"))

    def test_mismatched_cells_rejected(self):
        current = make_result()
        current.rows.append(
            ExperimentRow(4, 8, "global reduction", 1.0, 1.0)
        )
        with pytest.raises(ConfigurationError):
            compare_results(make_result(), current)


class TestDurableResults:
    def test_corrupt_file_names_path_and_remedy(self, tmp_path):
        from repro.core.durable import CorruptStoreError

        path = tmp_path / "r.json"
        path.write_text('{"rows": [')
        with pytest.raises(CorruptStoreError) as excinfo:
            load_result(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert "re-run the experiment" in message

    def test_future_format_version_rejected(self, tmp_path):
        import json

        from repro.core.durable import FormatVersionError

        path = save_result(make_result(), tmp_path / "r.json")
        data = json.loads(path.read_text())
        data["format_version"] = 999
        path.write_text(json.dumps(data))
        with pytest.raises(FormatVersionError, match="newer version"):
            load_result(path)

    def test_save_is_atomic_and_leaves_no_temp_files(self, tmp_path, monkeypatch):
        import repro.core.durable as durable

        path = save_result(make_result(), tmp_path / "r.json")
        before = path.read_bytes()
        assert [p.name for p in tmp_path.iterdir()] == ["r.json"]

        def explode(*_args, **_kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(durable.os, "replace", explode)
        with pytest.raises(OSError):
            save_result(make_result(errors=(0.5, 0.5)), path)
        monkeypatch.undo()

        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["r.json"]
