"""Grid-scoped fault specs and the grid scenario parser."""

import json

import pytest

from repro.errors import FaultError
from repro.faults import (
    DEFAULT_BROKER_RETRY_POLICY,
    GridFaultSchedule,
    NodePoolShrink,
    SiteOutage,
    TransientJobFailure,
    WanDegradation,
    grid_scenario_from_dict,
    grid_schedule_from_dict,
    load_grid_scenario,
)
from repro.faults.scenario import grid_fault_from_dict
from repro.simgrid.errors import ConfigurationError


class TestSpecValidation:
    def test_outage_requires_site_and_sane_times(self):
        with pytest.raises(FaultError):
            SiteOutage(site="", at=1.0)
        with pytest.raises(FaultError):
            SiteOutage(site="hpc-1", at=-0.5)
        with pytest.raises(FaultError):
            SiteOutage(site="hpc-1", at=1.0, repair_after=0.0)
        assert SiteOutage(site="hpc-1", at=1.0, repair_after=2.0).repaired_at == 3.0
        assert SiteOutage(site="hpc-1", at=1.0).repaired_at is None

    def test_shrink_requires_at_least_one_node(self):
        with pytest.raises(FaultError):
            NodePoolShrink(site="hpc-1", at=0.0, nodes=0)
        with pytest.raises(FaultError):
            NodePoolShrink(site="hpc-1", at=0.0, nodes=2, restore_after=-1.0)

    def test_wan_degradation_endpoints_and_factor(self):
        with pytest.raises(FaultError):
            WanDegradation(site_a="a", site_b="a", factor=2.0)
        with pytest.raises(FaultError):
            WanDegradation(site_a="a", site_b="b", factor=0.5)
        with pytest.raises(FaultError):
            WanDegradation(site_a="a", site_b="b", factor=2.0, duration=0.0)

    def test_wan_crosses_is_undirected(self):
        wan = WanDegradation(site_a="hpc-1", site_b="repo-a", factor=2.0)
        assert wan.crosses(["repo-a", "hpc-1"])
        assert wan.crosses(["x", "hpc-1", "repo-a", "y"])
        assert not wan.crosses(["repo-a", "mid", "hpc-1"])

    def test_transient_failure_fraction_range(self):
        with pytest.raises(FaultError):
            TransientJobFailure(job_id="j1", at_fraction=1.0)
        with pytest.raises(FaultError):
            TransientJobFailure(job_id="j1", failures=0)
        with pytest.raises(FaultError):
            TransientJobFailure(job_id="")


class TestScheduleValidation:
    def test_rejects_non_spec_values(self):
        with pytest.raises(FaultError, match="not a grid fault spec"):
            GridFaultSchedule([object()])

    def test_rejects_overlapping_outages_on_one_site(self):
        with pytest.raises(FaultError, match="overlapping outages"):
            GridFaultSchedule([
                SiteOutage(site="hpc-1", at=0.0, repair_after=5.0),
                SiteOutage(site="hpc-1", at=2.0, repair_after=1.0),
            ])

    def test_permanent_outage_blocks_any_later_outage(self):
        with pytest.raises(FaultError, match="overlapping outages"):
            GridFaultSchedule([
                SiteOutage(site="hpc-1", at=0.0),
                SiteOutage(site="hpc-1", at=10.0, repair_after=1.0),
            ])

    def test_sequential_outages_and_other_sites_allowed(self):
        schedule = GridFaultSchedule([
            SiteOutage(site="hpc-1", at=0.0, repair_after=1.0),
            SiteOutage(site="hpc-1", at=1.0, repair_after=1.0),
            SiteOutage(site="hpc-2", at=0.5, repair_after=1.0),
        ])
        assert len(schedule) == 3
        assert len(schedule.of_type(SiteOutage)) == 3

    def test_one_transient_spec_per_job(self):
        with pytest.raises(FaultError, match="multiple transient-failure"):
            GridFaultSchedule([
                TransientJobFailure(job_id="j1"),
                TransientJobFailure(job_id="j1", failures=2),
            ])
        schedule = GridFaultSchedule([
            TransientJobFailure(job_id="j1"),
            TransientJobFailure(job_id="j2"),
        ])
        assert set(schedule.transient_failures) == {"j1", "j2"}


class TestScenarioParsing:
    def test_each_kind_parses_with_defaults(self):
        schedule = grid_schedule_from_dict({
            "grid_faults": [
                {"type": "site-outage", "site": "hpc-1", "at": 2.0},
                {"type": "node-pool-shrink", "site": "hpc-2", "at": 1.0,
                 "nodes": 8},
                {"type": "wan-degradation", "a": "repo-a", "b": "hpc-1",
                 "factor": 2.0},
                {"type": "transient-job-failure", "job": "j1"},
            ]
        })
        assert len(schedule) == 4
        outage = schedule.of_type(SiteOutage)[0]
        assert outage.repair_after is None
        assert schedule.transient_failures["j1"].failures == 1

    def test_unknown_kind_names_both_scopes(self):
        with pytest.raises(ConfigurationError) as exc:
            grid_fault_from_dict({"type": "meteor-strike"})
        message = str(exc.value)
        assert "site-outage" in message
        assert "data-node-crash" in message

    def test_execution_kind_in_grid_scope_is_a_scope_mismatch(self):
        with pytest.raises(ConfigurationError, match="execution-scoped"):
            grid_fault_from_dict(
                {"type": "data-node-crash", "pass": 0, "data_node": 1}
            )

    def test_unknown_keys_of_known_kind_rejected(self):
        with pytest.raises(FaultError, match="unknown key"):
            grid_fault_from_dict(
                {"type": "site-outage", "site": "hpc-1", "at": 0.0,
                 "sight": "typo"}
            )

    def test_missing_required_key_rejected(self):
        with pytest.raises(FaultError, match="requires key"):
            grid_fault_from_dict({"type": "site-outage", "site": "hpc-1"})

    def test_faults_must_be_a_list(self):
        with pytest.raises(FaultError, match="must be a list"):
            grid_schedule_from_dict({"grid_faults": {"type": "site-outage"}})

    def test_scenario_retry_and_recovery(self):
        scenario = grid_scenario_from_dict({
            "recovery": "migrate",
            "retry": {"max_attempts": 5, "base_backoff_s": 0.01},
            "grid_faults": [],
        })
        assert scenario.recovery == "migrate"
        assert scenario.retry.max_attempts == 5
        default = grid_scenario_from_dict({"grid_faults": []})
        assert default.recovery is None
        assert default.retry is DEFAULT_BROKER_RETRY_POLICY

    def test_bad_retry_keys_rejected(self):
        with pytest.raises(FaultError, match="bad retry"):
            grid_scenario_from_dict({"retry": {"max_tries": 5}})

    def test_load_round_trip(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps({
            "recovery": "resubmit",
            "grid_faults": [
                {"type": "site-outage", "site": "hpc-1", "at": 2.0,
                 "repair_after": 4.0},
            ],
        }, sort_keys=True))
        scenario = load_grid_scenario(path)
        assert scenario.recovery == "resubmit"
        assert len(scenario.schedule) == 1

    def test_load_rejects_missing_and_malformed_files(self, tmp_path):
        with pytest.raises(FaultError, match="not found"):
            load_grid_scenario(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(FaultError, match="not valid JSON"):
            load_grid_scenario(bad)
        array = tmp_path / "array.json"
        array.write_text("[]")
        with pytest.raises(FaultError, match="JSON object"):
            load_grid_scenario(array)
