"""Property-based chaos: seeded grid weather never breaks the invariants.

The executable version of the tentpole guarantee (DESIGN.md section 14):
for ANY seeded, survivable-by-construction fault timeline, every job of
the stream settles exactly once, no reservation window overlaps a
declared outage or double-books a node, and the identical
(seed, scenario) pair replays byte-identically.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.broker import BrokerJob, GridBroker
from repro.faults.chaos import (
    ChaosSpec,
    chaos_timeline,
    run_campaign,
    verify_run,
)
from repro.faults.grid import TransientJobFailure
from repro.simgrid.errors import ConfigurationError
from tests.broker.conftest import small_grid

_WORKLOADS = ["kmeans", "knn", "vortex", "em"]


def chaos_stream():
    return [
        BrokerJob(
            job_id=f"c{i}",
            workload=_WORKLOADS[i % len(_WORKLOADS)],
            arrival=0.05 * i,
        )
        for i in range(8)
    ]


# Module-level broker shared across hypothesis examples: its memoized
# executions are deterministic, so sharing changes speed, never results.
_CHAOS_BROKER = GridBroker(small_grid(), [(1, 2), (2, 4)])

_SPEC = ChaosSpec(horizon=2.0)


class TestChaosSpec:
    def test_rejects_nonpositive_horizon(self):
        with pytest.raises(ConfigurationError):
            ChaosSpec(horizon=0.0)

    def test_rejects_negative_counts(self):
        with pytest.raises(ConfigurationError):
            ChaosSpec(horizon=1.0, max_outages=-1)


class TestTimeline:
    def test_same_seed_same_timeline(self):
        jobs = [j.job_id for j in chaos_stream()]
        topology = _CHAOS_BROKER.topology
        a = chaos_timeline(7, _SPEC, topology, jobs)
        b = chaos_timeline(7, _SPEC, topology, jobs)
        assert a.faults == b.faults

    def test_transients_stay_inside_default_retry_budget(self):
        jobs = [j.job_id for j in chaos_stream()]
        for seed in range(50):
            schedule = chaos_timeline(seed, _SPEC, _CHAOS_BROKER.topology, jobs)
            for fault in schedule.of_type(TransientJobFailure):
                assert fault.failures <= 2

    def test_every_fault_repairs(self):
        jobs = [j.job_id for j in chaos_stream()]
        for seed in range(50):
            schedule = chaos_timeline(seed, _SPEC, _CHAOS_BROKER.topology, jobs)
            for fault in schedule.faults:
                for key in ("repair_after", "restore_after", "duration"):
                    if hasattr(fault, key):
                        assert getattr(fault, key) is not None


@given(
    seed=st.integers(0, 10_000),
    recovery=st.sampled_from(["resubmit", "migrate"]),
)
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_chaos_invariants_for_any_seed(seed, recovery):
    jobs = chaos_stream()
    report = run_campaign(
        _CHAOS_BROKER, jobs, [seed], _SPEC, recovery=recovery
    )
    assert report.ok, "; ".join(report.violations)
    (case,) = report.cases
    assert case.replay_identical
    assert case.completed + case.rejected + case.failed == len(jobs)


class TestVerifyRun:
    def test_flags_lost_and_double_settled_jobs(self):
        jobs = chaos_stream()
        run = _CHAOS_BROKER.run(jobs, "min-completion")
        job_ids = [j.job_id for j in jobs]
        clean = verify_run(run, job_ids, _CHAOS_BROKER.last_ledger)
        assert clean == []
        # A job id the run never saw reads as lost work.
        violations = verify_run(run, job_ids + ["ghost"], None)
        assert any("ghost" in v for v in violations)

    def test_campaign_requires_seeds(self):
        with pytest.raises(ConfigurationError):
            run_campaign(_CHAOS_BROKER, chaos_stream(), [], _SPEC)

    def test_campaign_report_serializes(self):
        report = run_campaign(_CHAOS_BROKER, chaos_stream(), [3, 5], _SPEC)
        data = report.to_dict()
        assert data["kind"] == "chaos-report"
        assert data["ok"] is True
        assert [case["seed"] for case in data["cases"]] == [3, 5]
