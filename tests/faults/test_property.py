"""Property-based tests: recovery never changes results, only timing.

The central invariant of the fault-tolerance design (DESIGN.md): for ANY
seeded fault schedule that leaves at least one replica and one compute
node alive, the run completes and the application result is **identical**
to the fault-free result — role-preserving recovery keeps the reduction
merge tree intact, so this holds bitwise, not approximately.
"""

from hypothesis import given, settings, strategies as st

from repro.faults import (
    ChunkReadError,
    ComputeNodeCrash,
    DataNodeCrash,
    FaultInjector,
    FaultSchedule,
    LinkDegradation,
    SlowNode,
    results_equal,
)
from repro.middleware.runtime import FreerideGRuntime
from repro.middleware.scheduler import RunConfig
from tests.conftest import SumApp, make_tiny_points, small_cluster_spec

DATA_NODES = 2
COMPUTE_NODES = 4

fractions = st.floats(0.0, 1.0, allow_nan=False)
pass_indices = st.integers(0, 2)

compute_crashes = st.builds(
    ComputeNodeCrash,
    pass_index=pass_indices,
    compute_node=st.integers(0, COMPUTE_NODES - 1),
    at_fraction=fractions,
)
data_crashes = st.builds(
    DataNodeCrash,
    pass_index=pass_indices,
    data_node=st.integers(0, DATA_NODES - 1),
    at_fraction=fractions,
)
link_degradations = st.builds(
    LinkDegradation,
    data_node=st.integers(0, DATA_NODES - 1),
    factor=st.floats(1.0, 4.0),
    from_pass=pass_indices,
)
slow_nodes = st.builds(
    SlowNode,
    compute_node=st.integers(0, COMPUTE_NODES - 1),
    factor=st.floats(1.0, 4.0),
    from_pass=pass_indices,
)
read_errors = st.builds(
    ChunkReadError,
    rate=st.floats(0.01, 0.6),
    pass_index=st.one_of(st.none(), pass_indices),
    data_node=st.one_of(st.none(), st.integers(0, DATA_NODES - 1)),
)


@st.composite
def survivable_schedules(draw):
    """A fault schedule leaving >= 1 compute node and >= 1 replica alive."""
    faults = draw(
        st.lists(
            st.one_of(
                compute_crashes,
                data_crashes,
                link_degradations,
                slow_nodes,
                read_errors,
            ),
            max_size=6,
        )
    )
    # Keep at least one compute node alive: drop surplus compute crashes.
    survivable = []
    crashed = set()
    for fault in faults:
        if isinstance(fault, ComputeNodeCrash):
            if fault.compute_node in crashed:
                continue
            if len(crashed) == COMPUTE_NODES - 1:
                continue
            crashed.add(fault.compute_node)
        survivable.append(fault)
    return FaultSchedule(survivable)


def make_config():
    cluster = small_cluster_spec()
    return RunConfig(
        storage_cluster=cluster,
        compute_cluster=cluster,
        data_nodes=DATA_NODES,
        compute_nodes=COMPUTE_NODES,
        bandwidth=5.0e5,
    )


@settings(max_examples=40, deadline=None)
@given(
    schedule=survivable_schedules(),
    seed=st.integers(0, 2**16),
    passes=st.integers(1, 3),
    cache=st.booleans(),
)
def test_survivable_schedules_complete_with_identical_results(
    schedule, seed, passes, cache
):
    config = make_config()
    dataset = make_tiny_points()
    baseline = FreerideGRuntime(config).execute(
        SumApp(passes=passes, cache=cache), dataset
    )
    injector = FaultInjector(
        schedule,
        seed=seed,
        # One standby per possible data-node crash keeps replicas alive.
        replica_sites=[
            f"standby-{i}"
            for i in range(len(schedule.of_type(DataNodeCrash)))
        ],
    )
    faulted = FreerideGRuntime(config, faults=injector).execute(
        SumApp(passes=passes, cache=cache), dataset
    )

    # The run completed; its result is bitwise the fault-free result.
    assert results_equal(faulted.result, baseline.result)
    # Recovery only ever adds time.
    assert faulted.breakdown.total >= baseline.breakdown.total
    assert faulted.breakdown.num_passes == baseline.breakdown.num_passes
    # And is reproducible under the same seed.
    repeat = FreerideGRuntime(
        config,
        faults=FaultInjector(
            schedule,
            seed=seed,
            replica_sites=[
                f"standby-{i}"
                for i in range(len(schedule.of_type(DataNodeCrash)))
            ],
        ),
    ).execute(SumApp(passes=passes, cache=cache), dataset)
    assert repeat.breakdown.to_dict() == faulted.breakdown.to_dict()
