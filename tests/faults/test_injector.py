"""Unit tests for the fault injector, schedules, and failover selection."""

import pytest

from repro.errors import FaultError, RecoveryExhaustedError, ReproError
from repro.simgrid.errors import ConfigurationError
from repro.faults import (
    ChunkReadError,
    ComputeNodeCrash,
    DataNodeCrash,
    FaultInjector,
    FaultSchedule,
    LinkDegradation,
    RetryPolicy,
    SlowNode,
    injector_from_dict,
    schedule_from_dict,
    select_failover_replica,
)
from repro.middleware.replica import ReplicaCatalog


class TestFaultSchedule:
    def test_rejects_non_fault_entries(self):
        with pytest.raises(FaultError):
            FaultSchedule(["not-a-fault"])

    def test_checkpoints_auto_enable_on_compute_crash(self):
        assert not FaultSchedule().checkpoints_enabled
        assert not FaultSchedule([DataNodeCrash(0, 0)]).checkpoints_enabled
        assert FaultSchedule([ComputeNodeCrash(0, 1)]).checkpoints_enabled
        # explicit override wins either way
        assert FaultSchedule([], checkpoints=True).checkpoints_enabled
        assert not FaultSchedule(
            [ComputeNodeCrash(0, 1)], checkpoints=False
        ).checkpoints_enabled

    def test_spec_validation(self):
        with pytest.raises(FaultError):
            DataNodeCrash(0, 0, at_fraction=1.5)
        with pytest.raises(FaultError):
            LinkDegradation(0, factor=0.5)
        with pytest.raises(FaultError):
            SlowNode(0, factor=2.0, from_pass=3, until_pass=3)
        with pytest.raises(FaultError):
            ChunkReadError(rate=0.0)  # no rate and no explicit failures

    def test_errors_share_the_repro_root(self):
        with pytest.raises(ReproError):
            ChunkReadError(rate=1.0)


class TestDeterminism:
    def test_rate_draws_are_reproducible(self):
        schedule = FaultSchedule([ChunkReadError(rate=0.3)])
        a = FaultInjector(schedule, seed=7).chunk_failures(0, 1, 12)
        b = FaultInjector(schedule, seed=7).chunk_failures(0, 1, 12)
        assert a == b and a  # identical and non-empty at this rate

    def test_different_seeds_differ(self):
        schedule = FaultSchedule([ChunkReadError(rate=0.3)])
        draws = {
            tuple(sorted(FaultInjector(schedule, seed=s).chunk_failures(
                0, 0, 64).items()))
            for s in range(8)
        }
        assert len(draws) > 1

    def test_rate_draws_capped_at_retry_budget(self):
        schedule = FaultSchedule([ChunkReadError(rate=0.95)])
        policy = RetryPolicy(max_attempts=3)
        failures = FaultInjector(schedule, policy=policy, seed=1).chunk_failures(
            0, 0, 32
        )
        assert failures and max(failures.values()) <= policy.max_failures

    def test_explicit_failures_taken_verbatim(self):
        schedule = FaultSchedule(
            [ChunkReadError(failures={2: 9, 5: 1}, pass_index=0)]
        )
        injector = FaultInjector(schedule)
        assert injector.chunk_failures(0, 0, 8) == {2: 9, 5: 1}
        assert injector.chunk_failures(1, 0, 8) == {}


class TestScheduledQueries:
    def test_crashes_sorted_by_fraction(self):
        schedule = FaultSchedule([
            ComputeNodeCrash(1, 3, 0.8),
            ComputeNodeCrash(1, 1, 0.2),
            ComputeNodeCrash(0, 0, 0.5),
        ])
        injector = FaultInjector(schedule)
        assert [c.compute_node for c in injector.compute_node_crashes(1)] == [1, 3]
        assert injector.compute_node_crashes(2) == []

    def test_degradation_factors_compound(self):
        schedule = FaultSchedule([
            LinkDegradation(0, 2.0),
            LinkDegradation(0, 1.5, from_pass=1),
            SlowNode(2, 3.0, from_pass=0, until_pass=2),
        ])
        injector = FaultInjector(schedule)
        assert injector.link_factor(0, 0) == 2.0
        assert injector.link_factor(0, 1) == pytest.approx(3.0)
        assert injector.link_factor(1, 0) == 1.0
        assert injector.slow_factor(2, 1) == 3.0
        assert injector.slow_factor(2, 2) == 1.0

    def test_validate_rejects_out_of_range_nodes(self):
        injector = FaultInjector(FaultSchedule([DataNodeCrash(0, 5)]))
        with pytest.raises(FaultError):
            injector.validate(data_nodes=2, compute_nodes=4)

    def test_validate_rejects_total_compute_loss(self):
        schedule = FaultSchedule(
            [ComputeNodeCrash(0, 0), ComputeNodeCrash(1, 1)]
        )
        with pytest.raises(RecoveryExhaustedError):
            FaultInjector(schedule).validate(data_nodes=1, compute_nodes=2)


class TestFailover:
    def test_select_lexicographically_first_unexcluded(self):
        catalog = ReplicaCatalog()
        for site in ("repo-c", "repo-a", "repo-b"):
            catalog.add("points", site)
        assert select_failover_replica(catalog, "points") == "repo-a"
        assert select_failover_replica(
            catalog, "points", excluded_sites=["repo-a"]
        ) == "repo-b"
        with pytest.raises(RecoveryExhaustedError):
            select_failover_replica(
                catalog, "points",
                excluded_sites=["repo-a", "repo-b", "repo-c"],
            )

    def test_injector_consumes_standby_replicas(self):
        injector = FaultInjector(
            FaultSchedule(), replica_sites=["standby-1", "standby-2"]
        )
        assert injector.failover_site(0) == "standby-1"
        assert injector.failover_site(1) == "standby-2"
        with pytest.raises(RecoveryExhaustedError):
            injector.failover_site(0)

    def test_catalog_failover_excludes_primary_and_used_sites(self):
        catalog = ReplicaCatalog()
        for site in ("primary", "repo-a", "repo-b"):
            catalog.add("points", site)
        injector = FaultInjector(FaultSchedule()).with_catalog(
            catalog, "points", primary_site="primary"
        )
        assert injector.failover_site(0) == "repo-a"
        assert injector.failover_site(1) == "repo-b"
        with pytest.raises(RecoveryExhaustedError):
            injector.failover_site(0)


class TestScenarioParsing:
    def test_round_trip_of_every_fault_kind(self):
        schedule = schedule_from_dict({
            "faults": [
                {"type": "data-node-crash", "pass": 0, "data_node": 1},
                {"type": "compute-node-crash", "pass": 2,
                 "compute_node": 3, "at_fraction": 0.25},
                {"type": "link-degradation", "data_node": 0, "factor": 2.0},
                {"type": "slow-node", "compute_node": 1, "factor": 1.5,
                 "from_pass": 1, "until_pass": 4},
                {"type": "chunk-read-error", "rate": 0.05},
            ]
        })
        assert len(schedule) == 5
        assert schedule.of_type(ComputeNodeCrash)[0].at_fraction == 0.25

    def test_unknown_type_and_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="data-node-crash"):
            schedule_from_dict({"faults": [{"type": "meteor-strike"}]})
        with pytest.raises(FaultError):
            schedule_from_dict({
                "faults": [{"type": "data-node-crash", "pass": 0,
                            "data_node": 0, "typo": 1}]
            })

    def test_grid_kind_in_execution_scope_names_both_scopes(self):
        with pytest.raises(ConfigurationError) as excinfo:
            schedule_from_dict({"faults": [{"type": "site-outage",
                                            "site": "hpc-1", "at": 5.0}]})
        message = str(excinfo.value)
        assert "grid-scoped" in message
        assert "data-node-crash" in message  # names the valid kinds

    def test_injector_from_dict_wires_policy_and_replicas(self):
        injector = injector_from_dict({
            "seed": 42,
            "replicas": ["repo-b"],
            "retry_policy": {"max_attempts": 5},
            "checkpoints": True,
            "faults": [{"type": "chunk-read-error", "rate": 0.1}],
        })
        assert injector.seed == 42
        assert injector.policy.max_attempts == 5
        assert injector.checkpoints_enabled
        assert injector.failover_site(0) == "repo-b"
