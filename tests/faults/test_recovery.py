"""Runtime-level recovery semantics, on a tiny deterministic workload."""

import pytest

from repro.errors import RecoveryExhaustedError
from repro.faults import (
    ChunkReadError,
    ComputeNodeCrash,
    DataNodeCrash,
    FaultInjector,
    FaultSchedule,
    LinkDegradation,
    RetryPolicy,
    SlowNode,
)
from repro.middleware.runtime import FreerideGRuntime
from tests.conftest import SumApp, make_tiny_points


def run(run_config, schedule=None, passes=1, cache=False, **injector_kwargs):
    faults = (
        FaultInjector(schedule, **injector_kwargs)
        if schedule is not None
        else None
    )
    return FreerideGRuntime(run_config, faults=faults).execute(
        SumApp(passes=passes, cache=cache), make_tiny_points()
    )


class TestFaultFreeIdentity:
    def test_empty_schedule_changes_nothing(self, run_config):
        baseline = run(run_config, passes=3, cache=True)
        empty = run(run_config, FaultSchedule(), passes=3, cache=True)
        assert empty.breakdown.to_dict() == baseline.breakdown.to_dict()
        assert empty.result == baseline.result
        assert empty.breakdown.fault_events == []
        for a, b in zip(empty.breakdown.passes, baseline.breakdown.passes):
            assert a.total == b.total

    def test_no_injector_records_no_fault_metadata(self, run_config):
        baseline = run(run_config)
        assert "fault_schedule_size" not in baseline.breakdown.metadata
        assert baseline.breakdown.t_ckpt == 0.0


class TestTransientRetries:
    def test_retries_charged_into_t_disk_only(self, run_config):
        baseline = run(run_config)
        faulted = run(
            run_config,
            FaultSchedule([ChunkReadError(failures={0: 2}, data_node=1)]),
        )
        assert faulted.breakdown.t_disk > baseline.breakdown.t_disk
        assert faulted.breakdown.t_network == baseline.breakdown.t_network
        assert faulted.breakdown.t_compute == baseline.breakdown.t_compute
        assert faulted.result == baseline.result
        (event,) = faulted.breakdown.fault_events
        assert event["kind"] == "chunk-read-retries"
        assert event["data_node"] == 1
        assert event["failed_attempts"] == 2

    def test_budget_exhaustion_is_fatal(self, run_config):
        schedule = FaultSchedule([ChunkReadError(failures={0: 5})])
        with pytest.raises(RecoveryExhaustedError):
            run(run_config, schedule, policy=RetryPolicy(max_attempts=3))

    def test_rate_storm_survives_under_capped_draws(self, run_config):
        baseline = run(run_config)
        faulted = run(run_config, FaultSchedule([ChunkReadError(rate=0.9)]))
        assert faulted.result == baseline.result
        assert faulted.breakdown.t_disk > baseline.breakdown.t_disk


class TestDataNodeFailover:
    def test_crash_charges_refetch_and_names_the_replica(self, run_config):
        baseline = run(run_config)
        faulted = run(
            run_config,
            FaultSchedule([DataNodeCrash(0, 1, at_fraction=0.5)]),
            replica_sites=["backup-repo"],
        )
        assert faulted.result == baseline.result
        assert faulted.breakdown.t_disk > baseline.breakdown.t_disk
        assert faulted.breakdown.t_network > baseline.breakdown.t_network
        (event,) = faulted.breakdown.fault_events
        assert event["kind"] == "data-node-failover"
        assert event["replica_site"] == "backup-repo"
        assert event["unshipped_chunks"] == 4  # half of node 1's 8 chunks

    def test_no_replica_left_is_fatal(self, run_config):
        schedule = FaultSchedule([DataNodeCrash(0, 0)])
        with pytest.raises(RecoveryExhaustedError):
            run(run_config, schedule, replica_sites=[])

    def test_crash_in_cache_fed_pass_costs_nothing(self, run_config):
        baseline = run(run_config, FaultSchedule(), passes=2, cache=True)
        faulted = run(
            run_config,
            FaultSchedule([DataNodeCrash(1, 0)]),  # pass 1 is cache-fed
            passes=2,
            cache=True,
        )
        assert faulted.breakdown.total == baseline.breakdown.total
        (event,) = faulted.breakdown.fault_events
        assert event["kind"] == "data-node-crash-idle"


class TestComputeNodeRecovery:
    def test_crash_restarts_with_checkpoint_and_survivors(self, run_config):
        baseline = run(run_config, passes=3, cache=True)
        faulted = run(
            run_config,
            FaultSchedule([ComputeNodeCrash(1, 2, at_fraction=0.4)]),
            passes=3,
            cache=True,
        )
        assert faulted.result == baseline.result
        assert faulted.breakdown.t_ckpt > 0.0
        events = [
            e
            for e in faulted.breakdown.fault_events
            if e["kind"] == "compute-node-recovery"
        ]
        assert len(events) == 1
        assert events[0]["compute_node"] == 2
        assert events[0]["survivors"] == 3
        assert events[0]["t_lost_work"] > 0.0
        assert events[0]["t_restore"] > 0.0  # pass-0 checkpoint existed
        # lost work + doubled-up role slow the compute component
        assert faulted.breakdown.t_compute > baseline.breakdown.t_compute

    def test_checkpoints_can_be_disabled_explicitly(self, run_config):
        faulted = run(
            run_config,
            FaultSchedule(
                [ComputeNodeCrash(0, 1)], checkpoints=False
            ),
        )
        assert faulted.breakdown.t_ckpt == 0.0

    def test_crashing_every_compute_node_is_rejected(self, run_config):
        schedule = FaultSchedule(
            [ComputeNodeCrash(0, j) for j in range(4)]
        )
        with pytest.raises(RecoveryExhaustedError):
            run(run_config, schedule)

    def test_multiple_crashes_still_bit_identical(self, run_config):
        baseline = run(run_config, passes=2, cache=True)
        faulted = run(
            run_config,
            FaultSchedule([
                ComputeNodeCrash(0, 0, at_fraction=0.2),
                ComputeNodeCrash(1, 3, at_fraction=0.7),
            ]),
            passes=2,
            cache=True,
        )
        assert faulted.result == baseline.result
        recoveries = [
            e
            for e in faulted.breakdown.fault_events
            if e["kind"] == "compute-node-recovery"
        ]
        assert [e["compute_node"] for e in recoveries] == [0, 3]
        assert recoveries[1]["survivors"] == 2


class TestDegradations:
    def test_link_degradation_stretches_network_only(self, run_config):
        baseline = run(run_config)
        faulted = run(
            run_config, FaultSchedule([LinkDegradation(0, factor=2.0)])
        )
        assert faulted.breakdown.t_network > baseline.breakdown.t_network
        assert faulted.breakdown.t_disk == baseline.breakdown.t_disk
        assert faulted.result == baseline.result

    def test_slow_node_stretches_compute_only(self, run_config):
        baseline = run(run_config)
        faulted = run(
            run_config, FaultSchedule([SlowNode(0, factor=3.0)])
        )
        assert faulted.breakdown.t_compute > baseline.breakdown.t_compute
        assert faulted.breakdown.t_disk == baseline.breakdown.t_disk
        assert faulted.breakdown.t_network == baseline.breakdown.t_network
        assert faulted.result == baseline.result


class TestDeterminism:
    def test_identical_seeds_identical_breakdowns(self, run_config):
        schedule = FaultSchedule([
            ChunkReadError(rate=0.3),
            DataNodeCrash(0, 0, 0.25),
            ComputeNodeCrash(0, 1, 0.6),
        ])
        a = run(run_config, schedule, seed=5)
        b = run(run_config, schedule, seed=5)
        assert a.breakdown.to_dict() == b.breakdown.to_dict()
        assert a.breakdown.fault_events == b.breakdown.fault_events
        assert a.result == b.result
