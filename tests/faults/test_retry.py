"""Unit tests for the retry policy's backoff arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FaultError
from repro.faults import RetryPolicy


class TestBackoff:
    def test_exponential_growth_until_cap(self):
        policy = RetryPolicy(
            max_attempts=6, base_backoff_s=0.05, backoff_factor=2.0,
            max_backoff_s=0.3,
        )
        assert policy.backoff_s(1) == 0.05
        assert policy.backoff_s(2) == 0.10
        assert policy.backoff_s(3) == 0.20
        assert policy.backoff_s(4) == 0.30  # capped
        assert policy.backoff_s(5) == 0.30

    def test_total_backoff_is_the_sum_of_delays(self):
        policy = RetryPolicy(max_attempts=5, base_backoff_s=0.01,
                             backoff_factor=3.0, max_backoff_s=1.0)
        assert policy.total_backoff_s(3) == pytest.approx(
            0.01 + 0.03 + 0.09
        )
        assert policy.total_backoff_s(0) == 0.0

    def test_backoff_index_must_be_positive(self):
        with pytest.raises(FaultError):
            RetryPolicy().backoff_s(0)

    @given(
        st.integers(2, 8),
        st.floats(1e-4, 0.5),
        st.floats(1.0, 4.0),
    )
    def test_backoff_is_monotone_and_capped(self, attempts, base, factor):
        policy = RetryPolicy(
            max_attempts=attempts, base_backoff_s=base,
            backoff_factor=factor, max_backoff_s=base * 8,
        )
        delays = [policy.backoff_s(i) for i in range(1, attempts)]
        assert all(a <= b for a, b in zip(delays, delays[1:]))
        assert all(d <= base * 8 for d in delays)


class TestRetryCost:
    def test_failed_attempts_plus_backoff(self):
        policy = RetryPolicy(max_attempts=4, base_backoff_s=0.1,
                             backoff_factor=2.0, max_backoff_s=10.0)
        read = 0.5
        # two failures: 2 failed reads + backoffs 0.1 and 0.2
        assert policy.retry_cost_s(2, read) == pytest.approx(
            2 * read + 0.1 + 0.2
        )
        assert policy.retry_cost_s(0, read) == 0.0

    def test_timeout_caps_the_cost_of_a_failed_attempt(self):
        slow = RetryPolicy(per_chunk_timeout_s=0.01)
        fast = RetryPolicy()
        assert slow.attempt_cost_s(5.0) == 0.01
        assert fast.attempt_cost_s(5.0) == 5.0
        assert slow.retry_cost_s(2, 5.0) < fast.retry_cost_s(2, 5.0)

    def test_exhausting_the_budget_raises(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.max_failures == 2
        policy.retry_cost_s(2, 0.1)  # at the limit: ok
        with pytest.raises(FaultError):
            policy.retry_cost_s(3, 0.1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(FaultError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(FaultError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(FaultError):
            RetryPolicy(max_backoff_s=0.01, base_backoff_s=0.05)
        with pytest.raises(FaultError):
            RetryPolicy(per_chunk_timeout_s=0.0)
