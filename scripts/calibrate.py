"""Calibration sweep: Figure 2-6 style error tables for all five apps."""
import sys, time
from repro.workloads import make_app, make_dataset, make_run_config, PAPER_CONFIG_GRID
from repro.workloads.registry import WORKLOADS
from repro.middleware import FreerideGRuntime
from repro.core import (Profile, PredictionTarget, NoCommunicationModel,
                        ReductionCommunicationModel, GlobalReductionModel,
                        ModelClasses, relative_error)

apps = sys.argv[1:] or ["kmeans", "vortex", "defect", "em", "knn"]
for name in apps:
    spec = WORKLOADS[name]
    ds = make_dataset(name)
    t0 = time.time()
    # profile at 1-1
    cfg11 = make_run_config(1, 1)
    run11 = FreerideGRuntime(cfg11).execute(make_app(name), ds)
    prof = Profile.from_run(cfg11, run11.breakdown)
    classes = ModelClasses.parse(spec.natural_object_class, spec.natural_global_class)
    models = [NoCommunicationModel(), ReductionCommunicationModel(classes), GlobalReductionModel(classes)]
    print(f"\n=== {name} (profile 1-1, total={prof.total:.3f}, td={prof.t_disk:.3f} tn={prof.t_network:.3f} tc={prof.t_compute:.3f} tro={prof.t_ro:.4f} tg={prof.t_g:.4f} r={prof.max_object_bytes:.0f})")
    print(f"{'cfg':>6} {'actual':>8} | " + " | ".join(f"{m.label:>22}" for m in models))
    for (n, c) in PAPER_CONFIG_GRID:
        cfg = make_run_config(n, c)
        run = FreerideGRuntime(cfg).execute(make_app(name), ds)
        actual = run.breakdown.total
        tgt = PredictionTarget(config=cfg, dataset_bytes=ds.nbytes)
        cells = []
        for m in models:
            pred = m.predict(prof, tgt)
            err = relative_error(actual, pred.total)
            cells.append(f"{pred.total:8.3f} ({100*err:5.2f}%)")
        a = run.breakdown
        print(f"{n}-{c:>2} {actual:8.3f} | " + " | ".join(cells) +
              f"   [ro={a.t_ro:.4f} g={a.t_g:.4f}]")
    print(f"  ({time.time()-t0:.1f}s)")
