#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md: run every figure reproduction on the full
grid and record paper-vs-measured, per figure.

Run:  python scripts/generate_experiments_md.py          (~2 minutes)
"""

from __future__ import annotations

import pathlib
import sys
import time

from repro.analysis import error_summary, worst_configuration
from repro.core.durable import atomic_write_text
from repro.workloads.experiments import EXPERIMENTS, run_experiment

OUT = pathlib.Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"

#: What the paper's figure shows (qualitative claims to compare against).
PAPER_CLAIMS = {
    "fig02": (
        "k-means, base profile 1-1 @ 1.4 GB. No-communication model errors "
        "exceed 4% only at 4-4, 8-8, 8-16; reduction-communication under 2% "
        "except those configs; global-reduction near zero."
    ),
    "fig03": (
        "Vortex detection, base 1-1 @ 710 MB. No-communication under 2% "
        "except 2-8, 2-16, 8-8, 8-16; reduction-communication above 0.5% "
        "only at 8-8, 8-16; global-reduction extremely accurate."
    ),
    "fig04": (
        "Defect detection, base 1-1 @ 130 MB. No-communication above 4% at "
        "8-8, 8-16 (up to ~10%); reduction-communication above 1% only at "
        "4-4, 8-8, 8-16; global-reduction very accurate."
    ),
    "fig05": (
        "EM clustering, base 1-1 @ 1.4 GB. Same pattern as the other "
        "applications; no-communication up to ~6.5%."
    ),
    "fig06": (
        "kNN search, base 1-1 @ 1.4 GB. Same pattern; no-communication up "
        "to ~5.5%."
    ),
    "fig07": (
        "EM, profile 1-1 @ 350 MB predicting 1.4 GB, global-reduction "
        "model. Errors under 2%, highest where data and compute node "
        "counts are equal, dropping as compute nodes scale up."
    ),
    "fig08": (
        "Defect detection, profile 1-1 @ 130 MB predicting 1.8 GB. Shape "
        "unchanged vs same-size figure; equal-node-count configs hardest; "
        "retrieval scales linearly at 2-4 data nodes, sub-linearly at 8."
    ),
    "fig09": (
        "Defect detection, profile @ 500 Kbps predicting 250 Kbps. Errors "
        "tiny (paper peaks below 0.2%); least accurate where data and "
        "compute node counts are equal."
    ),
    "fig10": (
        "EM, same bandwidth protocol. Errors below ~0.25%; same shape "
        "notes as Figure 9."
    ),
    "fig11": (
        "EM on the Opteron cluster, base profile 8-8 @ 350 MB predicting "
        "700 MB; factors from kmeans/kNN/vortex. Errors higher than "
        "within-cluster (up to ~6-7%), particularly at 8 compute nodes; "
        "computed average factor 0.296 vs EM's observed 0.323."
    ),
    "fig12": (
        "Defect detection on the Opteron cluster, base 4-4 @ 130 MB "
        "predicting 1.8 GB; factors from kmeans/kNN/EM. Highest errors of "
        "the family (up to ~16%), worst at 4 compute nodes (the base "
        "configuration's count)."
    ),
    "fig13": (
        "Vortex detection on the Opteron cluster, base 1-1 @ 710 MB "
        "predicting 1.85 GB; factors from kmeans/kNN/EM. Largest "
        "inaccuracies at equal data/compute node counts (up to ~6%)."
    ),
}


def figure_section(result) -> str:
    lines = [f"## {result.experiment_id}: {result.title}", ""]
    claim = PAPER_CLAIMS.get(
        result.experiment_id,
        "Not evaluated in the paper — an extension workload named by its "
        "Section 2.2 run under the Figure 2-6 protocol; the same model "
        "ordering and error shapes are expected.",
    )
    lines.append(f"**Paper:** {claim}")
    lines.append("")
    meta = result.metadata
    detail = ", ".join(
        f"{key}={value}"
        for key, value in meta.items()
        if key in ("base_profile", "dataset", "profile_dataset",
                   "target_dataset", "profile_bandwidth", "target_bandwidth",
                   "representatives")
    )
    lines.append(f"**Setup:** {detail}")
    if "sc" in meta:
        per_app = ", ".join(
            f"{app}={sc:.3f}" for app, sc in sorted(meta["per_app_sc"].items())
        )
        lines.append("")
        lines.append(
            f"**Measured factors:** s_d={meta['sd']:.3f}, "
            f"s_n={meta['sn']:.3f}, s_c={meta['sc']:.3f} "
            f"(per-app s_c: {per_app})"
        )
    lines.append("")

    models = result.models
    header = "| config | " + " | ".join(models) + " |"
    sep = "|---" * (len(models) + 1) + "|"
    lines += [header, sep]
    configs = []
    for row in result.rows:
        if row.label not in configs:
            configs.append(row.label)
    errors = {(r.label, r.model): r.error for r in result.rows}
    for label in configs:
        cells = [
            f"{100.0 * errors[(label, m)]:.2f}%" if (label, m) in errors else ""
            for m in models
        ]
        lines.append(f"| {label} | " + " | ".join(cells) + " |")
    lines.append("")

    summary = error_summary(result)
    measured = "; ".join(
        f"{model}: mean {100 * s['mean']:.2f}%, max {100 * s['max']:.2f}% "
        f"(worst at {worst_configuration(result, model).label})"
        for model, s in summary.items()
    )
    lines.append(f"**Measured:** {measured}")
    lines.append("")
    return "\n".join(lines)


HEADER = """\
# EXPERIMENTS — paper vs measured, per figure

Generated by `python scripts/generate_experiments_md.py` (full
14-configuration grid; deterministic).  Figure 1 of the paper is the
architecture diagram and has nothing to reproduce; Figures 2-13 are the
entire evaluation.

Reading guide: cells are relative prediction errors
`E = |T_exact − T_predicted| / T_exact` in percent — the paper's metric.
We reproduce the *shapes* (which model wins, where the hard configurations
are, roughly what magnitudes), not the absolute seconds: the substrate is
a simulator, not the authors' testbed.

Overall reproduction status:

- **Model ordering** (global reduction ≻ reduction communication ≻ no
  communication): holds in every figure, as in the paper.
- **Hard configurations**: scaled-up configurations (8-8, 8-16) dominate
  the no-communication model's error, as in the paper; equal-node-count
  configurations are the hardest for the refined models in the
  extrapolation figures, as in the paper.
- **Magnitudes**: within-cluster errors are a few percent (paper: "very
  accurate"); cross-cluster errors are the largest of each family (paper:
  up to ~16%; ours are somewhat smaller but ordered the same way, with
  defect detection worst).
- **Known deviation**: EM's model classes (see DESIGN.md §7.3) — our EM's
  sufficient statistics are constant-size, so the auto-detector assigns
  constant/linear-constant rather than the classes the paper names for EM.
  Shapes are unaffected.

"""


def main() -> int:
    t0 = time.time()
    sections = []
    ordered = [f for f in sorted(EXPERIMENTS) if f.startswith("fig")] + [
        f for f in sorted(EXPERIMENTS) if not f.startswith("fig")
    ]
    for figure_id in ordered:
        start = time.time()
        result = run_experiment(figure_id)
        sections.append(figure_section(result))
        print(f"{figure_id} done in {time.time() - start:.1f}s", flush=True)
    atomic_write_text(OUT, HEADER + "\n".join(sections))
    print(f"wrote {OUT} in {time.time() - t0:.1f}s total")
    return 0


if __name__ == "__main__":
    sys.exit(main())
