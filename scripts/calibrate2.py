"""Calibration: dataset-scaling (Fig 7/8), bandwidth (Fig 9/10), cross-cluster (Fig 11-13)."""
import sys
from repro.workloads import (make_run_config, PAPER_CONFIG_GRID,
                             pentium_myrinet_cluster, opteron_infiniband_cluster)
from repro.workloads.clusters import LOW_BANDWIDTH, HALF_LOW_BANDWIDTH, DEFAULT_BANDWIDTH
from repro.workloads.registry import WORKLOADS
from repro.middleware import FreerideGRuntime
from repro.core import (Profile, PredictionTarget, GlobalReductionModel, ModelClasses,
                        relative_error, measure_scaling_factors, CrossClusterPredictor)

def run(name, n, c, size=None, bw=DEFAULT_BANDWIDTH, cluster=None):
    spec = WORKLOADS[name]
    ds = spec.make_dataset(size)
    cl = cluster or pentium_myrinet_cluster()
    cfg = make_run_config(n, c, storage_cluster=cl, bandwidth=bw)
    res = FreerideGRuntime(cfg).execute(spec.make_app(), ds)
    return cfg, ds, res

def gmodel(name):
    spec = WORKLOADS[name]
    return GlobalReductionModel(ModelClasses.parse(spec.natural_object_class, spec.natural_global_class))

mode = sys.argv[1]
if mode == "scaling":
    for name, small, big in [("em", "350 MB", "1.4 GB"), ("defect", "130 MB", "1.8 GB")]:
        cfg, ds, res = run(name, 1, 1, small)
        prof = Profile.from_run(cfg, res.breakdown)
        m = gmodel(name)
        print(f"\n{name}: profile 1-1 @ {small} -> predict @ {big}")
        for (n, c) in PAPER_CONFIG_GRID:
            cfgt, dst, rest = run(name, n, c, big)
            tgt = PredictionTarget(config=cfgt, dataset_bytes=dst.nbytes)
            pred = m.predict(prof, tgt)
            e = relative_error(rest.breakdown.total, pred.total)
            print(f"  {n}-{c:<2} actual={rest.breakdown.total:8.3f} pred={pred.total:8.3f} err={100*e:5.2f}%")
elif mode == "bandwidth":
    for name in ["defect", "em"]:
        cfg, ds, res = run(name, 1, 1, None, bw=LOW_BANDWIDTH)
        prof = Profile.from_run(cfg, res.breakdown)
        m = gmodel(name)
        print(f"\n{name}: profile 1-1 @ 500Kbps -> predict @ 250Kbps")
        for (n, c) in PAPER_CONFIG_GRID:
            cfgt, dst, rest = run(name, n, c, None, bw=HALF_LOW_BANDWIDTH)
            tgt = PredictionTarget(config=cfgt, dataset_bytes=dst.nbytes)
            pred = m.predict(prof, tgt)
            e = relative_error(rest.breakdown.total, pred.total)
            print(f"  {n}-{c:<2} actual={rest.breakdown.total:8.3f} pred={pred.total:8.3f} err={100*e:5.2f}%")
elif mode == "hetero":
    pent, opt = pentium_myrinet_cluster(), opteron_infiniband_cluster()
    # scaling factors from representative apps at 2-4 config, default sizes
    reps = {"em": ["kmeans", "knn", "vortex"], "defect": ["kmeans", "knn", "em"],
            "vortex": ["kmeans", "knn", "em"]}
    cases = [("em", "350 MB", "700 MB", 8, 8), ("defect", "130 MB", "1.8 GB", 4, 4),
             ("vortex", "710 MB", "1.85 GB", 1, 1)]
    for name, psize, tsize, pn, pc in cases:
        pairs = []
        for rep in reps[name]:
            ca, da, ra = run(rep, 2, 4, None, cluster=pent)
            cb = make_run_config(2, 4, storage_cluster=opt)
            rb = FreerideGRuntime(cb).execute(WORKLOADS[rep].make_app(), da)
            pairs.append((Profile.from_run(ca, ra.breakdown), Profile.from_run(cb, rb.breakdown)))
        factors = measure_scaling_factors(pairs)
        print(f"\n{name}: factors sd={factors.sd:.3f} sn={factors.sn:.3f} sc={factors.sc:.3f}")
        print("  per-app sc:", {k: round(v[2],3) for k,v in factors.per_app.items()})
        cfg, ds, res = run(name, pn, pc, psize, cluster=pent)
        prof = Profile.from_run(cfg, res.breakdown)
        xm = CrossClusterPredictor(gmodel(name), factors)
        # observed sc for this app:
        ca2, da2, ra2 = run(name, 2, 4, None, cluster=pent)
        cb2 = make_run_config(2, 4, storage_cluster=opt)
        rb2 = FreerideGRuntime(cb2).execute(WORKLOADS[name].make_app(), da2)
        print(f"  observed sc for {name}: {rb2.breakdown.t_compute/ra2.breakdown.t_compute:.3f}")
        for (n, c) in PAPER_CONFIG_GRID:
            cfgt = make_run_config(n, c, storage_cluster=opt)
            dst = WORKLOADS[name].make_dataset(tsize)
            rest = FreerideGRuntime(cfgt).execute(WORKLOADS[name].make_app(), dst)
            tgt = PredictionTarget(config=cfgt, dataset_bytes=dst.nbytes)
            pred = xm.predict(prof, tgt)
            e = relative_error(rest.breakdown.total, pred.total)
            print(f"  {n}-{c:<2} actual={rest.breakdown.total:8.3f} pred={pred.total:8.3f} err={100*e:5.2f}%")
